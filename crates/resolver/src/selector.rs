//! Per-nameserver RTT tracking and server ordering: a smoothed-RTT
//! score per host (EWMA) with a timeout penalty, so resolvers converge
//! on the fastest authoritative server of a set — the mechanism behind
//! the paper's anycast/dual-stack preference observations (§4.3).

use std::collections::HashMap;
use std::net::IpAddr;

/// Smoothing factor for the RTT EWMA: one observation moves the
/// estimate 30% of the way — fast convergence without flapping on a
/// single outlier.
const ALPHA: f64 = 0.3;

/// Score assumed for a host that was never measured: optimistic enough
/// that new servers get probed ahead of known-slow ones.
const UNPROBED_SCORE: f64 = 1.0;

/// Multiplicative penalty applied to a host's score on timeout, and
/// the cap it saturates at (microseconds).
const TIMEOUT_FACTOR: f64 = 2.0;
const SCORE_CAP: f64 = 10_000_000.0;

/// Observed state for one nameserver address.
#[derive(Debug, Clone, Copy)]
pub struct HostStats {
    /// Smoothed round-trip time, microseconds.
    pub srtt_us: f64,
    /// Queries sent to this host.
    pub sent: u64,
    /// Timeouts observed from this host.
    pub timeouts: u64,
}

/// Per-host EWMA selector. Deterministic: ordering depends only on the
/// sequence of observations, never on randomness or map iteration.
#[derive(Debug, Clone, Default)]
pub struct HostSelector {
    hosts: HashMap<IpAddr, HostStats>,
}

impl HostSelector {
    /// A selector with no observations (every host unprobed).
    pub fn new() -> HostSelector {
        HostSelector::default()
    }

    /// Fold a measured RTT into the host's smoothed estimate.
    pub fn observe_rtt(&mut self, host: IpAddr, rtt_us: u32) {
        let e = self.hosts.entry(host).or_insert(HostStats {
            srtt_us: f64::from(rtt_us),
            sent: 0,
            timeouts: 0,
        });
        e.sent += 1;
        e.srtt_us = e.srtt_us * (1.0 - ALPHA) + f64::from(rtt_us) * ALPHA;
    }

    /// Penalize a host that failed to answer: doubles its score so the
    /// next [`HostSelector::order`] deprioritizes it, while leaving it
    /// reachable for recovery probes.
    pub fn observe_timeout(&mut self, host: IpAddr) {
        let e = self.hosts.entry(host).or_insert(HostStats {
            srtt_us: UNPROBED_SCORE,
            sent: 0,
            timeouts: 0,
        });
        e.sent += 1;
        e.timeouts += 1;
        e.srtt_us = (e.srtt_us * TIMEOUT_FACTOR).clamp(1.0, SCORE_CAP);
    }

    /// The score used for ordering: smoothed RTT, or the optimistic
    /// unprobed default.
    pub fn score(&self, host: IpAddr) -> f64 {
        self.hosts
            .get(&host)
            .map(|h| h.srtt_us)
            .unwrap_or(UNPROBED_SCORE)
    }

    /// `candidates` sorted best-first by score. The sort is stable, so
    /// unobserved hosts keep their input (priming/glue) order.
    pub fn order(&self, candidates: &[IpAddr]) -> Vec<IpAddr> {
        let mut out = candidates.to_vec();
        out.sort_by(|a, b| {
            self.score(*a)
                .partial_cmp(&self.score(*b))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        out
    }

    /// Measured state for `host`, if any query was ever sent to it.
    pub fn stats(&self, host: IpAddr) -> Option<HostStats> {
        self.hosts.get(&host).copied()
    }

    /// Iterate all observed hosts (for metrics export).
    pub fn iter(&self) -> impl Iterator<Item = (&IpAddr, &HostStats)> {
        self.hosts.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> IpAddr {
        s.parse().unwrap()
    }

    #[test]
    fn fast_host_ordered_first() {
        let mut s = HostSelector::new();
        s.observe_rtt(ip("192.0.2.1"), 50_000);
        s.observe_rtt(ip("192.0.2.2"), 5_000);
        let order = s.order(&[ip("192.0.2.1"), ip("192.0.2.2")]);
        assert_eq!(order[0], ip("192.0.2.2"));
    }

    #[test]
    fn unprobed_hosts_rank_ahead_of_measured_ones() {
        let mut s = HostSelector::new();
        s.observe_rtt(ip("192.0.2.1"), 30_000);
        let order = s.order(&[ip("192.0.2.1"), ip("192.0.2.9")]);
        assert_eq!(order[0], ip("192.0.2.9"), "new server gets probed");
    }

    #[test]
    fn timeouts_demote_a_host() {
        let mut s = HostSelector::new();
        s.observe_rtt(ip("192.0.2.1"), 10_000);
        s.observe_rtt(ip("192.0.2.2"), 12_000);
        for _ in 0..4 {
            s.observe_timeout(ip("192.0.2.1"));
        }
        let order = s.order(&[ip("192.0.2.1"), ip("192.0.2.2")]);
        assert_eq!(order[0], ip("192.0.2.2"));
        let st = s.stats(ip("192.0.2.1")).unwrap();
        assert_eq!(st.timeouts, 4);
    }

    #[test]
    fn ewma_converges_toward_recent_rtt() {
        let mut s = HostSelector::new();
        s.observe_rtt(ip("192.0.2.1"), 100_000);
        for _ in 0..20 {
            s.observe_rtt(ip("192.0.2.1"), 10_000);
        }
        let srtt = s.stats(ip("192.0.2.1")).unwrap().srtt_us;
        assert!(srtt < 12_000.0, "srtt {srtt}");
    }

    #[test]
    fn stable_order_without_observations() {
        let s = HostSelector::new();
        let input = [ip("192.0.2.3"), ip("192.0.2.1"), ip("192.0.2.2")];
        assert_eq!(s.order(&input), input.to_vec());
    }
}

//! A simulated authoritative-server hierarchy: zones with delegations
//! and glue, served by addressable name servers, answering real
//! wire-format questions.
//!
//! This is deliberately simpler than `simnet`'s calibrated responder:
//! it exists so an *algorithmic* resolver has a real tree to walk —
//! root, TLDs, and leaf zones, with configurable NS records (including
//! the broken, mutually-dependent kind).

use dns_wire::builder::MessageBuilder;
use dns_wire::message::{Message, Question};
use dns_wire::name::Name;
use dns_wire::rdata::RData;
use dns_wire::types::{RType, Rcode};
use std::collections::HashMap;
use std::net::IpAddr;

/// One zone's data.
#[derive(Debug, Clone)]
struct Zone {
    apex: Name,
    /// NS host names of the zone itself.
    ns: Vec<Name>,
    /// Child zone cuts: owner -> NS host names (referral targets).
    delegations: HashMap<Name, Vec<Name>>,
    /// Address records within this zone (hosts and glue).
    addresses: HashMap<Name, Vec<IpAddr>>,
    /// CNAMEs within this zone.
    cnames: HashMap<Name, Name>,
    /// This zone publishes a (toy) DNSKEY and signs its data.
    signed: bool,
    /// Children with DS records at this parent (secure delegations).
    signed_children: std::collections::HashSet<Name>,
}

impl Zone {
    /// The deepest delegation cut covering `qname`, if any.
    fn covering_delegation(&self, qname: &Name) -> Option<(&Name, &Vec<Name>)> {
        self.delegations
            .iter()
            .filter(|(cut, _)| qname.is_subdomain_of(cut))
            .max_by_key(|(cut, _)| cut.label_count())
    }
}

/// Fluent zone construction.
pub struct ZoneBuilder {
    zone: Zone,
    servers: Vec<IpAddr>,
}

impl ZoneBuilder {
    /// Start a zone at `apex`, served by the given addresses (which the
    /// builder also registers as the apex NS hosts' A records when the
    /// NS hosts live in-zone).
    pub fn new(apex: &str) -> ZoneBuilder {
        ZoneBuilder {
            zone: Zone {
                apex: apex.parse().expect("valid apex"),
                ns: Vec::new(),
                delegations: HashMap::new(),
                addresses: HashMap::new(),
                cnames: HashMap::new(),
                signed: false,
                signed_children: std::collections::HashSet::new(),
            },
            servers: Vec::new(),
        }
    }

    /// Add a name server for this zone: host name + address. The
    /// address is registered both as the server endpoint and as an
    /// in-zone A/AAAA record for the host (when in-bailiwick).
    pub fn server(mut self, host: &str, addr: &str) -> Self {
        let host: Name = host.parse().expect("valid host");
        let addr: IpAddr = addr.parse().expect("valid address");
        self.zone.ns.push(host.clone());
        self.zone.addresses.entry(host).or_default().push(addr);
        self.servers.push(addr);
        self
    }

    /// Delegate `child` to NS hosts (names only; add glue separately if
    /// the hosts are in-bailiwick).
    pub fn delegate(mut self, child: &str, ns_hosts: &[&str]) -> Self {
        let child: Name = child.parse().expect("valid child");
        let hosts: Vec<Name> = ns_hosts
            .iter()
            .map(|h| h.parse().expect("valid ns host"))
            .collect();
        self.zone.delegations.insert(child, hosts);
        self
    }

    /// Add an address record (host data or glue).
    pub fn address(mut self, host: &str, addr: &str) -> Self {
        let host: Name = host.parse().expect("valid host");
        self.zone
            .addresses
            .entry(host)
            .or_default()
            .push(addr.parse().expect("valid address"));
        self
    }

    /// Mark the zone as DNSSEC-signed (it will answer DNSKEY queries
    /// with the toy key scheme of [`toy_key`]).
    pub fn signed(mut self) -> Self {
        self.zone.signed = true;
        self
    }

    /// Publish a DS record for `child` (a secure delegation).
    pub fn secure_delegation(mut self, child: &str) -> Self {
        self.zone
            .signed_children
            .insert(child.parse().expect("valid child"));
        self
    }

    /// Add a CNAME.
    pub fn cname(mut self, alias: &str, target: &str) -> Self {
        self.zone.cnames.insert(
            alias.parse().expect("valid alias"),
            target.parse().expect("valid target"),
        );
        self
    }

    fn build(self) -> (Zone, Vec<IpAddr>) {
        (self.zone, self.servers)
    }
}

/// The simulated network: zones and the servers that answer for them.
#[derive(Default)]
pub struct Network {
    zones: Vec<Zone>,
    /// server address -> zone indices it serves (a server can host
    /// several zones, like real TLD operators).
    servers: HashMap<IpAddr, Vec<usize>>,
    /// Queries each server has answered (the vantage-point view).
    pub server_log: HashMap<IpAddr, Vec<Question>>,
}

impl Network {
    /// Empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install a zone.
    pub fn add(&mut self, builder: ZoneBuilder) {
        let (zone, servers) = builder.build();
        let idx = self.zones.len();
        self.zones.push(zone);
        for s in servers {
            self.servers.entry(s).or_default().push(idx);
        }
    }

    /// The root servers' addresses (for resolver priming).
    pub fn root_servers(&self) -> Vec<IpAddr> {
        self.zones
            .iter()
            .enumerate()
            .filter(|(_, z)| z.apex.is_root())
            .flat_map(|(i, _)| {
                self.servers
                    .iter()
                    .filter(move |(_, zs)| zs.contains(&i))
                    .map(|(a, _)| *a)
            })
            .collect()
    }

    /// Total queries observed across servers.
    pub fn total_queries(&self) -> usize {
        self.server_log.values().map(Vec::len).sum()
    }

    /// Queries observed at one server.
    pub fn queries_at(&self, server: IpAddr) -> &[Question] {
        self.server_log
            .get(&server)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Send `query` to `server`; `None` if nothing listens there
    /// (timeout, from the resolver's perspective).
    pub fn query(&mut self, server: IpAddr, query: &Message) -> Option<Message> {
        let zone_ids = self.servers.get(&server)?.clone();
        let question = query.question()?.clone();
        self.server_log
            .entry(server)
            .or_default()
            .push(question.clone());
        // deepest zone this server is authoritative for that covers qname
        let zone = zone_ids
            .iter()
            .map(|&i| &self.zones[i])
            .filter(|z| question.qname.is_subdomain_of(&z.apex))
            .max_by_key(|z| z.apex.label_count())?;
        Some(answer(zone, query, &question))
    }
}

/// The toy "public key" of a signed zone: a stable hash of its apex.
/// Stands in for real key material so validation *traffic* (DS, then
/// DNSKEY, then comparison) is mechanical without a crypto dependency.
pub fn toy_key(apex: &Name) -> Vec<u8> {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in apex.as_wire() {
        h = (h ^ b.to_ascii_lowercase() as u64).wrapping_mul(0x100_0000_01b3);
    }
    h.to_be_bytes().to_vec()
}

/// Build the zone's authoritative answer.
fn answer(zone: &Zone, query: &Message, question: &Question) -> Message {
    // DS: answered by the *parent* of a secure delegation
    if question.qtype == RType::Ds && zone.delegations.contains_key(&question.qname) {
        if zone.signed_children.contains(&question.qname) {
            return MessageBuilder::response(query, Rcode::NoError)
                .answer(
                    question.qname.clone(),
                    3600,
                    RData::Ds {
                        key_tag: 1,
                        algorithm: 8,
                        digest_type: 2,
                        digest: toy_key(&question.qname),
                    },
                )
                .build();
        }
        // insecure delegation: NODATA
        return MessageBuilder::response(query, Rcode::NoError)
            .authority(zone.apex.clone(), 300, soa(&zone.apex))
            .build();
    }
    // DNSKEY at a signed apex
    if question.qtype == RType::Dnskey && question.qname == zone.apex && zone.signed {
        return MessageBuilder::response(query, Rcode::NoError)
            .answer(
                zone.apex.clone(),
                3600,
                RData::Dnskey {
                    flags: 257,
                    protocol: 3,
                    algorithm: 8,
                    public_key: toy_key(&zone.apex),
                },
            )
            .build();
    }
    // below a delegation cut? -> referral
    if let Some((cut, ns_hosts)) = zone.covering_delegation(&question.qname) {
        let mut b = MessageBuilder::response(query, Rcode::NoError);
        for host in ns_hosts {
            b = b.authority(cut.clone(), 3600, RData::Ns(host.clone()));
            // glue only when the host is inside THIS zone's bailiwick
            if host.is_subdomain_of(&zone.apex) {
                if let Some(addrs) = zone.addresses.get(host) {
                    for addr in addrs {
                        b = b.additional(host.clone(), 3600, addr_rdata(*addr));
                    }
                }
            }
        }
        return b.build();
    }
    // CNAME?
    if let Some(target) = zone.cnames.get(&question.qname) {
        let mut b = MessageBuilder::response(query, Rcode::NoError).answer(
            question.qname.clone(),
            300,
            RData::Cname(target.clone()),
        );
        // chase in-zone targets for the client's convenience
        if question.qtype == RType::A || question.qtype == RType::Aaaa {
            if let Some(addrs) = zone.addresses.get(target) {
                for addr in addrs {
                    if matches(question.qtype, *addr) {
                        b = b.answer(target.clone(), 300, addr_rdata(*addr));
                    }
                }
            }
        }
        return b.build();
    }
    // authoritative data?
    match question.qtype {
        RType::A | RType::Aaaa => {
            if let Some(addrs) = zone.addresses.get(&question.qname) {
                let mut b = MessageBuilder::response(query, Rcode::NoError);
                let mut any = false;
                for addr in addrs {
                    if matches(question.qtype, *addr) {
                        b = b.answer(question.qname.clone(), 300, addr_rdata(*addr));
                        any = true;
                    }
                }
                if !any {
                    // NODATA
                    b = b.authority(zone.apex.clone(), 300, soa(&zone.apex));
                }
                return b.build();
            }
        }
        RType::Ns if question.qname == zone.apex => {
            let mut b = MessageBuilder::response(query, Rcode::NoError);
            for host in &zone.ns {
                b = b.answer(zone.apex.clone(), 3600, RData::Ns(host.clone()));
            }
            return b.build();
        }
        RType::Soa if question.qname == zone.apex => {
            return MessageBuilder::response(query, Rcode::NoError)
                .answer(zone.apex.clone(), 3600, soa(&zone.apex))
                .build();
        }
        _ => {}
    }
    // name exists structurally (an address/cname/delegation lives below
    // it)? then NODATA, else NXDOMAIN
    let exists = question.qname == zone.apex
        || zone
            .addresses
            .keys()
            .any(|h| h.is_subdomain_of(&question.qname))
        || zone
            .cnames
            .keys()
            .any(|h| h.is_subdomain_of(&question.qname))
        || zone
            .delegations
            .keys()
            .any(|h| h.is_subdomain_of(&question.qname));
    let rcode = if exists {
        Rcode::NoError
    } else {
        Rcode::NxDomain
    };
    MessageBuilder::response(query, rcode)
        .authority(zone.apex.clone(), 300, soa(&zone.apex))
        .build()
}

fn matches(qtype: RType, addr: IpAddr) -> bool {
    matches!(
        (qtype, addr),
        (RType::A, IpAddr::V4(_)) | (RType::Aaaa, IpAddr::V6(_))
    )
}

fn addr_rdata(addr: IpAddr) -> RData {
    match addr {
        IpAddr::V4(v4) => RData::A(v4),
        IpAddr::V6(v6) => RData::Aaaa(v6),
    }
}

fn soa(apex: &Name) -> RData {
    RData::Soa {
        mname: apex.child(b"ns1").unwrap_or_else(|_| apex.clone()),
        rname: apex.child(b"hostmaster").unwrap_or_else(|_| apex.clone()),
        serial: 1,
        refresh: 3600,
        retry: 600,
        expire: 86_400,
        minimum: 300,
    }
}

/// A ready-made three-level world: root, `.nl` + `.nz`, and a few leaf
/// zones — the fixture most tests and examples use.
pub fn sample_world() -> Network {
    let mut net = Network::new();
    net.add(
        ZoneBuilder::new(".")
            .server("a.root-servers.example.", "198.41.0.4")
            .server("b.root-servers.example.", "199.9.14.201")
            .delegate("nl.", &["ns1.dns.nl.", "ns2.dns.nl."])
            .address("ns1.dns.nl.", "194.0.28.53")
            .address("ns2.dns.nl.", "185.159.198.53")
            .delegate("nz.", &["ns1.dns.net.nz."])
            .address("ns1.dns.net.nz.", "202.46.190.10"),
    );
    net.add(
        ZoneBuilder::new("nl.")
            .server("ns1.dns.nl.", "194.0.28.53")
            .server("ns2.dns.nl.", "185.159.198.53")
            .delegate("example.nl.", &["ns1.example.nl."])
            .address("ns1.example.nl.", "192.0.2.53") // glue
            .delegate("hosted.nl.", &["ns.provider.nz."]), // out-of-bailiwick NS
    );
    net.add(
        ZoneBuilder::new("nz.")
            .server("ns1.dns.net.nz.", "202.46.190.10")
            .delegate("provider.nz.", &["ns.provider.nz."])
            .address("ns.provider.nz.", "203.0.113.53"), // glue
    );
    net.add(
        ZoneBuilder::new("example.nl.")
            .server("ns1.example.nl.", "192.0.2.53")
            .address("www.example.nl.", "192.0.2.80")
            .address("www.example.nl.", "2001:db8::80")
            .cname("cdn.example.nl.", "www.example.nl."),
    );
    net.add(
        ZoneBuilder::new("provider.nz.")
            .server("ns.provider.nz.", "203.0.113.53")
            .address("hosted-web.provider.nz.", "203.0.113.80"),
    );
    net.add(
        ZoneBuilder::new("hosted.nl.")
            .server("ns.provider.nz.", "203.0.113.53")
            .address("www.hosted.nl.", "203.0.113.81"),
    );
    net
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(net: &mut Network, server: &str, qname: &str, qtype: RType) -> Message {
        let query = MessageBuilder::query(1, qname.parse().unwrap(), qtype).build();
        net.query(server.parse().unwrap(), &query)
            .expect("server answers")
    }

    #[test]
    fn root_refers_to_tld_with_glue() {
        let mut net = sample_world();
        let resp = q(&mut net, "198.41.0.4", "www.example.nl.", RType::A);
        assert_eq!(resp.header.rcode, Rcode::NoError);
        assert!(resp.answers.is_empty());
        let ns: Vec<String> = resp
            .authorities
            .iter()
            .map(|r| r.name.to_string())
            .collect();
        assert!(ns.iter().all(|n| n == "nl."), "{ns:?}");
        assert!(!resp.additionals.is_empty(), "glue present");
    }

    #[test]
    fn tld_refers_to_leaf() {
        let mut net = sample_world();
        let resp = q(&mut net, "194.0.28.53", "www.example.nl.", RType::A);
        assert!(resp.answers.is_empty());
        assert_eq!(resp.authorities[0].name.to_string(), "example.nl.");
    }

    #[test]
    fn leaf_answers_authoritatively() {
        let mut net = sample_world();
        let resp = q(&mut net, "192.0.2.53", "www.example.nl.", RType::A);
        assert_eq!(resp.answers.len(), 1);
        assert_eq!(
            resp.answers[0].rdata,
            RData::A("192.0.2.80".parse().unwrap())
        );
        // AAAA too
        let resp = q(&mut net, "192.0.2.53", "www.example.nl.", RType::Aaaa);
        assert_eq!(
            resp.answers[0].rdata,
            RData::Aaaa("2001:db8::80".parse().unwrap())
        );
    }

    #[test]
    fn cname_is_chased_in_zone() {
        let mut net = sample_world();
        let resp = q(&mut net, "192.0.2.53", "cdn.example.nl.", RType::A);
        assert_eq!(resp.answers.len(), 2);
        assert!(matches!(resp.answers[0].rdata, RData::Cname(_)));
        assert!(matches!(resp.answers[1].rdata, RData::A(_)));
    }

    #[test]
    fn nxdomain_and_nodata() {
        let mut net = sample_world();
        let resp = q(&mut net, "192.0.2.53", "nosuch.example.nl.", RType::A);
        assert_eq!(resp.header.rcode, Rcode::NxDomain);
        // www exists but has no MX: NODATA
        let resp = q(&mut net, "192.0.2.53", "www.example.nl.", RType::Mx);
        assert_eq!(resp.header.rcode, Rcode::NoError);
        assert!(resp.answers.is_empty());
    }

    #[test]
    fn out_of_bailiwick_ns_gets_no_glue() {
        let mut net = sample_world();
        let resp = q(&mut net, "194.0.28.53", "www.hosted.nl.", RType::A);
        let ns_names: Vec<String> = resp
            .authorities
            .iter()
            .filter_map(|r| match &r.rdata {
                RData::Ns(n) => Some(n.to_string()),
                _ => None,
            })
            .collect();
        assert_eq!(ns_names, vec!["ns.provider.nz."]);
        assert!(resp.additionals.is_empty(), "nz host: no .nl glue");
    }

    #[test]
    fn server_log_records_questions() {
        let mut net = sample_world();
        q(&mut net, "198.41.0.4", "www.example.nl.", RType::A);
        q(&mut net, "198.41.0.4", "x.nz.", RType::A);
        assert_eq!(net.queries_at("198.41.0.4".parse().unwrap()).len(), 2);
        assert_eq!(net.total_queries(), 2);
    }

    #[test]
    fn unknown_server_is_silence() {
        let mut net = sample_world();
        let query = MessageBuilder::query(1, "x.nl.".parse().unwrap(), RType::A).build();
        assert!(net.query("10.9.9.9".parse().unwrap(), &query).is_none());
    }

    #[test]
    fn root_servers_enumerated() {
        let net = sample_world();
        let mut roots = net.root_servers();
        roots.sort();
        assert_eq!(roots.len(), 2);
    }
}

//! The iterative resolution algorithm: referral walking from the root,
//! optional QNAME minimization, delegation/address caching, and cycle
//! detection.
//!
//! The resolver is generic over [`Transport`], so the same walk runs
//! against the in-process test [`Network`](crate::hierarchy::Network),
//! simnet's zone-model answerer, or real sockets toward `authd`. Fleet
//! deployments attach a [`SharedCache`] (per-entry TTL decay, shared
//! across the fleet's resolvers) and get per-host RTT ordering plus a
//! bounded retry/timeout state machine per in-flight query.

use crate::cache::{Negative, SharedCache};
use crate::selector::HostSelector;
use crate::transport::{Exchange, Transport};
use dns_wire::builder::MessageBuilder;
use dns_wire::message::Message;
use dns_wire::name::Name;
use dns_wire::rdata::RData;
use dns_wire::types::{RType, Rcode};
use std::collections::{HashMap, HashSet};
use std::net::IpAddr;

/// Fallback TTL when an answer carries no usable records (seconds).
const DEFAULT_ANSWER_TTL: u32 = 300;
/// Fallback negative TTL when no SOA is present (RFC 2308 default).
const DEFAULT_NEGATIVE_TTL: u32 = 900;

/// Resolver behaviour knobs.
#[derive(Debug, Clone, Copy)]
pub struct ResolverConfig {
    /// Walk zone cuts with minimized qnames (RFC 7816). This is the
    /// switch whose flip the paper dates to Dec 2019 for Google.
    pub qmin: bool,
    /// Validate delegations DNSSEC-style: fetch DS at each parent and
    /// DNSKEY once per child zone, and compare (§4.2.2 — the traffic
    /// signature that separates Cloudflare/Google from Microsoft).
    pub validate: bool,
    /// Hard budget of queries per [`IterativeResolver::resolve`] call —
    /// what stops a cyclic dependency from looping forever.
    pub max_queries: u32,
    /// Maximum CNAME chain length.
    pub max_cnames: u32,
    /// EDNS advertised UDP payload size, on every hop of the walk.
    /// 0 = no OPT record at all.
    pub edns_size: u16,
    /// DNSSEC-OK: set the DO bit inside the OPT record on every hop.
    pub do_bit: bool,
    /// Checking Disabled: carried on every hop of the walk — referral
    /// probes, Q-min probes, DS/DNSKEY fetches, CNAME chases and
    /// glueless-NS re-walks alike.
    pub cd_bit: bool,
    /// How many times each server of a zone's NS set is tried before
    /// the query errors as unreachable. The retry passes re-rank
    /// servers by the RTT selector, so a timing-out server is demoted
    /// mid-resolution.
    pub attempts_per_server: u32,
}

impl Default for ResolverConfig {
    fn default() -> Self {
        ResolverConfig {
            qmin: false,
            validate: false,
            max_queries: 64,
            max_cnames: 8,
            edns_size: 0,
            do_bit: false,
            cd_bit: false,
            attempts_per_server: 2,
        }
    }
}

/// One query the resolver sent (mirrors what a vantage point captures).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryLogEntry {
    /// Server the query went to.
    pub server: IpAddr,
    /// Queried name, as sent on the wire.
    pub qname: Name,
    /// Queried type.
    pub qtype: RType,
    /// EDNS payload size advertised on this hop (0 = no OPT).
    pub edns_size: u16,
    /// DO bit on this hop.
    pub do_bit: bool,
    /// CD bit on this hop.
    pub cd_bit: bool,
}

/// Resolution failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResolveError {
    /// The name does not exist.
    NxDomain,
    /// The name exists but has no records of the requested type.
    NoData,
    /// The per-resolution query budget ran out (the user-visible
    /// symptom of pathological delegations).
    BudgetExhausted {
        /// Queries spent before giving up.
        queries: u32,
    },
    /// NS resolution required resolving a name that is itself being
    /// resolved: a cyclic dependency (Pappas et al. 2004 — the paper's
    /// Feb-2020 `.nz` incident).
    CyclicDependency {
        /// The name whose resolution re-entered itself.
        name: Name,
    },
    /// No server for a zone could be reached or produced an answer.
    Unreachable,
    /// The CNAME chain exceeded the limit.
    CnameLoop,
    /// Validation failed: the child's DNSKEY does not match the DS the
    /// parent published.
    Bogus {
        /// The delegation that failed to validate.
        zone: Name,
    },
}

/// Per-resolver counters for the retry/timeout state machine and the
/// shared-cache interaction. Plain totals; a fleet harness aggregates
/// them into its metrics.
#[derive(Debug, Clone, Copy, Default)]
pub struct ResolverStats {
    /// Query sends beyond each hop's first attempt.
    pub retries: u64,
    /// Exchanges that ended in a transport timeout.
    pub timeouts: u64,
    /// Resolutions answered from the shared cache (positive or
    /// negative) without any query.
    pub cache_hits: u64,
    /// Resolutions that had to walk.
    pub cache_misses: u64,
}

/// An iterative (root-walking) resolver with caches.
pub struct IterativeResolver {
    config: ResolverConfig,
    /// zone cut -> learned server addresses (per-instance fallback
    /// when no shared cache is attached; no TTL decay).
    delegation_cache: HashMap<Name, Vec<IpAddr>>,
    /// terminal answers: (qname, qtype) -> addresses (per-instance
    /// fallback).
    address_cache: HashMap<(Name, RType), Vec<IpAddr>>,
    /// every query sent, in order (when logging is enabled).
    pub log: Vec<QueryLogEntry>,
    /// Retry/timeout/cache counters.
    pub stats: ResolverStats,
    queries_this_call: u32,
    sent_total: u64,
    log_enabled: bool,
    resolving: HashSet<Name>,
    /// delegation -> the parent's DS digest (None = insecure).
    ds_cache: HashMap<Name, Option<Vec<u8>>>,
    /// zone -> verified DNSKEY material.
    dnskey_cache: HashMap<Name, Vec<u8>>,
    /// Fleet-shared cache with per-entry TTL decay; when attached, the
    /// per-instance maps above are bypassed entirely.
    shared: Option<SharedCache>,
    /// Simulation/wall clock, microseconds — the time base for shared
    /// cache expiry.
    now_us: u64,
    selector: HostSelector,
}

impl IterativeResolver {
    /// Build with the given configuration.
    pub fn new(config: ResolverConfig) -> Self {
        IterativeResolver {
            config,
            delegation_cache: HashMap::new(),
            address_cache: HashMap::new(),
            log: Vec::new(),
            stats: ResolverStats::default(),
            queries_this_call: 0,
            sent_total: 0,
            log_enabled: true,
            resolving: HashSet::new(),
            ds_cache: HashMap::new(),
            dnskey_cache: HashMap::new(),
            shared: None,
            now_us: 0,
            selector: HostSelector::new(),
        }
    }

    /// Attach a fleet-shared cache; all positive/negative/delegation
    /// caching moves there (with real TTL decay against the clock set
    /// by [`IterativeResolver::set_now_micros`]).
    pub fn attach_shared_cache(&mut self, cache: SharedCache) {
        self.shared = Some(cache);
    }

    /// Advance this resolver's clock (microseconds). Only consulted
    /// for shared-cache expiry; per-instance maps ignore it.
    pub fn set_now_micros(&mut self, now_us: u64) {
        self.now_us = now_us;
    }

    /// Flip QNAME minimization (a provider rollout toggles this on the
    /// paper's timeline).
    pub fn set_qmin(&mut self, on: bool) {
        self.config.qmin = on;
    }

    /// Disable the per-query log (fleet runs: the capture tap records
    /// traffic, keeping an in-memory log per resolver would just grow).
    pub fn set_log_enabled(&mut self, on: bool) {
        self.log_enabled = on;
    }

    /// The active configuration.
    pub fn config(&self) -> &ResolverConfig {
        &self.config
    }

    /// The per-host RTT selector (for metrics export).
    pub fn selector(&self) -> &HostSelector {
        &self.selector
    }

    /// Queries sent over this resolver's lifetime.
    pub fn queries_sent(&self) -> usize {
        self.sent_total as usize
    }

    /// Cached zone cuts (for tests/inspection; per-instance map only).
    pub fn cached_cuts(&self) -> usize {
        self.delegation_cache.len()
    }

    /// Resolve `name`/`rtype` to addresses, walking `net` from its
    /// root servers.
    pub fn resolve<T: Transport>(
        &mut self,
        net: &mut T,
        name: &Name,
        rtype: RType,
    ) -> Result<Vec<IpAddr>, ResolveError> {
        self.queries_this_call = 0;
        self.resolving.clear();
        let before = self.queries_this_call;
        let result = self.resolve_inner(net, name, rtype, 0);
        if self.queries_this_call == before {
            self.stats.cache_hits += 1;
        } else {
            self.stats.cache_misses += 1;
        }
        result
    }

    fn resolve_inner<T: Transport>(
        &mut self,
        net: &mut T,
        name: &Name,
        rtype: RType,
        cname_depth: u32,
    ) -> Result<Vec<IpAddr>, ResolveError> {
        if cname_depth > self.config.max_cnames {
            return Err(ResolveError::CnameLoop);
        }
        if let Some(shared) = &self.shared {
            let now = self.now_us;
            if let Some(kind) = shared.with(|c| c.negative(name, rtype, now)) {
                return Err(match kind {
                    Negative::NxDomain => ResolveError::NxDomain,
                    Negative::NoData => ResolveError::NoData,
                });
            }
            if let Some(addrs) = shared.with(|c| c.addresses(name, rtype, now)) {
                return Ok(addrs);
            }
        } else if let Some(cached) = self.address_cache.get(&(name.clone(), rtype)) {
            return Ok(cached.clone());
        }
        if !self.resolving.insert(name.clone()) {
            return Err(ResolveError::CyclicDependency { name: name.clone() });
        }
        let result = self.walk(net, name, rtype, cname_depth);
        self.resolving.remove(name);
        match &result {
            Ok((addrs, ttl)) => {
                if let Some(shared) = &self.shared {
                    let now = self.now_us;
                    shared.with(|c| c.put_addresses(name, rtype, addrs.clone(), now, *ttl));
                } else {
                    self.address_cache
                        .insert((name.clone(), rtype), addrs.clone());
                }
            }
            Err(e @ (ResolveError::NxDomain | ResolveError::NoData)) => {
                if let Some(shared) = &self.shared {
                    let kind = if *e == ResolveError::NxDomain {
                        Negative::NxDomain
                    } else {
                        Negative::NoData
                    };
                    let now = self.now_us;
                    shared.with(|c| c.put_negative(name, rtype, kind, now, DEFAULT_NEGATIVE_TTL));
                }
            }
            Err(_) => {}
        }
        result.map(|(addrs, _)| addrs)
    }

    /// The referral walk itself. Returns the addresses plus the TTL to
    /// cache them under.
    fn walk<T: Transport>(
        &mut self,
        net: &mut T,
        name: &Name,
        rtype: RType,
        cname_depth: u32,
    ) -> Result<(Vec<IpAddr>, u32), ResolveError> {
        // start from the deepest cached cut covering the name
        let (cut, mut servers) = self.best_cut(net, name);
        // depth we know to be inside `servers`' bailiwick (for Q-min's
        // empty-non-terminal traversal)
        let mut known_depth = cut.label_count();

        for _ in 0..64 {
            // pick the wire question
            let (send_qname, send_qtype) = if self.config.qmin {
                let child = ancestor_at(name, known_depth + 1);
                if &child == name {
                    (name.clone(), rtype)
                } else {
                    (child, RType::Ns)
                }
            } else {
                (name.clone(), rtype)
            };

            let resp = self.ask(net, &servers, &send_qname, send_qtype)?;

            // terminal outcomes -------------------------------------------------
            if resp.header.rcode == Rcode::NxDomain {
                return Err(ResolveError::NxDomain);
            }
            // direct answer for the real question?
            if &send_qname == name && send_qtype == rtype {
                let addrs: Vec<IpAddr> = resp
                    .answers
                    .iter()
                    .filter(|r| r.name == *name)
                    .filter_map(|r| match &r.rdata {
                        RData::A(a) => Some(IpAddr::V4(*a)),
                        RData::Aaaa(a) => Some(IpAddr::V6(*a)),
                        _ => None,
                    })
                    .collect();
                if !addrs.is_empty() {
                    let ttl = answer_ttl(&resp, name);
                    return Ok((addrs, ttl));
                }
                // CNAME?
                if let Some(target) = resp.answers.iter().find_map(|r| match &r.rdata {
                    RData::Cname(t) if r.name == *name => Some(t.clone()),
                    _ => None,
                }) {
                    // chased answers may ride along
                    let chased: Vec<IpAddr> = resp
                        .answers
                        .iter()
                        .filter(|r| r.name == target)
                        .filter_map(|r| match &r.rdata {
                            RData::A(a) => Some(IpAddr::V4(*a)),
                            RData::Aaaa(a) => Some(IpAddr::V6(*a)),
                            _ => None,
                        })
                        .collect();
                    if !chased.is_empty() {
                        let ttl = answer_ttl(&resp, &target);
                        return Ok((chased, ttl));
                    }
                    return self
                        .resolve_inner(net, &target, rtype, cname_depth + 1)
                        .map(|addrs| (addrs, DEFAULT_ANSWER_TTL));
                }
                if resp.answers.is_empty() && !is_referral(&resp) {
                    return Err(ResolveError::NoData);
                }
            }

            // referral ----------------------------------------------------------
            if is_referral(&resp) {
                let (new_cut, ns_hosts, glue, cut_ttl) = parse_referral(&resp);
                let new_servers = if glue.is_empty() {
                    // no glue: resolve the NS hosts (cycle-guarded)
                    let mut found = Vec::new();
                    let mut cycle: Option<ResolveError> = None;
                    for host in &ns_hosts {
                        match self.resolve_inner(net, host, RType::A, 0) {
                            Ok(addrs) => found.extend(addrs),
                            Err(e @ ResolveError::CyclicDependency { .. }) => {
                                cycle = Some(e);
                            }
                            Err(_) => {}
                        }
                    }
                    if found.is_empty() {
                        return Err(cycle.unwrap_or(ResolveError::Unreachable));
                    }
                    found
                } else {
                    glue
                };
                if self.config.validate {
                    self.validate_delegation(net, &servers, &new_cut, &new_servers)?;
                }
                if let Some(shared) = &self.shared {
                    let now = self.now_us;
                    shared.with(|c| c.put_delegation(&new_cut, new_servers.clone(), now, cut_ttl));
                } else {
                    self.delegation_cache
                        .insert(new_cut.clone(), new_servers.clone());
                }
                known_depth = new_cut.label_count();
                servers = new_servers;
                continue;
            }

            // Q-min probe outcomes ------------------------------------------------
            if self.config.qmin && &send_qname != name {
                // NODATA at an empty non-terminal, or an authoritative NS
                // answer (same-server child zone): step one label deeper
                known_depth += 1;
                continue;
            }

            return Err(ResolveError::NoData);
        }
        Err(ResolveError::BudgetExhausted {
            queries: self.queries_this_call,
        })
    }

    /// DNSSEC-style delegation check: DS at the parent, DNSKEY once per
    /// child zone, compared. Mirrors the §4.2.2 traffic pattern: a
    /// validator emits one DS query per (uncached) delegation but only
    /// one DNSKEY query per zone.
    fn validate_delegation<T: Transport>(
        &mut self,
        net: &mut T,
        parent_servers: &[IpAddr],
        cut: &Name,
        child_servers: &[IpAddr],
    ) -> Result<(), ResolveError> {
        let ds = match self.ds_cache.get(cut) {
            Some(cached) => cached.clone(),
            None => {
                let resp = self.ask(net, parent_servers, cut, RType::Ds)?;
                let digest = resp.answers.iter().find_map(|r| match &r.rdata {
                    RData::Ds { digest, .. } if r.name == *cut => Some(digest.clone()),
                    _ => None,
                });
                self.ds_cache.insert(cut.clone(), digest.clone());
                digest
            }
        };
        let Some(digest) = ds else {
            return Ok(()); // insecure delegation: nothing to validate
        };
        let key = match self.dnskey_cache.get(cut) {
            Some(k) => k.clone(),
            None => {
                let resp = self.ask(net, child_servers, cut, RType::Dnskey)?;
                let key = resp
                    .answers
                    .iter()
                    .find_map(|r| match &r.rdata {
                        RData::Dnskey { public_key, .. } if r.name == *cut => {
                            Some(public_key.clone())
                        }
                        _ => None,
                    })
                    .ok_or_else(|| ResolveError::Bogus { zone: cut.clone() })?;
                self.dnskey_cache.insert(cut.clone(), key.clone());
                key
            }
        };
        if key == digest {
            Ok(())
        } else {
            Err(ResolveError::Bogus { zone: cut.clone() })
        }
    }

    /// The deepest cached delegation covering `name` (falling back to
    /// the root servers).
    fn best_cut<T: Transport>(&self, net: &T, name: &Name) -> (Name, Vec<IpAddr>) {
        if let Some(shared) = &self.shared {
            return shared
                .with(|c| c.deepest_cut(name, self.now_us))
                .unwrap_or_else(|| (Name::root(), net.root_servers()));
        }
        self.delegation_cache
            .iter()
            .filter(|(cut, _)| name.is_subdomain_of(cut))
            .max_by_key(|(cut, _)| cut.label_count())
            .map(|(cut, servers)| (cut.clone(), servers.clone()))
            .unwrap_or_else(|| (Name::root(), net.root_servers()))
    }

    /// Send one question: servers ordered best-first by the RTT
    /// selector, each tried up to `attempts_per_server` times, with
    /// timeouts demoting a server between passes — the bounded
    /// retry/timeout state machine of one in-flight query.
    fn ask<T: Transport>(
        &mut self,
        net: &mut T,
        servers: &[IpAddr],
        qname: &Name,
        qtype: RType,
    ) -> Result<Message, ResolveError> {
        for attempt in 0..self.config.attempts_per_server.max(1) {
            // re-rank every pass: a timeout in the previous pass moves
            // that server to the back
            let ordered = self.selector.order(servers);
            for server in ordered {
                if self.queries_this_call >= self.config.max_queries {
                    return Err(ResolveError::BudgetExhausted {
                        queries: self.queries_this_call,
                    });
                }
                self.queries_this_call += 1;
                if attempt > 0 {
                    self.stats.retries += 1;
                }
                let id = (self.sent_total as u16).wrapping_mul(31).wrapping_add(7);
                self.sent_total += 1;
                let mut qb = MessageBuilder::query(id, qname.clone(), qtype);
                if self.config.edns_size > 0 {
                    qb = qb.with_edns(self.config.edns_size, self.config.do_bit);
                }
                if self.config.cd_bit {
                    qb = qb.checking_disabled(true);
                }
                let query = qb.build();
                if self.log_enabled {
                    self.log.push(QueryLogEntry {
                        server,
                        qname: qname.clone(),
                        qtype,
                        edns_size: self.config.edns_size,
                        do_bit: self.config.do_bit,
                        cd_bit: self.config.cd_bit,
                    });
                }
                match net.exchange(server, &query) {
                    Exchange::Answer { message, rtt_us } => {
                        self.selector.observe_rtt(server, rtt_us);
                        return Ok(message);
                    }
                    Exchange::Timeout => {
                        self.stats.timeouts += 1;
                        self.selector.observe_timeout(server);
                    }
                }
            }
        }
        Err(ResolveError::Unreachable)
    }
}

/// NOERROR, empty answer, NS records in authority = a referral.
fn is_referral(resp: &Message) -> bool {
    resp.header.rcode == Rcode::NoError
        && resp.answers.is_empty()
        && resp
            .authorities
            .iter()
            .any(|r| matches!(r.rdata, RData::Ns(_)))
        && !resp
            .authorities
            .iter()
            .any(|r| matches!(r.rdata, RData::Soa { .. }))
}

/// Extract (cut, ns hosts, glue addresses, NS TTL) from a referral.
fn parse_referral(resp: &Message) -> (Name, Vec<Name>, Vec<IpAddr>, u32) {
    let mut cut = Name::root();
    let mut hosts = Vec::new();
    let mut ttl = DEFAULT_ANSWER_TTL;
    for r in &resp.authorities {
        if let RData::Ns(host) = &r.rdata {
            cut = r.name.clone();
            hosts.push(host.clone());
            ttl = r.ttl;
        }
    }
    let glue: Vec<IpAddr> = resp
        .additionals
        .iter()
        .filter_map(|r| match &r.rdata {
            RData::A(a) => Some(IpAddr::V4(*a)),
            RData::Aaaa(a) => Some(IpAddr::V6(*a)),
            _ => None,
        })
        .collect();
    (cut, hosts, glue, ttl)
}

/// Minimum TTL over the answer records for `owner` (the value a cache
/// must honor), with a default when none match.
fn answer_ttl(resp: &Message, owner: &Name) -> u32 {
    resp.answers
        .iter()
        .filter(|r| r.name == *owner)
        .map(|r| r.ttl)
        .min()
        .unwrap_or(DEFAULT_ANSWER_TTL)
}

/// The ancestor of `name` with exactly `depth` labels.
fn ancestor_at(name: &Name, depth: usize) -> Name {
    let mut n = name.clone();
    while n.label_count() > depth {
        n = n.parent();
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::{sample_world, Network, ZoneBuilder};

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    #[test]
    fn resolves_through_the_tree() {
        let mut net = sample_world();
        let mut r = IterativeResolver::new(ResolverConfig::default());
        let addrs = r
            .resolve(&mut net, &n("www.example.nl."), RType::A)
            .unwrap();
        assert_eq!(addrs, vec!["192.0.2.80".parse::<IpAddr>().unwrap()]);
        // walked root -> nl -> example.nl
        assert_eq!(r.queries_sent(), 3);
        assert_eq!(r.cached_cuts(), 2, "nl. and example.nl. learned");
    }

    #[test]
    fn cache_short_circuits_the_second_walk() {
        let mut net = sample_world();
        let mut r = IterativeResolver::new(ResolverConfig::default());
        r.resolve(&mut net, &n("www.example.nl."), RType::A)
            .unwrap();
        let before = r.queries_sent();
        // same name: answered from the address cache, zero queries
        r.resolve(&mut net, &n("www.example.nl."), RType::A)
            .unwrap();
        assert_eq!(r.queries_sent(), before);
        // sibling name: starts at the cached example.nl. cut, one query
        let aaaa = r
            .resolve(&mut net, &n("www.example.nl."), RType::Aaaa)
            .unwrap();
        assert_eq!(aaaa, vec!["2001:db8::80".parse::<IpAddr>().unwrap()]);
        assert_eq!(r.queries_sent(), before + 1);
    }

    #[test]
    fn qmin_changes_what_the_tld_sees() {
        // the paper's §4.2.1, as an algorithm-level assertion
        let tld_server: IpAddr = "194.0.28.53".parse().unwrap();

        let mut net = sample_world();
        let mut classic = IterativeResolver::new(ResolverConfig::default());
        classic
            .resolve(&mut net, &n("www.example.nl."), RType::A)
            .unwrap();
        let classic_seen: Vec<(String, RType)> = net
            .queries_at(tld_server)
            .iter()
            .map(|q| (q.qname.to_string(), q.qtype))
            .collect();
        assert_eq!(
            classic_seen,
            vec![("www.example.nl.".to_string(), RType::A)],
            "classic resolver leaks the full qname to the TLD"
        );

        let mut net = sample_world();
        let mut minimizing = IterativeResolver::new(ResolverConfig {
            qmin: true,
            ..Default::default()
        });
        minimizing
            .resolve(&mut net, &n("www.example.nl."), RType::A)
            .unwrap();
        let qmin_seen: Vec<(String, RType)> = net
            .queries_at(tld_server)
            .iter()
            .map(|q| (q.qname.to_string(), q.qtype))
            .collect();
        assert_eq!(
            qmin_seen,
            vec![("example.nl.".to_string(), RType::Ns)],
            "Q-min sends one label below the cut, qtype NS"
        );
    }

    #[test]
    fn qmin_still_resolves_correctly() {
        let mut net = sample_world();
        let mut r = IterativeResolver::new(ResolverConfig {
            qmin: true,
            ..Default::default()
        });
        let addrs = r
            .resolve(&mut net, &n("www.example.nl."), RType::A)
            .unwrap();
        assert_eq!(addrs, vec!["192.0.2.80".parse::<IpAddr>().unwrap()]);
    }

    #[test]
    fn out_of_bailiwick_ns_resolves_via_second_walk() {
        let mut net = sample_world();
        let mut r = IterativeResolver::new(ResolverConfig::default());
        // hosted.nl is served by ns.provider.nz: the resolver must first
        // resolve that host through .nz
        let addrs = r.resolve(&mut net, &n("www.hosted.nl."), RType::A).unwrap();
        assert_eq!(addrs, vec!["203.0.113.81".parse::<IpAddr>().unwrap()]);
        // the .nz TLD server must have been consulted on the way
        assert!(!net.queries_at("202.46.190.10".parse().unwrap()).is_empty());
    }

    #[test]
    fn nxdomain_and_nodata_surface() {
        let mut net = sample_world();
        let mut r = IterativeResolver::new(ResolverConfig::default());
        assert_eq!(
            r.resolve(&mut net, &n("nosuch.example.nl."), RType::A),
            Err(ResolveError::NxDomain)
        );
        assert_eq!(
            r.resolve(&mut net, &n("www.example.nl."), RType::Mx),
            Err(ResolveError::NoData)
        );
    }

    #[test]
    fn cname_is_followed() {
        let mut net = sample_world();
        let mut r = IterativeResolver::new(ResolverConfig::default());
        let addrs = r
            .resolve(&mut net, &n("cdn.example.nl."), RType::A)
            .unwrap();
        assert_eq!(addrs, vec!["192.0.2.80".parse::<IpAddr>().unwrap()]);
    }

    /// Two domains whose NS sets point at each other, with no glue: the
    /// Feb-2020 `.nz` configuration. Resolution must terminate with a
    /// cycle error — and the TLD absorbs the repeated queries.
    fn cyclic_world() -> Network {
        let mut net = Network::new();
        net.add(
            ZoneBuilder::new(".")
                .server("a.root-servers.example.", "198.41.0.4")
                .delegate("nz.", &["ns1.dns.net.nz."])
                .address("ns1.dns.net.nz.", "202.46.190.10"),
        );
        net.add(
            ZoneBuilder::new("nz.")
                .server("ns1.dns.net.nz.", "202.46.190.10")
                // the broken pair: each NS lives under the *other* domain
                .delegate("alpha.nz.", &["ns.beta.nz."])
                .delegate("beta.nz.", &["ns.alpha.nz."]),
        );
        net
    }

    #[test]
    fn cyclic_dependency_detected_not_looped() {
        let mut net = cyclic_world();
        let mut r = IterativeResolver::new(ResolverConfig::default());
        let err = r
            .resolve(&mut net, &n("www.alpha.nz."), RType::A)
            .unwrap_err();
        assert!(
            matches!(err, ResolveError::CyclicDependency { .. }),
            "got {err:?}"
        );
        // bounded work even though the configuration is unresolvable
        assert!(r.queries_sent() <= 64);
    }

    #[test]
    fn cyclic_dependency_hammers_the_tld() {
        // the incident's vantage-point signature: retries multiply A
        // queries at the TLD (Figure 3b's surge)
        let tld: IpAddr = "202.46.190.10".parse().unwrap();
        let mut net = cyclic_world();
        let mut tld_queries = 0usize;
        for _ in 0..50 {
            // caches cannot help: nothing positive is ever learned
            let mut r = IterativeResolver::new(ResolverConfig::default());
            let _ = r.resolve(&mut net, &n("www.alpha.nz."), RType::A);
        }
        tld_queries += net.queries_at(tld).len();
        assert!(
            tld_queries >= 150,
            "repeated failed resolutions amplify at the TLD: {tld_queries}"
        );
        // and the queries are for the in-cycle names (A lookups of NS hosts)
        let ns_lookups = net
            .queries_at(tld)
            .iter()
            .filter(|q| q.qname.to_string().starts_with("ns.") && q.qtype == RType::A)
            .count();
        assert!(ns_lookups >= 100, "{ns_lookups}");
    }

    #[test]
    fn budget_bounds_any_walk() {
        let mut net = cyclic_world();
        let mut r = IterativeResolver::new(ResolverConfig {
            max_queries: 5,
            ..Default::default()
        });
        let err = r
            .resolve(&mut net, &n("www.alpha.nz."), RType::A)
            .unwrap_err();
        assert!(
            matches!(
                err,
                ResolveError::BudgetExhausted { .. } | ResolveError::CyclicDependency { .. }
            ),
            "{err:?}"
        );
        assert!(r.queries_sent() <= 5);
    }

    #[test]
    fn unreachable_server_is_an_error() {
        let mut net = Network::new();
        net.add(
            ZoneBuilder::new(".")
                .server("a.root-servers.example.", "198.41.0.4")
                .delegate("dead.", &["ns.dead."])
                .address("ns.dead.", "10.255.255.1"), // nobody listens
        );
        let mut r = IterativeResolver::new(ResolverConfig::default());
        assert_eq!(
            r.resolve(&mut net, &n("www.dead."), RType::A),
            Err(ResolveError::Unreachable)
        );
        // the retry machine tried the dead server on every pass and
        // counted each timeout
        assert!(r.stats.timeouts >= 2, "timeouts {}", r.stats.timeouts);
        assert!(r.stats.retries >= 1, "retries {}", r.stats.retries);
    }

    #[test]
    fn qmin_walk_is_deeper_but_bounded() {
        // a 5-label name: Q-min sends more, smaller queries
        let mut net = sample_world();
        let mut classic = IterativeResolver::new(ResolverConfig::default());
        let _ = classic.resolve(&mut net, &n("a.b.www.example.nl."), RType::A);
        let classic_count = classic.queries_sent();
        let mut net = sample_world();
        let mut minimizing = IterativeResolver::new(ResolverConfig {
            qmin: true,
            ..Default::default()
        });
        let _ = minimizing.resolve(&mut net, &n("a.b.www.example.nl."), RType::A);
        assert!(minimizing.queries_sent() >= classic_count);
        assert!(minimizing.queries_sent() <= classic_count + 4);
    }
}

#[cfg(test)]
mod validate_tests {
    use super::*;
    use crate::hierarchy::{Network, ZoneBuilder};

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    /// A signed world: root signs, delegates securely to zz., which
    /// securely delegates two leaf zones (and one insecurely).
    fn signed_world() -> Network {
        let mut net = Network::new();
        net.add(
            ZoneBuilder::new(".")
                .signed()
                .server("a.root.zz.", "198.41.0.4")
                .delegate("zz.", &["ns1.tld.zz."])
                .secure_delegation("zz.")
                .address("ns1.tld.zz.", "203.0.113.1"),
        );
        let mut tld = ZoneBuilder::new("zz.")
            .signed()
            .server("ns1.tld.zz.", "203.0.113.1");
        for (i, secure) in [(0, true), (1, true), (2, false)] {
            let me = format!("d{i}.zz.");
            let ns = format!("ns.d{i}.zz.");
            let addr = format!("198.51.100.{}", i + 1);
            tld = tld.delegate(&me, &[&ns]).address(&ns, &addr);
            if secure {
                tld = tld.secure_delegation(&me);
            }
            let mut leaf = ZoneBuilder::new(&me)
                .server(&ns, &addr)
                .address(&format!("www.{me}"), &format!("192.0.2.{}", i + 1));
            if secure {
                leaf = leaf.signed();
            }
            net.add(leaf);
        }
        net.add(tld);
        net
    }

    #[test]
    fn validating_resolution_succeeds_on_signed_chain() {
        let mut net = signed_world();
        let mut r = IterativeResolver::new(ResolverConfig {
            validate: true,
            ..Default::default()
        });
        let addrs = r.resolve(&mut net, &n("www.d0.zz."), RType::A).unwrap();
        assert_eq!(addrs, vec!["192.0.2.1".parse::<IpAddr>().unwrap()]);
        // the walk contains DS queries at parents and DNSKEYs at children
        let ds = r.log.iter().filter(|e| e.qtype == RType::Ds).count();
        let dnskey = r.log.iter().filter(|e| e.qtype == RType::Dnskey).count();
        assert_eq!(ds, 2, "zz. and d0.zz.");
        assert_eq!(dnskey, 2);
    }

    #[test]
    fn ds_exceeds_dnskey_across_many_delegations() {
        // the Figure 2d signature: one DNSKEY per zone, one DS per
        // delegation — resolve both secure leaves plus a sibling name
        let mut net = signed_world();
        let mut r = IterativeResolver::new(ResolverConfig {
            validate: true,
            ..Default::default()
        });
        r.resolve(&mut net, &n("www.d0.zz."), RType::A).unwrap();
        r.resolve(&mut net, &n("www.d1.zz."), RType::A).unwrap();
        let ds = r.log.iter().filter(|e| e.qtype == RType::Ds).count();
        let dnskey_zz = r
            .log
            .iter()
            .filter(|e| e.qtype == RType::Dnskey && e.qname == n("zz."))
            .count();
        assert_eq!(dnskey_zz, 1, "DNSKEY for the TLD fetched exactly once");
        assert_eq!(ds, 3, "one DS per distinct delegation (zz., d0, d1)");
    }

    #[test]
    fn insecure_delegation_skips_dnskey() {
        let mut net = signed_world();
        let mut r = IterativeResolver::new(ResolverConfig {
            validate: true,
            ..Default::default()
        });
        let addrs = r.resolve(&mut net, &n("www.d2.zz."), RType::A).unwrap();
        assert_eq!(addrs, vec!["192.0.2.3".parse::<IpAddr>().unwrap()]);
        // DS asked for d2.zz. (answer: NODATA) but no DNSKEY at d2.zz.
        assert!(r
            .log
            .iter()
            .any(|e| e.qtype == RType::Ds && e.qname == n("d2.zz.")));
        assert!(!r
            .log
            .iter()
            .any(|e| e.qtype == RType::Dnskey && e.qname == n("d2.zz.")));
    }

    #[test]
    fn bogus_chain_is_rejected() {
        // parent publishes DS, child is NOT signed (no DNSKEY): bogus
        let mut net = Network::new();
        net.add(
            ZoneBuilder::new(".")
                .server("a.root.zz.", "198.41.0.4")
                .delegate("zz.", &["ns1.tld.zz."])
                .secure_delegation("zz.")
                .address("ns1.tld.zz.", "203.0.113.1"),
        );
        net.add(
            ZoneBuilder::new("zz.") // not .signed()
                .server("ns1.tld.zz.", "203.0.113.1")
                .delegate("d0.zz.", &["ns.d0.zz."])
                .address("ns.d0.zz.", "198.51.100.1"),
        );
        let mut r = IterativeResolver::new(ResolverConfig {
            validate: true,
            ..Default::default()
        });
        let err = r.resolve(&mut net, &n("www.d0.zz."), RType::A).unwrap_err();
        assert_eq!(err, ResolveError::Bogus { zone: n("zz.") });
    }

    #[test]
    fn non_validating_resolver_ignores_dnssec() {
        let mut net = signed_world();
        let mut r = IterativeResolver::new(ResolverConfig::default());
        r.resolve(&mut net, &n("www.d0.zz."), RType::A).unwrap();
        assert!(!r.log.iter().any(|e| e.qtype == RType::Ds));
        assert!(!r.log.iter().any(|e| e.qtype == RType::Dnskey));
    }
}

/// The ISSUE's CD/AD satellite: EDNS size, DO and CD must ride on
/// *every* hop of the walk — referral probes, Q-min probes, terminal
/// queries, DS/DNSKEY fetches, glueless-NS re-walks and CNAME chases —
/// not just the first query. One test per hop type.
#[cfg(test)]
mod flag_tests {
    use super::*;
    use crate::hierarchy::sample_world;

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn flagged() -> ResolverConfig {
        ResolverConfig {
            qmin: true,
            validate: true,
            edns_size: 1232,
            do_bit: true,
            cd_bit: true,
            ..Default::default()
        }
    }

    fn assert_flags(e: &QueryLogEntry) {
        assert_eq!(e.edns_size, 1232, "hop {}/{:?} lost EDNS", e.qname, e.qtype);
        assert!(e.do_bit, "hop {}/{:?} lost DO", e.qname, e.qtype);
        assert!(e.cd_bit, "hop {}/{:?} lost CD", e.qname, e.qtype);
    }

    #[test]
    fn referral_hops_carry_flags() {
        let mut net = super::validate_tests_world();
        let mut r = IterativeResolver::new(flagged());
        r.resolve(&mut net, &n("www.d0.zz."), RType::A).unwrap();
        // the walk's referral probes (root and TLD hops) are NS-typed
        // under Q-min; every one must carry the flags
        let probes: Vec<&QueryLogEntry> = r.log.iter().filter(|e| e.qtype == RType::Ns).collect();
        assert!(!probes.is_empty(), "no referral/Q-min probe hops logged");
        probes.iter().for_each(|e| assert_flags(e));
    }

    #[test]
    fn terminal_query_carries_flags() {
        let mut net = super::validate_tests_world();
        let mut r = IterativeResolver::new(flagged());
        r.resolve(&mut net, &n("www.d0.zz."), RType::A).unwrap();
        let terminal = r
            .log
            .iter()
            .find(|e| e.qname == n("www.d0.zz.") && e.qtype == RType::A)
            .expect("terminal hop logged");
        assert_flags(terminal);
    }

    #[test]
    fn ds_hop_carries_flags() {
        let mut net = super::validate_tests_world();
        let mut r = IterativeResolver::new(flagged());
        r.resolve(&mut net, &n("www.d0.zz."), RType::A).unwrap();
        let ds = r
            .log
            .iter()
            .find(|e| e.qtype == RType::Ds)
            .expect("DS hop logged");
        assert_flags(ds);
    }

    #[test]
    fn dnskey_hop_carries_flags() {
        let mut net = super::validate_tests_world();
        let mut r = IterativeResolver::new(flagged());
        r.resolve(&mut net, &n("www.d0.zz."), RType::A).unwrap();
        let dnskey = r
            .log
            .iter()
            .find(|e| e.qtype == RType::Dnskey)
            .expect("DNSKEY hop logged");
        assert_flags(dnskey);
    }

    #[test]
    fn glueless_ns_rewalk_carries_flags() {
        // www.hosted.nl is served by an out-of-bailiwick NS: the
        // resolver re-walks for ns.provider.nz. mid-resolution
        let mut net = sample_world();
        let mut r = IterativeResolver::new(ResolverConfig {
            edns_size: 1232,
            do_bit: true,
            cd_bit: true,
            ..Default::default()
        });
        r.resolve(&mut net, &n("www.hosted.nl."), RType::A).unwrap();
        let rewalk: Vec<&QueryLogEntry> = r
            .log
            .iter()
            .filter(|e| e.qname == n("ns.provider.nz."))
            .collect();
        assert!(!rewalk.is_empty(), "no glueless re-walk hops logged");
        for e in rewalk {
            assert_eq!(e.edns_size, 1232);
            assert!(e.do_bit && e.cd_bit, "glueless hop lost flags");
        }
    }

    #[test]
    fn cname_chase_carries_flags() {
        let mut net = sample_world();
        let mut r = IterativeResolver::new(ResolverConfig {
            edns_size: 1232,
            do_bit: true,
            cd_bit: true,
            ..Default::default()
        });
        r.resolve(&mut net, &n("cdn.example.nl."), RType::A)
            .unwrap();
        assert!(!r.log.is_empty());
        for e in &r.log {
            assert_eq!(e.edns_size, 1232, "CNAME-chase hop {} lost EDNS", e.qname);
            assert!(
                e.do_bit && e.cd_bit,
                "CNAME-chase hop {} lost flags",
                e.qname
            );
        }
    }

    #[test]
    fn every_hop_of_a_validating_qmin_walk_is_flagged() {
        let mut net = super::validate_tests_world();
        let mut r = IterativeResolver::new(flagged());
        r.resolve(&mut net, &n("www.d0.zz."), RType::A).unwrap();
        r.resolve(&mut net, &n("www.d1.zz."), RType::A).unwrap();
        assert!(r.log.len() >= 6, "expected a multi-hop walk");
        r.log.iter().for_each(assert_flags);
    }
}

#[cfg(test)]
mod fleet_cache_tests {
    use super::*;
    use crate::cache::SharedCache;
    use crate::hierarchy::sample_world;

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    #[test]
    fn shared_cache_absorbs_repeat_lookups_across_resolvers() {
        let mut net = sample_world();
        let shared = SharedCache::with_capacity(1024);
        let mut a = IterativeResolver::new(ResolverConfig::default());
        let mut b = IterativeResolver::new(ResolverConfig::default());
        a.attach_shared_cache(shared.clone());
        b.attach_shared_cache(shared.clone());

        a.resolve(&mut net, &n("www.example.nl."), RType::A)
            .unwrap();
        let sent_before = b.queries_sent();
        // resolver B never walked, but the fleet cache answers
        b.resolve(&mut net, &n("www.example.nl."), RType::A)
            .unwrap();
        assert_eq!(b.queries_sent(), sent_before, "fleet cache hit");
        assert_eq!(b.stats.cache_hits, 1);
        assert!(shared.hits() >= 1);
    }

    #[test]
    fn shared_entries_decay_by_record_ttl() {
        let mut net = sample_world();
        let shared = SharedCache::with_capacity(1024);
        let mut r = IterativeResolver::new(ResolverConfig::default());
        r.attach_shared_cache(shared.clone());

        r.set_now_micros(0);
        r.resolve(&mut net, &n("www.example.nl."), RType::A)
            .unwrap();
        let walked = r.queries_sent();

        // within the answer TTL (300s): served from the shared cache
        r.set_now_micros(200_000_000);
        r.resolve(&mut net, &n("www.example.nl."), RType::A)
            .unwrap();
        assert_eq!(r.queries_sent(), walked);

        // past the answer TTL but within the 3600s delegation TTL: the
        // resolver re-queries the leaf zone only, not the whole chain
        r.set_now_micros(400_000_000);
        r.resolve(&mut net, &n("www.example.nl."), RType::A)
            .unwrap();
        assert_eq!(r.queries_sent(), walked + 1, "one re-query at the leaf cut");

        // past every TTL: full re-walk from the root
        r.set_now_micros(4_000_000_000);
        r.resolve(&mut net, &n("www.example.nl."), RType::A)
            .unwrap();
        assert_eq!(r.queries_sent(), walked + 1 + 3, "cold re-walk");
    }

    #[test]
    fn negative_answers_are_cached_in_the_fleet_cache() {
        let mut net = sample_world();
        let shared = SharedCache::with_capacity(1024);
        let mut r = IterativeResolver::new(ResolverConfig::default());
        r.attach_shared_cache(shared.clone());
        assert_eq!(
            r.resolve(&mut net, &n("nosuch.example.nl."), RType::A),
            Err(ResolveError::NxDomain)
        );
        let sent = r.queries_sent();
        // the denial is served from cache within the negative TTL
        assert_eq!(
            r.resolve(&mut net, &n("nosuch.example.nl."), RType::A),
            Err(ResolveError::NxDomain)
        );
        assert_eq!(r.queries_sent(), sent, "negative cache hit");
    }

    #[test]
    fn log_can_be_disabled_without_breaking_budget() {
        let mut net = sample_world();
        let mut r = IterativeResolver::new(ResolverConfig::default());
        r.set_log_enabled(false);
        r.resolve(&mut net, &n("www.example.nl."), RType::A)
            .unwrap();
        assert!(r.log.is_empty());
        assert_eq!(r.queries_sent(), 3, "sent counter independent of log");
    }
}

/// The signed test world, shared by the validation and flag tests.
#[cfg(test)]
fn validate_tests_world() -> crate::hierarchy::Network {
    use crate::hierarchy::{Network, ZoneBuilder};
    let mut net = Network::new();
    net.add(
        ZoneBuilder::new(".")
            .signed()
            .server("a.root.zz.", "198.41.0.4")
            .delegate("zz.", &["ns1.tld.zz."])
            .secure_delegation("zz.")
            .address("ns1.tld.zz.", "203.0.113.1"),
    );
    let mut tld = ZoneBuilder::new("zz.")
        .signed()
        .server("ns1.tld.zz.", "203.0.113.1");
    for (i, secure) in [(0, true), (1, true), (2, false)] {
        let me = format!("d{i}.zz.");
        let ns = format!("ns.d{i}.zz.");
        let addr = format!("198.51.100.{}", i + 1);
        tld = tld.delegate(&me, &[&ns]).address(&ns, &addr);
        if secure {
            tld = tld.secure_delegation(&me);
        }
        let mut leaf = ZoneBuilder::new(&me)
            .server(&ns, &addr)
            .address(&format!("www.{me}"), &format!("192.0.2.{}", i + 1));
        if secure {
            leaf = leaf.signed();
        }
        net.add(leaf);
    }
    net.add(tld);
    net
}

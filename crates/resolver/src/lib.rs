//! An iterative DNS resolver over a simulated authoritative hierarchy.
//!
//! The rest of the workspace treats resolvers *statistically* (the
//! calibrated fleets of `simnet`); this crate implements one
//! *algorithmically*, because two of the paper's findings are about
//! resolver algorithms:
//!
//! - **QNAME minimization** (§4.2.1, RFC 7816): what a ccTLD sees
//!   changes from `a.b.example.nl A` to `example.nl NS` when the
//!   resolver walks zone cuts minimally. [`IterativeResolver`] exposes
//!   the exact per-server query log, so the before/after is the
//!   algorithm's output, not a modeled distribution.
//! - **Cyclic NS dependencies** (§4.2.1's Feb-2020 `.nz` incident,
//!   Pappas et al. 2004): when two domains' NS sets point at each other
//!   with no glue, resolution cannot bottom out; resolvers burn their
//!   query budget at the parent and retry — millions of extra A/AAAA
//!   queries at the TLD. The resolver reproduces exactly that
//!   signature.
//!
//! [`hierarchy`] provides the simulated root → TLD → leaf server tree
//! the resolver walks; it answers real wire-format questions.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod hierarchy;
pub mod iterative;
pub mod selector;
pub mod transport;

pub use cache::{FleetCache, Negative, SharedCache};
pub use hierarchy::{Network, ZoneBuilder};
pub use iterative::{
    IterativeResolver, QueryLogEntry, ResolveError, ResolverConfig, ResolverStats,
};
pub use selector::{HostSelector, HostStats};
pub use transport::{Exchange, Transport};

//! The fleet resolver cache: positive answers, negative answers, and
//! delegations, each entry carrying its own `(insertion_time, ttl)` so
//! expiry is per-record — never a wall-clock bucket.
//!
//! One instance is shared by every resolver of a fleet (the paper's
//! observation that a provider's frontend fans queries into a common
//! cache layer), behind [`SharedCache`]'s mutex. All times are
//! microseconds on the simulation clock; live mode feeds wall-clock
//! micros instead — the cache only ever compares durations.

use dns_wire::name::Name;
use dns_wire::types::RType;
use std::collections::HashMap;
use std::net::IpAddr;
use std::sync::{Arc, Mutex};

/// What a cached negative answer asserts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Negative {
    /// The name does not exist (RFC 2308 type 1/2).
    NxDomain,
    /// The name exists but has no records of this type (type 3).
    NoData,
}

/// One cache entry: the value plus its insertion time and TTL. Expiry
/// is `inserted_us + ttl_us`, computed per lookup — entries inserted
/// just before a wall-hour tick survive into the next hour for their
/// full remaining TTL.
#[derive(Debug, Clone)]
struct Entry<T> {
    value: T,
    inserted_us: u64,
    ttl_us: u64,
}

impl<T> Entry<T> {
    fn live_at(&self, now_us: u64) -> bool {
        now_us < self.inserted_us.saturating_add(self.ttl_us)
    }

    fn expiry(&self) -> u64 {
        self.inserted_us.saturating_add(self.ttl_us)
    }
}

/// The per-fleet resolver cache. Not thread-safe by itself — wrap in
/// [`SharedCache`] to share across concurrent resolvers.
#[derive(Debug, Default)]
pub struct FleetCache {
    /// (qname, qtype) -> addresses.
    addresses: HashMap<(Name, RType), Entry<Vec<IpAddr>>>,
    /// (qname, qtype) -> cached denial.
    negatives: HashMap<(Name, RType), Entry<Negative>>,
    /// zone cut -> authoritative server addresses.
    delegations: HashMap<Name, Entry<Vec<IpAddr>>>,
    capacity: usize,
    hits: u64,
    misses: u64,
}

/// Default per-map entry budget: sized for a provider-scale fleet at
/// simulation scale, small enough that eviction paths actually run.
pub const DEFAULT_CAPACITY: usize = 65_536;

impl FleetCache {
    /// An empty cache holding up to `capacity` entries per map.
    pub fn with_capacity(capacity: usize) -> FleetCache {
        FleetCache {
            capacity: capacity.max(1),
            ..FleetCache::default()
        }
    }

    /// Cached addresses for `(qname, qtype)`, honoring per-entry TTL.
    pub fn addresses(&mut self, qname: &Name, qtype: RType, now_us: u64) -> Option<Vec<IpAddr>> {
        let key = (qname.clone(), qtype);
        match self.addresses.get(&key) {
            Some(e) if e.live_at(now_us) => {
                self.hits += 1;
                Some(e.value.clone())
            }
            Some(_) => {
                self.addresses.remove(&key);
                self.misses += 1;
                None
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Cache a positive answer.
    pub fn put_addresses(
        &mut self,
        qname: &Name,
        qtype: RType,
        addrs: Vec<IpAddr>,
        now_us: u64,
        ttl_secs: u32,
    ) {
        if ttl_secs == 0 {
            return;
        }
        evict_if_full(&mut self.addresses, self.capacity);
        self.addresses.insert(
            (qname.clone(), qtype),
            Entry {
                value: addrs,
                inserted_us: now_us,
                ttl_us: u64::from(ttl_secs) * 1_000_000,
            },
        );
    }

    /// Cached denial for `(qname, qtype)`, if still live.
    pub fn negative(&mut self, qname: &Name, qtype: RType, now_us: u64) -> Option<Negative> {
        let key = (qname.clone(), qtype);
        match self.negatives.get(&key) {
            Some(e) if e.live_at(now_us) => {
                self.hits += 1;
                Some(e.value)
            }
            Some(_) => {
                self.negatives.remove(&key);
                None
            }
            None => None,
        }
    }

    /// Cache a denial under the zone's negative TTL.
    pub fn put_negative(
        &mut self,
        qname: &Name,
        qtype: RType,
        kind: Negative,
        now_us: u64,
        ttl_secs: u32,
    ) {
        if ttl_secs == 0 {
            return;
        }
        evict_if_full(&mut self.negatives, self.capacity);
        self.negatives.insert(
            (qname.clone(), qtype),
            Entry {
                value: kind,
                inserted_us: now_us,
                ttl_us: u64::from(ttl_secs) * 1_000_000,
            },
        );
    }

    /// The deepest live delegation covering `name`.
    pub fn deepest_cut(&self, name: &Name, now_us: u64) -> Option<(Name, Vec<IpAddr>)> {
        self.delegations
            .iter()
            .filter(|(cut, e)| e.live_at(now_us) && name.is_subdomain_of(cut))
            .max_by_key(|(cut, _)| cut.label_count())
            .map(|(cut, e)| (cut.clone(), e.value.clone()))
    }

    /// Cache a learned zone cut.
    pub fn put_delegation(&mut self, cut: &Name, servers: Vec<IpAddr>, now_us: u64, ttl_secs: u32) {
        if ttl_secs == 0 {
            return;
        }
        evict_if_full(&mut self.delegations, self.capacity);
        self.delegations.insert(
            cut.clone(),
            Entry {
                value: servers,
                inserted_us: now_us,
                ttl_us: u64::from(ttl_secs) * 1_000_000,
            },
        );
    }

    /// Lookup hits since construction (positive + negative).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Positive-lookup misses since construction.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit fraction of positive lookups (0 when none yet).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Total live-or-stale entries across the three maps.
    pub fn len(&self) -> usize {
        self.addresses.len() + self.negatives.len() + self.delegations.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Evict the earliest-expiring entry once a map is at capacity. Ties
/// (same expiry micros) are broken by the smaller key hash so eviction
/// stays deterministic across runs regardless of map iteration order.
fn evict_if_full<K: Clone + std::hash::Hash + Eq, T>(
    map: &mut HashMap<K, Entry<T>>,
    capacity: usize,
) {
    if map.len() < capacity {
        return;
    }
    if let Some(victim) = map
        .iter()
        .map(|(k, e)| (e.expiry(), stable_hash(k), k.clone()))
        .min_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)))
        .map(|(_, _, k)| k)
    {
        map.remove(&victim);
    }
}

fn stable_hash<K: std::hash::Hash>(k: &K) -> u64 {
    use std::hash::Hasher;
    let mut h = std::collections::hash_map::DefaultHasher::new();
    k.hash(&mut h);
    h.finish()
}

/// A cheaply-clonable handle to a fleet-shared [`FleetCache`].
#[derive(Debug, Clone, Default)]
pub struct SharedCache(Arc<Mutex<FleetCache>>);

impl SharedCache {
    /// A fresh shared cache with the given per-map capacity.
    pub fn with_capacity(capacity: usize) -> SharedCache {
        SharedCache(Arc::new(Mutex::new(FleetCache::with_capacity(capacity))))
    }

    /// Run `f` under the cache lock.
    pub fn with<R>(&self, f: impl FnOnce(&mut FleetCache) -> R) -> R {
        f(&mut self.0.lock().expect("fleet cache lock"))
    }

    /// Lookup hits so far.
    pub fn hits(&self) -> u64 {
        self.with(|c| c.hits())
    }

    /// Positive-lookup misses so far.
    pub fn misses(&self) -> u64 {
        self.with(|c| c.misses())
    }

    /// Hit fraction of lookups so far.
    pub fn hit_ratio(&self) -> f64 {
        self.with(|c| c.hit_ratio())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn addr(s: &str) -> IpAddr {
        s.parse().unwrap()
    }

    const HOUR_US: u64 = 3_600_000_000;

    #[test]
    fn expiry_is_insertion_plus_ttl_not_wall_bucket() {
        let mut c = FleetCache::with_capacity(16);
        // inserted one second before a wall-hour boundary, TTL 120s:
        // must survive well past the boundary and die at insertion+120s
        let t0 = HOUR_US - 1_000_000;
        c.put_addresses(&n("a.nl."), RType::A, vec![addr("192.0.2.1")], t0, 120);
        assert!(c.addresses(&n("a.nl."), RType::A, HOUR_US + 1).is_some());
        assert!(c
            .addresses(&n("a.nl."), RType::A, t0 + 119_000_000)
            .is_some());
        assert!(c
            .addresses(&n("a.nl."), RType::A, t0 + 120_000_000)
            .is_none());
    }

    #[test]
    fn negative_entries_expire_per_record_too() {
        let mut c = FleetCache::with_capacity(16);
        c.put_negative(&n("gone.nl."), RType::A, Negative::NxDomain, 0, 900);
        assert_eq!(
            c.negative(&n("gone.nl."), RType::A, 899_999_999),
            Some(Negative::NxDomain)
        );
        assert_eq!(c.negative(&n("gone.nl."), RType::A, 900_000_000), None);
    }

    #[test]
    fn deepest_live_cut_wins() {
        let mut c = FleetCache::with_capacity(16);
        c.put_delegation(&n("nl."), vec![addr("194.0.28.53")], 0, 3600);
        c.put_delegation(&n("x.nl."), vec![addr("192.0.2.10")], 0, 60);
        let (cut, _) = c.deepest_cut(&n("www.x.nl."), 0).unwrap();
        assert_eq!(cut, n("x.nl."));
        // after the child cut expires, the TLD cut covers again
        let (cut, _) = c.deepest_cut(&n("www.x.nl."), 61_000_000).unwrap();
        assert_eq!(cut, n("nl."));
    }

    #[test]
    fn capacity_evicts_earliest_expiry() {
        let mut c = FleetCache::with_capacity(2);
        c.put_addresses(&n("a.nl."), RType::A, vec![addr("192.0.2.1")], 0, 10);
        c.put_addresses(&n("b.nl."), RType::A, vec![addr("192.0.2.2")], 0, 1000);
        c.put_addresses(&n("c.nl."), RType::A, vec![addr("192.0.2.3")], 0, 500);
        assert!(c.addresses(&n("a.nl."), RType::A, 1).is_none(), "evicted");
        assert!(c.addresses(&n("b.nl."), RType::A, 1).is_some());
        assert!(c.addresses(&n("c.nl."), RType::A, 1).is_some());
    }

    #[test]
    fn shared_handle_counts_hits() {
        let shared = SharedCache::with_capacity(16);
        shared.with(|c| c.put_addresses(&n("a.nl."), RType::A, vec![addr("192.0.2.1")], 0, 60));
        let hit = shared.with(|c| c.addresses(&n("a.nl."), RType::A, 1).is_some());
        assert!(hit);
        assert_eq!(shared.hits(), 1);
        assert!(shared.hit_ratio() > 0.0);
    }
}

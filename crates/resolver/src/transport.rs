//! The transport seam: how a resolver exchanges messages with servers.
//!
//! [`crate::iterative::IterativeResolver`] is generic over this trait,
//! so the same walk/cache/retry logic runs against an in-process zone
//! world (the test [`Network`], simnet's `ZoneModel` answerer) or real
//! UDP/TCP sockets toward `authd` in live mode. The transport owns
//! everything below the message layer — timeouts, truncation + TCP
//! fallback, capture taps — and hands the resolver either a complete
//! response with its measured round-trip time or a timeout.

use crate::hierarchy::Network;
use dns_wire::message::Message;
use std::net::IpAddr;

/// Outcome of one query/response exchange with a server.
#[derive(Debug, Clone)]
pub enum Exchange {
    /// The server answered.
    Answer {
        /// The (reassembled, post-TCP-fallback) response message.
        message: Message,
        /// Measured (or modeled) round-trip time, microseconds; feeds
        /// the resolver's per-host RTT selector.
        rtt_us: u32,
    },
    /// No response within the transport's deadline: the resolver's
    /// retry state machine takes over (next attempt / next server).
    Timeout,
}

/// A pluggable resolver transport.
pub trait Transport {
    /// Exchange `query` with `server`, blocking until a response
    /// arrives or the transport's deadline passes.
    fn exchange(&mut self, server: IpAddr, query: &Message) -> Exchange;

    /// The root-server addresses to start a cold walk from (the
    /// priming hints a real resolver ships with).
    fn root_servers(&self) -> Vec<IpAddr>;
}

impl Transport for Network {
    fn exchange(&mut self, server: IpAddr, query: &Message) -> Exchange {
        match self.query(server, query) {
            Some(message) => Exchange::Answer { message, rtt_us: 0 },
            None => Exchange::Timeout,
        }
    }

    fn root_servers(&self) -> Vec<IpAddr> {
        Network::root_servers(self)
    }
}

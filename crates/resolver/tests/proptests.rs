//! Property tests: over arbitrary (including pathological) delegation
//! graphs, resolution always terminates within its budget, never
//! panics, and Q-min never changes the *outcome* of a resolution —
//! only what intermediate servers see.

use dns_wire::name::Name;
use dns_wire::types::RType;
use proptest::prelude::*;
use resolver::hierarchy::{Network, ZoneBuilder};
use resolver::{IterativeResolver, ResolveError, ResolverConfig};

/// Build a random world: a root, one TLD, and `n` leaf domains whose NS
/// hosts point at a random other domain (possibly forming cycles) or at
/// themselves with proper glue.
fn random_world(edges: &[u8], glued: &[bool]) -> (Network, Vec<Name>) {
    let n = edges.len();
    let mut net = Network::new();
    let mut tld = ZoneBuilder::new("zz.").server("ns1.tld.zz.", "203.0.113.1");
    let mut names = Vec::new();
    for i in 0..n {
        let me = format!("d{i}.zz.");
        names.push(me.parse().unwrap());
        let target = edges[i] as usize % n;
        if glued[i] {
            // healthy: self-hosted NS with glue, plus a leaf zone
            let ns = format!("ns.d{i}.zz.");
            let addr = format!("198.51.{}.{}", i / 250 + 1, i % 250 + 1);
            tld = tld.delegate(&me, &[&ns]).address(&ns, &addr);
            net.add(
                ZoneBuilder::new(&me)
                    .server(&ns, &addr)
                    .address(&format!("www.{me}"), &format!("192.0.2.{}", i % 250 + 1)),
            );
        } else {
            // fragile: NS hosted under another domain, no glue
            let ns = format!("ns.d{target}.zz.");
            tld = tld.delegate(&me, &[&ns]);
        }
    }
    net.add(
        ZoneBuilder::new(".")
            .server("a.root.zz.", "198.41.0.4")
            .delegate("zz.", &["ns1.tld.zz."])
            .address("ns1.tld.zz.", "203.0.113.1"),
    );
    net.add(tld);
    (net, names)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any world, any target, both resolver modes: terminate within the
    /// budget with a typed outcome; glued domains always resolve.
    #[test]
    fn always_terminates(
        edges in prop::collection::vec(any::<u8>(), 1..12),
        glued in prop::collection::vec(any::<bool>(), 12),
        qmin in any::<bool>(),
        pick in any::<u8>(),
    ) {
        let n = edges.len();
        let glued = &glued[..n];
        let (mut net, names) = random_world(&edges, glued);
        let mut r = IterativeResolver::new(ResolverConfig {
            qmin,
            max_queries: 48,
            ..Default::default()
        });
        let i = pick as usize % n;
        let www: Name = format!("www.d{i}.zz.").parse().unwrap();
        let result = r.resolve(&mut net, &www, RType::A);
        prop_assert!(r.queries_sent() <= 48, "budget respected");
        if glued[i] {
            prop_assert!(
                result.is_ok(),
                "glued domain must resolve: {result:?} (www.d{i})"
            );
        } else {
            prop_assert!(result.is_err(), "unglued chains end in an error");
            // the error is typed, not a panic or a hang
            let typed = matches!(
                result.unwrap_err(),
                ResolveError::CyclicDependency { .. }
                    | ResolveError::BudgetExhausted { .. }
                    | ResolveError::Unreachable
                    | ResolveError::NxDomain
                    | ResolveError::NoData
            );
            prop_assert!(typed);
        }
        let _ = names;
    }

    /// Q-min and classic resolution agree on every outcome over healthy
    /// worlds — minimization is observably different only to servers.
    #[test]
    fn qmin_preserves_outcomes(
        count in 1usize..8,
        pick in any::<u8>(),
    ) {
        let edges = vec![0u8; count];
        let glued = vec![true; count];
        let i = pick as usize % count;
        let www: Name = format!("www.d{i}.zz.").parse().unwrap();

        let (mut net_a, _) = random_world(&edges, &glued);
        let mut classic = IterativeResolver::new(ResolverConfig::default());
        let a = classic.resolve(&mut net_a, &www, RType::A);

        let (mut net_b, _) = random_world(&edges, &glued);
        let mut minimizing =
            IterativeResolver::new(ResolverConfig { qmin: true, ..Default::default() });
        let b = minimizing.resolve(&mut net_b, &www, RType::A);

        prop_assert_eq!(a, b);
        // and the TLD saw full qnames only from the classic resolver
        let tld: std::net::IpAddr = "203.0.113.1".parse().unwrap();
        let classic_full = net_a
            .queries_at(tld)
            .iter()
            .any(|q| q.qname.label_count() == 3);
        let qmin_full = net_b
            .queries_at(tld)
            .iter()
            .any(|q| q.qname.label_count() == 3);
        prop_assert!(classic_full, "classic leaks www.*");
        prop_assert!(!qmin_full, "q-min never sends 3 labels to the TLD");
    }
}

//! Sharded generation is a pure parallelization: for any seed and any
//! worker count, the capture byte stream is identical to the
//! single-threaded run. Slices are fixed hourly slots seeded from the
//! dataset seed, so determinism is structural — this property test
//! pins it against regressions.

use netbase::capture::CaptureWriter;
use proptest::prelude::*;
use simnet::engine::Engine;
use simnet::profile::Vantage;
use simnet::scenario::{dataset, Scale};

fn capture_bytes(seed: u64, shards: usize) -> (Vec<u8>, u64) {
    let engine = Engine::new(dataset(Vantage::Nz, 2018), Scale::tiny(), seed);
    let mut buf = Vec::new();
    let stats = {
        let mut writer = CaptureWriter::new(&mut buf).unwrap();
        let stats = engine.generate_sharded(&mut writer, shards).unwrap();
        writer.finish().unwrap();
        stats
    };
    (buf, stats.queries)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// N worker threads produce byte-identical captures to one.
    #[test]
    fn sharded_capture_is_byte_identical(seed in 0u64..10_000, shards in 2usize..=8) {
        let (one, q1) = capture_bytes(seed, 1);
        let (many, qn) = capture_bytes(seed, shards);
        prop_assert_eq!(q1, qn);
        prop_assert!(q1 > 0, "generator produced no queries");
        prop_assert_eq!(one, many, "shards={} diverged from single-threaded", shards);
    }
}

/// The headline case from the issue, pinned as a plain test so it runs
/// even when the property sampler picks other shard counts.
#[test]
fn one_equals_eight() {
    let (one, _) = capture_bytes(42, 1);
    let (eight, _) = capture_bytes(42, 8);
    assert_eq!(one, eight);
}

//! The traffic-generation engine: drives fleets against the
//! authoritative model hour by hour, writing `.dnscap` records.
//!
//! Volumes are exact: each fleet's emitted query count equals its
//! `traffic_share` of the scaled dataset total (largest-remainder
//! apportioning over hourly slots with a diurnal/weekly load shape).
//! Demand above the emitted count is absorbed by resolver caches, just
//! as real vantage points only see the cache-miss shadow of user demand.

use crate::auth::{Answer, Authoritative};
use crate::cache::{CacheKey, TtlCache};
use crate::fleet::{sample_dist, splitmix, Fleet, Resolver};
use crate::profile::FleetSpec;
use crate::ptr::PtrDb;
use crate::rrl::{RateLimiter, ResponseClass, RrlAction};
use crate::scenario::{DatasetSpec, Incident, Scale};
use asdb::synth::{InternetPlan, PlanConfig};
use dns_wire::builder::MessageBuilder;
use dns_wire::name::Name;
use dns_wire::types::RType;
use netbase::capture::{CaptureRecord, CaptureWriter, Direction, RecordSink};
use netbase::flow::{FlowKey, IpVersion, Transport};
use netbase::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::io::Write;
use std::net::IpAddr;
use zonedb::junk::JunkGenerator;
use zonedb::popularity::ZipfSampler;
use zonedb::zone::ZoneModel;

/// Per-resolver cache capacity (entries).
const CACHE_CAP: usize = 4096;
/// Softmax temperature for server preference, microseconds.
const SERVER_TAU_US: f64 = 30_000.0;
/// Logistic temperature for dual-stack family choice, microseconds.
const FAMILY_TAU_US: f64 = 15_000.0;

/// Derive the synthetic-Internet plan configuration for a dataset, so
/// the generator and any later analyzer build byte-identical plans.
pub fn plan_config_for(spec: &DatasetSpec, scale: Scale, seed: u64) -> PlanConfig {
    PlanConfig {
        other_as_count: ((spec.as_count as f64 * scale.resolvers).ceil() as usize).max(50),
        isp_fraction: 0.45,
        v6_fraction: 0.35,
        seed: seed ^ 0x0a5_c0de,
    }
}

/// Counters the engine reports after generating a dataset.
#[derive(Debug, Clone, Default, serde::Serialize)]
pub struct DatasetStats {
    /// Query-direction records written.
    pub queries: u64,
    /// Response-direction records written.
    pub responses: u64,
    /// UDP responses that carried the TC bit.
    pub truncated_udp: u64,
    /// Query records sent over TCP.
    pub tcp_queries: u64,
    /// Queries whose response was junk (non-NOERROR).
    pub junk_queries: u64,
    /// Demand events absorbed by resolver caches.
    pub cache_hits: u64,
    /// Responses replaced by RRL TC=1 slips (when RRL is enabled).
    pub rrl_slips: u64,
    /// Responses dropped by RRL.
    pub rrl_drops: u64,
    /// Per-fleet query counts, by fleet name.
    pub per_fleet: Vec<(String, u64)>,
}

impl DatasetStats {
    /// Fold a time slice's counters into this block. `per_fleet` is
    /// left untouched: slice merging tracks fleet counts positionally
    /// and attaches names once at the end.
    pub(crate) fn absorb(&mut self, other: &DatasetStats) {
        self.queries += other.queries;
        self.responses += other.responses;
        self.truncated_udp += other.truncated_udp;
        self.tcp_queries += other.tcp_queries;
        self.junk_queries += other.junk_queries;
        self.cache_hits += other.cache_hits;
        self.rrl_slips += other.rrl_slips;
        self.rrl_drops += other.rrl_drops;
    }
}

/// One generated time slice (an hourly slot), ready to merge.
struct SliceOut {
    records: Vec<CaptureRecord>,
    stats: DatasetStats,
    fleet_counts: Vec<u64>,
}

/// RNG seed for one time slice: stable-hash the dataset seed with the
/// slot index, so any sharding of the slot range reproduces identical
/// per-slice streams.
pub(crate) fn slice_seed(seed: u64, slot: usize) -> u64 {
    splitmix((seed ^ 0xe46).wrapping_add((slot as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)))
}

/// The generation engine for one dataset.
pub struct Engine {
    spec: DatasetSpec,
    scale: Scale,
    seed: u64,
    zone: ZoneModel,
    pub(crate) auth: Authoritative,
    pub(crate) fleets: Vec<Fleet>,
    ptr: PtrDb,
    plan: InternetPlan,
    pub(crate) zipf: ZipfSampler,
    pub(crate) junk: JunkGenerator,
}

impl Engine {
    /// Materialize a dataset: zone, address plan, fleets, PTR zone.
    pub fn new(spec: DatasetSpec, scale: Scale, seed: u64) -> Engine {
        let zone = spec.zone.build();
        let plan = InternetPlan::build(&plan_config_for(&spec, scale, seed));
        let mut ptr = PtrDb::new();
        let server_count = spec.servers.len();
        let mut addr_offset = 0u64;
        let fleets: Vec<Fleet> = spec
            .fleets()
            .into_iter()
            .map(|mut f| {
                // dual-stack (sited) fleets keep enough resolvers per
                // site for the Figure 5 statistics to be meaningful
                let floor = if f.dual_stack {
                    (f.sites.len() as u32 * 8).max(2)
                } else {
                    2
                };
                f.resolver_count = ((f.resolver_count as f64 * scale.resolvers).ceil() as u32)
                    .max(floor)
                    .min(f.resolver_count.max(floor));
                let fleet =
                    Fleet::build_offset(f, &plan, server_count, seed, &mut ptr, addr_offset);
                addr_offset += fleet.spec.resolver_count as u64;
                fleet
            })
            .collect();
        let zipf = ZipfSampler::new(zone.domain_count().max(1), 0.95);
        let junk = JunkGenerator::new(zone.clone());
        let auth = Authoritative::new(zone.clone());
        Engine {
            spec,
            scale,
            seed,
            zone,
            auth,
            fleets,
            ptr,
            plan,
            zipf,
            junk,
        }
    }

    /// The dataset being generated.
    pub fn spec(&self) -> &DatasetSpec {
        &self.spec
    }
    /// The reverse-DNS zone built alongside the fleets.
    pub fn ptr_db(&self) -> &PtrDb {
        &self.ptr
    }
    /// The synthetic Internet plan (for enrichment downstream).
    pub fn plan(&self) -> &InternetPlan {
        &self.plan
    }
    /// The zone model.
    pub fn zone(&self) -> &ZoneModel {
        &self.zone
    }
    /// Total queries after scaling.
    pub fn scaled_total(&self) -> u64 {
        (self.spec.total_queries as f64 * self.scale.queries) as u64
    }
    /// The dataset seed (fleet/live paths derive per-slot streams from it).
    pub fn seed(&self) -> u64 {
        self.seed
    }
    /// The scaling knobs in effect.
    pub fn scale(&self) -> Scale {
        self.scale
    }
    /// The materialized fleets, in spec order.
    pub fn fleets(&self) -> &[Fleet] {
        &self.fleets
    }
    /// The authoritative responder for the vantage zone.
    pub fn auth(&self) -> &Authoritative {
        &self.auth
    }
    /// The Zipf popularity sampler over the zone's registered domains.
    pub fn zipf(&self) -> &ZipfSampler {
        &self.zipf
    }
    /// The junk-name generator for this zone.
    pub fn junk_gen(&self) -> &JunkGenerator {
        &self.junk
    }

    /// Generate the dataset into a capture writer (single-threaded).
    pub fn generate<W: Write>(&self, out: &mut CaptureWriter<W>) -> std::io::Result<DatasetStats> {
        self.generate_sharded(out, 1)
    }

    /// Generate the dataset into any record sink, spread over `shards`
    /// crossbeam scoped worker threads.
    ///
    /// Time is sliced by hourly slot — each slice is a contiguous time
    /// range driven by its own `StdRng` split from the dataset seed via
    /// [`splitmix`] stable hashing, with fresh per-slice resolver
    /// caches and RRL state — and slices merge in slot order. The
    /// output is therefore byte-identical for any shard count.
    pub fn generate_sharded<S: RecordSink>(
        &self,
        out: &mut S,
        shards: usize,
    ) -> std::io::Result<DatasetStats> {
        let slots = (self.spec.days as usize) * 24;
        let shards = shards.clamp(1, slots.max(1));
        let total = self.scaled_total();
        let mut stage = obs::stage("simnet.generate");
        let mut progress = obs::Progress::new(
            format!("simnet {:?}-{}", self.spec.vantage, self.spec.year),
            Some(total),
        );

        // diurnal/weekly slot weights
        let weights: Vec<f64> = (0..slots)
            .map(|s| {
                let t = self.spec.start + SimDuration::from_hours(s as u64);
                diurnal_weight(t)
            })
            .collect();
        let wsum: f64 = weights.iter().sum();
        let mut cum = 0.0;
        let cum_weights: Vec<f64> = weights
            .iter()
            .map(|w| {
                cum += w;
                cum / wsum
            })
            .collect();
        let targets: Vec<u64> = self
            .fleets
            .iter()
            .map(|f| (f.spec.traffic_share * total as f64).round() as u64)
            .collect();

        let mut stats = DatasetStats::default();
        let mut fleet_counts: Vec<u64> = vec![0; self.fleets.len()];

        if shards == 1 {
            for slot in 0..slots {
                let slice = self.generate_slice(slot, &cum_weights, &targets);
                progress.tick(slice.stats.queries);
                stats.absorb(&slice.stats);
                for (acc, c) in fleet_counts.iter_mut().zip(&slice.fleet_counts) {
                    *acc += *c;
                }
                for rec in slice.records {
                    out.emit(rec)?;
                }
                out.slice_end(slot as u64)?;
            }
        } else {
            // Workers stripe the slot range (worker w takes slots w,
            // w+shards, ...); the merger pulls slices back in slot
            // order over small bounded channels, so every shard keeps
            // producing while the merge stays strictly ordered and
            // memory stays bounded.
            let engine = self;
            let cum_ref = &cum_weights;
            let targets_ref = &targets;
            crossbeam::thread::scope(|scope| -> std::io::Result<()> {
                let mut rxs = Vec::with_capacity(shards);
                for w in 0..shards {
                    let (tx, rx) = crossbeam::channel::bounded::<SliceOut>(2);
                    rxs.push(rx);
                    scope.spawn(move |_| {
                        let mut shard_stage = obs::stage_owned(format!("simnet.generate.shard{w}"));
                        let mut slot = w;
                        while slot < slots {
                            let slice = engine.generate_slice(slot, cum_ref, targets_ref);
                            shard_stage.add_items(slice.stats.queries + slice.stats.responses);
                            if tx.send(slice).is_err() {
                                break; // merger gone (sink error): stop early
                            }
                            slot += shards;
                        }
                    });
                }
                let mut merge = || -> std::io::Result<()> {
                    for slot in 0..slots {
                        let slice = rxs[slot % shards]
                            .recv()
                            .map_err(|_| std::io::Error::other("generator shard disconnected"))?;
                        progress.tick(slice.stats.queries);
                        stats.absorb(&slice.stats);
                        for (acc, c) in fleet_counts.iter_mut().zip(&slice.fleet_counts) {
                            *acc += *c;
                        }
                        for rec in slice.records {
                            out.emit(rec)?;
                        }
                        out.slice_end(slot as u64)?;
                    }
                    Ok(())
                };
                let merged = merge();
                // dropping the receivers wakes any worker still blocked
                // on a full channel, so the scope always joins
                drop(rxs);
                merged
            })
            .expect("generator shards do not panic")?;
        }

        stats.per_fleet = self
            .fleets
            .iter()
            .zip(fleet_counts)
            .map(|(f, c)| (f.spec.name.clone(), c))
            .collect();
        stage.add_items(stats.queries + stats.responses);
        obs::counter(
            "simnet_queries_total",
            "query records generated by the simnet engine",
        )
        .add(stats.queries);
        obs::counter(
            "simnet_responses_total",
            "response records generated by the simnet engine",
        )
        .add(stats.responses);
        obs::counter(
            "simnet_cache_hits_total",
            "demand events absorbed by simulated resolver caches",
        )
        .add(stats.cache_hits);
        Ok(stats)
    }

    /// Generate one hourly time slice, self-contained: its own RNG
    /// stream, resolver caches, and RRL state, so slices can run on any
    /// thread in any order and still merge byte-identically.
    fn generate_slice(&self, slot: usize, cum_weights: &[f64], targets: &[u64]) -> SliceOut {
        let slot_len = SimDuration::from_hours(1);
        let slot_start = self.spec.start + SimDuration::from_hours(slot as u64);
        let prev_cum = if slot == 0 {
            0.0
        } else {
            cum_weights[slot - 1]
        };
        let mut rng = StdRng::seed_from_u64(slice_seed(self.seed, slot));
        let mut stats = DatasetStats::default();
        let mut fleet_counts: Vec<u64> = vec![0; self.fleets.len()];
        let mut caches: Vec<HashMap<u32, TtlCache>> =
            self.fleets.iter().map(|_| HashMap::new()).collect();
        let mut rrl: Option<RateLimiter> = self.spec.rrl.map(RateLimiter::new);
        let mut buf: Vec<CaptureRecord> = Vec::new();

        for (fi, fleet) in self.fleets.iter().enumerate() {
            // this slice's share of the fleet target: the rounded
            // cumulative quota telescopes exactly to `targets[fi]`
            // across the slot range
            let due_now = (targets[fi] as f64 * cum_weights[slot]).round() as u64;
            let due_prev = (targets[fi] as f64 * prev_cum).round() as u64;
            let quota = due_now.saturating_sub(due_prev);
            let mut done = 0u64;
            let mut attempts = 0u64;
            let max_attempts = quota.saturating_mul(60).max(1000);
            while done < quota && attempts < max_attempts {
                attempts += 1;
                let t =
                    slot_start + SimDuration::from_micros(rng.gen_range(0..slot_len.as_micros()));
                // junk_ratio is a *server-side* target (Figure 4 is
                // measured at the vantage): steer junk onto the exact
                // integer lattice of the cumulative ratio, anchored at
                // the slice's quota base, so the mix holds without any
                // cross-slice state (cache absorption of valid demand
                // cannot skew it either)
                let base = due_prev + done;
                let want_junk = (fleet.spec.junk_ratio * (base + 1) as f64).floor()
                    > (fleet.spec.junk_ratio * base as f64).floor();
                let n = self.demand(
                    fleet,
                    t,
                    want_junk,
                    &mut rng,
                    &mut caches[fi],
                    &mut rrl,
                    &mut buf,
                    &mut stats,
                );
                done += n;
            }
            fleet_counts[fi] += done;
        }
        self.emit_incidents(
            slot,
            cum_weights,
            slot_start,
            slot_len,
            &mut rng,
            &mut rrl,
            &mut buf,
            &mut stats,
        );
        buf.sort_by_key(|r| r.timestamp);
        SliceOut {
            records: buf,
            stats,
            fleet_counts,
        }
    }

    /// One demand event; returns the number of query records emitted
    /// (0 when the resolver cache absorbed it).
    #[allow(clippy::too_many_arguments)]
    fn demand(
        &self,
        fleet: &Fleet,
        t: SimTime,
        is_junk: bool,
        rng: &mut StdRng,
        caches: &mut HashMap<u32, TtlCache>,
        rrl: &mut Option<RateLimiter>,
        buf: &mut Vec<CaptureRecord>,
        stats: &mut DatasetStats,
    ) -> u64 {
        let spec = &fleet.spec;
        let r_idx = fleet.pick(rng);
        let resolver = &fleet.resolvers[r_idx];

        let (qname, qtype, signed, cacheable, _domain_idx) =
            pick_question_for(&self.zone, &self.zipf, &self.junk, spec, t, is_junk, rng);

        let ckey = CacheKey {
            domain: name_key(&qname),
            rtype: qtype.to_u16(),
        };
        let cache = caches
            .entry(r_idx as u32)
            .or_insert_with(|| TtlCache::new(CACHE_CAP));
        if cacheable && cache.lookup(ckey, t) {
            stats.cache_hits += 1;
            return 0;
        }

        let mut emitted = self.emit_exchange(
            fleet, resolver, &qname, qtype, signed, t, rng, rrl, buf, stats,
        );
        if is_junk {
            stats.junk_queries += emitted;
        }
        if cacheable {
            // the spec's TTL verbatim: entries decay per-record from
            // their own insertion instant (no whole-second rounding)
            let ttl = spec.cache_ttl;
            caches
                .entry(r_idx as u32)
                .or_insert_with(|| TtlCache::new(CACHE_CAP))
                .insert(ckey, t, ttl);
        }

        // DNSSEC validation follow-ups
        if spec.validates && !is_junk && signed && qtype != RType::Ds && rng.gen_bool(spec.ds_prob)
        {
            let delegation = self.zone.minimized_qname(&qname);
            let dkey = CacheKey {
                domain: name_key(&delegation),
                rtype: RType::Ds.to_u16(),
            };
            let cache = caches
                .entry(r_idx as u32)
                .or_insert_with(|| TtlCache::new(CACHE_CAP));
            if !cache.lookup(dkey, t) {
                emitted += self.emit_exchange(
                    fleet,
                    resolver,
                    &delegation,
                    RType::Ds,
                    true,
                    t + SimDuration::from_millis(5),
                    rng,
                    rrl,
                    buf,
                    stats,
                );
                caches
                    .entry(r_idx as u32)
                    .or_insert_with(|| TtlCache::new(CACHE_CAP))
                    .insert(dkey, t, SimDuration::from_secs(3600));
            }
        }
        if spec.validates && rng.gen_bool(spec.dnskey_prob) {
            let apex = self.zone.apex().clone();
            emitted += self.emit_exchange(
                fleet,
                resolver,
                &apex,
                RType::Dnskey,
                true,
                t + SimDuration::from_millis(8),
                rng,
                rrl,
                buf,
                stats,
            );
        }
        emitted
    }

    /// Emit one query/response exchange (plus TCP fallback if the UDP
    /// response truncates). Returns query records written.
    #[allow(clippy::too_many_arguments)]
    fn emit_exchange(
        &self,
        fleet: &Fleet,
        resolver: &Resolver,
        qname: &Name,
        qtype: RType,
        signed: bool,
        t: SimTime,
        rng: &mut StdRng,
        rrl: &mut Option<RateLimiter>,
        buf: &mut Vec<CaptureRecord>,
        stats: &mut DatasetStats,
    ) -> u64 {
        let spec = &fleet.spec;
        let server_count = self.spec.servers.len();
        let (server, family) = choose_server_family(spec, resolver, server_count, rng);
        let src_ip = resolver.addr_for(family);
        let server_spec = &self.spec.servers[server];
        let dst_ip: IpAddr = match family {
            IpVersion::V4 => IpAddr::V4(server_spec.v4),
            IpVersion::V6 => IpAddr::V6(server_spec.v6),
        };
        let rtt_us = resolver.rtt_us(server, IpVersion::of(src_ip));

        // 0x20 case randomization: the anti-spoofing measure some CPs
        // apply; the analysis side must (and does) treat names
        // case-insensitively.
        let wire_qname = if resolver.mix_case {
            mix_case_0x20(qname, rng)
        } else {
            qname.clone()
        };
        let mut builder = MessageBuilder::query(rng.gen(), wire_qname.clone(), qtype);
        if resolver.edns_size > 0 {
            builder = builder.with_edns(resolver.edns_size, resolver.do_bit);
        }
        let query = builder.build();
        let answer: Answer = self.auth.respond(&query, signed);
        let query_bytes = query.encode().expect("generated queries encode");

        let site_tcp_extra = spec
            .sites
            .get(resolver.site as usize)
            .and_then(|s| s.tcp_extra)
            .unwrap_or(spec.tcp_extra);

        let mut emitted = 0u64;
        if site_tcp_extra > 0.0 && rng.gen_bool(site_tcp_extra) {
            emitted += self.write_tcp_exchange(
                &query_bytes,
                &answer,
                src_ip,
                dst_ip,
                rtt_us,
                t,
                rng,
                buf,
                stats,
            );
            return emitted;
        }

        // UDP path
        let limit = if resolver.edns_size == 0 {
            512
        } else {
            resolver.edns_size.max(512) as usize
        };
        // Response Rate Limiting at the authoritative (§4.4): under
        // pressure, a response may be replaced by a TC=1 slip (forcing
        // the TCP proof-of-path) or silently dropped.
        let rrl_action = match rrl {
            Some(limiter) => {
                let class = match answer.rcode {
                    dns_wire::types::Rcode::NoError => ResponseClass::Positive(name_key(qname)),
                    dns_wire::types::Rcode::NxDomain => ResponseClass::Negative,
                    _ => ResponseClass::Error,
                };
                limiter.check(src_ip, class, t)
            }
            None => RrlAction::Respond,
        };
        let (resp_bytes, truncated) = match rrl_action {
            RrlAction::Respond => answer
                .message
                .encode_with_limit(limit)
                .expect("responses always fit after truncation"),
            RrlAction::Slip => {
                stats.rrl_slips += 1;
                let mut slip = answer.message.clone();
                slip.answers.clear();
                slip.authorities.clear();
                slip.additionals.clear();
                slip.header.truncated = true;
                (slip.encode().expect("slip encodes"), true)
            }
            RrlAction::Drop => {
                stats.rrl_drops += 1;
                (Vec::new(), false)
            }
        };
        let src_port = rng.gen_range(1024..u16::MAX);
        let flow = FlowKey {
            src: src_ip,
            src_port,
            dst: dst_ip,
            dst_port: 53,
            transport: Transport::Udp,
        };
        buf.push(CaptureRecord {
            timestamp: t,
            direction: Direction::Query,
            flow,
            tcp_rtt_us: 0,
            payload: query_bytes.clone(),
        });
        stats.queries += 1;
        emitted += 1;
        if rrl_action != RrlAction::Drop {
            buf.push(CaptureRecord {
                timestamp: t + SimDuration::from_micros(rtt_us as u64),
                direction: Direction::Response,
                flow: flow.reversed(),
                tcp_rtt_us: 0,
                payload: resp_bytes,
            });
            stats.responses += 1;
        }
        if truncated {
            stats.truncated_udp += 1;
            // TCP retry with a fresh transaction
            let retry_at = t + SimDuration::from_micros(rtt_us as u64 + 2000);
            let mut b = MessageBuilder::query(rng.gen(), wire_qname.clone(), qtype);
            if resolver.edns_size > 0 {
                b = b.with_edns(resolver.edns_size, resolver.do_bit);
            }
            let retry = b.build();
            let retry_answer = self.auth.respond(&retry, signed);
            emitted += self.write_tcp_exchange(
                &retry.encode().expect("queries encode"),
                &retry_answer,
                src_ip,
                dst_ip,
                rtt_us,
                retry_at,
                rng,
                buf,
                stats,
            );
        }
        emitted
    }

    /// Write a TCP query/response pair carrying the measured handshake
    /// RTT (what the paper's Figure 5 derives its medians from).
    #[allow(clippy::too_many_arguments)]
    fn write_tcp_exchange(
        &self,
        query_bytes: &[u8],
        answer: &Answer,
        src_ip: IpAddr,
        dst_ip: IpAddr,
        rtt_us: u32,
        t: SimTime,
        rng: &mut StdRng,
        buf: &mut Vec<CaptureRecord>,
        stats: &mut DatasetStats,
    ) -> u64 {
        // the capture box measures SYN->SYNACK with small kernel jitter
        let measured = (rtt_us as f64 * rng.gen_range(0.97..1.03)) as u32;
        let src_port = rng.gen_range(1024..u16::MAX);
        let flow = FlowKey {
            src: src_ip,
            src_port,
            dst: dst_ip,
            dst_port: 53,
            transport: Transport::Tcp,
        };
        let after_handshake = t + SimDuration::from_micros(rtt_us as u64);
        // DNS-over-TCP frames carry the RFC 1035 two-octet length prefix
        buf.push(CaptureRecord {
            timestamp: after_handshake,
            direction: Direction::Query,
            flow,
            tcp_rtt_us: measured,
            payload: dns_wire::tcp::frame(query_bytes).expect("generated queries fit TCP"),
        });
        let resp_wire = answer.message.encode().expect("responses encode");
        buf.push(CaptureRecord {
            timestamp: after_handshake + SimDuration::from_micros(rtt_us as u64),
            direction: Direction::Response,
            flow: flow.reversed(),
            tcp_rtt_us: measured,
            payload: dns_wire::tcp::frame(&resp_wire).expect("responses fit TCP"),
        });
        stats.queries += 1;
        stats.responses += 1;
        stats.tcp_queries += 1;
        1
    }

    /// Layer incident traffic (the Feb-2020 cyclic dependency) over a
    /// slot: cache-defeating A/AAAA floods from Google's resolvers.
    #[allow(clippy::too_many_arguments)]
    fn emit_incidents(
        &self,
        slot: usize,
        cum_weights: &[f64],
        slot_start: SimTime,
        slot_len: SimDuration,
        rng: &mut StdRng,
        rrl: &mut Option<RateLimiter>,
        buf: &mut Vec<CaptureRecord>,
        stats: &mut DatasetStats,
    ) {
        for incident in &self.spec.incidents {
            let Incident::CyclicDependency {
                start,
                end,
                total_queries,
                domain_indices,
            } = incident;
            let slot_end = slot_start + slot_len;
            if slot_end <= *start || slot_start >= *end {
                continue;
            }
            // count slots overlapping the incident window; spread evenly
            let window_slots =
                ((end.as_micros() - start.as_micros()) / slot_len.as_micros()).max(1);
            let scaled = (*total_queries as f64 * self.scale.queries) as u64;
            let quota = scaled / window_slots;
            let fleet = self
                .fleets
                .iter()
                .find(|f| f.spec.name == "google-public")
                .unwrap_or(&self.fleets[0]);
            for i in 0..quota {
                let t =
                    slot_start + SimDuration::from_micros(rng.gen_range(0..slot_len.as_micros()));
                let resolver = &fleet.resolvers[fleet.pick(rng)];
                let idx = domain_indices[(i % 2) as usize];
                let qname = self.zone.registered_domain(idx);
                let qtype = if i % 2 == 0 { RType::A } else { RType::Aaaa };
                self.emit_exchange(
                    fleet,
                    resolver,
                    &qname,
                    qtype,
                    self.zone.is_signed(idx),
                    t,
                    rng,
                    rrl,
                    buf,
                    stats,
                );
            }
        }
        let _ = (slot, cum_weights);
    }
}

/// The per-query qname/qtype decision chain, shared between the
/// offline engine and the live [`crate::drive::Driver`]: junk vs
/// Zipf-popular valid names, deep names under the delegation, Q-min
/// rewriting. Returns `(qname, qtype, signed, cacheable, domain_idx)`.
///
/// Deep names matter: hosts under the delegation (and NS lookups
/// clients ask about arbitrary hostnames) are what make the
/// minimized-qname evidence informative — without Q-min, a good share
/// of NS queries target deep names.
pub(crate) fn pick_question_for(
    zone: &ZoneModel,
    zipf: &ZipfSampler,
    junk: &JunkGenerator,
    spec: &FleetSpec,
    t: SimTime,
    is_junk: bool,
    rng: &mut StdRng,
) -> (Name, RType, bool, bool, u64) {
    if is_junk {
        let (name, _) = junk.sample(rng);
        let qt = if rng.gen_bool(0.9) {
            RType::A
        } else {
            RType::Aaaa
        };
        (name, qt, false, false, 0u64)
    } else {
        let idx = zipf.sample(rng);
        let base = zone.registered_domain(idx);
        let mut qt = pick_qtype(&spec.qtype_mix, rng);
        let mut qn = if matches!(qt, RType::A | RType::Aaaa | RType::Ns) && rng.gen_bool(0.55) {
            let sub: &[u8] =
                [&b"www"[..], b"mail", b"api", b"cdn", b"img"][rng.gen_range(0..5usize)];
            base.child(sub).unwrap_or(base)
        } else {
            base
        };
        if spec.qmin_active(t) && rng.gen_bool(spec.qmin_frac) {
            qn = zone.minimized_qname(&qn);
            qt = RType::Ns;
        }
        (qn, qt, zone.is_signed(idx), true, idx)
    }
}

/// Server and address-family choice.
///
/// Resolvers prefer lower-RTT authoritatives (Müller et al., ref [30] in
/// the paper) — softmax over per-server RTT. Dual-stack resolvers then
/// pick the family by a logistic in the v4-v6 RTT gap plus the fleet's
/// v6 bias: the mechanism the paper confirms at Facebook's sites.
pub(crate) fn choose_server_family(
    spec: &FleetSpec,
    resolver: &Resolver,
    server_count: usize,
    rng: &mut StdRng,
) -> (usize, IpVersion) {
    if spec.dual_stack {
        let mut weights = Vec::with_capacity(server_count);
        for s in 0..server_count {
            let best = resolver.rtt_v4_us[s].min(resolver.rtt_v6_us[s]) as f64;
            weights.push((-best / SERVER_TAU_US).exp());
        }
        let server = pick_weighted(&weights, rng);
        let gap = resolver.rtt_v4_us[server] as f64 - resolver.rtt_v6_us[server] as f64;
        let p_v6 = sigmoid(spec.v6_bias + gap / FAMILY_TAU_US);
        let family = if rng.gen_bool(p_v6.clamp(0.001, 0.999)) {
            IpVersion::V6
        } else {
            IpVersion::V4
        };
        (server, family)
    } else {
        let family = IpVersion::of(resolver.ip);
        let mut weights = Vec::with_capacity(server_count);
        for s in 0..server_count {
            let rtt = resolver.rtt_us(s, family) as f64;
            weights.push((-rtt / SERVER_TAU_US).exp());
        }
        (pick_weighted(&weights, rng), family)
    }
}

fn pick_weighted(weights: &[f64], rng: &mut StdRng) -> usize {
    let total: f64 = weights.iter().sum();
    let mut u = rng.gen::<f64>() * total;
    for (i, w) in weights.iter().enumerate() {
        u -= w;
        if u <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// Sample a qtype from the fleet mix.
pub(crate) fn pick_qtype(mix: &[(RType, f64)], rng: &mut StdRng) -> RType {
    let dist: Vec<(u16, f64)> = mix.iter().map(|(t, w)| (t.to_u16(), *w)).collect();
    RType::from_u16(sample_dist(&dist, rng.gen()))
}

/// Diurnal + weekly load shape (cf. "When the Internet Sleeps").
pub(crate) fn diurnal_weight(t: SimTime) -> f64 {
    let h = t.hour_of_day_f64();
    let day = t.weekday();
    let daily = 1.0 + 0.35 * ((h - 14.0) / 24.0 * std::f64::consts::TAU).cos();
    let weekly = if day >= 5 { 0.92 } else { 1.0 };
    daily * weekly
}

/// Apply 0x20 case randomization to a name's alphabetic octets.
pub(crate) fn mix_case_0x20(name: &Name, rng: &mut StdRng) -> Name {
    let labels: Vec<Vec<u8>> = name
        .labels()
        .map(|l| {
            l.iter()
                .map(|&b| {
                    if b.is_ascii_alphabetic() && rng.gen_bool(0.5) {
                        b ^ 0x20
                    } else {
                        b
                    }
                })
                .collect()
        })
        .collect();
    Name::from_labels(labels.iter().map(|l| l.as_slice())).expect("same shape as input")
}

/// Case-folded FNV key over a name's wire form (cache identity; also
/// the RRL positive-response class key, so a live authoritative built
/// on [`crate::rrl`] buckets identically to the offline engine).
pub fn name_key(name: &Name) -> u64 {
    name_key_wire(name.as_wire())
}

/// [`name_key`] over raw uncompressed wire bytes, for hot paths that
/// have the name's encoding but no parsed [`Name`] (e.g. the live
/// authoritative's zero-alloc respond cache). Must stay in lockstep
/// with [`name_key`] so both bucket identically.
pub fn name_key_wire(wire: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in wire {
        h = (h ^ b.to_ascii_lowercase() as u64).wrapping_mul(0x100_0000_01b3);
    }
    splitmix(h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Vantage;
    use crate::scenario::{dataset, monthly_google, Scale};
    use dns_wire::message::Message;
    use netbase::capture::CaptureReader;

    fn generate(vantage: Vantage, year: u16) -> (Engine, Vec<CaptureRecord>, DatasetStats) {
        let engine = Engine::new(dataset(vantage, year), Scale::tiny(), 42);
        let mut buf = Vec::new();
        let stats = {
            let mut w = CaptureWriter::new(&mut buf).unwrap();
            let s = engine.generate(&mut w).unwrap();
            w.finish().unwrap();
            s
        };
        let records: Vec<CaptureRecord> = CaptureReader::new(&buf[..])
            .unwrap()
            .collect::<Result<_, _>>()
            .unwrap();
        (engine, records, stats)
    }

    #[test]
    fn volume_tracks_scaled_target() {
        let (engine, records, stats) = generate(Vantage::Nl, 2020);
        let target = engine.scaled_total();
        // TCP retries and DS/DNSKEY follow-ups add a few percent
        assert!(
            stats.queries >= target && stats.queries < target + target / 4,
            "target {target}, got {}",
            stats.queries
        );
        assert_eq!(stats.queries + stats.responses, records.len() as u64);
        assert_eq!(stats.queries, stats.responses);
    }

    #[test]
    fn all_payloads_parse_as_dns() {
        let (_, records, _) = generate(Vantage::Nl, 2020);
        for rec in &records {
            // TCP payloads carry the RFC 1035 length prefix
            let wire = match rec.flow.transport {
                Transport::Tcp => {
                    let mut msgs = dns_wire::tcp::deframe_all(&rec.payload).expect("framed");
                    assert_eq!(msgs.len(), 1);
                    msgs.remove(0)
                }
                Transport::Udp => rec.payload.clone(),
            };
            let msg = Message::parse(&wire).expect("wire-valid payloads");
            match rec.direction {
                Direction::Query => assert!(!msg.header.response),
                Direction::Response => assert!(msg.header.response),
            }
        }
    }

    #[test]
    fn junk_fraction_tracks_table_3() {
        let (engine, _, stats) = generate(Vantage::Nl, 2020);
        let junk_target = 1.0 - engine.spec().valid_fraction; // 13.6%
        let got = stats.junk_queries as f64 / stats.queries as f64;
        assert!(
            (got - junk_target).abs() < 0.05,
            "junk {got} vs target {junk_target}"
        );
    }

    #[test]
    fn broot_is_mostly_junk() {
        let (_, _, stats) = generate(Vantage::BRoot, 2020);
        let got = stats.junk_queries as f64 / stats.queries as f64;
        assert!((0.70..0.90).contains(&got), "root junk {got}");
    }

    #[test]
    fn caches_absorb_demand() {
        let (_, _, stats) = generate(Vantage::Nl, 2020);
        assert!(stats.cache_hits > 0, "hot names must hit resolver caches");
    }

    #[test]
    fn tcp_and_truncation_present() {
        let (_, records, stats) = generate(Vantage::Nl, 2020);
        assert!(stats.tcp_queries > 0);
        assert!(stats.truncated_udp > 0);
        // every TCP record carries a measured RTT
        for rec in records
            .iter()
            .filter(|r| r.flow.transport == Transport::Tcp)
        {
            assert!(rec.tcp_rtt_us > 0, "TCP records carry handshake RTT");
        }
        // truncated UDP responses have the TC bit
        let mut tc = 0;
        for rec in &records {
            if rec.direction == Direction::Response && rec.flow.transport == Transport::Udp {
                let msg = Message::parse(&rec.payload).unwrap();
                if msg.header.truncated {
                    tc += 1;
                    assert!(
                        msg.answers.len() + msg.authorities.len() == 0 || rec.payload.len() <= 4096
                    );
                }
            }
        }
        assert_eq!(tc as u64, stats.truncated_udp);
    }

    #[test]
    fn records_are_slot_ordered() {
        let (_, records, _) = generate(Vantage::Nz, 2019);
        // within the stream, hour buckets never go backwards
        let mut last_hour = 0u64;
        for rec in &records {
            let hour = rec.timestamp.as_micros() / 3_600_000_000;
            assert!(hour >= last_hour, "slot order violated");
            last_hour = hour;
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let engine = Engine::new(dataset(Vantage::Nz, 2020), Scale::tiny(), 7);
            let mut buf = Vec::new();
            let mut w = CaptureWriter::new(&mut buf).unwrap();
            engine.generate(&mut w).unwrap();
            w.finish().unwrap();
            buf
        };
        assert_eq!(run(), run(), "same seed => byte-identical capture");
    }

    #[test]
    fn different_seed_differs() {
        let run = |seed| {
            let engine = Engine::new(dataset(Vantage::Nz, 2020), Scale::tiny(), seed);
            let mut buf = Vec::new();
            let mut w = CaptureWriter::new(&mut buf).unwrap();
            engine.generate(&mut w).unwrap();
            w.finish().unwrap();
            buf
        };
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn queries_target_the_dataset_servers() {
        let (engine, records, _) = generate(Vantage::Nl, 2020);
        let servers: Vec<IpAddr> = engine
            .spec()
            .servers
            .iter()
            .flat_map(|s| [IpAddr::V4(s.v4), IpAddr::V6(s.v6)])
            .collect();
        for rec in &records {
            match rec.direction {
                Direction::Query => assert!(servers.contains(&rec.flow.dst)),
                Direction::Response => assert!(servers.contains(&rec.flow.src)),
            }
        }
        // both .nl servers see traffic
        let a_queries = records
            .iter()
            .filter(|r| {
                r.direction == Direction::Query
                    && (r.flow.dst == servers[0] || r.flow.dst == servers[1])
            })
            .count();
        let total_queries = records
            .iter()
            .filter(|r| r.direction == Direction::Query)
            .count();
        assert!(a_queries > 0 && a_queries < total_queries);
    }

    #[test]
    fn incident_floods_two_domains() {
        let spec = monthly_google(Vantage::Nz, 2020, 2);
        let engine = Engine::new(spec, Scale::tiny(), 9);
        let mut buf = Vec::new();
        let mut w = CaptureWriter::new(&mut buf).unwrap();
        let stats = engine.generate(&mut w).unwrap();
        w.finish().unwrap();
        // Compare against January: February must show a large A/AAAA bump.
        let jan = Engine::new(monthly_google(Vantage::Nz, 2020, 1), Scale::tiny(), 9);
        let mut jbuf = Vec::new();
        let mut jw = CaptureWriter::new(&mut jbuf).unwrap();
        let jstats = jan.generate(&mut jw).unwrap();
        jw.finish().unwrap();
        assert!(
            stats.queries as f64 > jstats.queries as f64 * 1.3,
            "feb {} vs jan {}",
            stats.queries,
            jstats.queries
        );
    }

    #[test]
    fn rrl_slips_and_drops_under_pressure() {
        let mut spec = dataset(Vantage::Nz, 2020);
        // draconian limits so the effect is unmistakable at tiny scale
        spec.rrl = Some(crate::rrl::RrlConfig {
            responses_per_second: 0,
            burst: 1,
            slip: 2,
            ..Default::default()
        });
        let engine = Engine::new(spec, Scale::tiny(), 5);
        let mut buf = Vec::new();
        let mut w = CaptureWriter::new(&mut buf).unwrap();
        let stats = engine.generate(&mut w).unwrap();
        w.finish().unwrap();
        assert!(stats.rrl_slips > 0, "slips under a 1 rps budget");
        assert!(stats.rrl_drops > 0, "drops too");
        assert!(
            stats.responses < stats.queries,
            "dropped responses leave queries unanswered"
        );
        // every slip forces a TCP retry, so TCP grows vs baseline
        let baseline = Engine::new(dataset(Vantage::Nz, 2020), Scale::tiny(), 5);
        let mut bbuf = Vec::new();
        let mut bw = CaptureWriter::new(&mut bbuf).unwrap();
        let bstats = baseline.generate(&mut bw).unwrap();
        bw.finish().unwrap();
        let tcp_ratio = |s: &DatasetStats| s.tcp_queries as f64 / s.queries as f64;
        assert!(
            tcp_ratio(&stats) > tcp_ratio(&bstats) * 1.5,
            "RRL drives TCP: {} vs {}",
            tcp_ratio(&stats),
            tcp_ratio(&bstats)
        );
    }

    #[test]
    fn case_randomization_applied_by_google_queries() {
        // Google/Cloudflare fleets apply 0x20 mixing; their qnames on
        // the wire should show mixed case, and everything downstream is
        // case-insensitive (the proptests in dns-wire cover equality).
        let (engine, records, _) = generate(Vantage::Nl, 2020);
        let plan = engine.plan();
        let mut mixed = 0usize;
        let mut google_queries = 0usize;
        for rec in records.iter().filter(|r| r.direction == Direction::Query) {
            if plan.mapper.is_public_dns(rec.flow.src) {
                let wire = match rec.flow.transport {
                    Transport::Tcp => dns_wire::tcp::deframe_all(&rec.payload).unwrap().remove(0),
                    Transport::Udp => rec.payload.clone(),
                };
                let msg = Message::parse(&wire).unwrap();
                let qname = msg.question().unwrap().qname.to_string();
                google_queries += 1;
                let has_upper = qname.bytes().any(|b| b.is_ascii_uppercase());
                let has_lower = qname.bytes().any(|b| b.is_ascii_lowercase());
                if has_upper && has_lower {
                    mixed += 1;
                }
            }
        }
        assert!(google_queries > 100, "enough samples: {google_queries}");
        let share = mixed as f64 / google_queries as f64;
        assert!(share > 0.9, "0x20 mixing visible: {share}");
    }

    #[test]
    fn per_fleet_counts_match_shares() {
        let (engine, _, stats) = generate(Vantage::Nl, 2019);
        let total: u64 = stats.per_fleet.iter().map(|(_, c)| c).sum();
        for (fleet, spec) in stats.per_fleet.iter().zip(engine.spec().fleets()) {
            let got = fleet.1 as f64 / total as f64;
            assert!(
                (got - spec.traffic_share).abs() < 0.05,
                "{}: got {got}, want {}",
                fleet.0,
                spec.traffic_share
            );
        }
    }
}

//! Response Rate Limiting (RRL), after Vixie & Schryver's scheme as
//! deployed on TLD authoritatives.
//!
//! §4.4 of the paper names RRL as the *other* driver of DNS-over-TCP
//! (besides truncation): a resolver that trips an authoritative's rate
//! limit receives a fraction of its answers as TC=1 "slips" — proving
//! it is not a spoofing victim requires retrying over TCP — and the
//! rest are silently dropped.
//!
//! The classic algorithm: responses are bucketed by *(masked source
//! network, response class)*; each bucket holds a token balance that
//! refills at the configured rate. When a bucket is exhausted, every
//! `slip`-th response is a truncated slip and the others are dropped.

use netbase::time::SimTime;
use std::collections::HashMap;
use std::net::IpAddr;
use std::sync::Mutex;

/// What the limiter tells the responder to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RrlAction {
    /// Send the real response.
    Respond,
    /// Send a minimal truncated response (TC=1): the "slip".
    Slip,
    /// Send nothing.
    Drop,
}

/// The response class half of the bucket key (different classes have
/// different amplification value to an attacker).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResponseClass {
    /// A positive answer or referral for one owner name (hashed).
    Positive(u64),
    /// A negative (NXDOMAIN/NODATA) answer from one zone.
    Negative,
    /// An error (REFUSED, FORMERR...).
    Error,
}

/// RRL configuration.
#[derive(Debug, Clone, Copy, serde::Serialize, serde::Deserialize)]
pub struct RrlConfig {
    /// Tokens per second per bucket (the `responses-per-second` knob).
    pub responses_per_second: u32,
    /// Maximum token balance (burst allowance), in responses.
    pub burst: u32,
    /// Every `slip`-th limited response is a TC=1 slip instead of a
    /// drop; 0 means never slip (pure drop), 1 means always slip.
    pub slip: u32,
    /// IPv4 mask length for source aggregation (BIND default 24).
    pub ipv4_prefix_len: u8,
    /// IPv6 mask length (BIND default 56).
    pub ipv6_prefix_len: u8,
}

impl Default for RrlConfig {
    fn default() -> Self {
        RrlConfig {
            responses_per_second: 5,
            burst: 15,
            slip: 2,
            ipv4_prefix_len: 24,
            ipv6_prefix_len: 56,
        }
    }
}

#[derive(Debug)]
struct Bucket {
    /// Token balance in millitokens (1000 = one response).
    balance_milli: i64,
    last_refill: SimTime,
    limited_count: u64,
}

/// The rate limiter state.
pub struct RateLimiter {
    config: RrlConfig,
    buckets: HashMap<(u128, ResponseClass), Bucket>,
    /// Responses allowed through.
    pub allowed: u64,
    /// Slips issued.
    pub slipped: u64,
    /// Responses dropped.
    pub dropped: u64,
}

impl RateLimiter {
    /// Build with the given configuration.
    pub fn new(config: RrlConfig) -> Self {
        RateLimiter {
            config,
            buckets: HashMap::new(),
            allowed: 0,
            slipped: 0,
            dropped: 0,
        }
    }

    /// Decide the fate of one response to `src` of `class` at `now`.
    pub fn check(&mut self, src: IpAddr, class: ResponseClass, now: SimTime) -> RrlAction {
        let key = (self.mask(src), class);
        let cfg = self.config;
        let bucket = self.buckets.entry(key).or_insert(Bucket {
            balance_milli: cfg.burst as i64 * 1000,
            last_refill: now,
            limited_count: 0,
        });
        // refill
        let elapsed_us = now
            .as_micros()
            .saturating_sub(bucket.last_refill.as_micros());
        let refill = (elapsed_us as i64) * (cfg.responses_per_second as i64) / 1000; // millitokens
        bucket.balance_milli = (bucket.balance_milli + refill).min(cfg.burst as i64 * 1000);
        bucket.last_refill = now;

        if bucket.balance_milli >= 1000 {
            bucket.balance_milli -= 1000;
            bucket.limited_count = 0;
            self.allowed += 1;
            return RrlAction::Respond;
        }
        bucket.limited_count += 1;
        if cfg.slip > 0 && bucket.limited_count.is_multiple_of(cfg.slip as u64) {
            self.slipped += 1;
            RrlAction::Slip
        } else {
            self.dropped += 1;
            RrlAction::Drop
        }
    }

    /// Active bucket count (for memory accounting).
    pub fn buckets(&self) -> usize {
        self.buckets.len()
    }

    fn mask(&self, src: IpAddr) -> u128 {
        mask_src(&self.config, src)
    }
}

/// Aggregate the source address into its bucket network under `cfg`'s
/// prefix lengths. Exposed so sharded deployments route a source to the
/// shard that owns its bucket.
pub fn mask_src(cfg: &RrlConfig, src: IpAddr) -> u128 {
    match src {
        IpAddr::V4(v4) => {
            let bits = u32::from(v4);
            let keep = cfg.ipv4_prefix_len.min(32) as u32;
            let masked = if keep == 0 {
                0
            } else {
                bits & (u32::MAX << (32 - keep))
            };
            masked as u128
        }
        IpAddr::V6(v6) => {
            let bits = u128::from(v6);
            let keep = cfg.ipv6_prefix_len.min(128) as u32;
            let masked = if keep == 0 {
                0
            } else {
                bits & (u128::MAX << (128 - keep))
            };
            // disambiguate from v4 keys
            masked | (1u128 << 127) | 0x6
        }
    }
}

/// Anything that can decide the fate of one response — the serial
/// [`RateLimiter`], a shard handle of a [`ShardedRateLimiter`], or a
/// test double. `authd`'s respond path is generic over this so the
/// single-threaded and sharded servers share one code path.
pub trait RrlGate {
    /// Decide the fate of one response to `src` of `class` at `now`.
    fn gate(&mut self, src: IpAddr, class: ResponseClass, now: SimTime) -> RrlAction;
}

impl RrlGate for RateLimiter {
    fn gate(&mut self, src: IpAddr, class: ResponseClass, now: SimTime) -> RrlAction {
        self.check(src, class, now)
    }
}

impl RrlGate for &ShardedRateLimiter {
    fn gate(&mut self, src: IpAddr, class: ResponseClass, now: SimTime) -> RrlAction {
        ShardedRateLimiter::check(self, src, class, now)
    }
}

/// Merged counters of a sharded limiter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RrlStats {
    /// Responses allowed through.
    pub allowed: u64,
    /// Slips issued.
    pub slipped: u64,
    /// Responses dropped.
    pub dropped: u64,
}

/// A [`RateLimiter`] sharded by bucket key for concurrent servers.
///
/// Every bucket — *(masked source network, response class)* — lives in
/// exactly one shard, chosen by a stable hash of the key, so the
/// decision sequence for any bucket is byte-identical to a serial
/// limiter fed the same trace: two queries contend on a shard lock only
/// when they would have contended on the same token bucket anyway
/// (or hash-collide, which affects latency, never decisions).
pub struct ShardedRateLimiter {
    config: RrlConfig,
    shards: Vec<Mutex<RateLimiter>>,
}

impl ShardedRateLimiter {
    /// Build with `shards` independent limiters (minimum 1).
    pub fn new(config: RrlConfig, shards: usize) -> Self {
        let n = shards.max(1);
        ShardedRateLimiter {
            config,
            shards: (0..n)
                .map(|_| Mutex::new(RateLimiter::new(config)))
                .collect(),
        }
    }

    /// Shard index owning `src`/`class`'s bucket (FNV-1a over the key).
    pub fn shard_of(&self, src: IpAddr, class: ResponseClass) -> usize {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut mix = |byte: u8| {
            h ^= byte as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        };
        for b in mask_src(&self.config, src).to_le_bytes() {
            mix(b);
        }
        let (tag, val) = match class {
            ResponseClass::Positive(owner) => (1u8, owner),
            ResponseClass::Negative => (2, 0),
            ResponseClass::Error => (3, 0),
        };
        mix(tag);
        for b in val.to_le_bytes() {
            mix(b);
        }
        (h % self.shards.len() as u64) as usize
    }

    /// Decide the fate of one response, locking only the owning shard.
    pub fn check(&self, src: IpAddr, class: ResponseClass, now: SimTime) -> RrlAction {
        let shard = self.shard_of(src, class);
        self.shards[shard]
            .lock()
            .expect("rrl shard poisoned")
            .check(src, class, now)
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Merge allowed/slipped/dropped counters across shards.
    pub fn stats(&self) -> RrlStats {
        let mut out = RrlStats::default();
        for shard in &self.shards {
            let s = shard.lock().expect("rrl shard poisoned");
            out.allowed += s.allowed;
            out.slipped += s.slipped;
            out.dropped += s.dropped;
        }
        out
    }

    /// Total active buckets across shards.
    pub fn buckets(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("rrl shard poisoned").buckets())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netbase::time::SimDuration;

    fn t(secs: u64) -> SimTime {
        SimTime::from_unix_secs(1_000_000 + secs)
    }

    #[test]
    fn under_rate_always_responds() {
        let mut rrl = RateLimiter::new(RrlConfig::default());
        let src: IpAddr = "192.0.2.55".parse().unwrap();
        for i in 0..100 {
            // 2/sec against a 5/sec limit
            let now = t(i / 2);
            assert_eq!(
                rrl.check(src, ResponseClass::Negative, now),
                RrlAction::Respond,
                "i={i}"
            );
        }
        assert_eq!(rrl.dropped + rrl.slipped, 0);
    }

    #[test]
    fn burst_exhaustion_limits() {
        let mut rrl = RateLimiter::new(RrlConfig {
            slip: 2,
            ..RrlConfig::default()
        });
        let src: IpAddr = "192.0.2.55".parse().unwrap();
        let now = t(0);
        // burst = 15 tokens available instantly
        for _ in 0..15 {
            assert_eq!(
                rrl.check(src, ResponseClass::Negative, now),
                RrlAction::Respond
            );
        }
        // now limited: slip every 2nd
        let mut slips = 0;
        let mut drops = 0;
        for _ in 0..10 {
            match rrl.check(src, ResponseClass::Negative, now) {
                RrlAction::Slip => slips += 1,
                RrlAction::Drop => drops += 1,
                RrlAction::Respond => panic!("bucket must be empty"),
            }
        }
        assert_eq!(slips, 5);
        assert_eq!(drops, 5);
    }

    #[test]
    fn tokens_refill_over_time() {
        let mut rrl = RateLimiter::new(RrlConfig::default());
        let src: IpAddr = "192.0.2.55".parse().unwrap();
        let now = t(0);
        for _ in 0..15 {
            rrl.check(src, ResponseClass::Negative, now);
        }
        assert_ne!(
            rrl.check(src, ResponseClass::Negative, now),
            RrlAction::Respond
        );
        // 2 seconds later: 10 tokens refilled
        let later = now + SimDuration::from_secs(2);
        for i in 0..10 {
            assert_eq!(
                rrl.check(src, ResponseClass::Negative, later),
                RrlAction::Respond,
                "i={i}"
            );
        }
        assert_ne!(
            rrl.check(src, ResponseClass::Negative, later),
            RrlAction::Respond
        );
    }

    #[test]
    fn source_networks_are_independent() {
        let mut rrl = RateLimiter::new(RrlConfig::default());
        let a: IpAddr = "192.0.2.55".parse().unwrap();
        let b: IpAddr = "198.51.100.9".parse().unwrap();
        let now = t(0);
        for _ in 0..20 {
            rrl.check(a, ResponseClass::Negative, now);
        }
        assert_eq!(
            rrl.check(b, ResponseClass::Negative, now),
            RrlAction::Respond
        );
        assert_eq!(rrl.buckets(), 2);
    }

    #[test]
    fn same_slash24_shares_a_bucket() {
        let mut rrl = RateLimiter::new(RrlConfig::default());
        let a: IpAddr = "192.0.2.55".parse().unwrap();
        let b: IpAddr = "192.0.2.200".parse().unwrap();
        let now = t(0);
        for _ in 0..15 {
            rrl.check(a, ResponseClass::Negative, now);
        }
        assert_ne!(
            rrl.check(b, ResponseClass::Negative, now),
            RrlAction::Respond,
            "same /24 shares the bucket"
        );
        assert_eq!(rrl.buckets(), 1);
    }

    #[test]
    fn response_classes_are_independent() {
        let mut rrl = RateLimiter::new(RrlConfig::default());
        let src: IpAddr = "192.0.2.55".parse().unwrap();
        let now = t(0);
        for _ in 0..15 {
            rrl.check(src, ResponseClass::Negative, now);
        }
        assert_eq!(
            rrl.check(src, ResponseClass::Positive(42), now),
            RrlAction::Respond,
            "positive answers have their own budget"
        );
    }

    #[test]
    fn v4_and_v6_never_collide() {
        let mut rrl = RateLimiter::new(RrlConfig::default());
        let v4: IpAddr = "0.0.0.0".parse().unwrap();
        let v6: IpAddr = "::".parse().unwrap();
        let now = t(0);
        rrl.check(v4, ResponseClass::Error, now);
        rrl.check(v6, ResponseClass::Error, now);
        assert_eq!(rrl.buckets(), 2);
    }

    /// A fixed mixed trace: many sources across a handful of /24s and
    /// classes, bursty enough to exercise Respond, Slip, and Drop.
    fn fixed_trace() -> Vec<(IpAddr, ResponseClass, SimTime)> {
        let mut trace = Vec::new();
        let mut state = 0x243f_6a88_85a3_08d3u64; // deterministic LCG
        for i in 0..4000u64 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let net = (state >> 16) % 6;
            let host = (state >> 32) % 200;
            let src: IpAddr = if net == 5 {
                format!("2001:db8:{:x}::{:x}", (state >> 8) % 4, host + 1)
                    .parse()
                    .unwrap()
            } else {
                format!("192.0.{net}.{host}").parse().unwrap()
            };
            let class = match (state >> 48) % 4 {
                0 => ResponseClass::Negative,
                1 => ResponseClass::Error,
                n => ResponseClass::Positive(n * 7),
            };
            // ~400 queries per simulated second across ~36
            // (network, class) buckets: ~11/s per bucket, well over
            // the 5/s refill, so buckets deplete and slip/drop fire
            trace.push((src, class, t(i / 400)));
        }
        trace
    }

    #[test]
    fn sharded_decisions_match_serial_on_a_fixed_trace() {
        for shards in [1, 3, 8] {
            let mut serial = RateLimiter::new(RrlConfig::default());
            let sharded = ShardedRateLimiter::new(RrlConfig::default(), shards);
            let trace = fixed_trace();
            let serial_actions: Vec<RrlAction> = trace
                .iter()
                .map(|&(src, class, now)| serial.check(src, class, now))
                .collect();
            let sharded_actions: Vec<RrlAction> = trace
                .iter()
                .map(|&(src, class, now)| sharded.check(src, class, now))
                .collect();
            assert_eq!(
                serial_actions, sharded_actions,
                "shards={shards}: decision sequences diverge"
            );
            let stats = sharded.stats();
            assert_eq!(stats.allowed, serial.allowed);
            assert_eq!(stats.slipped, serial.slipped);
            assert_eq!(stats.dropped, serial.dropped);
            assert_eq!(sharded.buckets(), serial.buckets());
            // the trace actually exercised every action
            assert!(stats.allowed > 0 && stats.slipped > 0 && stats.dropped > 0);
        }
    }

    #[test]
    fn sharded_gate_trait_routes_to_the_owning_shard() {
        let sharded = ShardedRateLimiter::new(RrlConfig::default(), 4);
        let src: IpAddr = "192.0.2.55".parse().unwrap();
        let now = t(0);
        let mut gate = &sharded;
        for _ in 0..15 {
            assert_eq!(
                gate.gate(src, ResponseClass::Negative, now),
                RrlAction::Respond
            );
        }
        assert_ne!(
            gate.gate(src, ResponseClass::Negative, now),
            RrlAction::Respond
        );
        // only one bucket exists, in exactly one shard
        assert_eq!(sharded.buckets(), 1);
    }

    #[test]
    fn slip_zero_means_pure_drop() {
        let mut rrl = RateLimiter::new(RrlConfig {
            slip: 0,
            ..RrlConfig::default()
        });
        let src: IpAddr = "192.0.2.55".parse().unwrap();
        let now = t(0);
        for _ in 0..15 {
            rrl.check(src, ResponseClass::Negative, now);
        }
        for _ in 0..10 {
            assert_eq!(
                rrl.check(src, ResponseClass::Negative, now),
                RrlAction::Drop
            );
        }
        assert_eq!(rrl.slipped, 0);
    }
}

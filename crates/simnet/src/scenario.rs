//! Dataset definitions: the nine (vantage × year) snapshots of the
//! paper's Table 3, and the monthly Google series behind Figure 3.

use crate::auth::ServerSpec;
use crate::profile::{self, FleetSpec, Vantage};
use netbase::time::SimTime;
use serde::{Deserialize, Serialize};
use zonedb::zone::ZoneModel;

/// Scaling knobs: the paper analyzes 55.7B queries; we run the same
/// pipeline on a laptop by scaling volumes while preserving every ratio
/// (scale-invariance is property-tested in `core`).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Scale {
    /// Multiplier on query volumes (1.0 = the paper's billions).
    pub queries: f64,
    /// Multiplier on resolver populations and AS counts.
    pub resolvers: f64,
}

impl Scale {
    /// Unit-test scale: tens of thousands of queries per dataset.
    pub fn tiny() -> Scale {
        Scale {
            queries: 1.0 / 400_000.0,
            resolvers: 1.0 / 1_000.0,
        }
    }

    /// Integration-test scale: a few hundred thousand queries.
    pub fn small() -> Scale {
        Scale {
            queries: 1.0 / 40_000.0,
            resolvers: 1.0 / 200.0,
        }
    }

    /// Infrastructure-statistics scale: enough resolvers per fleet for
    /// per-provider distributions (EDNS CDFs, Table 6) to stabilize.
    pub fn medium() -> Scale {
        Scale {
            queries: 1.0 / 20_000.0,
            resolvers: 1.0 / 20.0,
        }
    }

    /// Report scale: millions of queries, minutes of wall time.
    pub fn report() -> Scale {
        Scale {
            queries: 1.0 / 4_000.0,
            resolvers: 1.0 / 50.0,
        }
    }
}

/// The zone behind a dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ZoneSpec {
    /// `.nl`: second-level registrations only.
    Nl {
        /// Registered SLD count (Table 2).
        slds: u64,
    },
    /// `.nz`: mixed second/third level.
    Nz {
        /// Direct second-level registrations.
        slds: u64,
        /// Third-level registrations.
        thirds: u64,
    },
    /// The root zone.
    Root {
        /// TLD count.
        tlds: usize,
    },
}

impl ZoneSpec {
    /// Materialize the zone model.
    pub fn build(&self) -> ZoneModel {
        match *self {
            ZoneSpec::Nl { slds } => ZoneModel::nl(slds),
            ZoneSpec::Nz { slds, thirds } => ZoneModel::nz(slds, thirds),
            ZoneSpec::Root { tlds } => ZoneModel::root(tlds),
        }
    }
}

/// A special traffic event layered over normal generation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Incident {
    /// The Feb-2020 `.nz` cyclic-dependency misconfiguration (§4.2.1):
    /// two domains with mutually dependent NS sets defeated caching and
    /// drew millions of A/AAAA queries from Google.
    CyclicDependency {
        /// Incident window start.
        start: SimTime,
        /// Incident window end.
        end: SimTime,
        /// Extra queries over the window, unscaled.
        total_queries: u64,
        /// Zone registration indices of the two affected domains.
        domain_indices: [u64; 2],
    },
}

/// One dataset to generate: everything the engine needs, unscaled.
/// Serializable, so custom scenarios can live in JSON files
/// (`dnscentral scenario-template` / `scenario`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Vantage point.
    pub vantage: Vantage,
    /// Snapshot year (2018/2019/2020).
    pub year: u16,
    /// Collection window start (Table 2/3 dates).
    pub start: SimTime,
    /// Window length in days (7 for ccTLDs, 1 for DITL).
    pub days: u32,
    /// Total queries observed in the paper (Table 3).
    pub total_queries: u64,
    /// Distinct resolvers observed (Table 3).
    pub total_resolvers: u64,
    /// Valid (NOERROR) fraction (Table 3).
    pub valid_fraction: f64,
    /// ASes observed (Table 3); sizes the synthetic plan.
    pub as_count: u64,
    /// The zone (Table 2).
    pub zone: ZoneSpec,
    /// Analyzed authoritative servers.
    pub servers: Vec<ServerSpec>,
    /// Special events inside the window.
    pub incidents: Vec<Incident>,
    /// Override the fleet list (used by the monthly Google series);
    /// `None` = the full per-vantage calibration.
    pub fleets_override: Option<Vec<FleetSpec>>,
    /// Response Rate Limiting at the authoritative (off in the paper's
    /// nine datasets; used by the RRL what-if studies, cf. §4.4).
    pub rrl: Option<crate::rrl::RrlConfig>,
}

impl DatasetSpec {
    /// Window end.
    pub fn end(&self) -> SimTime {
        self.start + netbase::time::SimDuration::from_days(self.days as u64)
    }

    /// The fleet list for this dataset, resolver counts still unscaled.
    pub fn fleets(&self) -> Vec<FleetSpec> {
        match &self.fleets_override {
            Some(f) => f.clone(),
            None => profile::fleets_for(
                self.vantage,
                self.year,
                self.total_resolvers as u32,
                1.0 - self.valid_fraction,
            ),
        }
    }

    /// A short identifier, e.g. `nl-w2020`.
    pub fn id(&self) -> String {
        let v = match self.vantage {
            Vantage::Nl => "nl",
            Vantage::Nz => "nz",
            Vantage::BRoot => "broot",
        };
        format!("{v}-w{}", self.year)
    }
}

fn servers_for(vantage: Vantage) -> Vec<ServerSpec> {
    match vantage {
        Vantage::Nl => vec![
            ServerSpec {
                name: "nl-A".into(),
                v4: "194.0.28.53".parse().expect("static"),
                v6: "2a04:b900::53".parse().expect("static"),
            },
            ServerSpec {
                name: "nl-B".into(),
                v4: "185.159.198.53".parse().expect("static"),
                v6: "2a04:b906::53".parse().expect("static"),
            },
        ],
        Vantage::Nz => (0..6)
            .map(|i| ServerSpec {
                name: format!("nz-{}", (b'A' + i) as char),
                v4: format!("202.46.190.{}", 10 + i).parse().expect("static"),
                v6: format!("2404:4400::{}", 10 + i).parse().expect("static"),
            })
            .collect(),
        Vantage::BRoot => vec![ServerSpec {
            name: "b-root".into(),
            v4: "199.9.14.201".parse().expect("static"),
            v6: "2001:500:200::b".parse().expect("static"),
        }],
    }
}

/// The nine Table 3 datasets.
pub fn dataset(vantage: Vantage, year: u16) -> DatasetSpec {
    let (start, days, total_queries, valid, resolvers, as_count, zone) = match (vantage, year) {
        (Vantage::Nl, 2018) => (
            SimTime::from_date(2018, 11, 4),
            7,
            7_290_000_000,
            6.53 / 7.29,
            2_090_000,
            41_276,
            ZoneSpec::Nl { slds: 5_800_000 },
        ),
        (Vantage::Nl, 2019) => (
            SimTime::from_date(2019, 11, 3),
            7,
            10_160_000_000,
            9.05 / 10.16,
            2_180_000,
            42_727,
            ZoneSpec::Nl { slds: 5_800_000 },
        ),
        (Vantage::Nl, 2020) => (
            SimTime::from_date(2020, 4, 5),
            7,
            13_750_000_000,
            11.88 / 13.75,
            1_990_000,
            41_716,
            ZoneSpec::Nl { slds: 5_900_000 },
        ),
        (Vantage::Nz, 2018) => (
            SimTime::from_date(2018, 11, 4),
            7,
            2_950_000_000,
            2.00 / 2.95,
            1_280_000,
            37_623,
            ZoneSpec::Nz {
                slds: 140_000,
                thirds: 580_000,
            },
        ),
        (Vantage::Nz, 2019) => (
            SimTime::from_date(2019, 11, 3),
            7,
            3_480_000_000,
            2.81 / 3.48,
            1_420_000,
            39_601,
            ZoneSpec::Nz {
                slds: 140_000,
                thirds: 570_000,
            },
        ),
        (Vantage::Nz, 2020) => (
            SimTime::from_date(2020, 4, 5),
            7,
            4_570_000_000,
            3.03 / 4.57,
            1_310_000,
            38_505,
            ZoneSpec::Nz {
                slds: 141_000,
                thirds: 569_000,
            },
        ),
        (Vantage::BRoot, 2018) => (
            SimTime::from_date(2018, 4, 10),
            1,
            2_680_000_000,
            0.93 / 2.68,
            4_230_000,
            45_210,
            ZoneSpec::Root { tlds: 1530 },
        ),
        (Vantage::BRoot, 2019) => (
            SimTime::from_date(2019, 4, 9),
            1,
            4_130_000_000,
            1.43 / 4.13,
            4_130_000,
            48_154,
            ZoneSpec::Root { tlds: 1530 },
        ),
        (Vantage::BRoot, 2020) => (
            SimTime::from_date(2020, 5, 6),
            1,
            6_700_000_000,
            1.34 / 6.70,
            6_010_000,
            51_820,
            ZoneSpec::Root { tlds: 1514 },
        ),
        (v, y) => panic!("no dataset for {v:?} {y}"),
    };
    DatasetSpec {
        vantage,
        year,
        start,
        days,
        total_queries,
        total_resolvers: resolvers,
        valid_fraction: valid,
        as_count,
        zone,
        servers: servers_for(vantage),
        incidents: Vec::new(),
        fleets_override: None,
        rrl: None,
    }
}

/// A month of a provider-only longitudinal series (the Figure 3
/// machinery, generalized): that provider's calibrated fleets,
/// renormalized to carry the whole sample.
pub fn monthly_provider(
    vantage: Vantage,
    provider: asdb::cloud::Provider,
    year: i32,
    month: u32,
) -> DatasetSpec {
    use asdb::cloud::Provider;
    let mut spec = monthly_google(vantage, year, month);
    if provider == Provider::Google {
        return spec;
    }
    // swap the fleet list for the chosen provider's
    let months_since = (year - 2018) * 12 + month as i32 - 11;
    let year_key: u16 = if months_since < 12 { 2019 } else { 2020 };
    let mut fleets = match provider {
        Provider::Google => unreachable!(),
        Provider::Amazon => vec![profile::amazon_fleet(vantage, year_key)],
        Provider::Microsoft => vec![profile::microsoft_fleet(vantage, year_key)],
        Provider::Facebook => vec![profile::facebook_fleet(vantage, year_key)],
        Provider::Cloudflare => vec![profile::cloudflare_fleet(vantage, year_key)],
    };
    let share_sum: f64 = fleets.iter().map(|f| f.traffic_share).sum();
    for f in &mut fleets {
        f.traffic_share /= share_sum;
    }
    // provider volumes are a fraction of Google's; scale the sample
    spec.total_queries = (spec.total_queries as f64 * 0.4) as u64;
    spec.total_resolvers = fleets.iter().map(|f| f.resolver_count as u64).sum();
    spec.incidents.clear(); // the Feb-2020 incident was Google traffic
    spec.fleets_override = Some(fleets);
    spec
}

/// A month of the Figure 3 longitudinal series: Google-only traffic to
/// one ccTLD, sampled over the first three days of the month. The
/// Feb-2020 `.nz` month carries the cyclic-dependency incident.
pub fn monthly_google(vantage: Vantage, year: i32, month: u32) -> DatasetSpec {
    assert!(
        matches!(vantage, Vantage::Nl | Vantage::Nz),
        "Figure 3 is ccTLD-only"
    );
    let start = SimTime::from_date(year, month, 1);
    // Anchor Google's weekly volumes (Tables 4/7) and interpolate a
    // 3-day sample linearly across the series.
    let (w2018, w2019, w2020) = match vantage {
        Vantage::Nl => (1.09e9, 1.6e9, 1.81e9),
        Vantage::Nz => (2.2e8, 2.638e8, 3.287e8),
        Vantage::BRoot => unreachable!(),
    };
    let months_since = (year - 2018) * 12 + month as i32 - 11; // 0 at Nov 2018
    let frac = (months_since as f64 / 17.0).clamp(0.0, 1.0);
    let weekly = if frac < 0.7 {
        w2018 + (w2019 - w2018) * (frac / 0.7)
    } else {
        w2019 + (w2020 - w2019) * ((frac - 0.7) / 0.3)
    };
    let total = (weekly * 3.0 / 7.0) as u64;

    // resolver-count anchors for the Google fleets
    let year_key: u16 = if months_since < 12 { 2019 } else { 2020 };
    let mut fleets = profile::google_fleets(vantage, year_key);
    // Re-normalize: Google-only dataset => shares sum to 1.
    let share_sum: f64 = fleets.iter().map(|f| f.traffic_share).sum();
    for f in &mut fleets {
        f.traffic_share /= share_sum;
    }

    let mut incidents = Vec::new();
    if vantage == Vantage::Nz && year == 2020 && month == 2 {
        incidents.push(Incident::CyclicDependency {
            start: SimTime::from_date(2020, 2, 1),
            end: SimTime::from_date(2020, 2, 4),
            total_queries: (total as f64 * 0.9) as u64,
            domain_indices: [3, 4],
        });
    }

    let mut spec = dataset(vantage, 2020);
    spec.start = start;
    spec.days = 3;
    spec.total_queries = total;
    spec.total_resolvers = fleets.iter().map(|f| f.resolver_count as u64).sum();
    spec.valid_fraction = 0.9;
    spec.incidents = incidents;
    spec.fleets_override = Some(fleets);
    spec
}

/// The 18 months of the Figure 3 series: Nov 2018 through Apr 2020.
pub fn figure3_months() -> Vec<(i32, u32)> {
    let mut out = Vec::new();
    let (mut y, mut m) = (2018, 11);
    loop {
        out.push((y, m));
        if (y, m) == (2020, 4) {
            break;
        }
        m += 1;
        if m > 12 {
            m = 1;
            y += 1;
        }
    }
    out
}

/// A named (start, days) window, exported for bench/report labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Week {
    /// First day, midnight UTC.
    pub start: SimTime,
    /// Length in days.
    pub days: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nine_datasets_match_table_3() {
        let d = dataset(Vantage::Nl, 2020);
        assert_eq!(d.total_queries, 13_750_000_000);
        assert!((d.valid_fraction - 0.864).abs() < 0.001);
        assert_eq!(d.total_resolvers, 1_990_000);
        assert_eq!(d.as_count, 41_716);
        assert_eq!(d.days, 7);
        assert_eq!(d.servers.len(), 2);
        assert_eq!(d.id(), "nl-w2020");

        let d = dataset(Vantage::Nz, 2018);
        assert_eq!(d.total_queries, 2_950_000_000);
        assert!((d.valid_fraction - 0.678).abs() < 0.001);
        assert_eq!(d.servers.len(), 6);

        let d = dataset(Vantage::BRoot, 2020);
        assert_eq!(d.days, 1, "DITL one-day sample");
        assert!((d.valid_fraction - 0.20).abs() < 0.001);
        assert_eq!(d.servers.len(), 1);
        assert_eq!(d.start, SimTime::from_date(2020, 5, 6));
    }

    #[test]
    fn zone_specs_match_table_2() {
        match dataset(Vantage::Nl, 2018).zone {
            ZoneSpec::Nl { slds } => assert_eq!(slds, 5_800_000),
            _ => panic!("wrong zone kind"),
        }
        match dataset(Vantage::Nz, 2020).zone {
            ZoneSpec::Nz { slds, thirds } => {
                assert_eq!(slds, 141_000);
                assert_eq!(thirds, 569_000);
                assert_eq!(slds + thirds, 710_000, "Table 2: 710K");
            }
            _ => panic!("wrong zone kind"),
        }
    }

    #[test]
    fn fleet_lists_realize() {
        for v in [Vantage::Nl, Vantage::Nz, Vantage::BRoot] {
            for y in [2018, 2019, 2020] {
                let spec = dataset(v, y);
                let fleets = spec.fleets();
                assert_eq!(fleets.len(), 8, "5 CPs (Google split) + 2 other");
                let share: f64 = fleets.iter().map(|f| f.traffic_share).sum();
                assert!((share - 1.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn figure3_series_is_18_months() {
        let months = figure3_months();
        assert_eq!(months.len(), 18);
        assert_eq!(months[0], (2018, 11));
        assert_eq!(months[13], (2019, 12), "the Q-min month");
        assert_eq!(months[17], (2020, 4));
    }

    #[test]
    fn monthly_series_interpolates_upward() {
        let early = monthly_google(Vantage::Nl, 2018, 11);
        let late = monthly_google(Vantage::Nl, 2020, 4);
        assert!(late.total_queries > early.total_queries);
        assert!(early.fleets_override.is_some());
        let fleets = early.fleets();
        let share: f64 = fleets.iter().map(|f| f.traffic_share).sum();
        assert!((share - 1.0).abs() < 1e-9, "google-only, renormalized");
        assert!(fleets.iter().all(|f| f.name.starts_with("google")));
    }

    #[test]
    fn incident_only_in_feb_2020_nz() {
        assert!(monthly_google(Vantage::Nz, 2020, 2).incidents.len() == 1);
        assert!(monthly_google(Vantage::Nz, 2020, 1).incidents.is_empty());
        assert!(monthly_google(Vantage::Nl, 2020, 2).incidents.is_empty());
        assert!(monthly_google(Vantage::Nz, 2019, 2).incidents.is_empty());
    }

    #[test]
    fn scales_are_ordered() {
        assert!(Scale::tiny().queries < Scale::small().queries);
        assert!(Scale::small().queries < Scale::medium().queries);
        assert!(Scale::medium().queries < Scale::report().queries);
    }

    #[test]
    #[should_panic(expected = "no dataset")]
    fn unknown_year_panics() {
        dataset(Vantage::Nl, 2017);
    }
}

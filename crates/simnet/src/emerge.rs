//! Emergent fleet generation: the algorithmic resolver fleet of the
//! `resolver` crate in the offline traffic loop.
//!
//! [`crate::engine::Engine::generate_sharded`] *calibrates* the vantage
//! stream — per-fleet qtype mixes, Q-min rewrite fractions and cache
//! absorption are sampled from distributions fitted to the paper. This
//! module replaces that per-query sampling with actual resolution:
//! every demand event is a client *stimulus* handed to an
//! [`IterativeResolver`] that walks root → vantage → leaf over a
//! three-tier [`SimTransport`]. Only the vantage tier is recorded, so
//! the capture is the cache-miss shadow the paper measures, and the
//! centralization signatures *emerge* from resolver algorithms instead
//! of being sampled:
//!
//! - The Dec-2019 Q-min flip (§4.2.1) is literally
//!   [`IterativeResolver::set_qmin`] toggling on the provider's rollout
//!   date — the NS-probe share at the vantage is the algorithm's
//!   output.
//! - The Feb-2020 `.nz` cyclic-dependency surge is the vantage handing
//!   out glueless mutually-dependent referrals inside the incident
//!   window; resolvers burn their query budget re-walking the cycle.
//! - Cloud shares stay pinned to Table 4 by the same quota steering the
//!   calibrated engine uses: a fleet's slot quota counts *recorded
//!   vantage queries*, so traffic shares match by construction while
//!   the per-query content is emergent.
//!
//! ## Documented tolerances vs the calibrated engine
//!
//! The fleet path reproduces the calibrated headline series within the
//! tolerances the claims tests pin (see `tests/fleet_emergence.rs`),
//! with these known, accepted divergences:
//!
//! - **No DS/DNSKEY follow-ups** (`validate` stays off): shifts
//!   google-public's vantage mix by ≤ `ds_prob` ≈ 1.8 pp.
//! - **Per-fleet shared caches persist across slots** (calibrated
//!   rebuilds per-resolver caches each hourly slice), so absorption is
//!   higher; the quota pins volume, so only `cache_hits` accounting
//!   differs.
//! - **NoData negatives cache for 900 s** (RFC 2308 default) where the
//!   calibrated path caches NS terminals positively for 3600 s.
//! - **Server/family choice is the RTT selector's** (EWMA, emergent)
//!   rather than the calibrated softmax/logistic draw.
//! - **`.nz` Q-min walks probe twice** (`co.nz NS` + `label.co.nz NS`)
//!   where the calibrated rewrite emits one minimized probe.

use crate::auth::{Answer, Authoritative, ServerSpec};
use crate::engine::{
    diurnal_weight, mix_case_0x20, name_key, pick_qtype, slice_seed, DatasetStats, Engine,
};
use crate::fleet::{Fleet, Resolver as FleetResolver};
use crate::profile::FleetSpec;
use crate::rrl::{RateLimiter, ResponseClass, RrlAction};
use crate::scenario::Incident;
use dns_wire::builder::MessageBuilder;
use dns_wire::message::Message;
use dns_wire::name::Name;
use dns_wire::rdata::RData;
use dns_wire::types::{RType, Rcode};
use netbase::capture::{CaptureRecord, Direction, RecordSink};
use netbase::flow::{FlowKey, IpVersion, Transport as FlowTransport};
use netbase::time::{SimDuration, SimTime};
use obs::Histogram;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use resolver::{Exchange, IterativeResolver, ResolverConfig, SharedCache, Transport};
use std::collections::HashMap;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};
use std::sync::Arc;
use zonedb::junk::JunkGenerator;
use zonedb::popularity::ZipfSampler;
use zonedb::zone::{Lookup, ZoneModel};

/// Synthetic root server addresses (the unrecorded tier above the
/// vantage zone; datasets whose vantage *is* the root skip this tier).
pub const ROOT_V4: IpAddr = IpAddr::V4(Ipv4Addr::new(198, 41, 0, 4));
/// See [`ROOT_V4`].
pub const ROOT_V6: IpAddr = IpAddr::V6(Ipv6Addr::new(0x2001, 0x503, 0xba3e, 0, 0, 0, 0x2, 0x30));
/// RTT to the (anycast) root, microseconds.
const ROOT_RTT_US: u64 = 18_000;
/// RTT to leaf (registrant) nameservers, microseconds.
const LEAF_RTT_US: u64 = 12_000;
/// Resolver think-time between walk hops, microseconds.
const HOP_GAP_US: u64 = 150;
/// Virtual-time cost of a timed-out exchange (RRL drop), microseconds.
const TIMEOUT_COST_US: u64 = 300_000;
/// TTL on the synthetic root's delegation of the vantage zone.
const ROOT_NS_TTL: u32 = 172_800;
/// Salt separating per-fleet RNG streams from the calibrated engine's.
const FLEET_SALT: u64 = 0xf1ee_7a55;
/// Salt for the incident stream's RNG.
const INCIDENT_SALT: u64 = 0x1_c1de;

/// One client demand event handed to a fleet resolver.
#[derive(Debug, Clone)]
pub struct Stimulus {
    /// Name the client asked for.
    pub qname: Name,
    /// Record type the client asked for.
    pub qtype: RType,
    /// True when this is junk demand (typo/misconfiguration traffic).
    pub junk: bool,
}

/// Sample one client stimulus for a fleet.
///
/// Deep names (hosts under the delegation) are drawn with probability
/// `spec.qmin_frac` *independent of time*: the client workload never
/// changes on the rollout date. What changes at the flip is purely the
/// resolver algorithm — with Q-min off a deep stimulus reaches the
/// vantage as `www.example.nl A`; with Q-min on the same stimulus
/// produces the minimized `example.nl NS` probe. Post-flip the vantage
/// NS share is therefore `qmin_frac + (1-qmin_frac)·mix_ns`, exactly
/// the calibrated engine's rewrite composition.
pub fn sample_stimulus(
    zone: &ZoneModel,
    zipf: &ZipfSampler,
    junk: &JunkGenerator,
    spec: &FleetSpec,
    is_junk: bool,
    rng: &mut StdRng,
) -> Stimulus {
    if is_junk {
        let (qname, _) = junk.sample(rng);
        let qtype = if rng.gen_bool(0.9) {
            RType::A
        } else {
            RType::Aaaa
        };
        return Stimulus {
            qname,
            qtype,
            junk: true,
        };
    }
    let idx = zipf.sample(rng);
    let base = zone.registered_domain(idx);
    let qtype = pick_qtype(&spec.qtype_mix, rng);
    let qname = if spec.qmin_frac > 0.0 && rng.gen_bool(spec.qmin_frac) {
        let sub: &[u8] = [&b"www"[..], b"mail", b"api", b"cdn", b"img"][rng.gen_range(0..5usize)];
        base.child(sub).unwrap_or(base)
    } else {
        base
    };
    Stimulus {
        qname,
        qtype,
        junk: false,
    }
}

/// The three-tier transport a fleet resolver walks.
///
/// - **root tier** (synthetic, unrecorded): refers everything to the
///   vantage zone, glue filtered to the resolver's address families.
/// - **vantage tier** (recorded): [`Authoritative::respond`] plus the
///   full capture-shaping of the calibrated engine — 0x20 case mixing,
///   EDNS truncation with TCP retry, direct-TCP extra, RRL, incident
///   interception.
/// - **leaf tier** (synthetic, unrecorded): registrant nameservers at
///   the referral glue addresses; positive answers carry the fleet's
///   `cache_ttl` so cache absorption matches the calibrated model.
pub struct SimTransport<'a> {
    zone: &'a ZoneModel,
    auth: &'a Authoritative,
    servers: &'a [ServerSpec],
    incidents: &'a [Incident],
    fleet: &'a Fleet,
    rtt_hists: &'a [Arc<Histogram>],
    cache_ttl_secs: u32,
    root_zone: bool,
    /// Per-slot RNG stream (also used by the steering loop).
    pub rng: StdRng,
    /// Response rate limiter, when the dataset enables RRL.
    pub rrl: Option<RateLimiter>,
    /// Records captured at the vantage this slot.
    pub buf: Vec<CaptureRecord>,
    /// Counters for the slot.
    pub stats: DatasetStats,
    /// Vantage query records emitted by the current stimulus.
    pub emitted: u64,
    resolver_idx: usize,
    junk_stimulus: bool,
    start: SimTime,
    elapsed: SimDuration,
}

impl<'a> SimTransport<'a> {
    /// Build a transport for one fleet over one time slice.
    pub fn new(
        engine: &'a Engine,
        fleet: &'a Fleet,
        rtt_hists: &'a [Arc<Histogram>],
        rng: StdRng,
        rrl: Option<RateLimiter>,
    ) -> SimTransport<'a> {
        SimTransport {
            zone: engine.zone(),
            auth: engine.auth(),
            servers: &engine.spec().servers,
            incidents: &engine.spec().incidents,
            fleet,
            rtt_hists,
            cache_ttl_secs: fleet.spec.cache_ttl.as_secs().max(1) as u32,
            root_zone: engine.zone().is_root_zone(),
            rng,
            rrl,
            buf: Vec::new(),
            stats: DatasetStats::default(),
            emitted: 0,
            resolver_idx: 0,
            junk_stimulus: false,
            start: SimTime(0),
            elapsed: SimDuration::ZERO,
        }
    }

    /// Arm the transport for one stimulus: which fleet resolver sends,
    /// when it starts, and whether the demand is junk (for accounting).
    pub fn begin(&mut self, resolver_idx: usize, start: SimTime, junk: bool) {
        self.resolver_idx = resolver_idx;
        self.start = start;
        self.junk_stimulus = junk;
        self.elapsed = SimDuration::ZERO;
        self.emitted = 0;
    }

    fn profile(&self) -> &FleetResolver {
        &self.fleet.resolvers[self.resolver_idx]
    }

    fn now(&self) -> SimTime {
        self.start + self.elapsed
    }

    fn families(&self) -> (bool, bool) {
        let r = self.profile();
        let has = |v: IpVersion| {
            IpVersion::of(r.ip) == v || r.alt_ip.map(|a| IpVersion::of(a) == v).unwrap_or(false)
        };
        (has(IpVersion::V4), has(IpVersion::V6))
    }

    /// The synthetic root's referral into the vantage zone. Glue is
    /// family-filtered: a v6-only resolver only learns v6 vantage
    /// addresses, so dual-stack preference stays emergent downstream.
    fn root_referral(&mut self, query: &Message) -> Exchange {
        let (v4, v6) = self.families();
        let message = synth_root_referral(self.zone, self.servers, v4, v6, query);
        self.elapsed = self.elapsed + SimDuration::from_micros(ROOT_RTT_US + HOP_GAP_US);
        Exchange::Answer {
            message,
            rtt_us: ROOT_RTT_US as u32,
        }
    }

    /// During an incident window the vantage answers queries for the
    /// affected domains with a *glueless* referral whose only NS host
    /// lives under the other affected domain — the mutual dependency
    /// that makes resolution cycle (Pappas et al. 2004).
    fn incident_referral(
        &self,
        qname: &Name,
        qtype: RType,
        t: SimTime,
        query: &Message,
    ) -> Option<Answer> {
        if qtype == RType::Ds {
            return None;
        }
        let idx = self.zone.delegation_index(qname)?;
        for incident in self.incidents {
            let Incident::CyclicDependency {
                start,
                end,
                domain_indices,
                ..
            } = incident;
            if t < *start || t >= *end {
                continue;
            }
            if let Some(pos) = domain_indices.iter().position(|d| *d == idx) {
                let other = self.zone.registered_domain(domain_indices[1 - pos]);
                let ns = other.child(b"ns").unwrap_or_else(|_| other.clone());
                let delegation = self.zone.minimized_qname(qname);
                let message = MessageBuilder::response(query, Rcode::NoError)
                    .authority(delegation, self.auth.delegation_ttl, RData::Ns(ns))
                    .build();
                return Some(Answer {
                    message,
                    rcode: Rcode::NoError,
                    cache_ttl_secs: self.auth.delegation_ttl,
                });
            }
        }
        None
    }

    /// One recorded exchange at the vantage: the same capture shaping
    /// as the calibrated engine's `emit_exchange`, driven by the
    /// resolver's actual wire query.
    fn vantage_exchange(&mut self, si: usize, dst_ip: IpAddr, query: &Message) -> Exchange {
        let family = IpVersion::of(dst_ip);
        let r = self.profile();
        let src_ip = r.addr_for(family);
        let rtt_us = r.rtt_us(si, family);
        let mix = r.mix_case;
        let edns_size = r.edns_size;
        let site_tcp_extra = self
            .fleet
            .spec
            .sites
            .get(r.site as usize)
            .and_then(|s| s.tcp_extra)
            .unwrap_or(self.fleet.spec.tcp_extra);

        let question = match query.question() {
            Some(q) => q.clone(),
            None => {
                return Exchange::Answer {
                    message: MessageBuilder::response(query, Rcode::FormErr).build(),
                    rtt_us,
                }
            }
        };
        let qname = question.qname.clone();
        let t = self.now();
        let signed = self
            .zone
            .delegation_index(&qname)
            .map(|i| self.zone.is_signed(i))
            .unwrap_or(false);
        let answer = match self.incident_referral(&qname, question.qtype, t, query) {
            Some(a) => a,
            None => self.auth.respond(query, signed),
        };
        if let Some(h) = self.rtt_hists.get(si) {
            h.record(rtt_us as u64);
        }

        // The wire records carry the 0x20-mixed name; the resolver-side
        // message keeps the clean name so Name equality in the walk is
        // unaffected (real resolvers compare case-insensitively).
        let wire_qname = if mix {
            mix_case_0x20(&qname, &mut self.rng)
        } else {
            qname.clone()
        };
        let mut recorded_query = query.clone();
        recorded_query.questions[0].qname = wire_qname.clone();
        let query_bytes = recorded_query.encode().expect("queries encode");
        let mut recorded_resp = answer.message.clone();
        if mix && !recorded_resp.questions.is_empty() {
            recorded_resp.questions[0].qname = wire_qname;
        }

        // Direct-TCP share (resolvers probing TCP reachability).
        if site_tcp_extra > 0.0 && self.rng.gen_bool(site_tcp_extra) {
            self.write_tcp(&query_bytes, &recorded_resp, src_ip, dst_ip, rtt_us, t);
            self.elapsed = self.elapsed + SimDuration::from_micros(2 * rtt_us as u64 + HOP_GAP_US);
            return Exchange::Answer {
                message: answer.message,
                rtt_us,
            };
        }

        // UDP path with truncation and RRL, as in the calibrated engine.
        let limit = if edns_size == 0 {
            512
        } else {
            edns_size.max(512) as usize
        };
        let rrl_action = match &mut self.rrl {
            Some(limiter) => {
                let class = match answer.rcode {
                    Rcode::NoError => ResponseClass::Positive(name_key(&qname)),
                    Rcode::NxDomain => ResponseClass::Negative,
                    _ => ResponseClass::Error,
                };
                limiter.check(src_ip, class, t)
            }
            None => RrlAction::Respond,
        };
        let (resp_bytes, truncated) = match rrl_action {
            RrlAction::Respond => recorded_resp
                .encode_with_limit(limit)
                .expect("responses always fit after truncation"),
            RrlAction::Slip => {
                self.stats.rrl_slips += 1;
                let mut slip = recorded_resp.clone();
                slip.answers.clear();
                slip.authorities.clear();
                slip.additionals.clear();
                slip.header.truncated = true;
                (slip.encode().expect("slip encodes"), true)
            }
            RrlAction::Drop => {
                self.stats.rrl_drops += 1;
                (Vec::new(), false)
            }
        };
        let src_port = self.rng.gen_range(1024..u16::MAX);
        let flow = FlowKey {
            src: src_ip,
            src_port,
            dst: dst_ip,
            dst_port: 53,
            transport: FlowTransport::Udp,
        };
        self.buf.push(CaptureRecord {
            timestamp: t,
            direction: Direction::Query,
            flow,
            tcp_rtt_us: 0,
            payload: query_bytes.clone(),
        });
        self.stats.queries += 1;
        self.emitted += 1;
        if self.junk_stimulus {
            self.stats.junk_queries += 1;
        }
        if rrl_action == RrlAction::Drop {
            // the resolver sees silence and retries per its state machine
            self.elapsed = self.elapsed + SimDuration::from_micros(TIMEOUT_COST_US);
            return Exchange::Timeout;
        }
        self.buf.push(CaptureRecord {
            timestamp: t + SimDuration::from_micros(rtt_us as u64),
            direction: Direction::Response,
            flow: flow.reversed(),
            tcp_rtt_us: 0,
            payload: resp_bytes,
        });
        self.stats.responses += 1;
        if truncated {
            self.stats.truncated_udp += 1;
            let retry_at = t + SimDuration::from_micros(rtt_us as u64 + 2000);
            let mut retry = recorded_query;
            retry.header.id = self.rng.gen();
            self.write_tcp(
                &retry.encode().expect("queries encode"),
                &recorded_resp,
                src_ip,
                dst_ip,
                rtt_us,
                retry_at,
            );
            self.elapsed =
                self.elapsed + SimDuration::from_micros(3 * rtt_us as u64 + 2000 + HOP_GAP_US);
        } else {
            self.elapsed = self.elapsed + SimDuration::from_micros(rtt_us as u64 + HOP_GAP_US);
        }
        Exchange::Answer {
            message: answer.message,
            rtt_us,
        }
    }

    /// A TCP query/response pair with measured handshake RTT (same
    /// shape as the calibrated engine's `write_tcp_exchange`).
    fn write_tcp(
        &mut self,
        query_bytes: &[u8],
        resp: &Message,
        src_ip: IpAddr,
        dst_ip: IpAddr,
        rtt_us: u32,
        t: SimTime,
    ) {
        let measured = (rtt_us as f64 * self.rng.gen_range(0.97..1.03)) as u32;
        let src_port = self.rng.gen_range(1024..u16::MAX);
        let flow = FlowKey {
            src: src_ip,
            src_port,
            dst: dst_ip,
            dst_port: 53,
            transport: FlowTransport::Tcp,
        };
        let after_handshake = t + SimDuration::from_micros(rtt_us as u64);
        self.buf.push(CaptureRecord {
            timestamp: after_handshake,
            direction: Direction::Query,
            flow,
            tcp_rtt_us: measured,
            payload: dns_wire::tcp::frame(query_bytes).expect("queries fit TCP"),
        });
        let resp_wire = resp.encode().expect("responses encode");
        self.buf.push(CaptureRecord {
            timestamp: after_handshake + SimDuration::from_micros(rtt_us as u64),
            direction: Direction::Response,
            flow: flow.reversed(),
            tcp_rtt_us: measured,
            payload: dns_wire::tcp::frame(&resp_wire).expect("responses fit TCP"),
        });
        self.stats.queries += 1;
        self.stats.responses += 1;
        self.stats.tcp_queries += 1;
        self.emitted += 1;
        if self.junk_stimulus {
            self.stats.junk_queries += 1;
        }
    }

    /// A leaf (registrant) nameserver's answer: synthetic, unrecorded.
    /// Positive answers carry the fleet's cache TTL so the shared
    /// cache absorbs repeat demand on the calibrated schedule.
    fn leaf_exchange(&mut self, query: &Message) -> Exchange {
        let message = synth_leaf_answer(self.zone, self.cache_ttl_secs, query);
        self.elapsed = self.elapsed + SimDuration::from_micros(LEAF_RTT_US + HOP_GAP_US);
        Exchange::Answer {
            message,
            rtt_us: LEAF_RTT_US as u32,
        }
    }
}

/// Build the synthetic root's referral into the vantage zone: one NS
/// per dataset server, glue filtered to the resolver's address
/// families. Shared by the offline [`SimTransport`] and the live
/// loadgen transport (`authd`), so priming behaves identically on both
/// paths.
pub fn synth_root_referral(
    zone: &ZoneModel,
    servers: &[ServerSpec],
    v4: bool,
    v6: bool,
    query: &Message,
) -> Message {
    let apex = zone.apex().clone();
    let mut b = MessageBuilder::response(query, Rcode::NoError);
    for (i, s) in servers.iter().enumerate() {
        let ns = apex
            .child(format!("ns{}", i + 1).as_bytes())
            .unwrap_or_else(|_| apex.clone());
        b = b.authority(apex.clone(), ROOT_NS_TTL, RData::Ns(ns.clone()));
        if v4 {
            b = b.additional(ns.clone(), ROOT_NS_TTL, RData::A(s.v4));
        }
        if v6 {
            b = b.additional(ns, ROOT_NS_TTL, RData::Aaaa(s.v6));
        }
    }
    b.build()
}

/// Build a leaf (registrant) nameserver's answer below the vantage
/// cut: deterministic addresses hashed from the qname, NS sets at the
/// delegation, NODATA/NXDOMAIN with a synthetic SOA otherwise.
/// Positive answers carry `cache_ttl_secs` so resolver caches absorb
/// repeat demand on the fleet's calibrated TTL. Shared by the offline
/// [`SimTransport`] and the live loadgen transport.
pub fn synth_leaf_answer(zone: &ZoneModel, cache_ttl_secs: u32, query: &Message) -> Message {
    let question = match query.question() {
        Some(q) => q.clone(),
        None => return MessageBuilder::response(query, Rcode::FormErr).build(),
    };
    let ttl = cache_ttl_secs;
    let leaf_nodata = |qname: &Name| {
        let cut = zone.minimized_qname(qname);
        MessageBuilder::response(query, Rcode::NoError)
            .authority(cut.clone(), 900, leaf_soa(&cut))
            .build()
    };
    match zone.classify(&question.qname) {
        Lookup::Delegated => {
            let h = name_key(&question.qname);
            match question.qtype {
                RType::A => MessageBuilder::response(query, Rcode::NoError)
                    .answer(
                        question.qname.clone(),
                        ttl,
                        RData::A(Ipv4Addr::new(203, 0, 113, (h % 254 + 1) as u8)),
                    )
                    .build(),
                RType::Aaaa => MessageBuilder::response(query, Rcode::NoError)
                    .answer(
                        question.qname.clone(),
                        ttl,
                        RData::Aaaa(Ipv6Addr::new(
                            0x2001,
                            0xdb8,
                            0x100,
                            0,
                            0,
                            0,
                            0,
                            (h % 65_535 + 1) as u16,
                        )),
                    )
                    .build(),
                RType::Ns => {
                    let cut = zone.minimized_qname(&question.qname);
                    let mut b = MessageBuilder::response(query, Rcode::NoError);
                    for i in 0..2u8 {
                        let ns = cut
                            .child(format!("ns{}", i + 1).as_bytes())
                            .unwrap_or_else(|_| cut.clone());
                        b = b.answer(question.qname.clone(), ttl, RData::Ns(ns));
                    }
                    b.build()
                }
                _ => leaf_nodata(&question.qname),
            }
        }
        Lookup::InZone => leaf_nodata(&question.qname),
        Lookup::NxDomain => {
            let cut = zone.minimized_qname(&question.qname);
            MessageBuilder::response(query, Rcode::NxDomain)
                .authority(cut.clone(), 900, leaf_soa(&cut))
                .build()
        }
    }
}

/// Per-nameserver RTT histograms (`resolver_ns_rtt_us_<server>`) in the
/// global metrics registry, one per dataset server in spec order. Both
/// the offline fleet generator and the live loadgen record into these,
/// so `/metrics` and `/flight.json` show the same series either way.
pub fn ns_rtt_histograms(servers: &[ServerSpec]) -> Vec<Arc<Histogram>> {
    servers
        .iter()
        .map(|s| {
            obs::histogram(
                &format!("resolver_ns_rtt_us_{}", metric_label(&s.name)),
                "RTT observed by fleet resolvers toward this nameserver (µs)",
            )
        })
        .collect()
}

/// Fold a server name into the metric-name charset (`[a-z0-9_:]`).
fn metric_label(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect()
}

/// A minimal SOA for leaf-tier negative answers.
fn leaf_soa(cut: &Name) -> RData {
    RData::Soa {
        mname: cut.child(b"ns1").unwrap_or_else(|_| cut.clone()),
        rname: cut.child(b"hostmaster").unwrap_or_else(|_| cut.clone()),
        serial: 2020020801,
        refresh: 3600,
        retry: 600,
        expire: 2_419_200,
        minimum: 900,
    }
}

impl Transport for SimTransport<'_> {
    fn exchange(&mut self, server: IpAddr, query: &Message) -> Exchange {
        if !self.root_zone && (server == ROOT_V4 || server == ROOT_V6) {
            return self.root_referral(query);
        }
        if let Some(si) = self
            .servers
            .iter()
            .position(|s| IpAddr::V4(s.v4) == server || IpAddr::V6(s.v6) == server)
        {
            return self.vantage_exchange(si, server, query);
        }
        self.leaf_exchange(query)
    }

    fn root_servers(&self) -> Vec<IpAddr> {
        let (v4, v6) = self.families();
        if self.root_zone {
            // the vantage *is* the root (B-Root datasets): priming goes
            // straight to the recorded servers
            let mut out = Vec::new();
            for s in self.servers {
                if v4 {
                    out.push(IpAddr::V4(s.v4));
                }
                if v6 {
                    out.push(IpAddr::V6(s.v6));
                }
            }
            return out;
        }
        let mut out = Vec::new();
        if v4 {
            out.push(ROOT_V4);
        }
        if v6 {
            out.push(ROOT_V6);
        }
        out
    }
}

/// One fleet's produced slice of a slot.
struct FleetSlice {
    records: Vec<CaptureRecord>,
    stats: DatasetStats,
    /// Recorded vantage query records (the steering quota currency).
    count: u64,
}

/// End-of-run roll-up from one fleet's stream.
#[derive(Debug, Clone, Copy, Default)]
struct FleetSummary {
    cache_hits: u64,
    cache_misses: u64,
    retries: u64,
    timeouts: u64,
    instances: u64,
}

/// Persistent per-fleet state: the shared cache and the lazily
/// materialized resolver instances survive across slots, so TTL decay
/// and RTT learning are continuous over the dataset's whole window.
struct FleetStream<'a> {
    engine: &'a Engine,
    fi: usize,
    fleet: &'a Fleet,
    shared: SharedCache,
    resolvers: HashMap<usize, IterativeResolver>,
    rtt_hists: &'a [Arc<Histogram>],
}

impl<'a> FleetStream<'a> {
    fn new(engine: &'a Engine, fi: usize, rtt_hists: &'a [Arc<Histogram>]) -> FleetStream<'a> {
        FleetStream {
            engine,
            fi,
            fleet: &engine.fleets()[fi],
            shared: SharedCache::with_capacity(resolver::cache::DEFAULT_CAPACITY),
            resolvers: HashMap::new(),
            rtt_hists,
        }
    }

    /// Drive this fleet through one hourly slot: stimuli are resolved
    /// by real resolver instances until the recorded vantage volume
    /// meets the slot quota (the same largest-remainder steering as the
    /// calibrated engine, so Table 4 shares hold by construction).
    fn produce_slot(&mut self, slot: usize, cum_weights: &[f64], target: u64) -> FleetSlice {
        let engine = self.engine;
        let slot_len = SimDuration::from_hours(1);
        let slot_start = engine.spec().start + SimDuration::from_hours(slot as u64);
        let due_now = (target as f64 * cum_weights[slot]).round() as u64;
        let due_prev = if slot == 0 {
            0
        } else {
            (target as f64 * cum_weights[slot - 1]).round() as u64
        };
        let quota = due_now.saturating_sub(due_prev);
        let rng = StdRng::seed_from_u64(slice_seed(
            engine.seed() ^ FLEET_SALT ^ self.fi as u64,
            slot,
        ));
        let mut tr = SimTransport::new(
            engine,
            self.fleet,
            self.rtt_hists,
            rng,
            engine.spec().rrl.map(RateLimiter::new),
        );
        let qmin_on = self.fleet.spec.qmin_active(slot_start);
        let shared = &self.shared;
        let fleet = self.fleet;
        let mut done = 0u64;
        let mut attempts = 0u64;
        let max_attempts = quota.saturating_mul(60).max(1000);
        while done < quota && attempts < max_attempts {
            attempts += 1;
            let t =
                slot_start + SimDuration::from_micros(tr.rng.gen_range(0..slot_len.as_micros()));
            let base = due_prev + done;
            let want_junk = (fleet.spec.junk_ratio * (base + 1) as f64).floor()
                > (fleet.spec.junk_ratio * base as f64).floor();
            let stim = sample_stimulus(
                engine.zone(),
                engine.zipf(),
                engine.junk_gen(),
                &fleet.spec,
                want_junk,
                &mut tr.rng,
            );
            let r_idx = fleet.pick(&mut tr.rng);
            let res = self.resolvers.entry(r_idx).or_insert_with(|| {
                let prof = &fleet.resolvers[r_idx];
                let mut r = IterativeResolver::new(ResolverConfig {
                    qmin: qmin_on,
                    edns_size: prof.edns_size,
                    do_bit: prof.do_bit,
                    ..Default::default()
                });
                r.attach_shared_cache(shared.clone());
                r.set_log_enabled(false);
                r
            });
            res.set_qmin(qmin_on);
            res.set_now_micros(t.as_micros());
            tr.begin(r_idx, t, stim.junk);
            let _ = res.resolve(&mut tr, &stim.qname, stim.qtype);
            if tr.emitted == 0 {
                // the walk never reached the vantage: demand absorbed
                // by the shared cache (or leaf-only requery)
                tr.stats.cache_hits += 1;
            }
            done += tr.emitted;
        }
        FleetSlice {
            records: std::mem::take(&mut tr.buf),
            stats: tr.stats,
            count: done,
        }
    }

    fn summary(&self) -> FleetSummary {
        let mut s = FleetSummary {
            cache_hits: self.shared.hits(),
            cache_misses: self.shared.misses(),
            instances: self.resolvers.len() as u64,
            ..Default::default()
        };
        for r in self.resolvers.values() {
            s.retries += r.stats.retries;
            s.timeouts += r.stats.timeouts;
        }
        s
    }
}

/// The incident traffic stream: Google's resolvers hammering the two
/// cyclically-dependent domains. Runs serially in the merger (it is a
/// few slots of one fleet), with its own persistent shared cache —
/// which never helps, because cyclic failures are not cacheable.
struct IncidentStream<'a> {
    engine: &'a Engine,
    fleet: &'a Fleet,
    shared: SharedCache,
    resolvers: HashMap<usize, IterativeResolver>,
    rtt_hists: &'a [Arc<Histogram>],
}

impl<'a> IncidentStream<'a> {
    fn new(engine: &'a Engine, rtt_hists: &'a [Arc<Histogram>]) -> IncidentStream<'a> {
        let fleet = engine
            .fleets()
            .iter()
            .find(|f| f.spec.name == "google-public")
            .unwrap_or(&engine.fleets()[0]);
        IncidentStream {
            engine,
            fleet,
            shared: SharedCache::with_capacity(resolver::cache::DEFAULT_CAPACITY),
            resolvers: HashMap::new(),
            rtt_hists,
        }
    }

    fn produce_slot(&mut self, slot: usize) -> FleetSlice {
        let engine = self.engine;
        let slot_len = SimDuration::from_hours(1);
        let slot_start = engine.spec().start + SimDuration::from_hours(slot as u64);
        let slot_end = slot_start + slot_len;
        let rng = StdRng::seed_from_u64(slice_seed(engine.seed() ^ INCIDENT_SALT, slot));
        let mut tr = SimTransport::new(
            engine,
            self.fleet,
            self.rtt_hists,
            rng,
            engine.spec().rrl.map(RateLimiter::new),
        );
        let mut count = 0u64;
        for incident in &engine.spec().incidents {
            let Incident::CyclicDependency {
                start,
                end,
                total_queries,
                domain_indices,
            } = incident;
            if slot_end <= *start || slot_start >= *end {
                continue;
            }
            let window_slots =
                ((end.as_micros() - start.as_micros()) / slot_len.as_micros()).max(1);
            let scaled = (*total_queries as f64 * engine.scale().queries) as u64;
            let quota = scaled / window_slots;
            let qmin_on = self.fleet.spec.qmin_active(slot_start);
            let shared = &self.shared;
            let fleet = self.fleet;
            let mut done = 0u64;
            let mut calls = 0u64;
            // each resolve call burns several vantage queries on the
            // cycle, so the call cap never binds before the quota
            let max_calls = quota.max(100);
            while done < quota && calls < max_calls {
                let i = calls;
                calls += 1;
                let t = slot_start
                    + SimDuration::from_micros(tr.rng.gen_range(0..slot_len.as_micros()));
                let idx = domain_indices[(i % 2) as usize];
                let qname = engine.zone().registered_domain(idx);
                let qtype = if i.is_multiple_of(2) {
                    RType::A
                } else {
                    RType::Aaaa
                };
                let r_idx = fleet.pick(&mut tr.rng);
                let res = self.resolvers.entry(r_idx).or_insert_with(|| {
                    let prof = &fleet.resolvers[r_idx];
                    let mut r = IterativeResolver::new(ResolverConfig {
                        qmin: qmin_on,
                        edns_size: prof.edns_size,
                        do_bit: prof.do_bit,
                        ..Default::default()
                    });
                    r.attach_shared_cache(shared.clone());
                    r.set_log_enabled(false);
                    r
                });
                res.set_qmin(qmin_on);
                res.set_now_micros(t.as_micros());
                tr.begin(r_idx, t, false);
                let _ = res.resolve(&mut tr, &qname, qtype);
                done += tr.emitted;
            }
            count += done;
        }
        FleetSlice {
            records: std::mem::take(&mut tr.buf),
            stats: tr.stats,
            count,
        }
    }

    fn summary(&self) -> FleetSummary {
        let mut s = FleetSummary {
            cache_hits: self.shared.hits(),
            cache_misses: self.shared.misses(),
            instances: self.resolvers.len() as u64,
            ..Default::default()
        };
        for r in self.resolvers.values() {
            s.retries += r.stats.retries;
            s.timeouts += r.stats.timeouts;
        }
        s
    }
}

impl Engine {
    /// Generate the dataset with the *algorithmic* resolver fleet: every
    /// record is produced by an [`IterativeResolver`] walking the
    /// three-tier [`SimTransport`], with only the vantage tier recorded.
    ///
    /// `workers` stripes *fleets* (not slots) across threads: a fleet's
    /// stream is stateful across slots (shared cache, RTT learning), so
    /// each fleet runs sequentially on one worker while the merger
    /// reassembles slots in order. Output is byte-identical for any
    /// worker count.
    pub fn generate_fleet<S: RecordSink>(
        &self,
        out: &mut S,
        workers: usize,
    ) -> std::io::Result<DatasetStats> {
        let slots = (self.spec().days as usize) * 24;
        let nfleets = self.fleets().len();
        let workers = workers.clamp(1, nfleets.max(1));
        let total = self.scaled_total();
        let mut stage = obs::stage("simnet.fleet");
        let mut progress = obs::Progress::new(
            format!("fleet {:?}-{}", self.spec().vantage, self.spec().year),
            Some(total),
        );

        // identical slot weighting to the calibrated engine
        let weights: Vec<f64> = (0..slots)
            .map(|s| diurnal_weight(self.spec().start + SimDuration::from_hours(s as u64)))
            .collect();
        let wsum: f64 = weights.iter().sum();
        let mut cum = 0.0;
        let cum_weights: Vec<f64> = weights
            .iter()
            .map(|w| {
                cum += w;
                cum / wsum
            })
            .collect();
        let targets: Vec<u64> = self
            .fleets()
            .iter()
            .map(|f| (f.spec.traffic_share * total as f64).round() as u64)
            .collect();

        // fleet observability: per-nameserver RTT histograms plus
        // cache/retry/timeout roll-ups published at the end
        let rtt_hists = ns_rtt_histograms(&self.spec().servers);

        let mut stats = DatasetStats::default();
        let mut fleet_counts: Vec<u64> = vec![0u64; nfleets];
        let mut summary = FleetSummary::default();

        let engine = self;
        let cum_ref = &cum_weights;
        let targets_ref = &targets;
        let hists_ref = &rtt_hists;
        crossbeam::thread::scope(|scope| -> std::io::Result<()> {
            let mut slice_rxs: Vec<Option<crossbeam::channel::Receiver<FleetSlice>>> =
                (0..nfleets).map(|_| None).collect();
            let mut sum_rxs: Vec<Option<crossbeam::channel::Receiver<FleetSummary>>> =
                (0..nfleets).map(|_| None).collect();
            for w in 0..workers {
                let mut lanes = Vec::new();
                for fi in (0..nfleets).filter(|fi| fi % workers == w) {
                    let (tx, rx) = crossbeam::channel::bounded::<FleetSlice>(2);
                    let (stx, srx) = crossbeam::channel::bounded::<FleetSummary>(1);
                    slice_rxs[fi] = Some(rx);
                    sum_rxs[fi] = Some(srx);
                    lanes.push((fi, tx, stx));
                }
                scope.spawn(move |_| {
                    let mut streams: Vec<FleetStream> = lanes
                        .iter()
                        .map(|(fi, _, _)| FleetStream::new(engine, *fi, hists_ref))
                        .collect();
                    'outer: for slot in 0..slots {
                        for (k, (fi, tx, _)) in lanes.iter().enumerate() {
                            let slice = streams[k].produce_slot(slot, cum_ref, targets_ref[*fi]);
                            if tx.send(slice).is_err() {
                                break 'outer; // merger gone: stop early
                            }
                        }
                    }
                    for (k, (_, _, stx)) in lanes.iter().enumerate() {
                        let _ = stx.send(streams[k].summary());
                    }
                });
            }

            let mut incidents = IncidentStream::new(engine, hists_ref);
            let mut merge = || -> std::io::Result<()> {
                for slot in 0..slots {
                    let mut buf: Vec<CaptureRecord> = Vec::new();
                    for fi in 0..nfleets {
                        let slice = slice_rxs[fi]
                            .as_ref()
                            .expect("lane wired")
                            .recv()
                            .map_err(|_| std::io::Error::other("fleet worker disconnected"))?;
                        progress.tick(slice.stats.queries);
                        stats.absorb(&slice.stats);
                        fleet_counts[fi] += slice.count;
                        buf.extend(slice.records);
                    }
                    let inc = incidents.produce_slot(slot);
                    stats.absorb(&inc.stats);
                    buf.extend(inc.records);
                    buf.sort_by_key(|r| r.timestamp);
                    for rec in buf {
                        out.emit(rec)?;
                    }
                    out.slice_end(slot as u64)?;
                }
                Ok(())
            };
            let merged = merge();
            // dropping the receivers wakes workers blocked on full lanes
            drop(slice_rxs);
            if merged.is_ok() {
                for srx in sum_rxs.iter().flatten() {
                    if let Ok(s) = srx.recv() {
                        summary.cache_hits += s.cache_hits;
                        summary.cache_misses += s.cache_misses;
                        summary.retries += s.retries;
                        summary.timeouts += s.timeouts;
                        summary.instances += s.instances;
                    }
                }
                let inc = incidents.summary();
                summary.retries += inc.retries;
                summary.timeouts += inc.timeouts;
                summary.instances += inc.instances;
            }
            merged
        })
        .expect("fleet workers do not panic")?;

        stats.cache_hits = stats.cache_hits.max(summary.cache_hits);
        stats.per_fleet = self
            .fleets()
            .iter()
            .zip(&fleet_counts)
            .map(|(f, c)| (f.spec.name.clone(), *c))
            .collect();
        stage.add_items(stats.queries + stats.responses);
        let lookups = summary.cache_hits + summary.cache_misses;
        obs::gauge(
            "resolver_fleet_cache_hit_ratio",
            "shared-cache hit ratio across all fleet resolvers",
        )
        .set(if lookups == 0 {
            0.0
        } else {
            summary.cache_hits as f64 / lookups as f64
        });
        obs::gauge(
            "resolver_fleet_instances",
            "resolver instances materialized across all fleets",
        )
        .set(summary.instances as f64);
        obs::counter(
            "resolver_retries_total",
            "fleet resolver query retransmissions",
        )
        .add(summary.retries);
        obs::counter(
            "resolver_timeouts_total",
            "fleet resolver exchanges that timed out",
        )
        .add(summary.timeouts);
        obs::counter(
            "simnet_queries_total",
            "query records generated by the simnet engine",
        )
        .add(stats.queries);
        obs::counter(
            "simnet_responses_total",
            "response records generated by the simnet engine",
        )
        .add(stats.responses);
        obs::counter(
            "simnet_cache_hits_total",
            "demand events absorbed by simulated resolver caches",
        )
        .add(stats.cache_hits);
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Vantage;
    use crate::scenario::{dataset, monthly_google, Scale};
    use netbase::capture::{CaptureReader, CaptureWriter};

    fn generate_fleet_capture(
        spec: crate::scenario::DatasetSpec,
        seed: u64,
        workers: usize,
    ) -> (Engine, Vec<CaptureRecord>, DatasetStats) {
        let engine = Engine::new(spec, Scale::tiny(), seed);
        let mut buf = Vec::new();
        let stats = {
            let mut w = CaptureWriter::new(&mut buf).unwrap();
            let s = engine.generate_fleet(&mut w, workers).unwrap();
            w.finish().unwrap();
            s
        };
        let records: Vec<CaptureRecord> = CaptureReader::new(&buf[..])
            .unwrap()
            .collect::<Result<_, _>>()
            .unwrap();
        (engine, records, stats)
    }

    #[test]
    fn fleet_volume_tracks_scaled_target() {
        let (engine, records, stats) = generate_fleet_capture(dataset(Vantage::Nl, 2020), 42, 2);
        let target = engine.scaled_total();
        assert!(
            stats.queries as f64 >= target as f64 * 0.95,
            "target {target}, got {}",
            stats.queries
        );
        assert!(
            (stats.queries as f64) < target as f64 * 1.3,
            "target {target}, got {}",
            stats.queries
        );
        assert_eq!(stats.queries + stats.responses, records.len() as u64);
        assert_eq!(
            stats.queries, stats.responses,
            "no RRL: every query answered"
        );
    }

    #[test]
    fn fleet_payloads_parse_and_target_dataset_servers() {
        let (engine, records, _) = generate_fleet_capture(dataset(Vantage::Nl, 2020), 42, 2);
        let servers: Vec<IpAddr> = engine
            .spec()
            .servers
            .iter()
            .flat_map(|s| [IpAddr::V4(s.v4), IpAddr::V6(s.v6)])
            .collect();
        for rec in &records {
            let wire = match rec.flow.transport {
                FlowTransport::Tcp => {
                    let mut msgs = dns_wire::tcp::deframe_all(&rec.payload).expect("framed");
                    assert_eq!(msgs.len(), 1);
                    msgs.remove(0)
                }
                FlowTransport::Udp => rec.payload.clone(),
            };
            let msg = Message::parse(&wire).expect("wire-valid payloads");
            match rec.direction {
                Direction::Query => {
                    assert!(!msg.header.response);
                    assert!(servers.contains(&rec.flow.dst), "only vantage recorded");
                }
                Direction::Response => {
                    assert!(msg.header.response);
                    assert!(servers.contains(&rec.flow.src));
                }
            }
        }
    }

    #[test]
    fn fleet_deterministic_for_any_worker_count() {
        let run = |workers: usize| {
            let engine = Engine::new(dataset(Vantage::Nl, 2020), Scale::tiny(), 7);
            let mut buf = Vec::new();
            let mut w = CaptureWriter::new(&mut buf).unwrap();
            engine.generate_fleet(&mut w, workers).unwrap();
            w.finish().unwrap();
            buf
        };
        let one = run(1);
        assert_eq!(one, run(3), "worker count must not change output");
        assert_eq!(one, run(8));
    }

    #[test]
    fn fleet_shares_emerge_close_to_table_4() {
        let (engine, _, stats) = generate_fleet_capture(dataset(Vantage::Nl, 2019), 42, 2);
        let total: u64 = stats.per_fleet.iter().map(|(_, c)| c).sum();
        for (fleet, spec) in stats.per_fleet.iter().zip(engine.spec().fleets()) {
            let got = fleet.1 as f64 / total as f64;
            assert!(
                (got - spec.traffic_share).abs() < 0.05,
                "{}: got {got}, want {}",
                fleet.0,
                spec.traffic_share
            );
        }
    }

    #[test]
    fn qmin_flip_emerges_from_the_algorithm() {
        // Google's fleet: Nov 2019 (Q-min off) vs Jan 2020 (Q-min on).
        // The client stimulus distribution is identical in both months;
        // only IterativeResolver::set_qmin differs — so a jump in the
        // vantage NS share is the resolver algorithm's own signature.
        let ns_share = |year: i32, month: u32| {
            let (_, records, _) =
                generate_fleet_capture(monthly_google(Vantage::Nl, year, month), 11, 2);
            let mut ns = 0usize;
            let mut total = 0usize;
            for rec in records.iter().filter(|r| r.direction == Direction::Query) {
                let wire = match rec.flow.transport {
                    FlowTransport::Tcp => {
                        dns_wire::tcp::deframe_all(&rec.payload).unwrap().remove(0)
                    }
                    FlowTransport::Udp => rec.payload.clone(),
                };
                let msg = Message::parse(&wire).unwrap();
                total += 1;
                if msg.question().unwrap().qtype == RType::Ns {
                    ns += 1;
                }
            }
            ns as f64 / total as f64
        };
        let pre = ns_share(2019, 11);
        let post = ns_share(2020, 1);
        assert!(pre < 0.15, "pre-flip NS share {pre}");
        assert!(post > 0.30, "post-flip NS share {post}");
    }

    #[test]
    fn incident_surges_fleet_traffic() {
        let feb = {
            let (_, _, stats) = generate_fleet_capture(monthly_google(Vantage::Nz, 2020, 2), 9, 2);
            stats.queries
        };
        let jan = {
            let (_, _, stats) = generate_fleet_capture(monthly_google(Vantage::Nz, 2020, 1), 9, 2);
            stats.queries
        };
        assert!(
            feb as f64 > jan as f64 * 1.3,
            "cyclic incident must surge: feb {feb} vs jan {jan}"
        );
    }

    #[test]
    fn absorption_comes_from_shared_caches() {
        let (_, _, stats) = generate_fleet_capture(dataset(Vantage::Nl, 2020), 42, 2);
        assert!(stats.cache_hits > 0, "hot names must be absorbed");
    }
}

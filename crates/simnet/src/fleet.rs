//! Resolver fleet runtime: turns a [`FleetSpec`] into concrete
//! resolvers with addresses, sites, EDNS parameters, activity weights
//! and RTTs, ready for the engine to drive.

use crate::profile::{FleetSpec, SiteSpec};
use crate::ptr::PtrDb;
use asdb::synth::InternetPlan;
use netbase::flow::IpVersion;
use netbase::prefix::IpPrefix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::net::{IpAddr, Ipv4Addr};

/// One concrete resolver instance.
#[derive(Debug, Clone)]
pub struct Resolver {
    /// Primary source address (family per fleet assignment).
    pub ip: IpAddr,
    /// Secondary address for dual-stack resolvers (always the other
    /// family; `ip` is v4, `alt_ip` v6 for those).
    pub alt_ip: Option<IpAddr>,
    /// Index into the fleet's site table.
    pub site: u8,
    /// Relative activity weight (normalized by the engine).
    pub weight: f64,
    /// Advertised EDNS UDP size; 0 = no EDNS.
    pub edns_size: u16,
    /// Sets the DNSSEC-OK bit on queries.
    pub do_bit: bool,
    /// Applies 0x20 case randomization to outgoing qnames.
    pub mix_case: bool,
    /// Per-server RTT in microseconds over IPv4.
    pub rtt_v4_us: Vec<u32>,
    /// Per-server RTT in microseconds over IPv6.
    pub rtt_v6_us: Vec<u32>,
}

impl Resolver {
    /// The source address for a given family (dual-stack only has both).
    pub fn addr_for(&self, version: IpVersion) -> IpAddr {
        match (version, self.ip, self.alt_ip) {
            (IpVersion::V4, ip @ IpAddr::V4(_), _) => ip,
            (IpVersion::V6, ip @ IpAddr::V6(_), _) => ip,
            (IpVersion::V4, _, Some(alt @ IpAddr::V4(_))) => alt,
            (IpVersion::V6, _, Some(alt @ IpAddr::V6(_))) => alt,
            (_, ip, _) => ip, // single-family resolver: only choice
        }
    }

    /// RTT to `server` over `version`, in microseconds.
    pub fn rtt_us(&self, server: usize, version: IpVersion) -> u32 {
        match version {
            IpVersion::V4 => self.rtt_v4_us[server],
            IpVersion::V6 => self.rtt_v6_us[server],
        }
    }
}

/// A materialized fleet.
pub struct Fleet {
    /// The spec it was built from.
    pub spec: FleetSpec,
    /// Its resolvers.
    pub resolvers: Vec<Resolver>,
    /// Cumulative activity weights for O(log n) weighted sampling.
    cumulative: Vec<f64>,
}

impl Fleet {
    /// Materialize `spec` against the address plan. `server_count` sizes
    /// the RTT tables; `ptr` receives Facebook-style reverse records for
    /// dual-stack fleets. Deterministic given `seed`.
    pub fn build(
        spec: FleetSpec,
        plan: &InternetPlan,
        server_count: usize,
        seed: u64,
        ptr: &mut PtrDb,
    ) -> Fleet {
        Fleet::build_offset(spec, plan, server_count, seed, ptr, 0)
    }

    /// As [`Fleet::build`], with an address-index offset so fleets that
    /// share pools (the two "other" fleets) never collide on addresses.
    pub fn build_offset(
        spec: FleetSpec,
        plan: &InternetPlan,
        server_count: usize,
        seed: u64,
        ptr: &mut PtrDb,
        addr_offset: u64,
    ) -> Fleet {
        let mut rng = StdRng::seed_from_u64(seed ^ fxhash(spec.name.as_bytes()));
        let (v4_pools, v6_pools) = pools_for(&spec, plan);
        let mut resolvers = Vec::with_capacity(spec.resolver_count as usize);
        let site_cum = cumulative_weights(spec.sites.iter().map(|s| s.weight));
        // Family placement: v6 resolvers occupy a deterministic rank
        // interval whose *weight mass* matches the fleet's target v6
        // traffic share while its *count* matches the population share
        // (Tables 5 vs 6). Random per-resolver assignment would let one
        // lucky heavy-hitter swing the traffic share wildly under Zipf
        // activity skew.
        let v6_interval = if spec.dual_stack {
            (0, 0)
        } else {
            v6_rank_interval(
                spec.resolver_count as u64,
                spec.v6_resolver_frac,
                spec.v6_activity_boost,
                spec.activity_skew,
            )
        };
        // EDNS sizes are assigned by weight-stratified deficit so the
        // *query-weighted* size distribution (what Figure 6 plots)
        // matches the spec even under heavy activity skew.
        let edns_by_rank = stratified_assign(
            spec.resolver_count as u64,
            spec.activity_skew,
            &spec.edns_dist,
        );
        // Every physical site must stay observable: independent weighted
        // draws can leave a low-weight site with zero resolvers (or only
        // near-idle ones), hiding it from PTR-based site discovery. Pin
        // the fleet's hottest `sites.len()` resolvers one-per-site; the
        // weighted draw places everyone else.
        let pinned_sites = pin_sites(&spec, seed);
        for i in 0..spec.resolver_count {
            let drawn_site = if spec.sites.is_empty() {
                0u8
            } else {
                pick_cumulative(&site_cum, rng.gen()) as u8
            };
            let site = pinned_sites
                .iter()
                .find(|(idx, _)| *idx == i)
                .map(|(_, s)| *s)
                .unwrap_or(drawn_site);
            // Zipf-ish activity skew: weight ~ 1/(rank+1)^skew with the
            // rank shuffled by index hashing so address order is not
            // activity order.
            let rank = splitmix(seed ^ (i as u64) << 1) % spec.resolver_count as u64;
            let weight = 1.0 / ((rank + 1) as f64).powf(spec.activity_skew);
            let v6_resolver = rank >= v6_interval.0 && rank < v6_interval.1;
            let site_spec = spec.sites.get(site as usize);
            let (ip, alt_ip) = assign_addresses(
                &spec,
                &v4_pools,
                &v6_pools,
                i,
                addr_offset,
                site,
                v6_resolver,
                ptr,
            );
            let edns_size = match site_spec.and_then(|s| s.edns_dist.as_ref()) {
                Some(site_dist) => sample_dist(site_dist, rng.gen()),
                None => edns_by_rank[rank as usize],
            };
            let do_bit = rng.gen_bool(spec.do_bit_frac);
            let mix_case = rng.gen_bool(spec.case_randomization);
            let (rtt_v4_us, rtt_v6_us) = rtt_tables(&spec, site_spec, server_count, &mut rng);
            resolvers.push(Resolver {
                ip,
                alt_ip,
                site,
                weight,
                edns_size,
                do_bit,
                mix_case,
                rtt_v4_us,
                rtt_v6_us,
            });
        }
        let cumulative = cumulative_weights(resolvers.iter().map(|r| r.weight));
        Fleet {
            spec,
            resolvers,
            cumulative,
        }
    }

    /// Pick a resolver index, weighted by activity.
    pub fn pick<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        pick_cumulative(&self.cumulative, rng.gen())
    }

    /// Resolver count.
    pub fn len(&self) -> usize {
        self.resolvers.len()
    }

    /// True when no resolvers exist.
    pub fn is_empty(&self) -> bool {
        self.resolvers.is_empty()
    }
}

/// Address pools this fleet draws from.
fn pools_for(spec: &FleetSpec, plan: &InternetPlan) -> (Vec<IpPrefix>, Vec<IpPrefix>) {
    if let Some(provider) = spec.provider {
        if spec.public_dns {
            let ranges = provider.public_dns_ranges();
            let v4 = ranges.iter().filter(|p| p.is_ipv4()).copied().collect();
            let v6 = ranges.iter().filter(|p| !p.is_ipv4()).copied().collect();
            return (v4, v6);
        }
        let (_, v4_all, v6_all) = plan
            .provider_pools
            .iter()
            .find(|(p, _, _)| *p == provider)
            .expect("provider present in plan");
        // non-public fleets avoid the public ranges so the Table 4
        // split is clean
        let public = provider.public_dns_ranges();
        let v4 = v4_all
            .iter()
            .filter(|p| !public.iter().any(|r| p.covers(r) && p.len() == r.len()))
            .filter(|p| !public.contains(p))
            .copied()
            .collect();
        let v6 = v6_all
            .iter()
            .filter(|p| !public.contains(p))
            .copied()
            .collect();
        (v4, v6)
    } else {
        // "other" fleets: spread across the synthetic AS prefixes
        let v4 = plan
            .other_ases
            .iter()
            .flat_map(|a| a.v4.iter().copied())
            .collect();
        let v6 = plan
            .other_ases
            .iter()
            .flat_map(|a| a.v6.iter().copied())
            .collect();
        (v4, v6)
    }
}

/// Assign primary (and for dual-stack fleets, secondary) addresses.
#[allow(clippy::too_many_arguments)]
fn assign_addresses(
    spec: &FleetSpec,
    v4_pools: &[IpPrefix],
    v6_pools: &[IpPrefix],
    index: u32,
    addr_offset: u64,
    site: u8,
    v6_resolver: bool,
    ptr: &mut PtrDb,
) -> (IpAddr, Option<IpAddr>) {
    if spec.dual_stack {
        let v4 = host_in(v4_pools, index as u64 + addr_offset);
        let v6 = host_in(v6_pools, index as u64 + addr_offset);
        let v4 = match v4 {
            IpAddr::V4(a) => a,
            IpAddr::V6(_) => Ipv4Addr::new(198, 51, 100, 1), // unreachable with FB pools
        };
        let site_code = spec
            .sites
            .get(site as usize)
            .map(|s| s.code.clone())
            .unwrap_or_else(|| "xxx".to_string());
        // the 13th site's PTR names lack the embedded IPv4 (paper §4.3)
        let embed_v4 = (site as usize) != spec.sites.len().saturating_sub(1);
        ptr.register_dual_stack(&site_code, index, v4, v6, embed_v4);
        // a handful of addresses have no PTR at all (paper: 1 v4, 2 v6)
        if index == 0 {
            ptr.remove(IpAddr::V4(v4));
        }
        if index == 1 || index == 2 {
            ptr.remove(v6);
        }
        (IpAddr::V4(v4), Some(v6))
    } else {
        let v6_resolver = v6_resolver && !v6_pools.is_empty();
        let ip = if v6_resolver {
            host_in(v6_pools, index as u64 + addr_offset)
        } else {
            host_in(v4_pools, index as u64 + addr_offset)
        };
        (ip, None)
    }
}

/// The `i`-th host across a pool list: round-robin over pools, then
/// sequential within the pool. Distinct indices yield distinct
/// addresses (no hashing collisions), which matters for resolver
/// counting (Tables 3/4/6) and PTR identity.
fn host_in(pools: &[IpPrefix], i: u64) -> IpAddr {
    assert!(!pools.is_empty(), "fleet with no address pool");
    let pool = &pools[(i % pools.len() as u64) as usize];
    let host_idx = i / pools.len() as u64 + 1; // skip the network address
    if pool.is_ipv4() {
        IpAddr::V4(pool.v4_host(host_idx % pool.v4_size().max(1)))
    } else {
        IpAddr::V6(pool.v6_host(host_idx))
    }
}

/// Per-resolver RTT tables: site tables for sited fleets, otherwise a
/// lognormal-ish distance draw shared across families with small skew.
fn rtt_tables(
    spec: &FleetSpec,
    site: Option<&SiteSpec>,
    server_count: usize,
    rng: &mut StdRng,
) -> (Vec<u32>, Vec<u32>) {
    match site {
        Some(s) => {
            let jitter = 0.9 + rng.gen::<f64>() * 0.2;
            let v4 = s
                .rtt_v4_ms
                .iter()
                .map(|ms| (ms * jitter * 1000.0) as u32)
                .collect();
            let v6 = s
                .rtt_v6_ms
                .iter()
                .map(|ms| (ms * jitter * 1000.0) as u32)
                .collect();
            (v4, v6)
        }
        None => {
            let base_ms = 5.0 * (1.0 + rng.gen::<f64>() * 8.0).powf(1.6);
            let _ = &spec.name;
            let mut v4 = Vec::with_capacity(server_count);
            let mut v6 = Vec::with_capacity(server_count);
            for s in 0..server_count {
                let per_server = base_ms * (0.85 + 0.3 * ((s as f64 * 0.7).sin().abs()));
                let fam_skew = 0.95 + rng.gen::<f64>() * 0.1;
                v4.push((per_server * 1000.0) as u32);
                v6.push((per_server * fam_skew * 1000.0) as u32);
            }
            (v4, v6)
        }
    }
}

/// Draw from a `(value, weight)` distribution with a uniform `u` in [0,1).
pub fn sample_dist(dist: &[(u16, f64)], u: f64) -> u16 {
    let total: f64 = dist.iter().map(|(_, w)| w).sum();
    let mut acc = 0.0;
    for (v, w) in dist {
        acc += w / total;
        if u < acc {
            return *v;
        }
    }
    dist.last().map(|(v, _)| *v).unwrap_or(0)
}

/// Pick the fleet's hottest `sites.len()` resolver indices and assign
/// them one site each (site order = spec order, hottest first, so the
/// dominant site also holds the single most active resolver). Returns
/// `(resolver_index, site)` pairs; empty for single-site fleets where
/// coverage is trivial.
fn pin_sites(spec: &FleetSpec, seed: u64) -> Vec<(u32, u8)> {
    if spec.sites.len() < 2 || (spec.resolver_count as usize) < spec.sites.len() {
        return Vec::new();
    }
    let mut by_rank: Vec<u32> = (0..spec.resolver_count).collect();
    by_rank.sort_by_key(|&i| {
        (
            splitmix(seed ^ (i as u64) << 1) % spec.resolver_count as u64,
            i,
        )
    });
    by_rank
        .iter()
        .take(spec.sites.len())
        .enumerate()
        .map(|(s, &i)| (i, s as u8))
        .collect()
}

fn cumulative_weights(weights: impl Iterator<Item = f64>) -> Vec<f64> {
    let mut acc = 0.0;
    let mut out: Vec<f64> = weights
        .map(|w| {
            acc += w.max(0.0);
            acc
        })
        .collect();
    if let Some(last) = out.last().copied() {
        if last > 0.0 {
            for v in &mut out {
                *v /= last;
            }
        }
    }
    out
}

fn pick_cumulative(cumulative: &[f64], u: f64) -> usize {
    match cumulative.binary_search_by(|c| c.partial_cmp(&u).expect("no NaN weights")) {
        Ok(i) => (i + 1).min(cumulative.len() - 1),
        Err(i) => i.min(cumulative.len() - 1),
    }
}

/// The rank interval [lo, hi) assigned to IPv6 resolvers: its length is
/// the target *population* share and its position is chosen so the
/// enclosed Zipf weight mass matches the target *traffic* share
/// (population share x activity boost). See Tables 5/6 of the paper:
/// Amazon's 1.8% IPv6 resolvers carry 3% of its queries, Microsoft's
/// 3% carry almost none.
fn v6_rank_interval(n: u64, pop_frac: f64, boost: f64, skew: f64) -> (u64, u64) {
    if pop_frac <= 0.0 || n == 0 {
        return (0, 0);
    }
    if pop_frac >= 1.0 {
        return (0, n);
    }
    let m = (((pop_frac * n as f64).round() as u64).max(1)).min(n);
    let weights: Vec<f64> = (0..n).map(|r| 1.0 / ((r + 1) as f64).powf(skew)).collect();
    let total: f64 = weights.iter().sum();
    let target = (pop_frac * boost).clamp(0.0, 0.95);
    // slide the window; weights are decreasing, so the window share is
    // monotone decreasing in the start position — pick the best fit
    let mut window: f64 = weights.iter().take(m as usize).sum();
    let mut best = (0u64, (window / total - target).abs());
    for a in 1..=(n - m) {
        window += weights[(a + m - 1) as usize] - weights[(a - 1) as usize];
        let err = (window / total - target).abs();
        if err < best.1 {
            best = (a, err);
        }
    }
    (best.0, best.0 + m)
}

/// Weight-stratified categorical assignment: distribute ranks over the
/// `(value, prob)` categories so each category's share of the total
/// Zipf *weight* (not just count) matches its probability. Greedy by
/// descending weight: each rank goes to the category with the largest
/// remaining weight deficit.
fn stratified_assign(n: u64, skew: f64, dist: &[(u16, f64)]) -> Vec<u16> {
    if n == 0 || dist.is_empty() {
        return Vec::new();
    }
    let total_prob: f64 = dist.iter().map(|(_, p)| p).sum();
    let total_weight: f64 = (0..n).map(|r| 1.0 / ((r + 1) as f64).powf(skew)).sum();
    let mut deficit: Vec<f64> = dist
        .iter()
        .map(|(_, p)| p / total_prob * total_weight)
        .collect();
    let mut out = Vec::with_capacity(n as usize);
    for r in 0..n {
        let w = 1.0 / ((r + 1) as f64).powf(skew);
        let (best, _) = deficit
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .expect("non-empty dist");
        deficit[best] -= w;
        out.push(dist[best].0);
    }
    out
}

/// SplitMix64: cheap deterministic scrambling for index-derived choices.
pub fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FxHash-style byte hashing for stable per-fleet seeds.
fn fxhash(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{facebook_fleet, google_fleets, microsoft_fleet, Vantage};
    use asdb::synth::{InternetPlan, PlanConfig};

    fn plan() -> InternetPlan {
        InternetPlan::build(&PlanConfig {
            other_as_count: 100,
            isp_fraction: 0.5,
            v6_fraction: 0.4,
            seed: 1,
        })
    }

    fn shrink(mut spec: crate::profile::FleetSpec, n: u32) -> crate::profile::FleetSpec {
        spec.resolver_count = n;
        spec
    }

    #[test]
    fn google_public_fleet_uses_public_ranges() {
        let plan = plan();
        let mut ptr = PtrDb::new();
        let spec = shrink(google_fleets(Vantage::Nl, 2020).remove(0), 500);
        let fleet = Fleet::build(spec, &plan, 2, 42, &mut ptr);
        assert_eq!(fleet.len(), 500);
        for r in &fleet.resolvers {
            assert!(
                plan.mapper.is_public_dns(r.ip),
                "{} must be in the advertised public ranges",
                r.ip
            );
        }
        assert!(ptr.is_empty(), "only dual-stack fleets get PTR records");
    }

    #[test]
    fn google_rest_fleet_avoids_public_ranges() {
        let plan = plan();
        let mut ptr = PtrDb::new();
        let spec = shrink(google_fleets(Vantage::Nl, 2020).remove(1), 500);
        let fleet = Fleet::build(spec, &plan, 2, 42, &mut ptr);
        for r in &fleet.resolvers {
            assert!(!plan.mapper.is_public_dns(r.ip), "{}", r.ip);
            assert_eq!(
                plan.mapper.provider_of(r.ip),
                Some(asdb::cloud::Provider::Google),
                "{}",
                r.ip
            );
        }
    }

    #[test]
    fn v6_interval_hits_population_and_traffic_targets() {
        let plan = plan();
        let mut ptr = PtrDb::new();
        let spec = shrink(crate::profile::amazon_fleet(Vantage::Nl, 2020), 2000);
        let (pop_target, boost) = (spec.v6_resolver_frac, spec.v6_activity_boost);
        let fleet = Fleet::build(spec, &plan, 2, 42, &mut ptr);
        let v6: Vec<&Resolver> = fleet.resolvers.iter().filter(|r| r.ip.is_ipv6()).collect();
        let pop = v6.len() as f64 / fleet.len() as f64;
        assert!(
            (pop - pop_target).abs() < 0.01,
            "population share {pop} vs {pop_target}"
        );
        let total_w: f64 = fleet.resolvers.iter().map(|r| r.weight).sum();
        let v6_w: f64 = v6.iter().map(|r| r.weight).sum();
        let traffic = v6_w / total_w;
        let traffic_target = pop_target * boost;
        assert!(
            (traffic - traffic_target).abs() < 0.02,
            "traffic share {traffic} vs {traffic_target}"
        );
    }

    #[test]
    fn microsoft_fleet_is_v4_dominated() {
        let plan = plan();
        let mut ptr = PtrDb::new();
        let spec = shrink(microsoft_fleet(Vantage::Nl, 2020), 2000);
        let fleet = Fleet::build(spec, &plan, 2, 42, &mut ptr);
        let v6 = fleet.resolvers.iter().filter(|r| r.ip.is_ipv6()).count();
        let frac = v6 as f64 / 2000.0;
        assert!((0.01..0.06).contains(&frac), "v6 resolver frac {frac}");
        // none have the DO bit (Microsoft does not validate)
        assert!(fleet.resolvers.iter().all(|r| !r.do_bit));
    }

    #[test]
    fn facebook_fleet_is_dual_stack_with_ptr() {
        let plan = plan();
        let mut ptr = PtrDb::new();
        let spec = shrink(facebook_fleet(Vantage::Nl, 2020), 300);
        let fleet = Fleet::build(spec, &plan, 2, 42, &mut ptr);
        for r in &fleet.resolvers {
            assert!(r.ip.is_ipv4());
            assert!(r.alt_ip.unwrap().is_ipv6());
            assert!((r.site as usize) < 13);
        }
        // ~2 records per resolver, minus the 3 removed no-PTR addresses
        assert_eq!(ptr.len(), 300 * 2 - 3);
        // address families route to the right provider
        assert_eq!(
            plan.mapper.provider_of(fleet.resolvers[5].ip),
            Some(asdb::cloud::Provider::Facebook)
        );
    }

    #[test]
    fn facebook_site_one_dominates_and_has_big_edns() {
        let plan = plan();
        let mut ptr = PtrDb::new();
        let spec = shrink(facebook_fleet(Vantage::Nl, 2020), 2000);
        let fleet = Fleet::build(spec, &plan, 2, 42, &mut ptr);
        let site1 = fleet.resolvers.iter().filter(|r| r.site == 0).count();
        let frac = site1 as f64 / 2000.0;
        assert!((0.25..0.45).contains(&frac), "site-1 share {frac}");
        for r in fleet.resolvers.iter().filter(|r| r.site == 0) {
            assert_eq!(r.edns_size, 4096, "site 1 never truncates");
        }
        // sites 8-10 carry the server-A v6 penalty
        let r = fleet.resolvers.iter().find(|r| r.site == 7).unwrap();
        assert!(r.rtt_v6_us[0] > r.rtt_v4_us[0] + 25_000);
    }

    #[test]
    fn deterministic_given_seed() {
        let plan = plan();
        let build = || {
            let mut ptr = PtrDb::new();
            let spec = shrink(google_fleets(Vantage::Nl, 2020).remove(0), 100);
            Fleet::build(spec, &plan, 2, 7, &mut ptr)
        };
        let a = build();
        let b = build();
        for (x, y) in a.resolvers.iter().zip(b.resolvers.iter()) {
            assert_eq!(x.ip, y.ip);
            assert_eq!(x.edns_size, y.edns_size);
            assert_eq!(x.rtt_v4_us, y.rtt_v4_us);
        }
    }

    #[test]
    fn weighted_pick_respects_skew() {
        let plan = plan();
        let mut ptr = PtrDb::new();
        let mut spec = shrink(google_fleets(Vantage::Nl, 2020).remove(0), 200);
        spec.activity_skew = 1.2;
        let fleet = Fleet::build(spec, &plan, 2, 7, &mut ptr);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = vec![0u32; 200];
        for _ in 0..20_000 {
            counts[fleet.pick(&mut rng)] += 1;
        }
        // the most active resolver should far exceed the median
        let mut sorted = counts.clone();
        sorted.sort_unstable();
        assert!(
            sorted[199] > sorted[100] * 5,
            "skew visible: {:?}",
            &sorted[195..]
        );
        // every resolver is reachable in principle (weights positive)
        assert!(fleet.resolvers.iter().all(|r| r.weight > 0.0));
    }

    #[test]
    fn sample_dist_boundaries() {
        let dist = vec![(512u16, 0.3), (1232, 0.5), (4096, 0.2)];
        assert_eq!(sample_dist(&dist, 0.0), 512);
        assert_eq!(sample_dist(&dist, 0.29), 512);
        assert_eq!(sample_dist(&dist, 0.31), 1232);
        assert_eq!(sample_dist(&dist, 0.79), 1232);
        assert_eq!(sample_dist(&dist, 0.81), 4096);
        assert_eq!(sample_dist(&dist, 0.999), 4096);
    }

    #[test]
    fn addr_for_dual_stack() {
        let r = Resolver {
            ip: "157.240.1.1".parse().unwrap(),
            alt_ip: Some("2a03:2880::1".parse().unwrap()),
            site: 0,
            weight: 1.0,
            edns_size: 512,
            do_bit: true,
            mix_case: false,
            rtt_v4_us: vec![10_000],
            rtt_v6_us: vec![12_000],
        };
        assert!(r.addr_for(IpVersion::V4).is_ipv4());
        assert!(r.addr_for(IpVersion::V6).is_ipv6());
        assert_eq!(r.rtt_us(0, IpVersion::V6), 12_000);
    }
}

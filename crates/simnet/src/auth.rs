//! The authoritative-server model: given a query, produce the response
//! a TLD/root name server would send, with realistic record contents so
//! that *sizes* — and therefore EDNS-driven truncation and TCP fallback
//! (§4.4) — emerge mechanistically.

use dns_wire::builder::MessageBuilder;
use dns_wire::message::Message;
use dns_wire::name::Name;
use dns_wire::rdata::RData;
use dns_wire::types::{RType, Rcode};
use zonedb::zone::{Lookup, ZoneModel};

/// An analyzed authoritative server (one NS of the vantage zone).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ServerSpec {
    /// Mnemonic, e.g. "nl-A".
    pub name: String,
    /// IPv4 service address.
    pub v4: std::net::Ipv4Addr,
    /// IPv6 service address.
    pub v6: std::net::Ipv6Addr,
}

/// The responder for one zone.
pub struct Authoritative {
    zone: ZoneModel,
    /// TTL on delegation NS records.
    pub delegation_ttl: u32,
    /// Negative-caching TTL (from the SOA minimum).
    pub negative_ttl: u32,
}

/// Outcome of answering one query.
pub struct Answer {
    /// The full (pre-truncation) response message.
    pub message: Message,
    /// Response code (also inside the message header).
    pub rcode: Rcode,
    /// TTL the resolver should cache this under.
    pub cache_ttl_secs: u32,
}

impl Authoritative {
    /// Build a responder for `zone`.
    pub fn new(zone: ZoneModel) -> Self {
        Authoritative {
            zone,
            delegation_ttl: 3600,
            negative_ttl: 900,
        }
    }

    /// The zone served.
    pub fn zone(&self) -> &ZoneModel {
        &self.zone
    }

    /// Answer `query`. `signed_delegation` tells the responder whether
    /// the delegation the qname falls under has a DS RRset (decided by
    /// the caller from the zone model, since junk names have none).
    pub fn respond(&self, query: &Message, signed_delegation: bool) -> Answer {
        let question = match query.question() {
            Some(q) => q.clone(),
            None => {
                let msg = MessageBuilder::response(query, Rcode::FormErr).build();
                return Answer {
                    message: msg,
                    rcode: Rcode::FormErr,
                    cache_ttl_secs: 0,
                };
            }
        };
        let dnssec_ok = query.edns.as_ref().map(|e| e.dnssec_ok).unwrap_or(false);
        let lookup = self.zone.classify(&question.qname);
        match lookup {
            Lookup::NxDomain => self.nxdomain(query, dnssec_ok),
            Lookup::InZone => self.in_zone(query, &question, dnssec_ok),
            Lookup::Delegated => {
                let delegation = self.zone.minimized_qname(&question.qname);
                match question.qtype {
                    RType::Ds => self.ds_answer(query, &delegation, signed_delegation, dnssec_ok),
                    _ => self.referral(query, &delegation, signed_delegation, dnssec_ok),
                }
            }
        }
    }

    /// NXDOMAIN: SOA in authority; NSEC + RRSIGs when DO is set. Signed
    /// negative answers are large — they push small-EDNS resolvers into
    /// truncation even on junk.
    fn nxdomain(&self, query: &Message, dnssec_ok: bool) -> Answer {
        let apex = self.zone.apex().clone();
        let mut b = MessageBuilder::response(query, Rcode::NxDomain).authority(
            apex.clone(),
            self.negative_ttl,
            self.soa_rdata(),
        );
        if dnssec_ok {
            // RFC 4035 §3.1.3.2: a secure NXDOMAIN proves both the
            // nonexistence of the name and of a covering wildcard —
            // two NSECs, each with its RRSIG, plus the signed SOA.
            let covering = apex.child(b"zzzy").unwrap_or_else(|_| apex.clone());
            let wildcard = apex.child(b"aaab").unwrap_or_else(|_| apex.clone());
            b = b
                .authority(
                    apex.clone(),
                    self.negative_ttl,
                    rrsig_for(RType::Soa, &apex),
                )
                .authority(
                    covering.clone(),
                    self.negative_ttl,
                    RData::Nsec {
                        next: apex.child(b"zzzz").unwrap_or_else(|_| apex.clone()),
                        type_bitmaps: vec![0, 6, 0x40, 0x01, 0x00, 0x00, 0x03],
                    },
                )
                .authority(covering, self.negative_ttl, rrsig_for(RType::Nsec, &apex))
                .authority(
                    wildcard.clone(),
                    self.negative_ttl,
                    RData::Nsec {
                        next: apex.child(b"aaac").unwrap_or_else(|_| apex.clone()),
                        type_bitmaps: vec![0, 6, 0x40, 0x01, 0x00, 0x00, 0x03],
                    },
                )
                .authority(wildcard, self.negative_ttl, rrsig_for(RType::Nsec, &apex));
        }
        Answer {
            message: b.build(),
            rcode: Rcode::NxDomain,
            cache_ttl_secs: self.negative_ttl,
        }
    }

    /// Apex / in-zone answers (SOA, NS, DNSKEY at the apex...).
    fn in_zone(
        &self,
        query: &Message,
        question: &dns_wire::message::Question,
        dnssec_ok: bool,
    ) -> Answer {
        let apex = self.zone.apex().clone();
        let mut b = MessageBuilder::response(query, Rcode::NoError);
        match question.qtype {
            RType::Dnskey => {
                // TLD DNSKEY RRsets in the studied window typically held
                // a KSK + ZSK plus pre-published rollover keys, ~1.5-1.8
                // kB with signatures — the classic truncation trigger at
                // 1232-byte EDNS.
                for (flags, keylen, fill) in [
                    (257u16, 260usize, 0x03u8),
                    (256, 132, 0x07),
                    (257, 260, 0x0b),
                    (256, 132, 0x0d),
                ] {
                    b = b.answer(
                        apex.clone(),
                        3600,
                        RData::Dnskey {
                            flags,
                            protocol: 3,
                            algorithm: 8,
                            public_key: vec![fill; keylen],
                        },
                    );
                }
                if dnssec_ok {
                    b = b
                        .answer(apex.clone(), 3600, rrsig_big(RType::Dnskey, &apex))
                        .answer(apex.clone(), 3600, rrsig_big(RType::Dnskey, &apex));
                }
            }
            RType::Soa => {
                b = b.answer(apex.clone(), 3600, self.soa_rdata());
                if dnssec_ok {
                    b = b.answer(apex.clone(), 3600, rrsig_for(RType::Soa, &apex));
                }
            }
            RType::Ns => {
                for i in 0..3u8 {
                    b = b.answer(apex.clone(), 3600, RData::Ns(self.ns_name(&apex, i)));
                }
                if dnssec_ok {
                    b = b.answer(apex.clone(), 3600, rrsig_for(RType::Ns, &apex));
                }
            }
            _ => {
                // NODATA: NOERROR with SOA in authority
                b = b.authority(apex.clone(), self.negative_ttl, self.soa_rdata());
            }
        }
        Answer {
            message: b.build(),
            rcode: Rcode::NoError,
            cache_ttl_secs: 3600,
        }
    }

    /// A referral: the NS set of the covering delegation in authority,
    /// glue in additional, and — for signed delegations under DO — the
    /// DS record plus its RRSIG. This is the answer shape whose size
    /// interacts with Figure 6's EDNS distributions.
    fn referral(
        &self,
        query: &Message,
        delegation: &Name,
        signed: bool,
        dnssec_ok: bool,
    ) -> Answer {
        let mut b = MessageBuilder::response(query, Rcode::NoError);
        let ns_count = 2 + (hash_name(delegation) % 2) as u8; // 2-3 NS records
        for i in 0..ns_count {
            let ns = self.ns_name(delegation, i);
            b = b.authority(
                delegation.clone(),
                self.delegation_ttl,
                RData::Ns(ns.clone()),
            );
            // in-bailiwick NS hosts get A glue; the first is dual-stack
            b = b.additional(
                ns.clone(),
                self.delegation_ttl,
                RData::A(std::net::Ipv4Addr::new(192, 0, 2, 10 + i)),
            );
            if i == 0 {
                b = b.additional(
                    ns,
                    self.delegation_ttl,
                    RData::Aaaa("2001:db8:53::10".parse().expect("static")),
                );
            }
        }
        if dnssec_ok {
            if signed {
                // the common operational DS RRset: SHA-256 + SHA-384
                // digests plus a 2048-bit signature — what pushes the
                // signed referral past 512 octets
                b = b
                    .authority(
                        delegation.clone(),
                        self.delegation_ttl,
                        ds_rdata(delegation),
                    )
                    .authority(
                        delegation.clone(),
                        self.delegation_ttl,
                        ds_rdata_sha384(delegation),
                    )
                    .authority(
                        delegation.clone(),
                        self.delegation_ttl,
                        rrsig_big(RType::Ds, self.zone.apex()),
                    );
            } else {
                // proof of unsigned delegation: NSEC + RRSIG
                b = b
                    .authority(
                        delegation.clone(),
                        self.negative_ttl,
                        RData::Nsec {
                            next: delegation.clone(),
                            type_bitmaps: vec![0, 6, 0x00, 0x01, 0x00, 0x00, 0x03],
                        },
                    )
                    .authority(
                        delegation.clone(),
                        self.negative_ttl,
                        rrsig_for(RType::Nsec, self.zone.apex()),
                    );
            }
        }
        Answer {
            message: b.build(),
            rcode: Rcode::NoError,
            cache_ttl_secs: self.delegation_ttl,
        }
    }

    /// An authoritative DS answer (the parent owns DS).
    fn ds_answer(
        &self,
        query: &Message,
        delegation: &Name,
        signed: bool,
        dnssec_ok: bool,
    ) -> Answer {
        let mut b = MessageBuilder::response(query, Rcode::NoError);
        if signed {
            b = b.answer(delegation.clone(), 3600, ds_rdata(delegation));
            if dnssec_ok {
                b = b.answer(
                    delegation.clone(),
                    3600,
                    rrsig_for(RType::Ds, self.zone.apex()),
                );
            }
        } else {
            // NODATA + SOA (no DS exists)
            b = b.authority(
                self.zone.apex().clone(),
                self.negative_ttl,
                self.soa_rdata(),
            );
        }
        Answer {
            message: b.build(),
            rcode: Rcode::NoError,
            cache_ttl_secs: 3600,
        }
    }

    fn soa_rdata(&self) -> RData {
        let apex = self.zone.apex();
        RData::Soa {
            mname: self.ns_name(apex, 0),
            rname: apex.child(b"hostmaster").unwrap_or_else(|_| apex.clone()),
            serial: 2020041101,
            refresh: 3600,
            retry: 600,
            expire: 2_419_200,
            minimum: self.negative_ttl,
        }
    }

    /// Deterministic NS host names for a delegation.
    fn ns_name(&self, delegation: &Name, i: u8) -> Name {
        delegation
            .child(format!("ns{}", i + 1).as_bytes())
            .unwrap_or_else(|_| delegation.clone())
    }
}

/// A DS record with SHA-256-sized digest.
fn ds_rdata(delegation: &Name) -> RData {
    let h = hash_name(delegation);
    RData::Ds {
        key_tag: (h & 0xffff) as u16,
        algorithm: 8,
        digest_type: 2,
        digest: (0..32).map(|i| ((h >> (i % 8)) & 0xff) as u8).collect(),
    }
}

/// The companion SHA-384 DS record registrars commonly publish.
fn ds_rdata_sha384(delegation: &Name) -> RData {
    let h = hash_name(delegation).rotate_left(17);
    RData::Ds {
        key_tag: (h & 0xffff) as u16,
        algorithm: 8,
        digest_type: 4,
        digest: (0..48).map(|i| ((h >> (i % 8)) & 0xff) as u8).collect(),
    }
}

/// An RSA-1024-sized RRSIG (128-byte signature), the common case for
/// TLD zones in the studied window.
fn rrsig_for(covered: RType, signer: &Name) -> RData {
    RData::Rrsig {
        type_covered: covered,
        algorithm: 8,
        labels: signer.label_count() as u8,
        original_ttl: 3600,
        expiration: 1_600_000_000,
        inception: 1_598_000_000,
        key_tag: 20826,
        signer: signer.clone(),
        signature: vec![0x5a; 128],
    }
}

/// A KSK-sized RRSIG (256-byte signature) for DNSKEY answers.
fn rrsig_big(covered: RType, signer: &Name) -> RData {
    RData::Rrsig {
        type_covered: covered,
        algorithm: 8,
        labels: signer.label_count() as u8,
        original_ttl: 3600,
        expiration: 1_600_000_000,
        inception: 1_598_000_000,
        key_tag: 19036,
        signer: signer.clone(),
        signature: vec![0xa5; 256],
    }
}

fn hash_name(name: &Name) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in name.as_wire() {
        h = (h ^ b.to_ascii_lowercase() as u64).wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_wire::builder::MessageBuilder;

    fn zone() -> ZoneModel {
        ZoneModel::nl(1000)
    }

    fn query(qname: &Name, qtype: RType, edns: Option<(u16, bool)>) -> Message {
        let mut b = MessageBuilder::query(99, qname.clone(), qtype);
        if let Some((size, do_bit)) = edns {
            b = b.with_edns(size, do_bit);
        }
        b.build()
    }

    #[test]
    fn referral_for_registered_domain() {
        let auth = Authoritative::new(zone());
        let d = auth.zone().registered_domain(7);
        let q = query(&d, RType::A, Some((1232, false)));
        let a = auth.respond(&q, true);
        assert_eq!(a.rcode, Rcode::NoError);
        assert!(
            a.message.answers.is_empty(),
            "referral has no answer section"
        );
        assert!(a.message.authorities.iter().all(|r| r.rtype() == RType::Ns));
        assert!(a.message.authorities.len() >= 2);
        assert_eq!(a.cache_ttl_secs, 3600);
    }

    #[test]
    fn signed_referral_with_do_carries_ds() {
        let auth = Authoritative::new(zone());
        let d = auth.zone().registered_domain(7);
        let q = query(&d, RType::A, Some((1232, true)));
        let a = auth.respond(&q, true);
        let types: Vec<RType> = a.message.authorities.iter().map(|r| r.rtype()).collect();
        assert!(types.contains(&RType::Ds));
        assert!(types.contains(&RType::Rrsig));
        // and is substantially larger than the unsigned one
        let plain = auth.respond(&query(&d, RType::A, Some((1232, false))), true);
        let signed_len = a.message.encode().unwrap().len();
        let plain_len = plain.message.encode().unwrap().len();
        assert!(signed_len > plain_len + 150, "{signed_len} vs {plain_len}");
    }

    #[test]
    fn unsigned_delegation_with_do_gets_nsec_proof() {
        let auth = Authoritative::new(zone());
        let d = auth.zone().registered_domain(7);
        let a = auth.respond(&query(&d, RType::A, Some((4096, true))), false);
        let types: Vec<RType> = a.message.authorities.iter().map(|r| r.rtype()).collect();
        assert!(types.contains(&RType::Nsec));
        assert!(!types.contains(&RType::Ds));
    }

    #[test]
    fn nxdomain_for_junk() {
        let auth = Authoritative::new(zone());
        let junk: Name = "zzz9qqq.nl.".parse().unwrap();
        let a = auth.respond(&query(&junk, RType::A, Some((512, false))), false);
        assert_eq!(a.rcode, Rcode::NxDomain);
        assert!(a.message.header.rcode == Rcode::NxDomain);
        assert_eq!(a.message.authorities.len(), 1, "just the SOA");
        assert_eq!(a.cache_ttl_secs, 900);
    }

    #[test]
    fn signed_nxdomain_is_large() {
        let auth = Authoritative::new(zone());
        let junk: Name = "zzz9qqq.nl.".parse().unwrap();
        let plain = auth.respond(&query(&junk, RType::A, Some((4096, false))), false);
        let signed = auth.respond(&query(&junk, RType::A, Some((4096, true))), false);
        let p = plain.message.encode().unwrap().len();
        let s = signed.message.encode().unwrap().len();
        assert!(s > p + 250, "{s} vs {p}");
        assert!(s > 512, "signed NXDOMAIN must not fit 512B");
    }

    #[test]
    fn dnskey_answer_exceeds_1232() {
        let auth = Authoritative::new(zone());
        let apex = auth.zone().apex().clone();
        let a = auth.respond(&query(&apex, RType::Dnskey, Some((4096, true))), true);
        let len = a.message.encode().unwrap().len();
        assert!(len > 1232, "DNSKEY+RRSIG = {len} must truncate at 1232");
        assert!(len < 4096);
    }

    #[test]
    fn ds_query_answered_from_parent() {
        let auth = Authoritative::new(zone());
        let d = auth.zone().registered_domain(3);
        let a = auth.respond(&query(&d, RType::Ds, Some((1232, true))), true);
        assert_eq!(a.rcode, Rcode::NoError);
        assert_eq!(a.message.answers[0].rtype(), RType::Ds);
        // unsigned delegation: NODATA
        let a = auth.respond(&query(&d, RType::Ds, Some((1232, true))), false);
        assert!(a.message.answers.is_empty());
        assert_eq!(a.rcode, Rcode::NoError);
    }

    #[test]
    fn apex_soa_and_ns() {
        let auth = Authoritative::new(zone());
        let apex = auth.zone().apex().clone();
        let a = auth.respond(&query(&apex, RType::Soa, None), true);
        assert_eq!(a.message.answers[0].rtype(), RType::Soa);
        let a = auth.respond(&query(&apex, RType::Ns, None), true);
        assert_eq!(a.message.answers.len(), 3);
    }

    #[test]
    fn responses_roundtrip_on_the_wire() {
        let auth = Authoritative::new(zone());
        let d = auth.zone().registered_domain(1);
        for (qt, signed) in [(RType::A, true), (RType::Ds, true), (RType::Mx, false)] {
            let a = auth.respond(&query(&d, qt, Some((1232, true))), signed);
            let bytes = a.message.encode().unwrap();
            let parsed = Message::parse(&bytes).unwrap();
            assert_eq!(parsed, a.message);
        }
    }

    #[test]
    fn truncation_happens_for_small_edns_on_signed_zone() {
        let auth = Authoritative::new(zone());
        let d = auth.zone().registered_domain(11);
        let q = query(&d, RType::A, Some((512, true)));
        let a = auth.respond(&q, true);
        let full = a.message.encode().unwrap().len();
        let (bytes, truncated) = a.message.encode_with_limit(512).unwrap();
        assert!(truncated, "signed referral must exceed 512 (got {full})");
        let parsed = Message::parse(&bytes).unwrap();
        assert!(parsed.header.truncated);
    }

    #[test]
    fn query_without_question_is_formerr() {
        let auth = Authoritative::new(zone());
        let mut q = MessageBuilder::query(1, Name::root(), RType::A).build();
        q.questions.clear();
        let a = auth.respond(&q, false);
        assert_eq!(a.rcode, Rcode::FormErr);
    }
}

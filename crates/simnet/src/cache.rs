//! Per-resolver TTL caches.
//!
//! Caching is why authoritative vantage points only see the cache-miss
//! shadow of user demand (§2 of the paper): repeated queries for a hot
//! name within a TTL are absorbed at the resolver. The simulator runs a
//! bounded positive/negative cache per resolver; the cache-hit funnel is
//! also the subject of one of the ablation benches.

use netbase::time::{SimDuration, SimTime};
use std::collections::HashMap;

/// A cache key: the domain-index/qtype pair the resolver resolved.
/// Using the generated domain index (not the qname text) keeps keys
/// small; distinct qnames map to distinct indices by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Domain identity (zone-local registration index, or a hash for
    /// junk/deep names).
    pub domain: u64,
    /// Numeric record type.
    pub rtype: u16,
}

/// One cache entry: when it was inserted and how long it lives. Expiry
/// is computed per lookup as `inserted + ttl` — every record decays on
/// its own clock, never on a shared wall-time bucket boundary. (An
/// entry inserted one second before a wall hour with a 120 s TTL must
/// survive 119 s into the next hour.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct CacheEntry {
    inserted: SimTime,
    ttl: SimDuration,
}

impl CacheEntry {
    fn expiry(&self) -> SimTime {
        self.inserted + self.ttl
    }

    fn live_at(&self, now: SimTime) -> bool {
        self.expiry() > now
    }
}

/// A TTL cache with a hard entry cap (oldest-expiry eviction on
/// overflow) and hit/miss accounting.
#[derive(Debug, Default)]
pub struct TtlCache {
    entries: HashMap<CacheKey, CacheEntry>,
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl TtlCache {
    /// A cache bounded to `capacity` entries (0 disables caching).
    pub fn new(capacity: usize) -> Self {
        TtlCache {
            entries: HashMap::new(),
            capacity,
            hits: 0,
            misses: 0,
        }
    }

    /// Look up `key` at time `now`. A hit requires an entry whose own
    /// `inserted + ttl` horizon is still ahead of `now`.
    /// Misses are *not* auto-inserted; call [`TtlCache::insert`] after
    /// the authoritative answer arrives.
    pub fn lookup(&mut self, key: CacheKey, now: SimTime) -> bool {
        match self.entries.get(&key) {
            Some(e) if e.live_at(now) => {
                self.hits += 1;
                true
            }
            Some(_) => {
                self.entries.remove(&key);
                self.misses += 1;
                false
            }
            None => {
                self.misses += 1;
                false
            }
        }
    }

    /// Store an answer valid for `ttl` from `now`.
    pub fn insert(&mut self, key: CacheKey, now: SimTime, ttl: SimDuration) {
        if self.capacity == 0 || ttl == SimDuration::ZERO {
            return;
        }
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&key) {
            // evict the entry expiring soonest (cheap scan is fine at
            // the bounded sizes resolvers use)
            if let Some(victim) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.expiry())
                .map(|(k, _)| *k)
            {
                self.entries.remove(&victim);
            }
        }
        self.entries.insert(key, CacheEntry { inserted: now, ttl });
    }

    /// Remaining lifetime of a live entry at `now`, if any.
    pub fn remaining(&self, key: CacheKey, now: SimTime) -> Option<SimDuration> {
        self.entries
            .get(&key)
            .filter(|e| e.live_at(now))
            .map(|e| e.expiry() - now)
    }

    /// Entries currently stored (including expired-but-unswept).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Hits observed so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses observed so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit ratio in `[0, 1]`; 0 when no lookups happened.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(domain: u64) -> CacheKey {
        CacheKey { domain, rtype: 1 }
    }

    #[test]
    fn miss_then_hit_then_expiry() {
        let mut c = TtlCache::new(100);
        let t0 = SimTime::from_unix_secs(1000);
        assert!(!c.lookup(k(1), t0));
        c.insert(k(1), t0, SimDuration::from_secs(60));
        assert!(c.lookup(k(1), t0 + SimDuration::from_secs(59)));
        assert!(
            !c.lookup(k(1), t0 + SimDuration::from_secs(60)),
            "expiry is exclusive"
        );
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn qtype_distinguishes_entries() {
        let mut c = TtlCache::new(100);
        let t0 = SimTime::from_unix_secs(0);
        c.insert(
            CacheKey {
                domain: 5,
                rtype: 1,
            },
            t0,
            SimDuration::from_secs(60),
        );
        assert!(c.lookup(
            CacheKey {
                domain: 5,
                rtype: 1
            },
            t0
        ));
        assert!(!c.lookup(
            CacheKey {
                domain: 5,
                rtype: 28
            },
            t0
        ));
    }

    #[test]
    fn capacity_evicts_soonest_expiry() {
        let mut c = TtlCache::new(2);
        let t0 = SimTime::from_unix_secs(0);
        c.insert(k(1), t0, SimDuration::from_secs(10));
        c.insert(k(2), t0, SimDuration::from_secs(100));
        c.insert(k(3), t0, SimDuration::from_secs(50)); // evicts k(1)
        assert_eq!(c.len(), 2);
        assert!(!c.lookup(k(1), t0));
        assert!(c.lookup(k(2), t0));
        assert!(c.lookup(k(3), t0));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = TtlCache::new(0);
        let t0 = SimTime::from_unix_secs(0);
        c.insert(k(1), t0, SimDuration::from_secs(60));
        assert!(!c.lookup(k(1), t0));
        assert!(c.is_empty());
    }

    #[test]
    fn zero_ttl_not_stored() {
        let mut c = TtlCache::new(10);
        let t0 = SimTime::from_unix_secs(0);
        c.insert(k(1), t0, SimDuration::ZERO);
        assert!(!c.lookup(k(1), t0));
    }

    #[test]
    fn hit_ratio_accounting() {
        let mut c = TtlCache::new(10);
        let t0 = SimTime::from_unix_secs(0);
        assert_eq!(c.hit_ratio(), 0.0);
        c.lookup(k(1), t0); // miss
        c.insert(k(1), t0, SimDuration::from_secs(60));
        c.lookup(k(1), t0); // hit
        c.lookup(k(1), t0); // hit
        assert!((c.hit_ratio() - 2.0 / 3.0).abs() < 1e-9);
    }

    /// Regression (ISSUE 10 satellite): expiry must be per-entry
    /// `inserted + ttl`, not a wall-clock bucket. An entry inserted one
    /// second before a wall-hour boundary with a 120 s TTL survives
    /// 119 s into the next hour and dies exactly at insertion + TTL.
    #[test]
    fn expiry_is_insertion_plus_ttl_not_wall_bucket() {
        let mut c = TtlCache::new(16);
        let hour = SimTime::from_unix_secs(3600);
        let t0 = SimTime::from_unix_secs(3599); // one second before the hour
        c.insert(k(7), t0, SimDuration::from_secs(120));
        // well past the wall-hour boundary, still live
        assert!(c.lookup(k(7), hour + SimDuration::from_secs(60)));
        assert!(c.lookup(k(7), t0 + SimDuration::from_secs(119)));
        assert_eq!(
            c.remaining(k(7), t0 + SimDuration::from_secs(119)),
            Some(SimDuration::from_secs(1))
        );
        // dead exactly at insertion + ttl, not at the next bucket tick
        assert!(!c.lookup(k(7), t0 + SimDuration::from_secs(120)));
    }

    /// Property: the cache never serves an entry past its TTL.
    #[test]
    fn never_serves_expired() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut c = TtlCache::new(50);
        let mut truth: HashMap<CacheKey, SimTime> = HashMap::new();
        let mut now = SimTime::from_unix_secs(0);
        for _ in 0..5000 {
            now += SimDuration::from_secs(rng.gen_range(0..30));
            let key = k(rng.gen_range(0..80));
            if rng.gen_bool(0.5) {
                let ttl = SimDuration::from_secs(rng.gen_range(1..120));
                c.insert(key, now, ttl);
                truth.insert(key, now + ttl);
            } else if c.lookup(key, now) {
                let expiry = truth.get(&key).expect("hit implies inserted");
                assert!(*expiry > now, "served at {now:?} expired {expiry:?}");
            }
        }
    }
}

//! Discrete-event DNS traffic simulator.
//!
//! This crate is the data-gate substitution for the paper's private pcap
//! archives: it synthesizes resolver-to-authoritative DNS traffic for
//! the three vantage points (`.nl`, `.nz`, B-Root) across the three
//! yearly snapshots, writing wire-format frames through the `.dnscap`
//! capture boundary that the `entrada` warehouse ingests.
//!
//! Everything the paper measures is generated *mechanistically* where
//! the mechanism matters, and *calibrated* where only the mixture
//! matters:
//!
//! - **Mechanistic**: QNAME minimization really strips qnames to one
//!   label below the zone cut and switches to NS queries; truncation
//!   really happens when an encoded response exceeds the advertised
//!   EDNS(0) size, and really triggers a TCP retry carrying a handshake
//!   RTT; resolver caches really absorb repeat queries for hot names;
//!   DS queries really follow referrals for signed delegations.
//! - **Calibrated**: per-provider query shares, qtype mixes, junk
//!   ratios, address-family fleets and EDNS-size distributions follow
//!   the paper's published aggregates (Tables 3-6, Figures 1-6), which
//!   are encoded in [`profile`].
//!
//! The module map: [`profile`] (calibration tables), [`fleet`]
//! (resolver fleets, Facebook sites, PTR zone), [`cache`] (TTL caches),
//! [`auth`] (the authoritative responder), [`engine`] (the generation
//! loop), [`scenario`] (the nine datasets plus the monthly series).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod auth;
pub mod cache;
pub mod drive;
pub mod emerge;
pub mod engine;
pub mod fleet;
pub mod profile;
pub mod ptr;
pub mod rrl;
pub mod scenario;

pub use drive::{Driver, PlannedQuery};
pub use engine::{DatasetStats, Engine};
pub use profile::{qmin_start, FleetSpec, SiteSpec, Vantage};
pub use ptr::PtrDb;
pub use scenario::{dataset, monthly_google, monthly_provider, DatasetSpec, Scale, Week};

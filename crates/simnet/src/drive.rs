//! Profile-driven query sampling for external drivers.
//!
//! The offline [`Engine`] *pushes* a whole
//! dataset into a capture file. A live load generator instead *pulls*
//! one query at a time and puts it on a real socket. [`Driver`] exposes
//! the same per-query decision chain the engine uses — fleet choice by
//! traffic share, Zipf name popularity, per-CP qtype mixes, Q-min,
//! resolver caches, EDNS parameters, 0x20 mixing, DNSSEC follow-ups,
//! direct-TCP shares — against the *same* fleet materialization
//! (addresses, sites, activity weights), so traffic captured live is
//! attributable by the unchanged offline analysis pipeline.

use crate::cache::{CacheKey, TtlCache};
use crate::engine::{choose_server_family, mix_case_0x20, name_key, pick_question_for, Engine};
use crate::scenario::{DatasetSpec, Scale};
use dns_wire::builder::MessageBuilder;
use dns_wire::name::Name;
use dns_wire::types::RType;
use netbase::flow::IpVersion;
use netbase::time::SimTime;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, VecDeque};
use std::net::IpAddr;

/// Per-resolver cache capacity (entries); matches the offline engine.
const CACHE_CAP: usize = 4096;
/// How many cache-absorbed demand events one [`Driver::sample`] call
/// skips before giving up and emitting a (possibly cached) query anyway.
const MAX_CACHE_SKIPS: u32 = 50;

/// One query the driver wants on the wire.
#[derive(Debug, Clone)]
pub struct PlannedQuery {
    /// The encoded DNS query message (UDP payload / TCP pre-framing).
    pub wire: Vec<u8>,
    /// Query name as sent (0x20 mixing already applied).
    pub qname: Name,
    /// Query type.
    pub qtype: RType,
    /// Logical resolver source address (from the fleet's address plan).
    pub src: IpAddr,
    /// Logical authoritative destination address (per the dataset's
    /// server list and the resolver's RTT-driven server preference).
    pub dst: IpAddr,
    /// Advertised EDNS UDP size (0 = no EDNS on this query).
    pub edns_size: u16,
    /// This resolver sends the query over TCP outright (the per-site /
    /// per-fleet direct-TCP share, Table 5).
    pub tcp_direct: bool,
    /// The response will be junk (non-NOERROR).
    pub is_junk: bool,
    /// Index of the originating fleet (see [`Driver::fleet_name`]).
    pub fleet: usize,
}

/// A pull-mode sampler over a materialized dataset.
pub struct Driver {
    engine: Engine,
    rng: StdRng,
    fleet_cum: Vec<f64>,
    caches: Vec<HashMap<u32, TtlCache>>,
    emitted: Vec<u64>,
    junk_emitted: Vec<u64>,
    /// DNSSEC follow-up queries waiting to go out.
    pending: VecDeque<PlannedQuery>,
    cache_hits: u64,
}

impl Driver {
    /// Materialize `spec` exactly as the offline engine would and wrap
    /// it in a pull-mode driver.
    pub fn new(spec: DatasetSpec, scale: Scale, seed: u64) -> Driver {
        Driver::from_engine(Engine::new(spec, scale, seed), seed)
    }

    /// Wrap an already-built engine (shares its fleets and zone).
    pub fn from_engine(engine: Engine, seed: u64) -> Driver {
        let mut acc = 0.0;
        let mut fleet_cum: Vec<f64> = engine
            .fleets
            .iter()
            .map(|f| {
                acc += f.spec.traffic_share.max(0.0);
                acc
            })
            .collect();
        if acc > 0.0 {
            for v in &mut fleet_cum {
                *v /= acc;
            }
        }
        let n = engine.fleets.len();
        Driver {
            engine,
            // a distinct stream from the offline generator's, so live
            // runs do not replay the offline capture byte-for-byte
            rng: StdRng::seed_from_u64(seed ^ 0x11fe_d81e),
            fleet_cum,
            caches: (0..n).map(|_| HashMap::new()).collect(),
            emitted: vec![0; n],
            junk_emitted: vec![0; n],
            pending: VecDeque::new(),
            cache_hits: 0,
        }
    }

    /// The materialized dataset behind this driver.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Name of fleet `idx` (as reported in [`PlannedQuery::fleet`]).
    pub fn fleet_name(&self, idx: usize) -> &str {
        &self.engine.fleets[idx].spec.name
    }

    /// Demand events absorbed by the simulated resolver caches so far.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits
    }

    /// Sample the next query to put on the wire at dataset time `t`.
    ///
    /// Cache-absorbed demand is skipped internally (the live stream,
    /// like the real vantage, only sees the cache-miss shadow), and
    /// DNSSEC follow-up queries (DS at the delegation, DNSKEY at the
    /// apex) are queued and returned on subsequent calls.
    pub fn sample(&mut self, t: SimTime) -> PlannedQuery {
        if let Some(q) = self.pending.pop_front() {
            return q;
        }
        for _ in 0..MAX_CACHE_SKIPS {
            if let Some(q) = self.try_sample(t) {
                return q;
            }
        }
        // hot caches everywhere: emit the next demand event uncached
        self.force_sample(t)
    }

    /// One demand event; `None` when a resolver cache absorbed it.
    fn try_sample(&mut self, t: SimTime) -> Option<PlannedQuery> {
        let fi = pick_cum(&self.fleet_cum, self.rng.gen());
        let want_junk = {
            let fleet = &self.engine.fleets[fi];
            (self.junk_emitted[fi] as f64) < fleet.spec.junk_ratio * (self.emitted[fi] + 1) as f64
        };
        let r_idx = self.engine.fleets[fi].pick(&mut self.rng);

        let (qname, qtype, signed, cacheable, idx) = self.pick_question(fi, want_junk, t);
        if cacheable {
            let ckey = CacheKey {
                domain: name_key(&qname),
                rtype: qtype.to_u16(),
            };
            let cache = self.caches[fi]
                .entry(r_idx as u32)
                .or_insert_with(|| TtlCache::new(CACHE_CAP));
            if cache.lookup(ckey, t) {
                self.cache_hits += 1;
                return None;
            }
            let ttl = self.engine.fleets[fi].spec.cache_ttl;
            self.caches[fi]
                .get_mut(&(r_idx as u32))
                .expect("just inserted")
                .insert(ckey, t, ttl);
        }
        Some(self.build_query(fi, r_idx, qname, qtype, signed, cacheable, idx, t))
    }

    /// Emit a demand event without consulting the caches.
    fn force_sample(&mut self, t: SimTime) -> PlannedQuery {
        let fi = pick_cum(&self.fleet_cum, self.rng.gen());
        let want_junk = {
            let fleet = &self.engine.fleets[fi];
            (self.junk_emitted[fi] as f64) < fleet.spec.junk_ratio * (self.emitted[fi] + 1) as f64
        };
        let r_idx = self.engine.fleets[fi].pick(&mut self.rng);
        let (qname, qtype, signed, cacheable, idx) = self.pick_question(fi, want_junk, t);
        self.build_query(fi, r_idx, qname, qtype, signed, cacheable, idx, t)
    }

    /// The engine's qname/qtype decision chain (shared code, so live
    /// and offline runs cannot drift apart): junk vs Zipf-popular
    /// valid names, deep names, Q-min rewriting.
    fn pick_question(
        &mut self,
        fi: usize,
        is_junk: bool,
        t: SimTime,
    ) -> (Name, RType, bool, bool, u64) {
        pick_question_for(
            self.engine.zone(),
            &self.engine.zipf,
            &self.engine.junk,
            &self.engine.fleets[fi].spec,
            t,
            is_junk,
            &mut self.rng,
        )
    }

    /// Encode the query and queue DNSSEC follow-ups.
    #[allow(clippy::too_many_arguments)]
    fn build_query(
        &mut self,
        fi: usize,
        r_idx: usize,
        qname: Name,
        qtype: RType,
        signed: bool,
        cacheable: bool,
        _idx: u64,
        t: SimTime,
    ) -> PlannedQuery {
        self.emitted[fi] += 1;
        if !cacheable {
            self.junk_emitted[fi] += 1;
        }
        let follow_ups = {
            let spec = &self.engine.fleets[fi].spec;
            spec.validates
                && cacheable
                && signed
                && qtype != RType::Ds
                && self.rng.gen_bool(spec.ds_prob)
        };
        let dnskey = {
            let spec = &self.engine.fleets[fi].spec;
            spec.validates && self.rng.gen_bool(spec.dnskey_prob)
        };
        let planned = self.encode_one(fi, r_idx, &qname, qtype, !cacheable);
        if follow_ups {
            let delegation = self.engine.zone().minimized_qname(&qname);
            let q = self.encode_one(fi, r_idx, &delegation, RType::Ds, false);
            self.pending.push_back(q);
        }
        if dnskey {
            let apex = self.engine.zone().apex().clone();
            let q = self.encode_one(fi, r_idx, &apex, RType::Dnskey, false);
            self.pending.push_back(q);
        }
        let _ = t;
        planned
    }

    /// Encode one wire query for `(fleet, resolver, qname, qtype)`.
    fn encode_one(
        &mut self,
        fi: usize,
        r_idx: usize,
        qname: &Name,
        qtype: RType,
        is_junk: bool,
    ) -> PlannedQuery {
        let rng = &mut self.rng;
        let fleet = &self.engine.fleets[fi];
        let spec = &fleet.spec;
        let resolver = &fleet.resolvers[r_idx];
        let server_count = self.engine.spec().servers.len();
        let (server, family) = choose_server_family(spec, resolver, server_count, rng);
        let src = resolver.addr_for(family);
        let server_spec = &self.engine.spec().servers[server];
        let dst: IpAddr = match IpVersion::of(src) {
            IpVersion::V4 => IpAddr::V4(server_spec.v4),
            IpVersion::V6 => IpAddr::V6(server_spec.v6),
        };
        let wire_qname = if resolver.mix_case {
            mix_case_0x20(qname, rng)
        } else {
            qname.clone()
        };
        let mut builder = MessageBuilder::query(rng.gen(), wire_qname.clone(), qtype);
        if resolver.edns_size > 0 {
            builder = builder.with_edns(resolver.edns_size, resolver.do_bit);
        }
        let wire = builder.build().encode().expect("generated queries encode");
        let site_tcp_extra = spec
            .sites
            .get(resolver.site as usize)
            .and_then(|s| s.tcp_extra)
            .unwrap_or(spec.tcp_extra);
        let tcp_direct = site_tcp_extra > 0.0 && rng.gen_bool(site_tcp_extra);
        PlannedQuery {
            wire,
            qname: wire_qname,
            qtype,
            src,
            dst,
            edns_size: resolver.edns_size,
            tcp_direct,
            is_junk,
            fleet: fi,
        }
    }
}

/// Index into a normalized cumulative-weight table.
fn pick_cum(cum: &[f64], u: f64) -> usize {
    match cum.partition_point(|c| *c < u) {
        i if i >= cum.len() => cum.len() - 1,
        i => i,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Vantage;
    use crate::scenario::dataset;
    use dns_wire::message::Message;

    fn driver() -> Driver {
        Driver::new(dataset(Vantage::Nl, 2020), Scale::tiny(), 42)
    }

    #[test]
    fn sampled_queries_are_wire_valid() {
        let mut d = driver();
        let t = d.engine().spec().start;
        for _ in 0..500 {
            let q = d.sample(t);
            let msg = Message::parse(&q.wire).expect("valid query wire");
            assert!(!msg.header.response);
            let question = msg.question().expect("one question");
            assert_eq!(question.qtype, q.qtype);
            if q.edns_size > 0 {
                assert_eq!(
                    msg.edns.as_ref().map(|e| e.udp_payload_size),
                    Some(q.edns_size)
                );
            } else {
                assert!(msg.edns.is_none());
            }
        }
    }

    #[test]
    fn sources_come_from_fleet_address_plan() {
        let mut d = driver();
        let t = d.engine().spec().start;
        let servers: Vec<IpAddr> = d
            .engine()
            .spec()
            .servers
            .iter()
            .flat_map(|s| [IpAddr::V4(s.v4), IpAddr::V6(s.v6)])
            .collect();
        for _ in 0..200 {
            let q = d.sample(t);
            assert!(
                servers.contains(&q.dst),
                "dst {} is a dataset server",
                q.dst
            );
            assert_ne!(q.src, q.dst);
        }
    }

    #[test]
    fn fleet_mix_tracks_traffic_share() {
        let mut d = driver();
        let t = d.engine().spec().start;
        let n = 20_000;
        let mut counts = vec![0u64; d.engine.fleets.len()];
        for _ in 0..n {
            let q = d.sample(t);
            counts[q.fleet] += 1;
        }
        for (fi, fleet) in d.engine.fleets.iter().enumerate() {
            let got = counts[fi] as f64 / n as f64;
            assert!(
                (got - fleet.spec.traffic_share).abs() < 0.05,
                "{}: got {got}, want {}",
                fleet.spec.name,
                fleet.spec.traffic_share
            );
        }
        assert!(d.cache_hits() > 0, "hot names hit the simulated caches");
    }

    #[test]
    fn junk_share_tracks_spec() {
        let mut d = driver();
        let t = d.engine().spec().start;
        let n = 8_000;
        let junk = (0..n).filter(|_| d.sample(t).is_junk).count();
        let got = junk as f64 / n as f64;
        let want = 1.0 - d.engine().spec().valid_fraction;
        assert!((got - want).abs() < 0.06, "junk {got} vs {want}");
    }

    #[test]
    fn deterministic_per_seed() {
        let sample_ids = |seed: u64| -> Vec<Vec<u8>> {
            let mut d = Driver::new(dataset(Vantage::Nz, 2020), Scale::tiny(), seed);
            let t = d.engine().spec().start;
            (0..50).map(|_| d.sample(t).wire).collect()
        };
        assert_eq!(sample_ids(3), sample_ids(3));
        assert_ne!(sample_ids(3), sample_ids(4));
    }
}

//! The synthetic Facebook reverse-DNS (PTR) zone.
//!
//! §4.3 of the paper identifies dual-stack Facebook resolvers by
//! reverse-looking-up every address that queried the vantage: Facebook's
//! PTR names embed an airport-style site code, and for 12 of the 13
//! sites they also embed the host's IPv4 address — even on the PTR of an
//! IPv6 address. Joining v4 and v6 PTR names on that embedded IPv4 key
//! reveals which pairs are the same machine. This module reproduces that
//! naming scheme so the `core::dualstack` analysis can run the same join.

use dns_wire::name::Name;
use std::collections::HashMap;
use std::net::{IpAddr, Ipv4Addr};

/// A reverse-DNS database: address → PTR name.
#[derive(Debug, Default, Clone)]
pub struct PtrDb {
    records: HashMap<IpAddr, Name>,
}

impl PtrDb {
    /// Empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register the PTR pair for one dual-stack Facebook resolver at
    /// `site`. When `embed_v4` is set (12 of 13 sites), both PTR names
    /// carry the dashed IPv4; otherwise a host counter is used and the
    /// join is impossible (the paper's 13th site).
    pub fn register_dual_stack(
        &mut self,
        site: &str,
        host_id: u32,
        v4: Ipv4Addr,
        v6: IpAddr,
        embed_v4: bool,
    ) {
        let v4_name = Self::ptr_name(site, host_id, Some(v4), false, embed_v4);
        let v6_name = Self::ptr_name(site, host_id, Some(v4), true, embed_v4);
        self.records.insert(IpAddr::V4(v4), v4_name);
        self.records.insert(v6, v6_name);
    }

    /// Drop the PTR record for an address (the paper found 1 IPv4 and
    /// 2 IPv6 addresses with no PTR at all).
    pub fn remove(&mut self, ip: IpAddr) {
        self.records.remove(&ip);
    }

    /// The reverse lookup itself.
    pub fn lookup(&self, ip: IpAddr) -> Option<&Name> {
        self.records.get(&ip)
    }

    /// Number of PTR records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterate over all `(address, name)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&IpAddr, &Name)> {
        self.records.iter()
    }

    /// Construct a Facebook-convention PTR name:
    /// `fbdns-<site>-<a>-<b>-<c>-<d>.<fam>.fbinfra.example.` when the
    /// IPv4 is embedded, else `fbdns-<site>-h<id>.<fam>.fbinfra.example.`
    fn ptr_name(
        site: &str,
        host_id: u32,
        v4: Option<Ipv4Addr>,
        is_v6: bool,
        embed_v4: bool,
    ) -> Name {
        let host_label = match (embed_v4, v4) {
            (true, Some(a)) => {
                let o = a.octets();
                format!("fbdns-{site}-{}-{}-{}-{}", o[0], o[1], o[2], o[3])
            }
            _ => format!("fbdns-{site}-h{host_id}"),
        };
        let fam = if is_v6 { "six" } else { "four" };
        format!("{host_label}.{fam}.fbinfra.example")
            .parse()
            .expect("generated PTR names parse")
    }
}

/// Parse a Facebook-convention PTR name back into `(site, embedded
/// IPv4)`. Returns `None` for non-matching names or names without the
/// embedded address — exactly the information boundary the paper's join
/// had to work with.
pub fn parse_fb_ptr(name: &Name) -> Option<(String, Option<Ipv4Addr>)> {
    let first = name.labels().next()?;
    let s = std::str::from_utf8(first).ok()?;
    let rest = s.strip_prefix("fbdns-")?;
    let mut parts = rest.split('-');
    let site = parts.next()?.to_string();
    let tail: Vec<&str> = parts.collect();
    if tail.len() == 4 {
        let octets: Option<Vec<u8>> = tail.iter().map(|p| p.parse().ok()).collect();
        if let Some(o) = octets {
            return Some((site, Some(Ipv4Addr::new(o[0], o[1], o[2], o[3]))));
        }
    }
    if tail.len() == 1 && tail[0].starts_with('h') {
        return Some((site, None));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dual_stack_join_via_embedded_v4() {
        let mut db = PtrDb::new();
        let v4: Ipv4Addr = "157.240.9.7".parse().unwrap();
        let v6: IpAddr = "2a03:2880::9:7".parse().unwrap();
        db.register_dual_stack("ams", 1, v4, v6, true);
        let (site4, embed4) = parse_fb_ptr(db.lookup(IpAddr::V4(v4)).unwrap()).unwrap();
        let (site6, embed6) = parse_fb_ptr(db.lookup(v6).unwrap()).unwrap();
        assert_eq!(site4, "ams");
        assert_eq!(site6, "ams");
        assert_eq!(embed4, Some(v4));
        assert_eq!(embed6, Some(v4), "v6 PTR embeds the v4 key");
    }

    #[test]
    fn thirteenth_site_has_no_embedded_v4() {
        let mut db = PtrDb::new();
        let v4: Ipv4Addr = "157.240.1.1".parse().unwrap();
        let v6: IpAddr = "2a03:2880::1:1".parse().unwrap();
        db.register_dual_stack("sjc", 42, v4, v6, false);
        let (_, embed) = parse_fb_ptr(db.lookup(v6).unwrap()).unwrap();
        assert_eq!(embed, None, "no join key at the unembedded site");
    }

    #[test]
    fn missing_ptr_records() {
        let mut db = PtrDb::new();
        let v4: Ipv4Addr = "157.240.2.2".parse().unwrap();
        let v6: IpAddr = "2a03:2880::2:2".parse().unwrap();
        db.register_dual_stack("fra", 3, v4, v6, true);
        assert_eq!(db.len(), 2);
        db.remove(v6);
        assert!(db.lookup(v6).is_none());
        assert!(db.lookup(IpAddr::V4(v4)).is_some());
    }

    #[test]
    fn foreign_names_do_not_parse() {
        let n: Name = "resolver1.example.nl.".parse().unwrap();
        assert!(parse_fb_ptr(&n).is_none());
        let n: Name = "fbdns-ams-not-an-ip-x.four.fbinfra.example."
            .parse()
            .unwrap();
        assert!(parse_fb_ptr(&n).is_none());
        assert!(parse_fb_ptr(&Name::root()).is_none());
    }

    #[test]
    fn ptr_names_are_valid_dns() {
        let mut db = PtrDb::new();
        db.register_dual_stack(
            "gru",
            7,
            "255.255.255.255".parse().unwrap(),
            "2a03:2880::ffff".parse().unwrap(),
            true,
        );
        for (_, name) in db.iter() {
            assert!(name.label_count() >= 3);
            assert!(name.wire_len() <= 255);
        }
    }
}

//! Calibration tables: per-provider, per-vantage, per-year resolver
//! fleet behaviour, encoded from the paper's published aggregates.
//!
//! Sources, by field:
//! - `traffic_share`: Figure 1 (cloud query ratio), anchored on Table 4
//!   and Table 7 for Google's absolute volumes.
//! - `v6_*`, `tcp_extra`: Table 5 (query distribution per CP).
//! - `resolver_count`, `v6_resolver_frac`: Table 6 and Table 4.
//! - `edns_dist`: Figure 6 (EDNS(0) UDP size CDF) and §4.4 truncation
//!   rates (truncation itself is mechanistic — see `auth`).
//! - `qmin_from` / `qmin_frac`: §4.2.1 / Figure 3 — Google's rollout in
//!   Dec 2019 is the paper's confirmed date; the other adopters'
//!   (Cloudflare, Facebook, and Amazon-at-`.nz`) dates are not published,
//!   so representative dates inside the observed windows are used and
//!   recorded in EXPERIMENTS.md.
//! - `validates`, `ds_prob`: §4.2.2 (all CPs validate except one —
//!   Microsoft; Cloudflare DS-heavy; Google's DS share diluted).
//! - `junk_ratio`: Figure 4.

use asdb::cloud::Provider;
use dns_wire::types::RType;
use netbase::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// A measurement vantage point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Vantage {
    /// The `.nl` ccTLD authoritative servers (2 analyzed).
    Nl,
    /// The `.nz` ccTLD authoritative servers (6 analyzed).
    Nz,
    /// B-Root (DITL one-day samples).
    BRoot,
}

impl Vantage {
    /// Display label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Vantage::Nl => ".nl",
            Vantage::Nz => ".nz",
            Vantage::BRoot => "B-Root",
        }
    }
}

/// When each provider deployed QNAME minimization, as modelled.
/// Google's date is the one the paper verified with Google operators
/// (Dec 2019); the others are representative (see module docs).
pub fn qmin_start(provider: Provider) -> Option<SimTime> {
    match provider {
        Provider::Google => Some(SimTime::from_date(2019, 12, 1)),
        Provider::Cloudflare => Some(SimTime::from_date(2019, 2, 1)),
        Provider::Facebook => Some(SimTime::from_date(2019, 9, 1)),
        // Amazon's NS growth is only observed at .nz by w2020; the .nz
        // fleet spec opts in, .nl does not.
        Provider::Amazon => Some(SimTime::from_date(2020, 2, 15)),
        Provider::Microsoft => None,
    }
}

/// One Facebook-style anycast site: weight and per-server RTTs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SiteSpec {
    /// Airport-style site code, embedded in PTR names.
    pub code: String,
    /// Share of the fleet's queries originating at this site.
    pub weight: f64,
    /// Per-analyzed-server IPv4 RTT, milliseconds.
    pub rtt_v4_ms: Vec<f64>,
    /// Per-analyzed-server IPv6 RTT, milliseconds.
    pub rtt_v6_ms: Vec<f64>,
    /// Site-local EDNS size distribution override.
    pub edns_dist: Option<Vec<(u16, f64)>>,
    /// Site-local extra-TCP override (site 1 sends none).
    pub tcp_extra: Option<f64>,
}

/// A resolver fleet: the unit of traffic generation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetSpec {
    /// Stable name, e.g. `google-public`, `amazon`, `other-isp`.
    pub name: String,
    /// Owning cloud provider, if any.
    pub provider: Option<Provider>,
    /// Draw source addresses from the provider's public-DNS ranges.
    pub public_dns: bool,
    /// Resolver population (already scaled).
    pub resolver_count: u32,
    /// Fraction of the dataset's total queries this fleet sends.
    pub traffic_share: f64,
    /// Fraction of resolvers numbered from IPv6 space (ignored for
    /// dual-stack fleets).
    pub v6_resolver_frac: f64,
    /// Activity multiplier for IPv6 resolvers (lets a small v6
    /// population carry a configured traffic share, cf. Table 6 vs 5).
    pub v6_activity_boost: f64,
    /// Dual-stack fleet: every resolver has both addresses and picks a
    /// family per query by RTT preference (Facebook, §4.3).
    pub dual_stack: bool,
    /// Logistic bias towards IPv6 for dual-stack family choice.
    pub v6_bias: f64,
    /// Base qtype mix (weights; DS/DNSKEY arise mechanistically).
    pub qtype_mix: Vec<(RType, f64)>,
    /// Fraction of demand that is junk (non-NOERROR), Figure 4.
    pub junk_ratio: f64,
    /// EDNS(0) advertised-size distribution; size 0 means "no EDNS".
    pub edns_dist: Vec<(u16, f64)>,
    /// Fraction of resolvers setting the DO bit.
    pub do_bit_frac: f64,
    /// Fleet validates DNSSEC (sends DS/DNSKEY follow-ups).
    pub validates: bool,
    /// P(DS follow-up | NOERROR referral for a signed delegation).
    pub ds_prob: f64,
    /// P(DNSKEY query at the zone apex | emission).
    pub dnskey_prob: f64,
    /// Baseline TCP fraction beyond truncation-driven fallback.
    pub tcp_extra: f64,
    /// QNAME-minimization activation instant, if the fleet ever adopts.
    pub qmin_from: Option<SimTime>,
    /// Fraction of eligible queries minimized once active.
    pub qmin_frac: f64,
    /// Anycast sites (empty = one implicit site without PTR records).
    pub sites: Vec<SiteSpec>,
    /// Positive-cache TTL applied by resolvers.
    pub cache_ttl: SimDuration,
    /// Zipf exponent of per-resolver activity skew.
    pub activity_skew: f64,
    /// Fraction of resolvers applying 0x20 case randomization to
    /// qnames (an anti-spoofing measure; Google and Cloudflare do).
    pub case_randomization: f64,
}

impl FleetSpec {
    /// A neutral baseline fleet; provider builders below override.
    fn base(name: &str, resolver_count: u32, traffic_share: f64) -> FleetSpec {
        FleetSpec {
            name: name.to_string(),
            provider: None,
            public_dns: false,
            resolver_count: resolver_count.max(1),
            traffic_share,
            v6_resolver_frac: 0.25,
            v6_activity_boost: 1.0,
            dual_stack: false,
            v6_bias: 0.0,
            qtype_mix: standard_qtype_mix(),
            junk_ratio: 0.10,
            edns_dist: vec![(0, 0.10), (512, 0.15), (1232, 0.25), (4096, 0.50)],
            do_bit_frac: 0.40,
            validates: false,
            ds_prob: 0.0,
            dnskey_prob: 0.0,
            tcp_extra: 0.0,
            qmin_from: None,
            qmin_frac: 0.0,
            sites: Vec::new(),
            cache_ttl: SimDuration::from_secs(3600),
            activity_skew: 0.9,
            case_randomization: 0.0,
        }
    }

    /// Is QNAME minimization active for this fleet at `t`?
    pub fn qmin_active(&self, t: SimTime) -> bool {
        matches!(self.qmin_from, Some(start) if t >= start && self.qmin_frac > 0.0)
    }
}

/// The generic qtype mix of pre-Q-min resolver streams (Figure 2's 2018
/// panels): A-dominated, substantial AAAA, mail/text tail.
pub fn standard_qtype_mix() -> Vec<(RType, f64)> {
    vec![
        (RType::A, 0.52),
        (RType::Aaaa, 0.22),
        (RType::Mx, 0.07),
        (RType::Txt, 0.05),
        (RType::Ns, 0.04),
        (RType::Soa, 0.03),
        (RType::Cname, 0.02),
        (RType::Srv, 0.02),
        (RType::Caa, 0.01),
        (RType::Any, 0.02),
    ]
}

/// Calendar year → the week index 0/1/2 used in per-year tables.
fn yi(year: u16) -> usize {
    match year {
        2018 => 0,
        2019 => 1,
        2020 => 2,
        other => panic!("no calibration for {other}"),
    }
}

/// Google: split into the Public DNS service and the rest of the cloud
/// (Table 4/7). Returns both fleets.
pub fn google_fleets(vantage: Vantage, year: u16) -> Vec<FleetSpec> {
    let y = yi(year);
    // Figure 1 shares anchored on Table 4/7 absolute volumes.
    let share = match vantage {
        Vantage::Nl => [0.150, 0.157, 0.132][y],
        Vantage::Nz => [0.075, 0.076, 0.072][y],
        Vantage::BRoot => [0.026, 0.031, 0.036][y],
    };
    // Public-DNS fraction of Google queries (Table 4: 86.5%/88.4% in
    // w2020; Table 7: 89.3%/84.4% in w2019).
    let pub_frac = match vantage {
        Vantage::Nl => [0.87, 0.893, 0.865][y],
        Vantage::Nz => [0.86, 0.844, 0.884][y],
        Vantage::BRoot => [0.87, 0.87, 0.87][y],
    };
    // Resolver populations (Table 4/7; 2018 extrapolated).
    let (pub_resolvers, rest_resolvers) = match vantage {
        Vantage::Nl => [(3400, 18600), (3581, 19763), (3750, 20193)][y],
        Vantage::Nz => [(3400, 15600), (3575, 16514), (3840, 17390)][y],
        Vantage::BRoot => [(3600, 21000), (3700, 22000), (3900, 24000)][y],
    };
    let v6 = match vantage {
        Vantage::Nl => [0.34, 0.51, 0.48][y],
        Vantage::Nz => [0.39, 0.46, 0.46][y],
        Vantage::BRoot => [0.36, 0.48, 0.47][y],
    };
    let junk = junk_ratio(Provider::Google, vantage, year);
    let mut public = FleetSpec::base("google-public", pub_resolvers, share * pub_frac);
    public.provider = Some(Provider::Google);
    public.public_dns = true;
    public.v6_resolver_frac = v6;
    public.junk_ratio = junk;
    public.edns_dist = vec![(1232, 0.24), (4096, 0.76)];
    public.do_bit_frac = 1.0;
    public.validates = true;
    // Table 4 + §4.2.2: ~10M DS of 1.8B Google queries at .nl w2020 —
    // the public validator's DS stream diluted by the whole cloud.
    public.ds_prob = 0.018;
    public.dnskey_prob = 0.0006;
    public.qmin_from = qmin_start(Provider::Google);
    public.qmin_frac = 0.55;
    public.activity_skew = 0.6;
    public.case_randomization = 1.0;

    let mut rest = FleetSpec::base("google-rest", rest_resolvers, share * (1.0 - pub_frac));
    rest.provider = Some(Provider::Google);
    rest.v6_resolver_frac = v6;
    rest.junk_ratio = junk * 1.3;
    rest.edns_dist = vec![(1232, 0.24), (4096, 0.76)];
    rest.do_bit_frac = 0.3;
    rest.validates = true;
    rest.ds_prob = 0.004;
    rest.qmin_from = qmin_start(Provider::Google);
    rest.qmin_frac = 0.25;
    rest.activity_skew = 1.1;
    vec![public, rest]
}

/// Amazon: almost entirely IPv4 (Table 5/6), a little TCP, validates
/// weakly, adopts Q-min only in the `.nz` stream by w2020.
pub fn amazon_fleet(vantage: Vantage, year: u16) -> FleetSpec {
    let y = yi(year);
    let share = match vantage {
        Vantage::Nl => [0.055, 0.060, 0.065][y],
        Vantage::Nz => [0.080, 0.085, 0.090][y],
        Vantage::BRoot => [0.014, 0.017, 0.020][y],
    };
    let resolvers = match vantage {
        Vantage::Nl => [33000, 36000, 38317][y],
        Vantage::Nz => [30000, 32500, 34645][y],
        Vantage::BRoot => [36000, 39000, 42000][y],
    };
    // Table 6: 1.8% (.nl) / 2.1% (.nz) of w2020 resolvers are IPv6,
    // carrying 3-4% of queries -> activity boost ~1.7.
    let (v6_res, v6_traffic) = match vantage {
        Vantage::Nl => [(0.0, 0.0), (0.012, 0.02), (0.018, 0.03)][y],
        Vantage::Nz => [(0.0, 0.0), (0.018, 0.03), (0.021, 0.04)][y],
        Vantage::BRoot => [(0.0, 0.0), (0.015, 0.025), (0.02, 0.035)][y],
    };
    let tcp: f64 = match vantage {
        Vantage::Nl => [0.0, 0.02, 0.05][y],
        Vantage::Nz => [0.02, 0.04, 0.05][y],
        Vantage::BRoot => [0.01, 0.02, 0.03][y],
    };
    let mut f = FleetSpec::base("amazon", resolvers, share);
    f.provider = Some(Provider::Amazon);
    f.v6_resolver_frac = v6_res;
    f.v6_activity_boost = if v6_res > 0.0 {
        v6_traffic / v6_res
    } else {
        1.0
    };
    f.junk_ratio = junk_ratio(Provider::Amazon, vantage, year);
    f.edns_dist = vec![(512, 0.05), (4096, 0.85), (8192, 0.10)];
    f.do_bit_frac = 0.5;
    f.validates = true;
    f.ds_prob = 0.055;
    f.dnskey_prob = 0.0004;
    // Table 5's TCP share minus the truncation the 512-EDNS cohort
    // mechanically produces (~1.5%)
    f.tcp_extra = (tcp - 0.015).max(0.0);
    if vantage == Vantage::Nz && year == 2020 {
        f.qmin_from = qmin_start(Provider::Amazon);
        f.qmin_frac = 0.35;
    }
    f
}

/// Microsoft: IPv4-only, UDP-only, the one non-validating CP.
pub fn microsoft_fleet(vantage: Vantage, year: u16) -> FleetSpec {
    let y = yi(year);
    let share = match vantage {
        Vantage::Nl => [0.050, 0.050, 0.052][y],
        Vantage::Nz => [0.055, 0.060, 0.065][y],
        Vantage::BRoot => [0.011, 0.013, 0.015][y],
    };
    let resolvers = match vantage {
        Vantage::Nl => [12500, 13500, 14494][y],
        Vantage::Nz => [8800, 9500, 10206][y],
        Vantage::BRoot => [13000, 14000, 15500][y],
    };
    let mut f = FleetSpec::base("microsoft", resolvers, share);
    f.provider = Some(Provider::Microsoft);
    // Table 6: 3.0% (.nl) / 4.6% (.nz) IPv6 resolvers in w2020 but
    // "much smaller" traffic -> fractional activity.
    f.v6_resolver_frac = match vantage {
        Vantage::Nl => [0.0, 0.02, 0.03][y],
        Vantage::Nz => [0.0, 0.03, 0.046][y],
        Vantage::BRoot => [0.0, 0.025, 0.04][y],
    };
    f.v6_activity_boost = 0.1;
    f.junk_ratio = junk_ratio(Provider::Microsoft, vantage, year);
    f.edns_dist = vec![(1232, 0.30), (4096, 0.70)];
    f.do_bit_frac = 0.0;
    f.validates = false;
    f
}

/// Facebook: dual-stack, RTT-driven family preference, 13 anycast
/// sites, low EDNS sizes at most sites (-> high truncation -> TCP).
pub fn facebook_fleet(vantage: Vantage, year: u16) -> FleetSpec {
    let y = yi(year);
    let share = match vantage {
        Vantage::Nl => [0.030, 0.032, 0.033][y],
        Vantage::Nz => [0.028, 0.030, 0.032][y],
        Vantage::BRoot => [0.004, 0.005, 0.006][y],
    };
    let mut f = FleetSpec::base("facebook", 2600, share);
    f.provider = Some(Provider::Facebook);
    f.dual_stack = true;
    // Table 5: v6 share 0.48 (2018) -> 0.76/0.81+ (2019/2020).
    f.v6_bias = [0.1, 1.7, 1.7][y];
    f.junk_ratio = junk_ratio(Provider::Facebook, vantage, year);
    // non-dominant sites; site 1 overrides to 4096, so the fleet-wide
    // share at 512 lands near the paper's ~30% (Figure 6)
    f.edns_dist = vec![(512, 0.52), (1400, 0.22), (4096, 0.26)];
    f.do_bit_frac = 1.0;
    f.validates = true;
    f.ds_prob = 0.07;
    f.dnskey_prob = 0.0004;
    // §4.4: TCP beyond truncation; .nz's low signed fraction produces
    // little truncation, so its Table 5 TCP share is mostly this knob.
    f.tcp_extra = match vantage {
        Vantage::Nl => [0.06, 0.01, 0.0][y],
        Vantage::Nz => [0.45, 0.15, 0.13][y],
        Vantage::BRoot => [0.05, 0.03, 0.03][y],
    };
    f.qmin_from = qmin_start(Provider::Facebook);
    f.qmin_frac = 0.45;
    f.sites = facebook_sites(vantage);
    f.activity_skew = 0.4;
    f
}

/// Cloudflare: the DS-heavy validating public resolver; even v4/v6.
pub fn cloudflare_fleet(vantage: Vantage, year: u16) -> FleetSpec {
    let y = yi(year);
    let share = match vantage {
        Vantage::Nl => [0.028, 0.034, 0.040][y],
        Vantage::Nz => [0.025, 0.028, 0.030][y],
        Vantage::BRoot => [0.006, 0.008, 0.010][y],
    };
    let mut f = FleetSpec::base("cloudflare", 6000, share);
    f.provider = Some(Provider::Cloudflare);
    f.public_dns = true;
    f.v6_resolver_frac = match vantage {
        Vantage::Nl => [0.46, 0.43, 0.49][y],
        Vantage::Nz => [0.46, 0.44, 0.51][y],
        Vantage::BRoot => [0.46, 0.44, 0.50][y],
    };
    f.junk_ratio = junk_ratio(Provider::Cloudflare, vantage, year);
    f.edns_dist = vec![(1232, 0.90), (4096, 0.10)];
    f.do_bit_frac = 1.0;
    f.validates = true;
    // Figure 2d: Cloudflare sends more DS than DNSKEY by a wide margin.
    f.ds_prob = 0.16;
    f.dnskey_prob = 0.0015;
    f.tcp_extra = match vantage {
        Vantage::Nl => [0.0, 0.008, 0.015][y],
        Vantage::Nz => [0.0, 0.0, 0.008][y],
        Vantage::BRoot => [0.0, 0.005, 0.01][y],
    };
    f.qmin_from = qmin_start(Provider::Cloudflare);
    f.qmin_frac = 0.60;
    f.activity_skew = 0.5;
    f.case_randomization = 1.0;
    f
}

/// The rest of the Internet, split into eyeball ISPs and miscellaneous
/// sources. `other_share` is 1 - sum of CP shares; `resolver_budget` is
/// the dataset's resolver count minus the CP fleets'.
pub fn other_fleets(
    vantage: Vantage,
    year: u16,
    other_share: f64,
    resolver_budget: u32,
    junk: f64,
) -> Vec<FleetSpec> {
    let isp_resolvers = (resolver_budget as f64 * 0.55) as u32;
    let misc_resolvers = resolver_budget - isp_resolvers;
    // `junk` is the weighted-average target across the two other
    // fleets (70/30 by traffic). Misc sources skew junkier; solve the
    // ISP rate so the mixture hits the target exactly.
    let misc_junk = (junk * 1.35).min(0.97);
    let isp_junk = ((junk - 0.3 * misc_junk) / 0.7).clamp(0.0, 0.97);
    let mut isp = FleetSpec::base("other-isp", isp_resolvers, other_share * 0.7);
    isp.junk_ratio = isp_junk;
    isp.v6_resolver_frac = 0.28;
    isp.do_bit_frac = 0.45;
    isp.validates = true;
    isp.ds_prob = 0.03;
    isp.dnskey_prob = 0.0002;
    isp.tcp_extra = 0.01;
    // passive studies saw ~1/3 of 2019+ queries minimized overall
    if year >= 2019 {
        isp.qmin_from = Some(SimTime::from_date(2019, 6, 1));
        isp.qmin_frac = 0.18;
    }
    isp.activity_skew = 1.1;

    let mut misc = FleetSpec::base("other-misc", misc_resolvers.max(1), other_share * 0.3);
    misc.junk_ratio = misc_junk;
    misc.v6_resolver_frac = 0.15;
    misc.do_bit_frac = 0.25;
    misc.edns_dist = vec![(0, 0.25), (512, 0.25), (1232, 0.15), (4096, 0.35)];
    misc.tcp_extra = 0.005;
    misc.activity_skew = 1.3;
    let _ = vantage;
    vec![isp, misc]
}

/// Figure 4: junk ratio per provider, vantage and year. CPs run below
/// the vantage average at the root; ccTLD rates dip in 2020 (possible
/// NSEC aggressive caching, §4.2.3).
pub fn junk_ratio(provider: Provider, vantage: Vantage, year: u16) -> f64 {
    let y = yi(year);
    match vantage {
        Vantage::Nl | Vantage::Nz => match provider {
            Provider::Google => [0.10, 0.10, 0.08][y],
            Provider::Amazon => [0.12, 0.12, 0.10][y],
            Provider::Microsoft => [0.14, 0.14, 0.12][y],
            Provider::Facebook => [0.08, 0.08, 0.06][y],
            Provider::Cloudflare => [0.12, 0.12, 0.09][y],
        },
        Vantage::BRoot => match provider {
            Provider::Google => [0.26, 0.25, 0.22][y],
            Provider::Amazon => [0.31, 0.30, 0.26][y],
            Provider::Microsoft => [0.33, 0.32, 0.28][y],
            Provider::Facebook => [0.22, 0.20, 0.17][y],
            // the Figure 4 exception: Cloudflare's 2019 root junk spike
            Provider::Cloudflare => [0.28, 0.46, 0.24][y],
        },
    }
}

/// Facebook's 13 anycast sites. Site 1 dominates and runs large EDNS
/// (so it never truncates and sends no TCP — the paper could not
/// measure its RTT). On `.nl`'s server A, sites 8-10 have a large
/// IPv6 RTT penalty; on server B, sites 2 and 4 do (Figures 5/8).
pub fn facebook_sites(vantage: Vantage) -> Vec<SiteSpec> {
    let codes = [
        "ams", "fra", "lhr", "cdg", "arn", "mad", "waw", "sin", "hkg", "nrt", "gru", "iad", "sjc",
    ];
    let weights = [
        0.34, 0.11, 0.095, 0.075, 0.065, 0.06, 0.05, 0.045, 0.04, 0.035, 0.03, 0.028, 0.027,
    ];
    // (v4_A, v6_A, v4_B, v6_B) in ms; for .nz/B-Root the same matrix is
    // shifted (the asymmetric-structure figure is .nl-specific).
    let rtt: [(f64, f64, f64, f64); 13] = [
        (12.0, 12.0, 15.0, 15.0),
        (20.0, 22.0, 30.0, 78.0),
        (25.0, 24.0, 28.0, 30.0),
        (35.0, 37.0, 40.0, 96.0),
        (40.0, 42.0, 38.0, 40.0),
        (55.0, 53.0, 50.0, 52.0),
        (70.0, 72.0, 65.0, 66.0),
        (90.0, 136.0, 85.0, 88.0),
        (100.0, 147.0, 95.0, 97.0),
        (110.0, 162.0, 105.0, 108.0),
        (130.0, 132.0, 125.0, 127.0),
        (150.0, 149.0, 140.0, 143.0),
        (170.0, 173.0, 165.0, 168.0),
    ];
    let shift = match vantage {
        Vantage::Nl => 0.0,
        Vantage::Nz => 120.0,
        Vantage::BRoot => 30.0,
    };
    let server_count = match vantage {
        Vantage::Nl => 2,
        Vantage::Nz => 6,
        Vantage::BRoot => 1,
    };
    (0..13)
        .map(|i| {
            let (a4, a6, b4, b6) = rtt[i];
            let mut rtt_v4 = vec![a4 + shift, b4 + shift];
            let mut rtt_v6 = vec![a6 + shift, b6 + shift];
            // extend/trim to the vantage's server count by cycling
            while rtt_v4.len() < server_count {
                let k = rtt_v4.len();
                rtt_v4.push(rtt_v4[k % 2] + 5.0 * k as f64);
                rtt_v6.push(rtt_v6[k % 2] + 5.0 * k as f64);
            }
            rtt_v4.truncate(server_count);
            rtt_v6.truncate(server_count);
            SiteSpec {
                code: codes[i].to_string(),
                weight: weights[i],
                rtt_v4_ms: rtt_v4,
                rtt_v6_ms: rtt_v6,
                edns_dist: if i == 0 {
                    Some(vec![(4096, 1.0)])
                } else {
                    None
                },
                tcp_extra: if i == 0 { Some(0.0) } else { None },
            }
        })
        .collect()
}

/// All fleets for a (vantage, year) dataset, with the "other" fleets
/// sized to the dataset's published totals.
pub fn fleets_for(
    vantage: Vantage,
    year: u16,
    total_resolvers: u32,
    overall_junk: f64,
) -> Vec<FleetSpec> {
    let mut fleets = google_fleets(vantage, year);
    fleets.push(amazon_fleet(vantage, year));
    fleets.push(microsoft_fleet(vantage, year));
    fleets.push(facebook_fleet(vantage, year));
    fleets.push(cloudflare_fleet(vantage, year));
    let cp_share: f64 = fleets.iter().map(|f| f.traffic_share).sum();
    let cp_junk: f64 = fleets.iter().map(|f| f.traffic_share * f.junk_ratio).sum();
    let cp_resolvers: u32 = fleets.iter().map(|f| f.resolver_count).sum();
    let other_share = (1.0 - cp_share).max(0.0);
    // choose the other fleets' junk so the dataset-wide ratio matches
    // Table 3's valid/total split
    let other_junk = (((overall_junk - cp_junk) / other_share).clamp(0.0, 0.97)).min(0.97);
    let budget = total_resolvers.saturating_sub(cp_resolvers).max(2);
    fleets.extend(other_fleets(vantage, year, other_share, budget, other_junk));
    fleets
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_sum_to_one() {
        for vantage in [Vantage::Nl, Vantage::Nz, Vantage::BRoot] {
            for year in [2018, 2019, 2020] {
                let fleets = fleets_for(vantage, year, 2_000_000, 0.2);
                let sum: f64 = fleets.iter().map(|f| f.traffic_share).sum();
                assert!((sum - 1.0).abs() < 1e-9, "{vantage:?} {year}: {sum}");
            }
        }
    }

    #[test]
    fn cp_share_matches_figure_1() {
        // >30% at .nl, slightly below 30% at .nz, 8.7%-ish at B-Root.
        let cp_share = |v, y| -> f64 {
            fleets_for(v, y, 2_000_000, 0.2)
                .iter()
                .filter(|f| f.provider.is_some())
                .map(|f| f.traffic_share)
                .sum()
        };
        assert!(cp_share(Vantage::Nl, 2019) > 0.30);
        assert!(cp_share(Vantage::Nl, 2020) > 0.30);
        let nz2019 = cp_share(Vantage::Nz, 2019);
        assert!((0.25..0.30).contains(&nz2019), "{nz2019}");
        let br2020 = cp_share(Vantage::BRoot, 2020);
        assert!((0.08..0.095).contains(&br2020), "{br2020}");
        // growth over years at the root
        assert!(cp_share(Vantage::BRoot, 2018) < cp_share(Vantage::BRoot, 2020));
    }

    #[test]
    fn google_public_split_matches_table_4() {
        let fleets = google_fleets(Vantage::Nl, 2020);
        let total: f64 = fleets.iter().map(|f| f.traffic_share).sum();
        let public = fleets.iter().find(|f| f.public_dns).unwrap();
        let ratio = public.traffic_share / total;
        assert!((ratio - 0.865).abs() < 0.01, "{ratio}");
        assert_eq!(public.resolver_count, 3750);
        // .nz
        let fleets = google_fleets(Vantage::Nz, 2020);
        let total: f64 = fleets.iter().map(|f| f.traffic_share).sum();
        let public = fleets.iter().find(|f| f.public_dns).unwrap();
        assert!((public.traffic_share / total - 0.884).abs() < 0.01);
    }

    #[test]
    fn google_qmin_is_december_2019() {
        let f = &google_fleets(Vantage::Nl, 2020)[0];
        let start = f.qmin_from.unwrap();
        assert_eq!(start, SimTime::from_date(2019, 12, 1));
        assert!(!f.qmin_active(SimTime::from_date(2019, 11, 30)));
        assert!(f.qmin_active(SimTime::from_date(2019, 12, 2)));
    }

    #[test]
    fn microsoft_never_validates_or_minimizes() {
        for v in [Vantage::Nl, Vantage::Nz, Vantage::BRoot] {
            for y in [2018, 2019, 2020] {
                let f = microsoft_fleet(v, y);
                assert!(!f.validates);
                assert_eq!(f.ds_prob, 0.0);
                assert!(f.qmin_from.is_none());
                assert_eq!(f.tcp_extra, 0.0);
            }
        }
    }

    #[test]
    fn amazon_qmin_only_at_nz_2020() {
        assert!(amazon_fleet(Vantage::Nz, 2020).qmin_from.is_some());
        assert!(amazon_fleet(Vantage::Nl, 2020).qmin_from.is_none());
        assert!(amazon_fleet(Vantage::Nz, 2019).qmin_from.is_none());
    }

    #[test]
    fn amazon_v6_matches_table_6() {
        let f = amazon_fleet(Vantage::Nl, 2020);
        assert!((f.v6_resolver_frac - 0.018).abs() < 1e-9);
        assert_eq!(f.resolver_count, 38317);
        let f = amazon_fleet(Vantage::Nz, 2020);
        assert!((f.v6_resolver_frac - 0.021).abs() < 1e-9);
        assert_eq!(f.resolver_count, 34645);
    }

    #[test]
    fn facebook_sites_structure() {
        let sites = facebook_sites(Vantage::Nl);
        assert_eq!(sites.len(), 13);
        let wsum: f64 = sites.iter().map(|s| s.weight).sum();
        assert!((wsum - 1.0).abs() < 0.01, "{wsum}");
        assert!(sites[0].weight > 3.0 * sites[1].weight, "site 1 dominates");
        assert_eq!(sites[0].tcp_extra, Some(0.0), "site 1 sends no TCP");
        assert_eq!(sites[0].edns_dist.as_ref().unwrap()[0].0, 4096);
        // sites 8-10 (indices 7-9): big v6 penalty on server A (index 0)
        for (i, site) in sites.iter().enumerate().take(10).skip(7) {
            assert!(
                site.rtt_v6_ms[0] > site.rtt_v4_ms[0] + 30.0,
                "site {} A",
                i + 1
            );
        }
        // sites 2 and 4 (indices 1,3): big v6 penalty on server B
        for i in [1, 3] {
            assert!(sites[i].rtt_v6_ms[1] > sites[i].rtt_v4_ms[1] + 30.0);
        }
        // site 1 symmetric
        assert!((sites[0].rtt_v6_ms[0] - sites[0].rtt_v4_ms[0]).abs() < 1.0);
    }

    #[test]
    fn facebook_site_lists_match_server_counts() {
        assert_eq!(facebook_sites(Vantage::Nl)[0].rtt_v4_ms.len(), 2);
        assert_eq!(facebook_sites(Vantage::Nz)[0].rtt_v4_ms.len(), 6);
        assert_eq!(facebook_sites(Vantage::BRoot)[0].rtt_v4_ms.len(), 1);
    }

    #[test]
    fn cloudflare_is_ds_heavy() {
        let f = cloudflare_fleet(Vantage::Nl, 2020);
        assert!(f.ds_prob > 5.0 * f.dnskey_prob * 10.0);
        assert!(f.validates);
        assert_eq!(f.do_bit_frac, 1.0);
    }

    #[test]
    fn cloudflare_2019_root_junk_spike() {
        let j18 = junk_ratio(Provider::Cloudflare, Vantage::BRoot, 2018);
        let j19 = junk_ratio(Provider::Cloudflare, Vantage::BRoot, 2019);
        let j20 = junk_ratio(Provider::Cloudflare, Vantage::BRoot, 2020);
        assert!(j19 > j18 && j19 > j20, "the Figure 4 exception");
    }

    #[test]
    fn other_junk_absorbs_dataset_target() {
        // B-Root 2020: 80% junk overall, CPs far lower; the other
        // fleets must make up the difference.
        let fleets = fleets_for(Vantage::BRoot, 2020, 6_000_000, 0.80);
        let total_junk: f64 = fleets.iter().map(|f| f.traffic_share * f.junk_ratio).sum();
        assert!((total_junk - 0.80).abs() < 0.02, "{total_junk}");
    }

    #[test]
    fn qtype_mix_sums_to_one() {
        let s: f64 = standard_qtype_mix().iter().map(|(_, w)| w).sum();
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "no calibration")]
    fn unknown_year_panics() {
        amazon_fleet(Vantage::Nl, 2021);
    }
}

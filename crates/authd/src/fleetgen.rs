//! Live fleet loadgen: the algorithmic resolver fleet over real sockets.
//!
//! Where [`crate::loadgen`] replays *pre-planned* queries from the
//! calibrated [`simnet::drive::Driver`], this module runs `--resolvers=N`
//! actual [`IterativeResolver`] instances concurrently. Each lane is one
//! resolver from the fleet materialization: it receives client stimuli
//! (sampled by [`simnet::emerge::sample_stimulus`]) and walks the
//! delegation hierarchy through a `LiveTransport` — synthetic root and
//! leaf tiers answered in-process, the *vantage* tier sent over real
//! UDP/TCP sockets to the `authd` server with the logical-address
//! [`Preamble`], so the server's capture tap records exactly what an
//! offline [`simnet::emerge::SimTransport`] run would have recorded.
//!
//! Same resolver code, offline and live: Q-min flips on the provider
//! rollout date, the per-fleet shared cache absorbs repeat demand, the
//! RTT selector learns real measured socket latencies, and truncated
//! (TC=1) answers retry over TCP through the resolver's own state
//! machine observing a real truncated wire response.

use crate::proxy::Preamble;
use crate::signal;
use crate::stats::Stats;
use dns_wire::message::Message;
use dns_wire::tcp::frame;
use netbase::flow::IpVersion;
use netbase::time::SimDuration;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use resolver::{Exchange, IterativeResolver, ResolverConfig, SharedCache, Transport};
use simnet::emerge::{
    ns_rtt_histograms, sample_stimulus, synth_leaf_answer, synth_root_referral, ROOT_V4, ROOT_V6,
};
use simnet::engine::Engine;
use simnet::fleet::Fleet;
use simnet::scenario::{DatasetSpec, Scale};
use std::io::{self, Read, Write};
use std::net::{IpAddr, SocketAddr, TcpStream, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Nominal RTT credited to in-process root/leaf tiers (µs); only feeds
/// the resolver's per-host EWMA, never a capture record.
const SYNTH_TIER_RTT_US: u32 = 2_000;

/// Fleet load-generator parameters.
pub struct FleetgenConfig {
    /// Dataset whose fleets, zone, and demand model drive the traffic.
    pub spec: DatasetSpec,
    /// Fleet scale factor.
    pub scale: Scale,
    /// Seed — must match the analyzer's seed for live/offline parity.
    pub seed: u64,
    /// Server's UDP endpoint.
    pub server_udp: SocketAddr,
    /// Server's TCP endpoint.
    pub server_tcp: SocketAddr,
    /// Concurrent resolver instances, assigned to fleets by traffic
    /// share.
    pub resolvers: usize,
    /// OS threads driving the resolver lanes.
    pub workers: usize,
    /// Stop after this many *vantage* queries (None = unbounded).
    pub max_queries: Option<u64>,
    /// Stop after this long (None = unbounded).
    pub duration: Option<Duration>,
    /// Per-exchange response timeout.
    pub timeout: Duration,
}

impl FleetgenConfig {
    /// Sensible defaults against a local server: 64 resolvers, 4
    /// threads.
    pub fn new(
        spec: DatasetSpec,
        scale: Scale,
        seed: u64,
        server_udp: SocketAddr,
        server_tcp: SocketAddr,
    ) -> FleetgenConfig {
        FleetgenConfig {
            spec,
            scale,
            seed,
            server_udp,
            server_tcp,
            resolvers: 64,
            workers: 4,
            max_queries: None,
            duration: None,
            timeout: Duration::from_millis(500),
        }
    }
}

/// What a fleet-generation run did.
#[derive(Debug, Clone, Copy)]
pub struct FleetgenReport {
    /// Vantage queries sent over real sockets.
    pub sent: u64,
    /// Responses received and parsed.
    pub received: u64,
    /// Exchanges that timed out.
    pub timeouts: u64,
    /// TC=1 answers retried over TCP.
    pub tcp_fallbacks: u64,
    /// Client stimuli handed to resolvers.
    pub stimuli: u64,
    /// Shared-cache hit ratio across all fleets at shutdown.
    pub cache_hit_ratio: f64,
    /// Resolver-level retransmissions.
    pub resolver_retries: u64,
    /// Resolver-level timeouts observed in walk state machines.
    pub resolver_timeouts: u64,
    /// Wall-clock run time.
    pub elapsed: Duration,
}

/// The live three-tier transport: in-process root/leaf, real sockets
/// at the vantage. One per worker thread; `lane` re-arms it for the
/// resolver instance whose walk is being driven.
struct LiveTransport<'a> {
    engine: &'a Engine,
    config: &'a FleetgenConfig,
    stats: &'a Stats,
    rtt_hists: &'a [std::sync::Arc<obs::Histogram>],
    sock: UdpSocket,
    buf: Vec<u8>,
    rng: StdRng,
    root_zone: bool,
    // current lane
    fleet: usize,
    resolver_idx: usize,
    sent_total: &'a AtomicU64,
    inflight: &'a AtomicI64,
    inflight_gauge: &'a obs::Gauge,
}

impl<'a> LiveTransport<'a> {
    fn fleet(&self) -> &'a Fleet {
        &self.engine.fleets()[self.fleet]
    }

    fn profile(&self) -> &'a simnet::fleet::Resolver {
        &self.fleet().resolvers[self.resolver_idx]
    }

    fn families(&self) -> (bool, bool) {
        let r = self.profile();
        let has = |v: IpVersion| {
            IpVersion::of(r.ip) == v || r.alt_ip.map(|a| IpVersion::of(a) == v).unwrap_or(false)
        };
        (has(IpVersion::V4), has(IpVersion::V6))
    }

    /// One real UDP exchange with the server (TCP retry on TC=1); the
    /// preamble carries the logical resolver/server flow so the tap
    /// records offline-shaped addresses.
    fn vantage_exchange(&mut self, dst: IpAddr, query: &Message) -> Exchange {
        let family = IpVersion::of(dst);
        let src_ip = self.profile().addr_for(family);
        let src = SocketAddr::new(src_ip, self.rng.gen_range(1024..u16::MAX));
        let logical_dst = SocketAddr::new(dst, 53);
        let Ok(wire) = query.encode() else {
            return Exchange::Timeout;
        };

        let gauge_val = self.inflight.fetch_add(1, Ordering::Relaxed) + 1;
        self.inflight_gauge.set(gauge_val as f64);
        let result = self.vantage_udp(&wire, src, logical_dst, query.header.id);
        let gauge_val = self.inflight.fetch_sub(1, Ordering::Relaxed) - 1;
        self.inflight_gauge.set(gauge_val as f64);
        result
    }

    fn vantage_udp(
        &mut self,
        wire: &[u8],
        src: SocketAddr,
        logical_dst: SocketAddr,
        id: u16,
    ) -> Exchange {
        let preamble = Preamble {
            src,
            dst: logical_dst,
            rtt_us: 0,
        };
        let mut datagram = preamble.encode();
        datagram.extend_from_slice(wire);
        self.stats.bump(&self.stats.sent);
        self.sent_total.fetch_add(1, Ordering::Relaxed);
        let sent_at = Instant::now();
        if self
            .sock
            .send_to(&datagram, self.config.server_udp)
            .is_err()
        {
            self.stats.bump(&self.stats.timeouts);
            return Exchange::Timeout;
        }
        loop {
            let Ok(n) = self.sock.recv(&mut self.buf) else {
                self.stats.bump(&self.stats.timeouts);
                return Exchange::Timeout;
            };
            let Ok(msg) = Message::parse(&self.buf[..n]) else {
                self.stats.bump(&self.stats.malformed);
                continue;
            };
            if msg.header.id != id {
                // a straggler from a timed-out earlier exchange
                continue;
            }
            let rtt_us = sent_at.elapsed().as_micros().max(1) as u64;
            self.stats.latency.record(rtt_us);
            self.stats.bump(&self.stats.responses);
            self.record_rtt(logical_dst.ip(), rtt_us);
            if msg.header.truncated {
                self.stats.bump(&self.stats.tcp_fallbacks);
                self.stats.bump(&self.stats.sent);
                self.sent_total.fetch_add(1, Ordering::Relaxed);
                return match self.vantage_tcp(wire, src, logical_dst) {
                    Some(full) => full,
                    None => {
                        self.stats.bump(&self.stats.timeouts);
                        Exchange::Timeout
                    }
                };
            }
            return Exchange::Answer {
                message: msg,
                rtt_us: rtt_us.min(u32::MAX as u64) as u32,
            };
        }
    }

    /// One query/response over a fresh TCP connection.
    fn vantage_tcp(&mut self, wire: &[u8], src: SocketAddr, dst: SocketAddr) -> Option<Exchange> {
        let connect_at = Instant::now();
        let mut stream =
            TcpStream::connect_timeout(&self.config.server_tcp, self.config.timeout).ok()?;
        let rtt_us = connect_at.elapsed().as_micros().max(1) as u32;
        stream.set_read_timeout(Some(self.config.timeout)).ok()?;
        let _ = stream.set_nodelay(true);
        let preamble = Preamble { src, dst, rtt_us };
        let mut out = preamble.encode();
        out.extend_from_slice(&frame(wire).ok()?);
        stream.write_all(&out).ok()?;
        let sent_at = Instant::now();
        let mut len = [0u8; 2];
        stream.read_exact(&mut len).ok()?;
        let mut body = vec![0u8; u16::from_be_bytes(len) as usize];
        stream.read_exact(&mut body).ok()?;
        let measured = sent_at.elapsed().as_micros().max(1) as u64;
        self.stats.latency.record(measured);
        self.stats.bump(&self.stats.responses);
        self.record_rtt(dst.ip(), measured);
        let msg = Message::parse(&body).ok()?;
        Some(Exchange::Answer {
            message: msg,
            rtt_us: measured.min(u32::MAX as u64) as u32,
        })
    }

    fn record_rtt(&self, dst: IpAddr, rtt_us: u64) {
        if let Some(si) = self
            .engine
            .spec()
            .servers
            .iter()
            .position(|s| IpAddr::V4(s.v4) == dst || IpAddr::V6(s.v6) == dst)
        {
            if let Some(h) = self.rtt_hists.get(si) {
                h.record(rtt_us);
            }
        }
    }
}

impl Transport for LiveTransport<'_> {
    fn exchange(&mut self, server: IpAddr, query: &Message) -> Exchange {
        if !self.root_zone && (server == ROOT_V4 || server == ROOT_V6) {
            let (v4, v6) = self.families();
            let message = synth_root_referral(
                self.engine.zone(),
                &self.engine.spec().servers,
                v4,
                v6,
                query,
            );
            return Exchange::Answer {
                message,
                rtt_us: SYNTH_TIER_RTT_US,
            };
        }
        if self
            .engine
            .spec()
            .servers
            .iter()
            .any(|s| IpAddr::V4(s.v4) == server || IpAddr::V6(s.v6) == server)
        {
            return self.vantage_exchange(server, query);
        }
        let ttl = self.fleet().spec.cache_ttl.as_secs().max(1) as u32;
        Exchange::Answer {
            message: synth_leaf_answer(self.engine.zone(), ttl, query),
            rtt_us: SYNTH_TIER_RTT_US,
        }
    }

    fn root_servers(&self) -> Vec<IpAddr> {
        let (v4, v6) = self.families();
        if self.root_zone {
            let mut out = Vec::new();
            for s in &self.engine.spec().servers {
                if v4 {
                    out.push(IpAddr::V4(s.v4));
                }
                if v6 {
                    out.push(IpAddr::V6(s.v6));
                }
            }
            return out;
        }
        let mut out = Vec::new();
        if v4 {
            out.push(ROOT_V4);
        }
        if v6 {
            out.push(ROOT_V6);
        }
        out
    }
}

/// One resolver lane: a persistent resolver instance bound to one
/// materialized fleet member.
struct Lane {
    fleet: usize,
    resolver_idx: usize,
    resolver: IterativeResolver,
    rng: StdRng,
}

/// Run `config.resolvers` concurrent resolver instances against the
/// server until a stop condition (vantage-query count, duration, or
/// SIGINT) fires. Returns the socket-level and resolver-level tallies.
pub fn run_fleetgen(config: &FleetgenConfig, stats: &Stats) -> io::Result<FleetgenReport> {
    stats.publish("authd_fleetgen");
    let engine = Engine::new(config.spec.clone(), config.scale, config.seed);
    let nfleets = engine.fleets().len();
    if nfleets == 0 {
        return Err(io::Error::other("dataset has no fleets"));
    }
    let rtt_hists = ns_rtt_histograms(&config.spec.servers);
    let inflight_gauge = obs::gauge(
        "resolver_fleet_inflight",
        "fleet resolver stimuli currently mid-walk at the vantage",
    );
    let instances_gauge = obs::gauge(
        "resolver_fleet_instances",
        "resolver instances materialized across all fleets",
    );
    let hit_gauge = obs::gauge(
        "resolver_fleet_cache_hit_ratio",
        "shared-cache hit ratio across all fleet resolvers",
    );
    let retries_counter = obs::counter(
        "resolver_retries_total",
        "fleet resolver query retransmissions",
    );
    let timeouts_counter = obs::counter(
        "resolver_timeouts_total",
        "fleet resolver exchanges that timed out",
    );

    // one shared cache per fleet, as offline
    let caches: Vec<SharedCache> = (0..nfleets)
        .map(|_| SharedCache::with_capacity(resolver::cache::DEFAULT_CAPACITY))
        .collect();

    // assign lanes to fleets proportionally to traffic share: lane i
    // takes the fleet whose cumulative share covers (i + 0.5) / N
    let resolvers = config.resolvers.max(1);
    let shares: Vec<f64> = engine
        .fleets()
        .iter()
        .map(|f| f.spec.traffic_share)
        .collect();
    let total_share: f64 = shares.iter().sum::<f64>().max(f64::MIN_POSITIVE);
    let mut lanes: Vec<Lane> = (0..resolvers)
        .map(|i| {
            let point = (i as f64 + 0.5) / resolvers as f64 * total_share;
            let mut acc = 0.0;
            let mut fi = nfleets - 1;
            for (j, s) in shares.iter().enumerate() {
                acc += s;
                if point <= acc {
                    fi = j;
                    break;
                }
            }
            let mut rng = StdRng::seed_from_u64(config.seed ^ 0xf1ee_0000 ^ i as u64);
            let fleet = &engine.fleets()[fi];
            let resolver_idx = fleet.pick(&mut rng);
            let prof = &fleet.resolvers[resolver_idx];
            let mut r = IterativeResolver::new(ResolverConfig {
                qmin: fleet.spec.qmin_active(config.spec.start),
                edns_size: prof.edns_size,
                do_bit: prof.do_bit,
                ..Default::default()
            });
            r.attach_shared_cache(caches[fi].clone());
            r.set_log_enabled(false);
            Lane {
                fleet: fi,
                resolver_idx,
                resolver: r,
                rng,
            }
        })
        .collect();
    instances_gauge.set(resolvers as f64);

    let started = Instant::now();
    let start_sim = config.spec.start;
    let deadline = config.duration.map(|d| started + d);
    let stop = AtomicBool::new(false);
    let sent_total = AtomicU64::new(0);
    let inflight = AtomicI64::new(0);
    let stimuli = AtomicU64::new(0);
    let workers = config.workers.clamp(1, resolvers);

    // deal lanes round-robin to worker threads
    let mut per_worker: Vec<Vec<Lane>> = (0..workers).map(|_| Vec::new()).collect();
    for (i, lane) in lanes.drain(..).enumerate() {
        per_worker[i % workers].push(lane);
    }

    let engine_ref = &engine;
    let rtt_ref = &rtt_hists[..];
    let stop_ref = &stop;
    let sent_ref = &sent_total;
    let inflight_ref = &inflight;
    let stimuli_ref = &stimuli;
    let gauge_ref = &*inflight_gauge;
    let hit_ref = &*hit_gauge;
    let caches_ref = &caches[..];
    let mut resolver_retries = 0u64;
    let mut resolver_timeouts = 0u64;
    crossbeam::thread::scope(|s| {
        let handles: Vec<_> = per_worker
            .into_iter()
            .map(|mut my_lanes| {
                s.spawn(move |_| {
                    let Ok(sock) = UdpSocket::bind("127.0.0.1:0") else {
                        stop_ref.store(true, Ordering::SeqCst);
                        return (0u64, 0u64);
                    };
                    let _ = sock.set_read_timeout(Some(config.timeout));
                    let mut tr = LiveTransport {
                        engine: engine_ref,
                        config,
                        stats,
                        rtt_hists: rtt_ref,
                        sock,
                        buf: vec![0u8; 65_535],
                        rng: StdRng::seed_from_u64(config.seed ^ 0x11fe_7a05),
                        root_zone: engine_ref.zone().is_root_zone(),
                        fleet: 0,
                        resolver_idx: 0,
                        sent_total: sent_ref,
                        inflight: inflight_ref,
                        inflight_gauge: gauge_ref,
                    };
                    loop {
                        for lane in &mut my_lanes {
                            if signal::triggered()
                                || stop_ref.load(Ordering::SeqCst)
                                || deadline.is_some_and(|d| Instant::now() >= d)
                                || config
                                    .max_queries
                                    .is_some_and(|m| sent_ref.load(Ordering::Relaxed) >= m)
                            {
                                stop_ref.store(true, Ordering::SeqCst);
                                let mut retries = 0;
                                let mut touts = 0;
                                for l in my_lanes.iter() {
                                    retries += l.resolver.stats.retries;
                                    touts += l.resolver.stats.timeouts;
                                }
                                return (retries, touts);
                            }
                            let now = start_sim
                                + SimDuration::from_micros(started.elapsed().as_micros() as u64);
                            let fleet = &engine_ref.fleets()[lane.fleet];
                            let is_junk = lane.rng.gen_bool(fleet.spec.junk_ratio.clamp(0.0, 1.0));
                            let stim = sample_stimulus(
                                engine_ref.zone(),
                                engine_ref.zipf(),
                                engine_ref.junk_gen(),
                                &fleet.spec,
                                is_junk,
                                &mut lane.rng,
                            );
                            let nth = stimuli_ref.fetch_add(1, Ordering::Relaxed);
                            if nth.is_multiple_of(128) {
                                // keep the hit-ratio gauge live for
                                // mid-run /metrics and /flight scrapes
                                let hits: u64 = caches_ref.iter().map(|c| c.hits()).sum();
                                let misses: u64 = caches_ref.iter().map(|c| c.misses()).sum();
                                if hits + misses > 0 {
                                    hit_ref.set(hits as f64 / (hits + misses) as f64);
                                }
                            }
                            lane.resolver.set_qmin(fleet.spec.qmin_active(now));
                            lane.resolver.set_now_micros(now.as_micros());
                            tr.fleet = lane.fleet;
                            tr.resolver_idx = lane.resolver_idx;
                            let _ = lane.resolver.resolve(&mut tr, &stim.qname, stim.qtype);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            let (r, t) = h.join().expect("fleetgen worker");
            resolver_retries += r;
            resolver_timeouts += t;
        }
    })
    .expect("fleetgen threads do not panic");

    let hits: u64 = caches.iter().map(|c| c.hits()).sum();
    let misses: u64 = caches.iter().map(|c| c.misses()).sum();
    let lookups = hits + misses;
    let cache_hit_ratio = if lookups == 0 {
        0.0
    } else {
        hits as f64 / lookups as f64
    };
    hit_gauge.set(cache_hit_ratio);
    inflight_gauge.set(0.0);
    retries_counter.add(resolver_retries);
    timeouts_counter.add(resolver_timeouts);

    Ok(FleetgenReport {
        sent: stats.sent.get(),
        received: stats.responses.get(),
        timeouts: stats.timeouts.get(),
        tcp_fallbacks: stats.tcp_fallbacks.get(),
        stimuli: stimuli.load(Ordering::Relaxed),
        cache_hit_ratio,
        resolver_retries,
        resolver_timeouts,
        elapsed: started.elapsed(),
    })
}

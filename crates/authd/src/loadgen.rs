//! Closed-loop load generator driven by the fleet profiles.
//!
//! A producer thread pulls [`PlannedQuery`]s from
//! [`simnet::drive::Driver`] — the same fleet materialization, qtype
//! mixes, Q-min schedule, EDNS sizes, and cache model the offline
//! engine uses — into a bounded channel; N worker threads each run a
//! closed loop: send the query (UDP, or TCP for the direct-TCP share),
//! wait for the response, record the latency, and retry truncated
//! (TC=1) UDP answers over TCP exactly like a real resolver.
//!
//! Every datagram carries a [`Preamble`] with the logical
//! resolver/server addresses so the server's capture tap attributes
//! traffic the way the offline analyzer expects.

use crate::proxy::Preamble;
use crate::signal;
use crate::stats::Stats;
use dns_wire::message::Message;
use dns_wire::tcp::frame;
use netbase::time::SimDuration;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simnet::drive::{Driver, PlannedQuery};
use simnet::scenario::{DatasetSpec, Scale};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Load generator parameters.
pub struct LoadgenConfig {
    /// Dataset whose fleets drive the traffic.
    pub spec: DatasetSpec,
    /// Fleet scale factor.
    pub scale: Scale,
    /// Seed — must match the analyzer's seed for live/offline parity.
    pub seed: u64,
    /// Server's UDP endpoint.
    pub server_udp: SocketAddr,
    /// Server's TCP endpoint.
    pub server_tcp: SocketAddr,
    /// Closed-loop worker threads.
    pub workers: usize,
    /// Stop after this many queries (None = unbounded).
    pub max_queries: Option<u64>,
    /// Stop after this long (None = unbounded).
    pub duration: Option<Duration>,
    /// Per-query response timeout.
    pub timeout: Duration,
}

impl LoadgenConfig {
    /// Sensible defaults against a local server.
    pub fn new(
        spec: DatasetSpec,
        scale: Scale,
        seed: u64,
        server_udp: SocketAddr,
        server_tcp: SocketAddr,
    ) -> LoadgenConfig {
        LoadgenConfig {
            spec,
            scale,
            seed,
            server_udp,
            server_tcp,
            workers: 4,
            max_queries: None,
            duration: None,
            timeout: Duration::from_millis(500),
        }
    }
}

/// What a load-generation run did.
#[derive(Debug, Clone, Copy)]
pub struct LoadgenReport {
    /// Queries sent.
    pub sent: u64,
    /// Responses received and parsed.
    pub received: u64,
    /// Queries that timed out (includes RRL-dropped responses).
    pub timeouts: u64,
    /// TC=1 answers retried over TCP.
    pub tcp_fallbacks: u64,
    /// Wall-clock run time.
    pub elapsed: Duration,
}

struct Job {
    q: PlannedQuery,
    src_port: u16,
}

/// Run the closed loop until a stop condition (count, duration, or
/// SIGINT via [`signal::triggered`]) is hit; workers drain in-flight
/// queries before returning.
pub fn run_loadgen(config: &LoadgenConfig, stats: &Stats) -> io::Result<LoadgenReport> {
    stats.publish("authd_loadgen");
    let mut driver = Driver::new(config.spec.clone(), config.scale, config.seed);
    let started = Instant::now();
    let start_sim = config.spec.start;
    let deadline = config.duration.map(|d| started + d);
    let stop = AtomicBool::new(false);
    let (tx, rx) = crossbeam::channel::bounded::<Job>(1024);

    crossbeam::thread::scope(|s| {
        for _ in 0..config.workers.max(1) {
            let rx = rx.clone();
            let stop = &stop;
            s.spawn(move |_| worker_loop(&rx, config, stats, stop));
        }
        drop(rx);

        // producer: sample queries until a stop condition fires
        let mut port_rng = StdRng::seed_from_u64(config.seed ^ 0x5eed_9097);
        let mut scheduled = 0u64;
        loop {
            if signal::triggered()
                || stop.load(Ordering::SeqCst)
                || deadline.is_some_and(|d| Instant::now() >= d)
                || config.max_queries.is_some_and(|m| scheduled >= m)
            {
                break;
            }
            let now = start_sim + SimDuration::from_micros(started.elapsed().as_micros() as u64);
            let job = Job {
                q: driver.sample(now),
                src_port: port_rng.gen_range(1024..u16::MAX),
            };
            // bounded send applies backpressure; poll the stop
            // conditions while the queue is full
            let mut job = job;
            loop {
                match tx.try_send(job) {
                    Ok(()) => break,
                    Err(crossbeam::channel::TrySendError::Full(back)) => {
                        job = back;
                        if signal::triggered()
                            || stop.load(Ordering::SeqCst)
                            || deadline.is_some_and(|d| Instant::now() >= d)
                        {
                            scheduled = u64::MAX; // force outer break
                            break;
                        }
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    Err(crossbeam::channel::TrySendError::Disconnected(_)) => {
                        scheduled = u64::MAX;
                        break;
                    }
                }
            }
            if scheduled == u64::MAX {
                break;
            }
            scheduled += 1;
        }
        drop(tx); // workers drain the queue and exit
    })
    .expect("loadgen threads do not panic");

    Ok(LoadgenReport {
        sent: stats.sent.get(),
        received: stats.responses.get(),
        timeouts: stats.timeouts.get(),
        tcp_fallbacks: stats.tcp_fallbacks.get(),
        elapsed: started.elapsed(),
    })
}

fn worker_loop(
    rx: &crossbeam::channel::Receiver<Job>,
    config: &LoadgenConfig,
    stats: &Stats,
    stop: &AtomicBool,
) {
    let sock = match UdpSocket::bind("127.0.0.1:0") {
        Ok(s) => s,
        Err(_) => {
            stop.store(true, Ordering::SeqCst);
            return;
        }
    };
    let _ = sock.set_read_timeout(Some(config.timeout));
    let mut buf = vec![0u8; 65_535];
    while let Ok(job) = rx.recv() {
        run_one(&sock, &mut buf, &job, config, stats);
        if signal::triggered() {
            // drain fast: keep consuming jobs so the producer's channel
            // never wedges, but stop doing network work
            stop.store(true, Ordering::SeqCst);
        }
        if stop.load(Ordering::SeqCst) {
            break;
        }
    }
}

/// One closed-loop exchange: UDP (with TCP fallback on TC) or direct TCP.
fn run_one(sock: &UdpSocket, buf: &mut [u8], job: &Job, config: &LoadgenConfig, stats: &Stats) {
    let src = SocketAddr::new(job.q.src, job.src_port);
    let dst = SocketAddr::new(job.q.dst, 53);
    if job.q.tcp_direct {
        stats.bump(&stats.sent);
        if tcp_exchange(config, &job.q.wire, src, dst, stats).is_none() {
            stats.bump(&stats.timeouts);
        }
        return;
    }

    let preamble = Preamble {
        src,
        dst,
        rtt_us: 0,
    };
    let mut datagram = preamble.encode();
    datagram.extend_from_slice(&job.q.wire);
    stats.bump(&stats.sent);
    let sent_at = Instant::now();
    if sock.send_to(&datagram, config.server_udp).is_err() {
        stats.bump(&stats.timeouts);
        return;
    }
    let Ok(n) = sock.recv(buf) else {
        // read timeout, or an RRL drop that looks identical to one
        stats.bump(&stats.timeouts);
        return;
    };
    stats
        .latency
        .record(sent_at.elapsed().as_micros().max(1) as u64);
    stats.bump(&stats.responses);
    let Ok(msg) = Message::parse(&buf[..n]) else {
        stats.bump(&stats.malformed);
        return;
    };
    if msg.header.truncated {
        // the TCP proof-of-path: retry the same question over TCP
        stats.bump(&stats.tcp_fallbacks);
        stats.bump(&stats.sent);
        if tcp_exchange(config, &job.q.wire, src, dst, stats).is_none() {
            stats.bump(&stats.timeouts);
        }
    }
}

/// One query/response over a fresh TCP connection; None on any failure.
fn tcp_exchange(
    config: &LoadgenConfig,
    wire: &[u8],
    src: SocketAddr,
    dst: SocketAddr,
    stats: &Stats,
) -> Option<Vec<u8>> {
    let connect_at = Instant::now();
    let mut stream = TcpStream::connect_timeout(&config.server_tcp, config.timeout).ok()?;
    let rtt_us = connect_at.elapsed().as_micros().max(1) as u32;
    stream.set_read_timeout(Some(config.timeout)).ok()?;
    let _ = stream.set_nodelay(true);
    let preamble = Preamble { src, dst, rtt_us };
    let mut out = preamble.encode();
    out.extend_from_slice(&frame(wire).ok()?);
    stream.write_all(&out).ok()?;
    let sent_at = Instant::now();
    let mut len = [0u8; 2];
    stream.read_exact(&mut len).ok()?;
    let mut body = vec![0u8; u16::from_be_bytes(len) as usize];
    stream.read_exact(&mut body).ok()?;
    stats
        .latency
        .record(sent_at.elapsed().as_micros().max(1) as u64);
    stats.bump(&stats.responses);
    Some(body)
}

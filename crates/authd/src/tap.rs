//! Live capture tap: mirror served traffic into a `.dnscap` file.
//!
//! Every query the server handles — and the response it sends — is
//! appended to a shared [`CaptureWriter`] so the live run leaves behind
//! exactly the artifact the offline generator produces, consumable by
//! the unchanged `entrada` → `core` pipeline.
//!
//! The writer sits behind one mutex; a query/response pair is written
//! under a *single* lock acquisition, so records from concurrent
//! workers never interleave mid-pair and a SIGINT flush can never tear
//! a record (the capture format itself is length-prefixed, and
//! [`Tap::finish`] drains the `BufWriter` before the file handle
//! drops).

use netbase::capture::{CaptureRecord, CaptureWriter, RecordRef};
use std::fs::File;
use std::io::{self, BufWriter};
use std::path::Path;
use std::sync::{Arc, Mutex};

/// Shared, thread-safe `.dnscap` sink.
#[derive(Clone)]
pub struct Tap {
    inner: Arc<Mutex<Option<CaptureWriter<BufWriter<File>>>>>,
}

impl Tap {
    /// Create (truncate) `path` and write the capture header.
    pub fn create(path: &Path) -> io::Result<Tap> {
        let writer = CaptureWriter::new(BufWriter::new(File::create(path)?))?;
        Ok(Tap {
            inner: Arc::new(Mutex::new(Some(writer))),
        })
    }

    /// Append a query record and (when the server actually responded —
    /// RRL drops do not) its response record, atomically with respect
    /// to other workers.
    pub fn write_pair(
        &self,
        query: &CaptureRecord,
        response: Option<&CaptureRecord>,
    ) -> io::Result<()> {
        self.write_pair_ref(query.as_ref(), response.map(|r| r.as_ref()))
    }

    /// [`Tap::write_pair`] from borrowed record parts — the server's
    /// hot path mirrors exchanges straight off the socket buffers with
    /// no per-record allocation.
    pub fn write_pair_ref(
        &self,
        query: RecordRef<'_>,
        response: Option<RecordRef<'_>>,
    ) -> io::Result<()> {
        let mut guard = self.inner.lock().expect("tap lock");
        let Some(writer) = guard.as_mut() else {
            // shutdown race: a worker finished its last exchange after
            // the flush; dropping the records is fine, the capture is
            // already sealed
            return Ok(());
        };
        writer.write_ref(query)?;
        if let Some(resp) = response {
            writer.write_ref(resp)?;
        }
        Ok(())
    }

    /// Records appended so far (0 after [`Tap::finish`]).
    pub fn records_written(&self) -> u64 {
        self.inner
            .lock()
            .expect("tap lock")
            .as_ref()
            .map(|w| w.records_written())
            .unwrap_or(0)
    }

    /// Flush buffered records to disk and seal the tap. Idempotent.
    pub fn finish(&self) -> io::Result<u64> {
        let mut guard = self.inner.lock().expect("tap lock");
        match guard.take() {
            Some(writer) => {
                let written = writer.records_written();
                let mut buf = writer.finish()?;
                io::Write::flush(&mut buf)?;
                Ok(written)
            }
            None => Ok(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netbase::capture::{CaptureReader, Direction};
    use netbase::flow::{FlowKey, Transport};
    use netbase::time::SimTime;
    use std::fs;

    fn rec(dir: Direction, n: u8) -> CaptureRecord {
        let flow = FlowKey {
            src: "192.0.2.1".parse().unwrap(),
            src_port: 1234,
            dst: "198.51.100.1".parse().unwrap(),
            dst_port: 53,
            transport: Transport::Udp,
        };
        CaptureRecord {
            timestamp: SimTime(n as u64),
            direction: dir,
            flow: match dir {
                Direction::Query => flow,
                Direction::Response => flow.reversed(),
            },
            tcp_rtt_us: 0,
            payload: vec![n; 8],
        }
    }

    #[test]
    fn pairs_survive_concurrent_writers_and_finish() {
        let dir = std::env::temp_dir().join("authd-tap-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pairs.dnscap");
        let tap = Tap::create(&path).unwrap();
        crossbeam::thread::scope(|s| {
            for _ in 0..4 {
                let tap = tap.clone();
                s.spawn(move |_| {
                    for i in 0..50u8 {
                        tap.write_pair(
                            &rec(Direction::Query, i),
                            Some(&rec(Direction::Response, i)),
                        )
                        .unwrap();
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(tap.finish().unwrap(), 400);
        assert_eq!(tap.finish().unwrap(), 0, "finish is idempotent");
        // sealed tap swallows late writes instead of panicking
        tap.write_pair(&rec(Direction::Query, 0), None).unwrap();

        let bytes = fs::read(&path).unwrap();
        let records: Vec<CaptureRecord> = CaptureReader::new(&bytes[..])
            .unwrap()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(records.len(), 400);
        // every query is immediately followed by its response
        for pair in records.chunks(2) {
            assert_eq!(pair[0].direction, Direction::Query);
            assert_eq!(pair[1].direction, Direction::Response);
            assert_eq!(pair[0].payload, pair[1].payload);
        }
        fs::remove_file(&path).ok();
    }
}

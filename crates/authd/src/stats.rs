//! Lock-free counters and latency histograms for the live loop.
//!
//! Workers on both sides of the loop (server threads, load-generator
//! threads) bump shared handles from the workspace [`obs`] crate; a
//! reporter thread (or the shutdown path) takes [`Stats::snapshot`] and
//! renders it. Nothing here blocks the hot path: counters are
//! `fetch_add(Relaxed)` and the histogram is a fixed array of atomic
//! log-linear buckets (see `obs::Histogram` — quantiles report bucket
//! midpoints, accurate to ±6.25%).
//!
//! [`Stats::publish`] exposes the same live handles through the global
//! metrics registry, so a `--metrics-addr` scrape sees exactly the
//! counters the workers are bumping.

use obs::{Counter, Histogram};
use std::fmt;
use std::sync::Arc;

/// Shared counters for one side of the live loop.
///
/// Server threads use the query/response/RRL counters; load-generator
/// threads use sent/timeouts/fallbacks. Unused counters stay zero and
/// are omitted from rendering.
#[derive(Default)]
pub struct Stats {
    /// Queries received over UDP (server).
    pub udp_queries: Arc<Counter>,
    /// Queries received over TCP (server).
    pub tcp_queries: Arc<Counter>,
    /// Responses sent.
    pub responses: Arc<Counter>,
    /// Datagrams / framed messages that failed to parse as DNS.
    pub malformed: Arc<Counter>,
    /// UDP responses truncated to the advertised EDNS size (TC=1).
    pub truncated: Arc<Counter>,
    /// Responses RRL replaced with a TC=1 slip.
    pub rrl_slipped: Arc<Counter>,
    /// Responses RRL dropped outright.
    pub rrl_dropped: Arc<Counter>,
    /// TCP connections closed for exceeding the pending-bytes cap.
    pub overruns: Arc<Counter>,
    /// UDP response sends that failed at the socket (counted so
    /// `responses` minus `send_errors` is what actually left the host).
    pub send_errors: Arc<Counter>,
    /// TCP connections accepted by the listener.
    pub tcp_accepted: Arc<Counter>,
    /// TCP connections a worker picked up and served.
    pub tcp_served: Arc<Counter>,
    /// TCP connections accepted but never served (still queued at
    /// shutdown); `tcp_accepted == tcp_served + tcp_dropped` once the
    /// server has drained.
    pub tcp_dropped: Arc<Counter>,
    /// Load generator: queries sent.
    pub sent: Arc<Counter>,
    /// Load generator: responses that never arrived in time.
    pub timeouts: Arc<Counter>,
    /// Load generator: TC=1 answers retried over TCP.
    pub tcp_fallbacks: Arc<Counter>,
    /// Query→response latency (µs), whichever side measures it.
    pub latency: Arc<Histogram>,
}

impl Stats {
    /// Fresh zeroed stats.
    pub fn new() -> Stats {
        Stats::default()
    }

    /// Bump a counter by one.
    pub fn bump(&self, counter: &Counter) {
        counter.inc();
    }

    /// Expose these live handles in the global metrics registry under
    /// `{prefix}_*` names (e.g. `authd_server_udp_queries_total`).
    /// Re-publishing (a restarted server) replaces the previous
    /// occupant, so scrapes always see the current run's counters.
    pub fn publish(&self, prefix: &str) {
        let reg = obs::Registry::global();
        let pc = |name: &str, help: &str, handle: &Arc<Counter>| {
            reg.publish_counter(&format!("{prefix}_{name}"), help, Arc::clone(handle));
        };
        pc(
            "udp_queries_total",
            "queries received over UDP",
            &self.udp_queries,
        );
        pc(
            "tcp_queries_total",
            "queries received over TCP",
            &self.tcp_queries,
        );
        pc("responses_total", "responses sent", &self.responses);
        pc(
            "malformed_total",
            "messages that failed to parse as DNS",
            &self.malformed,
        );
        pc(
            "truncated_total",
            "UDP responses truncated (TC=1)",
            &self.truncated,
        );
        pc(
            "rrl_slipped_total",
            "responses replaced by RRL TC=1 slips",
            &self.rrl_slipped,
        );
        pc(
            "rrl_dropped_total",
            "responses dropped by RRL",
            &self.rrl_dropped,
        );
        pc(
            "overruns_total",
            "TCP connections closed for pending-bytes overrun",
            &self.overruns,
        );
        pc(
            "send_errors_total",
            "UDP response sends that failed at the socket",
            &self.send_errors,
        );
        pc(
            "tcp_accepted_total",
            "TCP connections accepted",
            &self.tcp_accepted,
        );
        pc(
            "tcp_served_total",
            "TCP connections served by a worker",
            &self.tcp_served,
        );
        pc(
            "tcp_dropped_total",
            "TCP connections dropped unserved at shutdown",
            &self.tcp_dropped,
        );
        pc("sent_total", "load generator queries sent", &self.sent);
        pc(
            "timeouts_total",
            "load generator response timeouts",
            &self.timeouts,
        );
        pc(
            "tcp_fallbacks_total",
            "TC=1 answers retried over TCP",
            &self.tcp_fallbacks,
        );
        reg.publish_histogram(
            &format!("{prefix}_latency_us"),
            "query-response latency in microseconds",
            Arc::clone(&self.latency),
        );
    }

    /// Consistent-enough point-in-time copy for rendering.
    pub fn snapshot(&self, elapsed_secs: f64) -> StatsSnapshot {
        let udp = self.udp_queries.get();
        let tcp = self.tcp_queries.get();
        let sent = self.sent.get();
        let queries = if sent > 0 { sent } else { udp + tcp };
        StatsSnapshot {
            udp_queries: udp,
            tcp_queries: tcp,
            responses: self.responses.get(),
            malformed: self.malformed.get(),
            truncated: self.truncated.get(),
            rrl_slipped: self.rrl_slipped.get(),
            rrl_dropped: self.rrl_dropped.get(),
            overruns: self.overruns.get(),
            send_errors: self.send_errors.get(),
            tcp_accepted: self.tcp_accepted.get(),
            tcp_served: self.tcp_served.get(),
            tcp_dropped: self.tcp_dropped.get(),
            sent,
            timeouts: self.timeouts.get(),
            tcp_fallbacks: self.tcp_fallbacks.get(),
            qps: if elapsed_secs > 0.0 {
                queries as f64 / elapsed_secs
            } else {
                0.0
            },
            p50_us: self.latency.quantile(0.50),
            p99_us: self.latency.quantile(0.99),
        }
    }
}

/// Point-in-time copy of [`Stats`], plus derived rates.
#[derive(Debug, Clone, Copy)]
#[allow(missing_docs)]
pub struct StatsSnapshot {
    pub qps: f64,
    pub udp_queries: u64,
    pub tcp_queries: u64,
    pub responses: u64,
    pub malformed: u64,
    pub truncated: u64,
    pub rrl_slipped: u64,
    pub rrl_dropped: u64,
    pub overruns: u64,
    pub send_errors: u64,
    pub tcp_accepted: u64,
    pub tcp_served: u64,
    pub tcp_dropped: u64,
    pub sent: u64,
    pub timeouts: u64,
    pub tcp_fallbacks: u64,
    pub p50_us: u64,
    pub p99_us: u64,
}

impl StatsSnapshot {
    /// Queries handled (server side).
    pub fn queries(&self) -> u64 {
        self.udp_queries + self.tcp_queries
    }
}

impl fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "qps {:.0} | udp {} tcp {} resp {} | malformed {} trunc {} \
             rrl-slip {} rrl-drop {} | p50 {}us p99 {}us",
            self.qps,
            self.udp_queries,
            self.tcp_queries,
            self.responses,
            self.malformed,
            self.truncated,
            self.rrl_slipped,
            self.rrl_dropped,
            self.p50_us,
            self.p99_us,
        )?;
        if self.send_errors > 0 {
            write!(f, " send-err {}", self.send_errors)?;
        }
        if self.sent > 0 {
            write!(
                f,
                " | sent {} timeouts {} tcp-fallbacks {}",
                self.sent, self.timeouts, self.tcp_fallbacks
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_samples() {
        let h = Histogram::new();
        for _ in 0..99 {
            h.record(100);
        }
        h.record(1_000_000); // far tail
        assert_eq!(h.count(), 100);
        let p50 = h.quantile(0.50);
        assert!((94..=106).contains(&p50), "p50 {p50} within ±6.25% of 100");
        let p99 = h.quantile(0.99);
        assert!(p99 < 128, "p99 {p99} free of the old log2 upper-bound bias");
        assert!(h.quantile(1.0) >= 900_000);
    }

    #[test]
    fn histogram_empty_and_extremes() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        h.record(0);
        h.record(u64::MAX); // clamped to the last bucket
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn snapshot_qps_and_render() {
        let s = Stats::new();
        for _ in 0..500 {
            s.bump(&s.udp_queries);
        }
        s.bump(&s.truncated);
        s.latency.record(80);
        let snap = s.snapshot(2.0);
        assert_eq!(snap.queries(), 500);
        assert!((snap.qps - 250.0).abs() < 1e-9);
        let line = snap.to_string();
        assert!(line.contains("qps 250"), "{line}");
        assert!(line.contains("trunc 1"), "{line}");
        assert!(!line.contains("sent"), "loadgen fields omitted: {line}");
    }

    #[test]
    fn send_errors_render_only_when_present() {
        let s = Stats::new();
        assert!(!s.snapshot(1.0).to_string().contains("send-err"));
        s.bump(&s.send_errors);
        assert!(s.snapshot(1.0).to_string().contains("send-err 1"));
    }

    #[test]
    fn publish_exposes_live_handles() {
        let s = Stats::new();
        s.publish("authd_stats_test");
        s.bump(&s.udp_queries);
        s.latency.record(200);
        let text = obs::Registry::global().render_prometheus();
        assert!(
            text.contains("authd_stats_test_udp_queries_total 1"),
            "{text}"
        );
        assert!(
            text.contains("authd_stats_test_latency_us_count 1"),
            "{text}"
        );
    }
}

//! Lock-free counters and latency histograms.
//!
//! Workers on both sides of the loop (server threads, load-generator
//! threads) bump shared atomics; a reporter thread (or the shutdown
//! path) takes [`Stats::snapshot`] and renders it. Nothing here blocks
//! the hot path: counters are `fetch_add(Relaxed)` and the histogram is
//! a fixed array of atomic buckets.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of power-of-two latency buckets (covers 1 µs .. ~4.6 h).
const BUCKETS: usize = 44;

/// A log2-bucketed latency histogram with atomic buckets.
///
/// `record(us)` goes to bucket `floor(log2(us))`; quantiles report the
/// bucket's upper bound, so values are exact to within a factor of two
/// — plenty for p50/p99 progress lines.
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Record one latency sample, in microseconds.
    pub fn record(&self, us: u64) {
        let idx = (63 - us.max(1).leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Upper bound (µs) of the bucket holding quantile `q` in `0..=1`,
    /// or 0 when empty.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((total as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return 1u64 << (i + 1);
            }
        }
        1u64 << BUCKETS
    }
}

/// Shared counters for one side of the live loop.
///
/// Server threads use the query/response/RRL counters; load-generator
/// threads use sent/timeouts/fallbacks. Unused counters stay zero and
/// are omitted from rendering.
#[derive(Default)]
pub struct Stats {
    /// Queries received over UDP (server) .
    pub udp_queries: AtomicU64,
    /// Queries received over TCP (server).
    pub tcp_queries: AtomicU64,
    /// Responses sent.
    pub responses: AtomicU64,
    /// Datagrams / framed messages that failed to parse as DNS.
    pub malformed: AtomicU64,
    /// UDP responses truncated to the advertised EDNS size (TC=1).
    pub truncated: AtomicU64,
    /// Responses RRL replaced with a TC=1 slip.
    pub rrl_slipped: AtomicU64,
    /// Responses RRL dropped outright.
    pub rrl_dropped: AtomicU64,
    /// TCP connections closed for exceeding the pending-bytes cap.
    pub overruns: AtomicU64,
    /// Load generator: queries sent.
    pub sent: AtomicU64,
    /// Load generator: responses that never arrived in time.
    pub timeouts: AtomicU64,
    /// Load generator: TC=1 answers retried over TCP.
    pub tcp_fallbacks: AtomicU64,
    /// Query→response latency (µs), whichever side measures it.
    pub latency: Histogram,
}

impl Stats {
    /// Fresh zeroed stats.
    pub fn new() -> Stats {
        Stats::default()
    }

    /// Bump a counter by one.
    pub fn bump(&self, counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Consistent-enough point-in-time copy for rendering.
    pub fn snapshot(&self, elapsed_secs: f64) -> StatsSnapshot {
        let ld = Ordering::Relaxed;
        let udp = self.udp_queries.load(ld);
        let tcp = self.tcp_queries.load(ld);
        let sent = self.sent.load(ld);
        let queries = if sent > 0 { sent } else { udp + tcp };
        StatsSnapshot {
            udp_queries: udp,
            tcp_queries: tcp,
            responses: self.responses.load(ld),
            malformed: self.malformed.load(ld),
            truncated: self.truncated.load(ld),
            rrl_slipped: self.rrl_slipped.load(ld),
            rrl_dropped: self.rrl_dropped.load(ld),
            overruns: self.overruns.load(ld),
            sent,
            timeouts: self.timeouts.load(ld),
            tcp_fallbacks: self.tcp_fallbacks.load(ld),
            qps: if elapsed_secs > 0.0 {
                queries as f64 / elapsed_secs
            } else {
                0.0
            },
            p50_us: self.latency.quantile_us(0.50),
            p99_us: self.latency.quantile_us(0.99),
        }
    }
}

/// Point-in-time copy of [`Stats`], plus derived rates.
#[derive(Debug, Clone, Copy)]
#[allow(missing_docs)]
pub struct StatsSnapshot {
    pub qps: f64,
    pub udp_queries: u64,
    pub tcp_queries: u64,
    pub responses: u64,
    pub malformed: u64,
    pub truncated: u64,
    pub rrl_slipped: u64,
    pub rrl_dropped: u64,
    pub overruns: u64,
    pub sent: u64,
    pub timeouts: u64,
    pub tcp_fallbacks: u64,
    pub p50_us: u64,
    pub p99_us: u64,
}

impl StatsSnapshot {
    /// Queries handled (server side).
    pub fn queries(&self) -> u64 {
        self.udp_queries + self.tcp_queries
    }
}

impl fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "qps {:.0} | udp {} tcp {} resp {} | malformed {} trunc {} \
             rrl-slip {} rrl-drop {} | p50 {}us p99 {}us",
            self.qps,
            self.udp_queries,
            self.tcp_queries,
            self.responses,
            self.malformed,
            self.truncated,
            self.rrl_slipped,
            self.rrl_dropped,
            self.p50_us,
            self.p99_us,
        )?;
        if self.sent > 0 {
            write!(
                f,
                " | sent {} timeouts {} tcp-fallbacks {}",
                self.sent, self.timeouts, self.tcp_fallbacks
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_samples() {
        let h = Histogram::new();
        for _ in 0..99 {
            h.record(100); // bucket 6 (64..128)
        }
        h.record(1_000_000); // far tail
        assert_eq!(h.count(), 100);
        let p50 = h.quantile_us(0.50);
        assert!((64..=256).contains(&p50), "p50 {p50}");
        let p99 = h.quantile_us(0.99);
        assert!(p99 <= 256, "p99 {p99} still in the main mass");
        assert!(h.quantile_us(1.0) >= 1_000_000);
    }

    #[test]
    fn histogram_empty_and_extremes() {
        let h = Histogram::new();
        assert_eq!(h.quantile_us(0.5), 0);
        h.record(0); // clamped to 1
        h.record(u64::MAX); // clamped to the last bucket
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn snapshot_qps_and_render() {
        let s = Stats::new();
        for _ in 0..500 {
            s.bump(&s.udp_queries);
        }
        s.bump(&s.truncated);
        s.latency.record(80);
        let snap = s.snapshot(2.0);
        assert_eq!(snap.queries(), 500);
        assert!((snap.qps - 250.0).abs() < 1e-9);
        let line = snap.to_string();
        assert!(line.contains("qps 250"), "{line}");
        assert!(line.contains("trunc 1"), "{line}");
        assert!(!line.contains("sent"), "loadgen fields omitted: {line}");
    }
}

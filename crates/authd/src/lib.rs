//! Live authoritative DNS serving over real sockets.
//!
//! The rest of the workspace studies DNS centralization *offline*: the
//! simulator writes a `.dnscap` capture, ENTRADA-style ingestion turns
//! it into rows, and the analysis crates reproduce the paper's
//! exhibits. This crate closes the loop over a real network path:
//!
//! - [`server`] — a multithreaded authoritative server speaking actual
//!   UDP and TCP (RFC 1035 length framing), synthesizing responses with
//!   [`simnet::auth::Authoritative`] and rate-limiting with a sharded
//!   [`simnet::rrl`] limiter whose decisions match the serial one.
//! - [`sockets`] — the socket plane under it: per-worker `SO_REUSEPORT`
//!   UDP shards with `recvmmsg`/`sendmmsg` batching on Linux (syscalls
//!   declared directly against the platform libc — no new crates), a
//!   portable `try_clone` fallback elsewhere, and a `poll(2)`-based
//!   readiness wait for the TCP accept loop.
//! - [`loadgen`] — a closed-loop load generator driven by
//!   [`simnet::drive::Driver`], replaying the same fleet profiles
//!   (per-CP qtype mixes, Q-min, EDNS sizes, dual-stack preferences)
//!   the offline engine uses, with TCP fallback on truncation.
//! - [`fleetgen`] — the *algorithmic* load generator: `--resolvers=N`
//!   concurrent [`resolver::IterativeResolver`] instances walking the
//!   hierarchy over real sockets, with shared per-fleet caches, RTT
//!   selection learned from measured socket latencies, and Q-min
//!   flipping on the provider rollout date — the same resolver code
//!   the offline fleet engine ([`simnet::emerge`]) runs in-process.
//! - [`tap`] — a capture tap mirroring every query/response the server
//!   handles into the same `.dnscap` format, so live traffic flows
//!   through the unchanged `entrada` → `core` analysis pipeline.
//! - [`proxy`] — a logical-address preamble that lets loopback traffic
//!   carry the resolver-fleet/server addresses the analyzer attributes
//!   cloud share by.
//! - [`stats`] — lock-free per-worker counters and latency histograms
//!   (p50/p99) for both sides.
//! - [`live`] — spawns server and load generator together over
//!   loopback for one-command end-to-end runs.
//!
//! No async runtime and no new dependencies: `std::net` blocking
//! sockets, one thread per worker, `crossbeam` channels in between.

pub mod fleetgen;
pub mod live;
pub mod loadgen;
pub mod proxy;
pub mod respond;
pub mod server;
pub mod signal;
pub mod sockets;
pub mod stats;
pub mod tap;

pub use fleetgen::{run_fleetgen, FleetgenConfig, FleetgenReport};
pub use live::{run_live, LiveConfig, LiveReport};
pub use loadgen::{run_loadgen, LoadgenConfig, LoadgenReport};
pub use obs::Histogram;
pub use respond::Responder;
pub use server::{Engine, Server, ServerConfig, WorkerState};
pub use stats::{Stats, StatsSnapshot};
pub use tap::Tap;

//! One-command live loop: server + load generator over loopback.
//!
//! `run_live` starts the authoritative server on ephemeral loopback
//! ports, points the profile-driven load generator at it, runs until
//! the stop condition (query count, duration, or SIGINT), then drains
//! the workers and seals the capture tap. The resulting `.dnscap` is
//! consumed by the standard offline analysis (the caller runs
//! `core::experiments::analyze_capture` with the same spec/scale/seed).

use crate::loadgen::{run_loadgen, LoadgenConfig, LoadgenReport};
use crate::server::{Server, ServerConfig};
use crate::stats::{Stats, StatsSnapshot};
use crate::tap::Tap;
use simnet::scenario::{DatasetSpec, Scale};
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Parameters for a live loopback run.
pub struct LiveConfig {
    /// Dataset to serve and replay.
    pub spec: DatasetSpec,
    /// Fleet scale factor.
    pub scale: Scale,
    /// Seed shared by server, load generator, and later analysis.
    pub seed: u64,
    /// Load-generator worker threads.
    pub loadgen_workers: usize,
    /// Server UDP worker threads.
    pub udp_workers: usize,
    /// Server TCP worker threads.
    pub tcp_workers: usize,
    /// Stop after this many queries.
    pub max_queries: Option<u64>,
    /// Stop after this long.
    pub duration: Option<Duration>,
    /// Where the capture tap writes.
    pub capture: PathBuf,
    /// Print a stats line to stderr this often (None = quiet).
    pub stats_interval: Option<Duration>,
    /// Run the *algorithmic resolver fleet* ([`crate::fleetgen`]) with
    /// this many concurrent resolver instances instead of the
    /// calibrated replay loadgen. The capture tap and downstream
    /// analysis are unchanged.
    pub resolvers: Option<usize>,
}

impl LiveConfig {
    /// Defaults: 4+4+2 workers, quiet, 10k queries.
    pub fn new(spec: DatasetSpec, scale: Scale, seed: u64, capture: PathBuf) -> LiveConfig {
        LiveConfig {
            spec,
            scale,
            seed,
            loadgen_workers: 4,
            udp_workers: 4,
            tcp_workers: 2,
            max_queries: Some(10_000),
            duration: None,
            capture,
            stats_interval: None,
            resolvers: None,
        }
    }
}

/// What a live run did, both sides.
#[derive(Debug, Clone, Copy)]
pub struct LiveReport {
    /// Load-generator outcome.
    pub loadgen: LoadgenReport,
    /// Server-side counters at shutdown.
    pub server: StatsSnapshot,
    /// Client-side counters at shutdown.
    pub client: StatsSnapshot,
    /// Capture records flushed to disk.
    pub records: u64,
    /// Fleet-mode extras (`LiveConfig::resolvers`), absent on the
    /// calibrated replay path.
    pub fleet: Option<crate::fleetgen::FleetgenReport>,
}

/// Run the whole loop; returns once the capture is sealed on disk.
pub fn run_live(config: &LiveConfig) -> io::Result<LiveReport> {
    let tap = Tap::create(&config.capture)?;
    let server = Server::start(ServerConfig {
        udp_workers: config.udp_workers,
        tcp_workers: config.tcp_workers,
        tap: Some(tap),
        ..ServerConfig::for_spec(&config.spec)
    })?;

    let client_stats = Stats::new();
    let started = Instant::now();
    let done = AtomicBool::new(false);
    let report = crossbeam::thread::scope(|s| {
        // The monitor always runs: it keeps the qps gauges fresh for
        // `--metrics-addr` scrapes, and additionally prints stats lines
        // when an interval was requested.
        {
            let server = &server;
            let client_stats = &client_stats;
            let done = &done;
            let interval = config.stats_interval;
            let server_qps = obs::gauge("authd_server_qps", "server-side queries per second");
            let loadgen_qps = obs::gauge("authd_loadgen_qps", "load generator queries per second");
            s.spawn(move |_| {
                // sleep in short steps so `done` stays responsive even
                // with a long stats interval
                let step = Duration::from_millis(50);
                let mut since_print = Duration::ZERO;
                while !done.load(Ordering::SeqCst) {
                    std::thread::sleep(step);
                    let elapsed = started.elapsed().as_secs_f64();
                    let server_snap = server.stats().snapshot(elapsed);
                    let client_snap = client_stats.snapshot(elapsed);
                    server_qps.set(server_snap.qps);
                    loadgen_qps.set(client_snap.qps);
                    since_print += step;
                    if interval.is_some_and(|iv| since_print >= iv) {
                        since_print = Duration::ZERO;
                        eprintln!("serve  | {server_snap}");
                        eprintln!("loadgen| {client_snap}");
                    }
                }
            });
        }
        let report = match config.resolvers {
            Some(n) => {
                let mut fg = crate::fleetgen::FleetgenConfig::new(
                    config.spec.clone(),
                    config.scale,
                    config.seed,
                    server.udp_addr(),
                    server.tcp_addr(),
                );
                fg.resolvers = n;
                fg.workers = config.loadgen_workers;
                fg.max_queries = config.max_queries;
                fg.duration = config.duration;
                crate::fleetgen::run_fleetgen(&fg, &client_stats).map(|fleet| {
                    (
                        LoadgenReport {
                            sent: fleet.sent,
                            received: fleet.received,
                            timeouts: fleet.timeouts,
                            tcp_fallbacks: fleet.tcp_fallbacks,
                            elapsed: fleet.elapsed,
                        },
                        Some(fleet),
                    )
                })
            }
            None => {
                let mut lg = LoadgenConfig::new(
                    config.spec.clone(),
                    config.scale,
                    config.seed,
                    server.udp_addr(),
                    server.tcp_addr(),
                );
                lg.workers = config.loadgen_workers;
                lg.max_queries = config.max_queries;
                lg.duration = config.duration;
                run_loadgen(&lg, &client_stats).map(|r| (r, None))
            }
        };
        done.store(true, Ordering::SeqCst);
        report
    })
    .expect("live threads do not panic")?;
    let (loadgen_report, fleet) = report;

    let elapsed = started.elapsed().as_secs_f64();
    let server_snap = server.stats().snapshot(elapsed);
    let records = server.shutdown()?;
    Ok(LiveReport {
        loadgen: loadgen_report,
        server: server_snap,
        client: client_stats.snapshot(elapsed),
        records,
        fleet,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use netbase::capture::CaptureReader;
    use simnet::profile::Vantage;
    use simnet::scenario::dataset;
    use std::fs;

    #[test]
    fn small_live_run_produces_consumable_capture() {
        let _guard = crate::signal::TEST_GUARD.lock().unwrap();
        let dir = std::env::temp_dir().join("authd-live-test");
        fs::create_dir_all(&dir).unwrap();
        let capture = dir.join("small.dnscap");
        let mut config = LiveConfig::new(
            dataset(Vantage::Nl, 2020),
            Scale::tiny(),
            7,
            capture.clone(),
        );
        config.max_queries = Some(300);
        config.loadgen_workers = 2;
        config.udp_workers = 2;
        config.tcp_workers = 1;
        let report = run_live(&config).unwrap();
        assert_eq!(report.loadgen.sent, report.client.sent);
        assert!(report.loadgen.sent >= 300, "sent {}", report.loadgen.sent);
        assert!(report.records > 0);
        assert!(report.server.queries() >= 300);

        let bytes = fs::read(&capture).unwrap();
        let records = CaptureReader::new(&bytes[..]).unwrap().fold(0u64, |n, r| {
            r.expect("no torn records");
            n + 1
        });
        assert_eq!(records, report.records);
        fs::remove_file(&capture).ok();
    }

    /// Fleet mode: real resolver instances over real sockets, capture
    /// consumable, shared caches absorbing repeat demand.
    #[test]
    fn fleet_live_run_produces_consumable_capture() {
        let _guard = crate::signal::TEST_GUARD.lock().unwrap();
        let dir = std::env::temp_dir().join("authd-fleet-live-test");
        fs::create_dir_all(&dir).unwrap();
        let capture = dir.join("fleet.dnscap");
        let mut config = LiveConfig::new(
            dataset(Vantage::Nl, 2020),
            Scale::tiny(),
            7,
            capture.clone(),
        );
        config.max_queries = Some(400);
        config.resolvers = Some(16);
        config.loadgen_workers = 2;
        config.udp_workers = 2;
        config.tcp_workers = 1;
        let report = run_live(&config).unwrap();
        let fleet = report.fleet.expect("fleet mode reports fleet extras");
        assert!(report.loadgen.sent >= 400, "sent {}", report.loadgen.sent);
        assert!(report.records > 0);
        assert!(
            fleet.cache_hit_ratio > 0.0,
            "fleet caches saw no hits: {fleet:?}"
        );
        assert!(fleet.stimuli > 0);

        let bytes = fs::read(&capture).unwrap();
        let records = CaptureReader::new(&bytes[..]).unwrap().fold(0u64, |n, r| {
            r.expect("no torn records");
            n + 1
        });
        assert_eq!(records, report.records);
        fs::remove_file(&capture).ok();
    }
}

//! Minimal SIGINT hook without a libc dependency.
//!
//! The live subcommands want one behavior: first Ctrl-C requests a
//! graceful drain (workers finish their in-flight exchange, the tap is
//! flushed and sealed), a second Ctrl-C falls back to the default
//! handler and kills the process. A full signal crate would be overkill
//! — and the build environment is offline — so this uses the libc
//! `signal(2)` symbol directly, which is always present in the
//! already-linked C runtime on unix.

use std::sync::atomic::{AtomicBool, Ordering};

static TRIGGERED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod sys {
    use super::TRIGGERED;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIG_DFL: usize = 0;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_sigint(_sig: i32) {
        TRIGGERED.store(true, Ordering::SeqCst);
        // restore the default disposition so a second Ctrl-C is fatal
        // even if the drain wedges
        unsafe {
            signal(SIGINT, SIG_DFL);
        }
    }

    pub fn install() {
        unsafe {
            signal(SIGINT, on_sigint as extern "C" fn(i32) as usize);
        }
    }
}

/// Install the SIGINT handler (no-op on non-unix platforms, where the
/// run simply ends at its configured duration).
pub fn install() {
    #[cfg(unix)]
    sys::install();
}

/// Has SIGINT fired since [`install`]?
pub fn triggered() -> bool {
    TRIGGERED.load(Ordering::SeqCst)
}

/// Programmatic equivalent of Ctrl-C (tests, embedding).
pub fn request_shutdown() {
    TRIGGERED.store(true, Ordering::SeqCst);
}

/// Reset the flag (between consecutive in-process runs).
pub fn reset() {
    TRIGGERED.store(false, Ordering::SeqCst);
}

/// Tests that touch the global flag serialize on this (a concurrent
/// live-loop test would otherwise see a phantom Ctrl-C).
#[cfg(test)]
pub(crate) static TEST_GUARD: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_lifecycle() {
        let _guard = TEST_GUARD.lock().unwrap();
        reset();
        assert!(!triggered());
        request_shutdown();
        assert!(triggered());
        reset();
        assert!(!triggered());
        install(); // must not crash
    }
}

//! Multithreaded authoritative server over real UDP and TCP sockets.
//!
//! Layout: N UDP workers share one bound socket (each holds a
//! `try_clone`, with a short read timeout so the shutdown flag is
//! polled); one TCP accept thread feeds connections over a crossbeam
//! channel to M TCP workers. All workers share one [`Responder`], one
//! optional global RRL limiter, one [`Stats`] block, and (optionally)
//! one capture [`Tap`].
//!
//! TCP robustness: messages arrive through [`dns_wire::tcp::Deframer`]
//! fed from chunked reads, so RFC 1035 length frames split across
//! arbitrary segment boundaries reassemble correctly; responses go out
//! with `write_all` (short writes retried by the stdlib); a connection
//! buffering more than [`PENDING_CAP`] bytes without completing a
//! frame is dropped and counted as an overrun.

use crate::proxy::Preamble;
use crate::respond::{Outcome, OutcomeRef, RespondScratch, Responder};
use crate::stats::Stats;
use crate::tap::Tap;
use dns_wire::tcp::{frame, Deframer};
use netbase::capture::{CaptureRecord, Direction};
use netbase::flow::{FlowKey, Transport};
use netbase::time::{SimDuration, SimTime};
use simnet::rrl::{RateLimiter, RrlConfig};
use simnet::scenario::DatasetSpec;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};
use zonedb::zone::ZoneModel;

/// Largest UDP datagram we accept (preamble + EDNS-sized query).
const UDP_BUF: usize = 65_535;
/// Per-connection cap on buffered-but-unframed bytes.
pub const PENDING_CAP: usize = 64 * 1024;
/// How often blocked workers poll the shutdown flag.
const POLL: Duration = Duration::from_millis(50);

/// Server construction parameters.
pub struct ServerConfig {
    /// Zone to serve.
    pub zone: ZoneModel,
    /// Response rate limiting (None = unlimited).
    pub rrl: Option<RrlConfig>,
    /// Dataset epoch: capture timestamps are `start + elapsed`.
    pub start: SimTime,
    /// Address to bind (UDP and TCP; port 0 picks ephemeral ports).
    pub bind: SocketAddr,
    /// UDP worker threads.
    pub udp_workers: usize,
    /// TCP worker threads.
    pub tcp_workers: usize,
    /// Mirror handled traffic into this tap.
    pub tap: Option<Tap>,
}

impl ServerConfig {
    /// Loopback server for `spec`'s zone, RRL policy, and epoch.
    pub fn for_spec(spec: &DatasetSpec) -> ServerConfig {
        ServerConfig {
            zone: spec.zone.build(),
            rrl: spec.rrl,
            start: spec.start,
            bind: "127.0.0.1:0".parse().expect("static addr"),
            udp_workers: 4,
            tcp_workers: 2,
            tap: None,
        }
    }
}

/// Maps wall-clock progress onto the dataset's simulated timeline.
#[derive(Clone)]
struct Clock {
    start: SimTime,
    epoch: Instant,
}

impl Clock {
    fn now(&self) -> SimTime {
        self.start + SimDuration::from_micros(self.epoch.elapsed().as_micros() as u64)
    }
}

/// Everything the worker threads share.
struct Shared {
    responder: Responder,
    rrl: Option<Mutex<RateLimiter>>,
    stats: Stats,
    tap: Option<Tap>,
    clock: Clock,
    shutdown: AtomicBool,
}

/// A running server; dropping it without [`Server::shutdown`] leaks
/// worker threads until process exit, so call it.
pub struct Server {
    udp_addr: SocketAddr,
    tcp_addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind sockets, spawn workers, return immediately.
    pub fn start(config: ServerConfig) -> io::Result<Server> {
        let udp = UdpSocket::bind(config.bind)?;
        udp.set_read_timeout(Some(POLL))?;
        let udp_addr = udp.local_addr()?;
        let listener = TcpListener::bind(config.bind)?;
        listener.set_nonblocking(true)?;
        let tcp_addr = listener.local_addr()?;

        let stats = Stats::new();
        stats.publish("authd_server");
        let shared = Arc::new(Shared {
            responder: Responder::new(config.zone),
            rrl: config.rrl.map(|c| Mutex::new(RateLimiter::new(c))),
            stats,
            tap: config.tap,
            clock: Clock {
                start: config.start,
                epoch: Instant::now(),
            },
            shutdown: AtomicBool::new(false),
        });

        let mut threads = Vec::new();
        for i in 0..config.udp_workers.max(1) {
            let sock = udp.try_clone()?;
            let shared = Arc::clone(&shared);
            threads.push(
                thread::Builder::new()
                    .name(format!("authd-udp-{i}"))
                    .spawn(move || udp_worker(&sock, &shared))?,
            );
        }

        let (conn_tx, conn_rx) = crossbeam::channel::bounded::<TcpStream>(64);
        for i in 0..config.tcp_workers.max(1) {
            let rx = conn_rx.clone();
            let shared = Arc::clone(&shared);
            threads.push(
                thread::Builder::new()
                    .name(format!("authd-tcp-{i}"))
                    .spawn(move || tcp_worker(&rx, &shared))?,
            );
        }
        {
            let shared = Arc::clone(&shared);
            threads.push(
                thread::Builder::new()
                    .name("authd-accept".into())
                    .spawn(move || accept_loop(&listener, &conn_tx, &shared))?,
            );
        }

        Ok(Server {
            udp_addr,
            tcp_addr,
            shared,
            threads,
        })
    }

    /// Bound UDP address.
    pub fn udp_addr(&self) -> SocketAddr {
        self.udp_addr
    }

    /// Bound TCP address.
    pub fn tcp_addr(&self) -> SocketAddr {
        self.tcp_addr
    }

    /// Live counters (shared with the workers).
    pub fn stats(&self) -> &Stats {
        &self.shared.stats
    }

    /// Seconds since the server started.
    pub fn elapsed_secs(&self) -> f64 {
        self.shared.clock.epoch.elapsed().as_secs_f64()
    }

    /// Ask the workers to stop (returns immediately).
    pub fn request_shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// Drain: stop workers, join them, flush + seal the tap.
    ///
    /// Returns the number of capture records flushed (0 without a tap).
    pub fn shutdown(mut self) -> io::Result<u64> {
        self.request_shutdown();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        match &self.shared.tap {
            Some(tap) => tap.finish(),
            None => Ok(0),
        }
    }
}

fn udp_worker(sock: &UdpSocket, shared: &Shared) {
    let mut buf = vec![0u8; UDP_BUF];
    // per-worker response cache: no sharing, no locks, and in steady
    // state the respond path performs zero heap allocations
    let mut scratch = RespondScratch::new();
    while !shared.shutdown.load(Ordering::SeqCst) {
        let (n, peer) = match sock.recv_from(&mut buf) {
            Ok(ok) => ok,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(_) => continue,
        };
        handle_udp(sock, &buf[..n], peer, shared, &mut scratch);
    }
}

fn handle_udp(
    sock: &UdpSocket,
    datagram: &[u8],
    peer: SocketAddr,
    shared: &Shared,
    scratch: &mut RespondScratch,
) {
    let t0 = Instant::now();
    // logical flow: from the preamble when the load generator sent it,
    // else the real socket addresses (plain clients)
    let (flow_src, flow_dst, payload) = match Preamble::parse(datagram) {
        Some((p, used)) => (p.src, p.dst, &datagram[used..]),
        None => (peer, sock.local_addr().unwrap_or(peer), datagram),
    };
    let now = shared.clock.now();
    shared.stats.bump(&shared.stats.udp_queries);
    let flight_key = note_recv_hop(payload, flow_src);
    let outcome = {
        let mut rrl_guard = shared.rrl.as_ref().map(|m| m.lock().expect("rrl lock"));
        shared.responder.handle_into(
            payload,
            Transport::Udp,
            flow_src.ip(),
            now,
            rrl_guard.as_deref_mut(),
            scratch,
        )
    };
    if let Some(key) = flight_key {
        obs::flight::hop("authd.respond", key);
    }
    let flow = FlowKey {
        src: flow_src.ip(),
        src_port: flow_src.port(),
        dst: flow_dst.ip(),
        dst_port: flow_dst.port(),
        transport: Transport::Udp,
    };
    match outcome {
        OutcomeRef::Malformed => {
            shared.stats.bump(&shared.stats.malformed);
        }
        OutcomeRef::RrlDrop => {
            shared.stats.bump(&shared.stats.rrl_dropped);
            tap_exchange(shared, now, flow, 0, payload, None);
        }
        OutcomeRef::Reply {
            bytes,
            truncated,
            slipped,
        } => {
            shared.stats.bump(&shared.stats.responses);
            if truncated {
                shared.stats.bump(&shared.stats.truncated);
            }
            if slipped {
                shared.stats.bump(&shared.stats.rrl_slipped);
            }
            tap_exchange(shared, now, flow, 0, payload, Some(bytes));
            if let Some(key) = flight_key {
                obs::flight::hop("authd.tap", key);
            }
            let _ = sock.send_to(bytes, peer);
            shared
                .stats
                .latency
                .record(t0.elapsed().as_micros().max(1) as u64);
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    conn_tx: &crossbeam::channel::Sender<TcpStream>,
    shared: &Shared,
) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                if conn_tx.send(stream).is_err() {
                    return;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(POLL),
            Err(_) => thread::sleep(POLL),
        }
    }
}

fn tcp_worker(rx: &crossbeam::channel::Receiver<TcpStream>, shared: &Shared) {
    loop {
        match rx.recv_timeout(POLL) {
            Ok(stream) => serve_tcp_conn(stream, shared),
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
        }
    }
}

/// Serve one TCP connection to completion (peer close, error, overrun,
/// or server shutdown).
fn serve_tcp_conn(mut stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(POLL));
    let _ = stream.set_nodelay(true);
    let peer = match stream.peer_addr() {
        Ok(p) => p,
        Err(_) => return,
    };
    let local = stream.local_addr().unwrap_or(peer);

    let mut deframer = Deframer::new();
    let mut head: Vec<u8> = Vec::new(); // bytes before the preamble decision
    let mut preamble: Option<Preamble> = None;
    let mut preamble_decided = false;
    let mut chunk = vec![0u8; 4096];

    while !shared.shutdown.load(Ordering::SeqCst) {
        let n = match stream.read(&mut chunk) {
            Ok(0) => return, // peer closed
            Ok(n) => n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(_) => return,
        };
        let mut bytes = &chunk[..n];
        if !preamble_decided {
            head.extend_from_slice(bytes);
            if head.len() >= 4 && head[..4] != crate::proxy::MAGIC {
                // bare client (dig): everything seen is frame data
                preamble_decided = true;
            } else if let Some((p, used)) = Preamble::parse(&head) {
                preamble = Some(p);
                head.drain(..used);
                preamble_decided = true;
            } else if head.len() > 64 {
                // claimed the magic but never completed a preamble
                shared.stats.bump(&shared.stats.malformed);
                return;
            } else {
                continue; // need more bytes to decide
            }
            deframer.push(&head);
            head = Vec::new();
            bytes = &[];
        }
        deframer.push(bytes);
        if deframer.pending() > PENDING_CAP {
            shared.stats.bump(&shared.stats.overruns);
            return;
        }
        while let Some(msg) = deframer.next_message() {
            if !serve_tcp_message(&mut stream, &msg, peer, local, preamble, shared) {
                return;
            }
        }
    }
}

/// Handle one framed TCP query; false ends the connection.
fn serve_tcp_message(
    stream: &mut TcpStream,
    msg: &[u8],
    peer: SocketAddr,
    local: SocketAddr,
    preamble: Option<Preamble>,
    shared: &Shared,
) -> bool {
    let t0 = Instant::now();
    let now = shared.clock.now();
    shared.stats.bump(&shared.stats.tcp_queries);
    let (flow_src, flow_dst, rtt_us) = match preamble {
        Some(p) => (p.src, p.dst, p.rtt_us),
        None => (peer, local, 0),
    };
    let flight_key = note_recv_hop(msg, flow_src);
    let outcome = shared
        .responder
        .handle(msg, Transport::Tcp, flow_src.ip(), now, None);
    if let Some(key) = flight_key {
        obs::flight::hop("authd.respond", key);
    }
    let flow = FlowKey {
        src: flow_src.ip(),
        src_port: flow_src.port(),
        dst: flow_dst.ip(),
        dst_port: flow_dst.port(),
        transport: Transport::Tcp,
    };
    match outcome {
        Outcome::Malformed => {
            shared.stats.bump(&shared.stats.malformed);
            false
        }
        Outcome::RrlDrop => unreachable!("TCP responses bypass RRL"),
        Outcome::Reply { bytes, .. } => {
            shared.stats.bump(&shared.stats.responses);
            let framed = match frame(&bytes) {
                Ok(f) => f,
                Err(_) => return false,
            };
            // capture-format convention: TCP payloads keep the RFC 1035
            // two-octet length prefix (matches the offline generator)
            if let Ok(framed_query) = frame(msg) {
                tap_exchange(shared, now, flow, rtt_us, &framed_query, Some(&framed));
                if let Some(key) = flight_key {
                    obs::flight::hop("authd.tap", key);
                }
            }
            let ok = stream.write_all(&framed).is_ok();
            shared
                .stats
                .latency
                .record(t0.elapsed().as_micros().max(1) as u64);
            ok
        }
    }
}

/// Flight-recorder identity of one served query, decided once at
/// receive time: the logical flow source plus the DNS message id
/// stands in for the generation timestamp the offline pipeline keys
/// on (the server never sees that clock). Returns `Some(key)` — after
/// emitting the `authd.recv` hop — only for sampled queries, so the
/// later hops are a plain `if let` with no re-hash. One relaxed
/// atomic load when sampling is off.
#[inline]
fn note_recv_hop(payload: &[u8], src: SocketAddr) -> Option<u64> {
    if !obs::flight::sampling_enabled() || payload.len() < 2 {
        return None;
    }
    let id = u16::from_be_bytes([payload[0], payload[1]]) as u64;
    let key = obs::flight::query_key(id, &src.ip(), src.port());
    if !obs::flight::sampled(key) {
        return None;
    }
    obs::flight::hop("authd.recv", key);
    Some(key)
}

/// Mirror one exchange into the tap (when present).
fn tap_exchange(
    shared: &Shared,
    now: SimTime,
    flow: FlowKey,
    tcp_rtt_us: u32,
    query: &[u8],
    response: Option<&[u8]>,
) {
    let Some(tap) = &shared.tap else { return };
    let q = CaptureRecord {
        timestamp: now,
        direction: Direction::Query,
        flow,
        tcp_rtt_us,
        payload: query.to_vec(),
    };
    let r = response.map(|bytes| CaptureRecord {
        timestamp: now,
        direction: Direction::Response,
        flow: flow.reversed(),
        tcp_rtt_us,
        payload: bytes.to_vec(),
    });
    let _ = tap.write_pair(&q, r.as_ref());
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_wire::builder::MessageBuilder;
    use dns_wire::message::Message;
    use dns_wire::types::{RType, Rcode};
    use simnet::profile::Vantage;
    use simnet::scenario::dataset;

    fn start_server() -> (Server, String) {
        let spec = dataset(Vantage::Nl, 2020);
        let config = ServerConfig::for_spec(&spec);
        let qname = config.zone.registered_domain(0).to_string();
        (Server::start(config).unwrap(), qname)
    }

    fn query_wire(qname: &str, id: u16) -> Vec<u8> {
        MessageBuilder::query(id, qname.parse().unwrap(), RType::A)
            .with_edns(4096, false)
            .build()
            .encode()
            .unwrap()
    }

    #[test]
    fn serves_bare_udp_clients() {
        let (server, qname) = start_server();
        let sock = UdpSocket::bind("127.0.0.1:0").unwrap();
        sock.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        sock.send_to(&query_wire(&qname, 99), server.udp_addr())
            .unwrap();
        let mut buf = [0u8; 65_535];
        let (n, _) = sock.recv_from(&mut buf).unwrap();
        let msg = Message::parse(&buf[..n]).unwrap();
        assert!(msg.header.response);
        assert_eq!(msg.header.id, 99);
        assert_eq!(msg.header.rcode, Rcode::NoError);
        assert_eq!(server.stats().snapshot(1.0).udp_queries, 1);
        server.shutdown().unwrap();
    }

    #[test]
    fn serves_tcp_with_split_frames() {
        let (server, qname) = start_server();
        let wire = query_wire(&qname, 7);
        let framed = frame(&wire).unwrap();
        let mut stream = TcpStream::connect(server.tcp_addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        // dribble the framed query one byte at a time: the server must
        // reassemble partial reads
        for b in &framed {
            stream.write_all(std::slice::from_ref(b)).unwrap();
            stream.flush().unwrap();
        }
        let mut len = [0u8; 2];
        stream.read_exact(&mut len).unwrap();
        let mut body = vec![0u8; u16::from_be_bytes(len) as usize];
        stream.read_exact(&mut body).unwrap();
        let msg = Message::parse(&body).unwrap();
        assert!(msg.header.response);
        assert_eq!(msg.header.id, 7);
        server.shutdown().unwrap();
    }

    #[test]
    fn counts_malformed_udp() {
        let (server, _) = start_server();
        let sock = UdpSocket::bind("127.0.0.1:0").unwrap();
        sock.send_to(b"not dns at all", server.udp_addr()).unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        while server.stats().snapshot(1.0).malformed == 0 {
            assert!(
                Instant::now() < deadline,
                "malformed datagram never counted"
            );
            thread::sleep(Duration::from_millis(10));
        }
        server.shutdown().unwrap();
    }
}

//! Multithreaded authoritative server over real UDP and TCP sockets.
//!
//! Layout: N UDP workers each own one shard of the socket plane
//! ([`crate::sockets::UdpShardSet`] — per-worker `SO_REUSEPORT`
//! sockets with `recvmmsg`/`sendmmsg` batching on Linux, `try_clone` +
//! `recv_from` elsewhere); one TCP accept thread blocks in `poll(2)`
//! on the listener and feeds connections over a crossbeam channel to M
//! TCP workers. All workers share one [`Engine`]: the [`Responder`],
//! an optional *sharded* RRL limiter (per-bucket-key shards, decisions
//! byte-identical to a serial limiter), the [`Stats`] block, and
//! (optionally) one capture [`Tap`].
//!
//! The full per-query cycle — receive, respond, mirror into the tap —
//! is allocation-free in steady state on both transports: the respond
//! path reuses a per-worker [`RespondScratch`], TCP framing reuses
//! per-worker buffers, and tap records are written through
//! [`netbase::capture::RecordRef`] borrows. The workspace's allocation
//! tests pin this by driving [`Engine::process_udp`] and
//! [`Engine::process_tcp`] directly.
//!
//! TCP robustness: messages arrive through [`dns_wire::tcp::Deframer`]
//! fed from chunked reads, so RFC 1035 length frames split across
//! arbitrary segment boundaries reassemble correctly; responses go out
//! with `write_all` (short writes retried by the stdlib); a connection
//! buffering more than [`PENDING_CAP`] bytes without completing a
//! frame is dropped and counted as an overrun. A frame that fails to
//! parse as DNS is counted malformed and the connection keeps serving
//! the frames behind it — one bad query must not discard pipelined
//! good ones.

use crate::proxy::Preamble;
use crate::respond::{OutcomeRef, RespondScratch, Responder};
use crate::sockets::{self, MsgBufPool, UdpShard, UdpShardSet};
use crate::stats::Stats;
use crate::tap::Tap;
use dns_wire::tcp::Deframer;
use netbase::capture::{Direction, RecordRef};
use netbase::flow::{FlowKey, Transport};
use netbase::time::{SimDuration, SimTime};
use simnet::rrl::{RateLimiter, RrlConfig, ShardedRateLimiter};
use simnet::scenario::DatasetSpec;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};
use zonedb::zone::ZoneModel;

/// Per-connection cap on buffered-but-unframed bytes.
pub const PENDING_CAP: usize = 64 * 1024;
/// How often blocked workers poll the shutdown flag.
const POLL: Duration = Duration::from_millis(50);
/// RRL shards per UDP worker: enough that hash collisions between
/// distinct hot buckets are rare (collisions cost lock latency, never
/// correctness — a bucket's decisions live in exactly one shard).
const RRL_SHARDS_PER_WORKER: usize = 8;

/// Server construction parameters.
pub struct ServerConfig {
    /// Zone to serve.
    pub zone: ZoneModel,
    /// Response rate limiting (None = unlimited).
    pub rrl: Option<RrlConfig>,
    /// Dataset epoch: capture timestamps are `start + elapsed`.
    pub start: SimTime,
    /// Address to bind (UDP and TCP; port 0 picks ephemeral ports).
    pub bind: SocketAddr,
    /// UDP worker threads (one socket shard each).
    pub udp_workers: usize,
    /// TCP worker threads.
    pub tcp_workers: usize,
    /// Allow the `SO_REUSEPORT` + `*mmsg` UDP fast path where the
    /// platform supports it. The saturation bench sets this false to
    /// measure the single-socket fallback on equal worker counts.
    pub udp_sharding: bool,
    /// Mirror handled traffic into this tap.
    pub tap: Option<Tap>,
}

impl ServerConfig {
    /// Loopback server for `spec`'s zone, RRL policy, and epoch.
    pub fn for_spec(spec: &DatasetSpec) -> ServerConfig {
        ServerConfig {
            zone: spec.zone.build(),
            rrl: spec.rrl,
            start: spec.start,
            bind: "127.0.0.1:0".parse().expect("static addr"),
            udp_workers: 4,
            tcp_workers: 2,
            udp_sharding: true,
            tap: None,
        }
    }
}

/// Maps wall-clock progress onto the dataset's simulated timeline.
#[derive(Clone)]
struct Clock {
    start: SimTime,
    epoch: Instant,
}

impl Clock {
    fn now(&self) -> SimTime {
        self.start + SimDuration::from_micros(self.epoch.elapsed().as_micros() as u64)
    }
}

/// Reusable per-worker buffers for the transport-independent
/// processing core: the respond scratch (response cache + output
/// buffer) plus the TCP framing buffers. One per worker thread; the
/// saturation bench and the allocation tests hold one directly.
pub struct WorkerState {
    scratch: RespondScratch,
    frame_out: Vec<u8>,
    frame_query: Vec<u8>,
}

impl Default for WorkerState {
    fn default() -> Self {
        WorkerState::new()
    }
}

impl WorkerState {
    /// Fresh state with a cold response cache.
    pub fn new() -> WorkerState {
        WorkerState {
            scratch: RespondScratch::new(),
            frame_out: Vec::new(),
            frame_query: Vec::new(),
        }
    }

    /// The respond scratch (cache hit/miss counters live here).
    pub fn scratch(&self) -> &RespondScratch {
        &self.scratch
    }
}

/// RFC 1035 length-frame `payload` into the reused `out` buffer.
/// False when the payload cannot be framed (longer than `u16::MAX`).
fn frame_into(out: &mut Vec<u8>, payload: &[u8]) -> bool {
    let Ok(len) = u16::try_from(payload.len()) else {
        return false;
    };
    out.clear();
    out.extend_from_slice(&len.to_be_bytes());
    out.extend_from_slice(payload);
    true
}

/// The transport-independent serving core every worker shares:
/// respond, rate-limit, count, mirror. Socket loops feed it datagrams
/// and framed TCP messages; the saturation bench and allocation tests
/// feed it directly, so what they measure is what the workers run.
pub struct Engine {
    responder: Responder,
    rrl: Option<ShardedRateLimiter>,
    stats: Stats,
    tap: Option<Tap>,
    clock: Clock,
}

impl Engine {
    /// Build a serving core. `rrl_shards` is the shard count for the
    /// sharded limiter (ignored without an RRL config).
    pub fn new(
        zone: ZoneModel,
        rrl: Option<RrlConfig>,
        rrl_shards: usize,
        start: SimTime,
        tap: Option<Tap>,
    ) -> Engine {
        Engine {
            responder: Responder::new(zone),
            rrl: rrl.map(|c| ShardedRateLimiter::new(c, rrl_shards.max(1))),
            stats: Stats::new(),
            tap,
            clock: Clock {
                start,
                epoch: Instant::now(),
            },
        }
    }

    /// Live counters.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Merged RRL shard counters, when rate limiting is enabled.
    pub fn rrl_stats(&self) -> Option<simnet::rrl::RrlStats> {
        self.rrl.as_ref().map(|r| r.stats())
    }

    /// Process one UDP datagram received from `peer` on a socket bound
    /// to `local`; returns the reply payload to send back to `peer`
    /// (None: malformed or RRL-dropped — counted, nothing to send).
    /// Counts, rate-limits, and mirrors into the tap; allocation-free
    /// in steady state (warm cache, stable mix).
    pub fn process_udp<'w>(
        &self,
        datagram: &[u8],
        peer: SocketAddr,
        local: SocketAddr,
        state: &'w mut WorkerState,
    ) -> Option<&'w [u8]> {
        let t0 = Instant::now();
        // logical flow: from the preamble when the load generator sent
        // it, else the real socket addresses (plain clients)
        let (flow_src, flow_dst, payload) = match Preamble::parse(datagram) {
            Some((p, used)) => (p.src, p.dst, &datagram[used..]),
            None => (peer, local, datagram),
        };
        let now = self.clock.now();
        self.stats.bump(&self.stats.udp_queries);
        let flight_key = note_recv_hop(payload, flow_src);
        let mut gate = self.rrl.as_ref();
        let outcome = self.responder.handle_into_gated(
            payload,
            Transport::Udp,
            flow_src.ip(),
            now,
            gate.as_mut(),
            &mut state.scratch,
        );
        if let Some(key) = flight_key {
            obs::flight::hop("authd.respond", key);
        }
        let flow = FlowKey {
            src: flow_src.ip(),
            src_port: flow_src.port(),
            dst: flow_dst.ip(),
            dst_port: flow_dst.port(),
            transport: Transport::Udp,
        };
        match outcome {
            OutcomeRef::Malformed => {
                self.stats.bump(&self.stats.malformed);
                None
            }
            OutcomeRef::RrlDrop => {
                self.stats.bump(&self.stats.rrl_dropped);
                // the capture shows what the wire showed: a query the
                // server never answered
                self.tap_exchange(now, flow, 0, payload, None);
                None
            }
            OutcomeRef::Reply {
                bytes,
                truncated,
                slipped,
            } => {
                self.stats.bump(&self.stats.responses);
                if truncated {
                    self.stats.bump(&self.stats.truncated);
                }
                if slipped {
                    self.stats.bump(&self.stats.rrl_slipped);
                }
                self.tap_exchange(now, flow, 0, payload, Some(bytes));
                if let Some(key) = flight_key {
                    obs::flight::hop("authd.tap", key);
                }
                self.stats
                    .latency
                    .record(t0.elapsed().as_micros().max(1) as u64);
                Some(bytes)
            }
        }
    }

    /// Process one deframed TCP message; returns the length-framed
    /// response to write back, or None when there is nothing to send
    /// (malformed — counted, and the connection must keep serving any
    /// pipelined frames behind it).
    pub fn process_tcp<'w>(
        &self,
        msg: &[u8],
        peer: SocketAddr,
        local: SocketAddr,
        preamble: Option<Preamble>,
        state: &'w mut WorkerState,
    ) -> Option<&'w [u8]> {
        let t0 = Instant::now();
        let now = self.clock.now();
        self.stats.bump(&self.stats.tcp_queries);
        let (flow_src, flow_dst, rtt_us) = match preamble {
            Some(p) => (p.src, p.dst, p.rtt_us),
            None => (peer, local, 0),
        };
        let flight_key = note_recv_hop(msg, flow_src);
        let outcome = self.responder.handle_into_gated(
            msg,
            Transport::Tcp,
            flow_src.ip(),
            now,
            Option::<&mut RateLimiter>::None,
            &mut state.scratch,
        );
        if let Some(key) = flight_key {
            obs::flight::hop("authd.respond", key);
        }
        let flow = FlowKey {
            src: flow_src.ip(),
            src_port: flow_src.port(),
            dst: flow_dst.ip(),
            dst_port: flow_dst.port(),
            transport: Transport::Tcp,
        };
        match outcome {
            OutcomeRef::Malformed => {
                self.stats.bump(&self.stats.malformed);
                None
            }
            OutcomeRef::RrlDrop => unreachable!("TCP responses bypass RRL"),
            OutcomeRef::Reply { bytes, .. } => {
                self.stats.bump(&self.stats.responses);
                if !frame_into(&mut state.frame_out, bytes) {
                    return None;
                }
                // capture-format convention: TCP payloads keep the
                // RFC 1035 two-octet length prefix (matches the
                // offline generator)
                if frame_into(&mut state.frame_query, msg) {
                    self.tap_exchange(
                        now,
                        flow,
                        rtt_us,
                        &state.frame_query,
                        Some(&state.frame_out),
                    );
                    if let Some(key) = flight_key {
                        obs::flight::hop("authd.tap", key);
                    }
                }
                self.stats
                    .latency
                    .record(t0.elapsed().as_micros().max(1) as u64);
                Some(&state.frame_out)
            }
        }
    }

    /// Mirror one exchange into the tap (when present), straight from
    /// the borrowed payloads — no per-record allocation.
    fn tap_exchange(
        &self,
        now: SimTime,
        flow: FlowKey,
        tcp_rtt_us: u32,
        query: &[u8],
        response: Option<&[u8]>,
    ) {
        let Some(tap) = &self.tap else { return };
        let q = RecordRef {
            timestamp: now,
            direction: Direction::Query,
            flow,
            tcp_rtt_us,
            payload: query,
        };
        let r = response.map(|bytes| RecordRef {
            timestamp: now,
            direction: Direction::Response,
            flow: flow.reversed(),
            tcp_rtt_us,
            payload: bytes,
        });
        let _ = tap.write_pair_ref(q, r);
    }
}

/// Everything the worker threads share.
struct Shared {
    engine: Engine,
    shutdown: AtomicBool,
}

/// A running server; dropping it without [`Server::shutdown`] leaks
/// worker threads until process exit, so call it.
pub struct Server {
    udp_addr: SocketAddr,
    tcp_addr: SocketAddr,
    udp_sharded: bool,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
    conn_rx: crossbeam::channel::Receiver<TcpStream>,
}

impl Server {
    /// Bind sockets, spawn workers, return immediately.
    pub fn start(config: ServerConfig) -> io::Result<Server> {
        let udp_workers = config.udp_workers.max(1);
        let shard_set =
            UdpShardSet::bind_with(config.bind, udp_workers, POLL, config.udp_sharding)?;
        let udp_addr = shard_set.addr();
        let udp_sharded = shard_set.sharded();
        let listener = TcpListener::bind(config.bind)?;
        listener.set_nonblocking(true)?;
        let tcp_addr = listener.local_addr()?;

        let engine = Engine::new(
            config.zone,
            config.rrl,
            udp_workers * RRL_SHARDS_PER_WORKER,
            config.start,
            config.tap,
        );
        engine.stats().publish("authd_server");
        let shared = Arc::new(Shared {
            engine,
            shutdown: AtomicBool::new(false),
        });

        let mut threads = Vec::new();
        for (i, shard) in shard_set.into_shards().into_iter().enumerate() {
            let shared = Arc::clone(&shared);
            threads.push(
                thread::Builder::new()
                    .name(format!("authd-udp-{i}"))
                    .spawn(move || udp_worker(shard, &shared, i))?,
            );
        }

        let (conn_tx, conn_rx) = crossbeam::channel::bounded::<TcpStream>(64);
        for i in 0..config.tcp_workers.max(1) {
            let rx = conn_rx.clone();
            let shared = Arc::clone(&shared);
            threads.push(
                thread::Builder::new()
                    .name(format!("authd-tcp-{i}"))
                    .spawn(move || tcp_worker(&rx, &shared, i))?,
            );
        }
        {
            let shared = Arc::clone(&shared);
            // the accept loop holds its own receiver clone purely to
            // observe queue occupancy; it never recv()s from it
            let depth_rx = conn_rx.clone();
            threads.push(
                thread::Builder::new()
                    .name("authd-accept".into())
                    .spawn(move || accept_loop(&listener, &conn_tx, &depth_rx, &shared))?,
            );
        }

        Ok(Server {
            udp_addr,
            tcp_addr,
            udp_sharded,
            shared,
            threads,
            conn_rx,
        })
    }

    /// Bound UDP address.
    pub fn udp_addr(&self) -> SocketAddr {
        self.udp_addr
    }

    /// Bound TCP address.
    pub fn tcp_addr(&self) -> SocketAddr {
        self.tcp_addr
    }

    /// Whether the UDP plane took the `SO_REUSEPORT` + `*mmsg` path.
    pub fn udp_sharded(&self) -> bool {
        self.udp_sharded
    }

    /// Live counters (shared with the workers).
    pub fn stats(&self) -> &Stats {
        &self.shared.engine.stats
    }

    /// Seconds since the server started.
    pub fn elapsed_secs(&self) -> f64 {
        self.shared.engine.clock.epoch.elapsed().as_secs_f64()
    }

    /// Ask the workers to stop (returns immediately).
    pub fn request_shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// Drain: stop workers, join them, account for connections still
    /// queued in the accept channel, flush + seal the tap.
    ///
    /// Returns the number of capture records flushed (0 without a tap).
    pub fn shutdown(mut self) -> io::Result<u64> {
        self.request_shutdown();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        // connections accepted but never picked up by a worker: closed
        // unserved, but counted, so accepted == served + dropped holds
        while let Ok(stream) = self.conn_rx.try_recv() {
            drop(stream);
            self.shared
                .engine
                .stats
                .bump(&self.shared.engine.stats.tcp_dropped);
        }
        match &self.shared.engine.tap {
            Some(tap) => tap.finish(),
            None => Ok(0),
        }
    }
}

fn udp_worker(shard: UdpShard, shared: &Shared, index: usize) {
    let local = shard
        .socket()
        .local_addr()
        .unwrap_or_else(|_| "127.0.0.1:0".parse().expect("static addr"));
    let mut pool = MsgBufPool::new(sockets::MAX_BATCH);
    let mut state = WorkerState::new();
    let stats = &shared.engine.stats;
    // time blocked waiting for datagrams counts as idle, everything
    // after a non-empty batch arrives as busy
    let mut util = obs::Utilization::new(obs::gauge(
        &format!("authd_udp_worker{index}_busy_permille"),
        "authd UDP worker busy fraction (permille, windowed)",
    ));
    while !shared.shutdown.load(Ordering::SeqCst) {
        let wait = Instant::now();
        let got = match shard.recv_batch(&mut pool) {
            Ok(0) => {
                util.idle(wait.elapsed()); // timeout: poll the shutdown flag
                continue;
            }
            Ok(n) => n,
            Err(e) => {
                if e.kind() == io::ErrorKind::ConnectionRefused {
                    // async ICMP error from an earlier reply whose peer
                    // vanished, surfaced on this socket's next syscall;
                    // the error queue holds one entry per bounced reply
                    stats.send_errors.add(shard.drain_errors().max(1));
                } else {
                    thread::sleep(Duration::from_millis(1));
                }
                util.idle(wait.elapsed());
                continue;
            }
        };
        util.idle(wait.elapsed());
        let work = Instant::now();
        pool.clear_replies();
        for i in 0..got {
            let (datagram, peer) = pool.datagram(i);
            if let Some(reply) = shared.engine.process_udp(datagram, peer, local, &mut state) {
                pool.stage_reply(peer, reply);
            }
        }
        let (_sent, errors) = shard.send_staged(&mut pool);
        if errors > 0 {
            stats.send_errors.add(errors);
            // already counted per-datagram above; just empty the queue
            shard.drain_errors();
        }
        util.busy(work.elapsed());
    }
}

fn accept_loop(
    listener: &TcpListener,
    conn_tx: &crossbeam::channel::Sender<TcpStream>,
    depth_rx: &crossbeam::channel::Receiver<TcpStream>,
    shared: &Shared,
) {
    let stats = &shared.engine.stats;
    let queue = obs::QueueDepth::register(
        "authd_tcp_accept",
        "connections accepted but not yet picked up by a TCP worker",
    );
    while !shared.shutdown.load(Ordering::SeqCst) {
        // block in the kernel until a connection is pending (or the
        // poll timeout lets us check the shutdown flag)
        match sockets::wait_readable(listener, POLL) {
            Ok(false) => continue,
            Ok(true) => {}
            Err(_) => continue,
        }
        // drain everything that is ready
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    stats.bump(&stats.tcp_accepted);
                    let mut item = stream;
                    loop {
                        match conn_tx.try_send(item) {
                            Ok(()) => {
                                queue.record(depth_rx.len());
                                break;
                            }
                            Err(crossbeam::channel::TrySendError::Full(back)) => {
                                queue.record(depth_rx.len());
                                if shared.shutdown.load(Ordering::SeqCst) {
                                    stats.bump(&stats.tcp_dropped);
                                    break;
                                }
                                item = back;
                                thread::sleep(Duration::from_millis(1));
                            }
                            Err(crossbeam::channel::TrySendError::Disconnected(_)) => return,
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
    }
}

fn tcp_worker(rx: &crossbeam::channel::Receiver<TcpStream>, shared: &Shared, index: usize) {
    let stats = &shared.engine.stats;
    let mut state = WorkerState::new();
    // busy = occupied by a connection (including its in-conversation
    // read waits — the worker cannot serve anyone else meanwhile)
    let mut util = obs::Utilization::new(obs::gauge(
        &format!("authd_tcp_worker{index}_busy_permille"),
        "authd TCP worker busy fraction (permille, windowed)",
    ));
    let queue = obs::QueueDepth::register(
        "authd_tcp_accept",
        "connections accepted but not yet picked up by a TCP worker",
    );
    loop {
        let wait = Instant::now();
        match rx.recv_timeout(POLL) {
            Ok(stream) => {
                util.idle(wait.elapsed());
                queue.record(rx.len());
                if shared.shutdown.load(Ordering::SeqCst) {
                    // shutdown already requested: this connection will
                    // never be served, account for it
                    stats.bump(&stats.tcp_dropped);
                    continue;
                }
                stats.bump(&stats.tcp_served);
                let work = Instant::now();
                serve_tcp_conn(stream, shared, &mut state);
                util.busy(work.elapsed());
            }
            Err(_) => {
                util.idle(wait.elapsed());
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
        }
    }
}

/// Serve one TCP connection to completion (peer close, error, overrun,
/// or server shutdown).
fn serve_tcp_conn(mut stream: TcpStream, shared: &Shared, state: &mut WorkerState) {
    let _ = stream.set_read_timeout(Some(POLL));
    let _ = stream.set_nodelay(true);
    let peer = match stream.peer_addr() {
        Ok(p) => p,
        Err(_) => return,
    };
    let local = stream.local_addr().unwrap_or(peer);

    let mut deframer = Deframer::new();
    let mut head: Vec<u8> = Vec::new(); // bytes before the preamble decision
    let mut preamble: Option<Preamble> = None;
    let mut preamble_decided = false;
    let mut chunk = vec![0u8; 4096];

    while !shared.shutdown.load(Ordering::SeqCst) {
        let n = match stream.read(&mut chunk) {
            Ok(0) => return, // peer closed
            Ok(n) => n,
            // Interrupted: a signal (e.g. obs::prof's SIGPROF ticker)
            // hit the timed read — the connection is still healthy
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted =>
            {
                continue
            }
            Err(_) => return,
        };
        let mut bytes = &chunk[..n];
        if !preamble_decided {
            head.extend_from_slice(bytes);
            if head.len() >= 4 && head[..4] != crate::proxy::MAGIC {
                // bare client (dig): everything seen is frame data
                preamble_decided = true;
            } else if let Some((p, used)) = Preamble::parse(&head) {
                preamble = Some(p);
                head.drain(..used);
                preamble_decided = true;
            } else if head.len() > 64 {
                // claimed the magic but never completed a preamble
                shared.engine.stats.bump(&shared.engine.stats.malformed);
                return;
            } else {
                continue; // need more bytes to decide
            }
            deframer.push(&head);
            head = Vec::new();
            bytes = &[];
        }
        deframer.push(bytes);
        if deframer.pending() > PENDING_CAP {
            shared.engine.stats.bump(&shared.engine.stats.overruns);
            return;
        }
        while let Some(msg) = deframer.next_message() {
            if !serve_tcp_message(&mut stream, &msg, peer, local, preamble, shared, state) {
                return;
            }
        }
    }
}

/// Handle one framed TCP query; false ends the connection (only write
/// failures do — a malformed frame is counted and the connection keeps
/// serving whatever is pipelined behind it).
fn serve_tcp_message(
    stream: &mut TcpStream,
    msg: &[u8],
    peer: SocketAddr,
    local: SocketAddr,
    preamble: Option<Preamble>,
    shared: &Shared,
    state: &mut WorkerState,
) -> bool {
    match shared.engine.process_tcp(msg, peer, local, preamble, state) {
        None => true,
        Some(framed) => stream.write_all(framed).is_ok(),
    }
}

/// Flight-recorder identity of one served query, decided once at
/// receive time: the logical flow source plus the DNS message id
/// stands in for the generation timestamp the offline pipeline keys
/// on (the server never sees that clock). Returns `Some(key)` — after
/// emitting the `authd.recv` hop — only for sampled queries, so the
/// later hops are a plain `if let` with no re-hash. One relaxed
/// atomic load when sampling is off.
#[inline]
fn note_recv_hop(payload: &[u8], src: SocketAddr) -> Option<u64> {
    if !obs::flight::sampling_enabled() || payload.len() < 2 {
        return None;
    }
    let id = u16::from_be_bytes([payload[0], payload[1]]) as u64;
    let key = obs::flight::query_key(id, &src.ip(), src.port());
    if !obs::flight::sampled(key) {
        return None;
    }
    obs::flight::hop("authd.recv", key);
    Some(key)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_wire::builder::MessageBuilder;
    use dns_wire::message::Message;
    use dns_wire::tcp::frame;
    use dns_wire::types::{RType, Rcode};
    use simnet::profile::Vantage;
    use simnet::scenario::dataset;
    use std::net::UdpSocket;

    fn start_server() -> (Server, String) {
        let spec = dataset(Vantage::Nl, 2020);
        let config = ServerConfig::for_spec(&spec);
        let qname = config.zone.registered_domain(0).to_string();
        (Server::start(config).unwrap(), qname)
    }

    fn query_wire(qname: &str, id: u16) -> Vec<u8> {
        MessageBuilder::query(id, qname.parse().unwrap(), RType::A)
            .with_edns(4096, false)
            .build()
            .encode()
            .unwrap()
    }

    #[test]
    fn serves_bare_udp_clients() {
        let (server, qname) = start_server();
        let sock = UdpSocket::bind("127.0.0.1:0").unwrap();
        sock.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        sock.send_to(&query_wire(&qname, 99), server.udp_addr())
            .unwrap();
        let mut buf = [0u8; 65_535];
        let (n, _) = sock.recv_from(&mut buf).unwrap();
        let msg = Message::parse(&buf[..n]).unwrap();
        assert!(msg.header.response);
        assert_eq!(msg.header.id, 99);
        assert_eq!(msg.header.rcode, Rcode::NoError);
        assert_eq!(server.stats().snapshot(1.0).udp_queries, 1);
        server.shutdown().unwrap();
    }

    #[test]
    fn serves_tcp_with_split_frames() {
        let (server, qname) = start_server();
        let wire = query_wire(&qname, 7);
        let framed = frame(&wire).unwrap();
        let mut stream = TcpStream::connect(server.tcp_addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        // dribble the framed query one byte at a time: the server must
        // reassemble partial reads
        for b in &framed {
            stream.write_all(std::slice::from_ref(b)).unwrap();
            stream.flush().unwrap();
        }
        let mut len = [0u8; 2];
        stream.read_exact(&mut len).unwrap();
        let mut body = vec![0u8; u16::from_be_bytes(len) as usize];
        stream.read_exact(&mut body).unwrap();
        let msg = Message::parse(&body).unwrap();
        assert!(msg.header.response);
        assert_eq!(msg.header.id, 7);
        server.shutdown().unwrap();
    }

    #[test]
    fn counts_malformed_udp() {
        let (server, _) = start_server();
        let sock = UdpSocket::bind("127.0.0.1:0").unwrap();
        sock.send_to(b"not dns at all", server.udp_addr()).unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        while server.stats().snapshot(1.0).malformed == 0 {
            assert!(
                Instant::now() < deadline,
                "malformed datagram never counted"
            );
            thread::sleep(Duration::from_millis(10));
        }
        server.shutdown().unwrap();
    }

    #[test]
    fn tcp_pipelined_frames_survive_a_malformed_one() {
        let (server, qname) = start_server();
        let mut stream = TcpStream::connect(server.tcp_addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        // good, bad, good — all in one write; the bad frame must be
        // counted and the frames behind it still served
        let mut burst = Vec::new();
        burst.extend_from_slice(&frame(&query_wire(&qname, 21)).unwrap());
        burst.extend_from_slice(&frame(b"this is not a dns message").unwrap());
        burst.extend_from_slice(&frame(&query_wire(&qname, 22)).unwrap());
        stream.write_all(&burst).unwrap();

        let mut ids = Vec::new();
        for _ in 0..2 {
            let mut len = [0u8; 2];
            stream.read_exact(&mut len).unwrap();
            let mut body = vec![0u8; u16::from_be_bytes(len) as usize];
            stream.read_exact(&mut body).unwrap();
            let msg = Message::parse(&body).unwrap();
            assert!(msg.header.response);
            ids.push(msg.header.id);
        }
        assert_eq!(ids, vec![21, 22], "both good frames answered in order");
        let snap = server.stats().snapshot(1.0);
        assert_eq!(snap.malformed, 1, "the bad frame was counted");
        assert_eq!(snap.tcp_queries, 3);
        server.shutdown().unwrap();
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn udp_send_errors_are_counted_when_the_peer_vanishes() {
        let (server, qname) = start_server();
        // bursts of queries from sockets that close before the reply
        // lands: the kernel raises ICMP port-unreachable, which the
        // worker sees as a failed send (or a refused recv) on a later
        // syscall against the same shard socket
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut id = 0u16;
        while server.stats().snapshot(1.0).send_errors == 0 {
            assert!(
                Instant::now() < deadline,
                "peer-gone replies never surfaced as send errors"
            );
            for _ in 0..16 {
                let sock = UdpSocket::bind("127.0.0.1:0").unwrap();
                sock.send_to(&query_wire(&qname, id), server.udp_addr())
                    .unwrap();
                id = id.wrapping_add(1);
                drop(sock); // gone before the reply can land
            }
            thread::sleep(Duration::from_millis(20));
        }
        server.shutdown().unwrap();
    }

    #[test]
    fn shutdown_accounts_for_queued_tcp_connections() {
        let spec = dataset(Vantage::Nl, 2020);
        let mut config = ServerConfig::for_spec(&spec);
        config.tcp_workers = 1;
        let server = Server::start(config).unwrap();

        // first connection occupies the lone worker (we never write to
        // it, the worker sits in its read-timeout loop); the rest queue
        // in the accept channel
        const N: usize = 6;
        let streams: Vec<TcpStream> = (0..N)
            .map(|_| TcpStream::connect(server.tcp_addr()).unwrap())
            .collect();
        let deadline = Instant::now() + Duration::from_secs(5);
        while server.stats().snapshot(1.0).tcp_accepted < N as u64 {
            assert!(Instant::now() < deadline, "connections never accepted");
            thread::sleep(Duration::from_millis(10));
        }
        // give the worker a moment to pick up the first connection
        let deadline = Instant::now() + Duration::from_secs(5);
        while server.stats().snapshot(1.0).tcp_served == 0 {
            assert!(Instant::now() < deadline, "no connection ever served");
            thread::sleep(Duration::from_millis(10));
        }

        // the handles outlive the server, so we can read the final
        // tallies after shutdown consumes it
        let accepted = Arc::clone(&server.stats().tcp_accepted);
        let served = Arc::clone(&server.stats().tcp_served);
        let dropped = Arc::clone(&server.stats().tcp_dropped);
        server.shutdown().unwrap();
        drop(streams);
        assert_eq!(accepted.get(), N as u64);
        assert_eq!(
            served.get() + dropped.get(),
            accepted.get(),
            "served + dropped must balance accepted (served {} dropped {})",
            served.get(),
            dropped.get()
        );
        assert!(dropped.get() >= 1, "queued connections counted as dropped");
    }
}

//! Logical-address preamble for loopback runs.
//!
//! The analysis pipeline attributes queries to cloud providers by the
//! *resolver's source address* (the fleet address plan) and to letters
//! by the *server's destination address*. Over loopback every packet is
//! `127.0.0.1 → 127.0.0.1`, which would erase exactly the signal the
//! paper measures. So the load generator prefixes each UDP datagram
//! (and each TCP connection, once, before the first length-framed
//! message) with a small preamble carrying the logical flow:
//!
//! ```text
//! "LPX1" | src tag(4|6) octets port | dst tag octets port | rtt_us u32
//! ```
//!
//! All integers big-endian. The server strips the preamble, handles the
//! DNS payload, and stamps capture-tap records with the logical
//! addresses — so the `.dnscap` a live run produces is
//! indistinguishable in shape from an offline one. `rtt_us` lets the
//! client side donate its measured TCP connect time, which the offline
//! format records on TCP rows (Table 5 transport analysis).
//!
//! Datagrams *without* the magic are handled as-is with their real
//! socket addresses, so the server also serves plain `dig`-style
//! clients.

use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr};

/// Preamble magic; deliberately an invalid DNS header prefix is not
/// guaranteed, so the tag is checked before any parse attempt.
pub const MAGIC: [u8; 4] = *b"LPX1";

/// A parsed logical-flow preamble.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Preamble {
    /// Logical source (resolver) address.
    pub src: SocketAddr,
    /// Logical destination (authoritative) address.
    pub dst: SocketAddr,
    /// Client-measured TCP connect RTT in µs (0 for UDP).
    pub rtt_us: u32,
}

impl Preamble {
    /// Encode, ready to prepend to a payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(46);
        out.extend_from_slice(&MAGIC);
        push_addr(&mut out, self.src);
        push_addr(&mut out, self.dst);
        out.extend_from_slice(&self.rtt_us.to_be_bytes());
        out
    }

    /// Parse a preamble off the front of `buf`.
    ///
    /// Returns the preamble and the number of bytes it consumed, or
    /// `None` when `buf` does not start with [`MAGIC`] (the datagram is
    /// then a bare DNS message from a non-fleet client) or is torn.
    pub fn parse(buf: &[u8]) -> Option<(Preamble, usize)> {
        if buf.len() < 4 || buf[..4] != MAGIC {
            return None;
        }
        let mut pos = 4;
        let src = pull_addr(buf, &mut pos)?;
        let dst = pull_addr(buf, &mut pos)?;
        let rtt_us = u32::from_be_bytes(buf.get(pos..pos + 4)?.try_into().ok()?);
        pos += 4;
        Some((Preamble { src, dst, rtt_us }, pos))
    }
}

fn push_addr(out: &mut Vec<u8>, addr: SocketAddr) {
    match addr.ip() {
        IpAddr::V4(v4) => {
            out.push(4);
            out.extend_from_slice(&v4.octets());
        }
        IpAddr::V6(v6) => {
            out.push(6);
            out.extend_from_slice(&v6.octets());
        }
    }
    out.extend_from_slice(&addr.port().to_be_bytes());
}

fn pull_addr(buf: &[u8], pos: &mut usize) -> Option<SocketAddr> {
    let tag = *buf.get(*pos)?;
    *pos += 1;
    let ip = match tag {
        4 => {
            let oct: [u8; 4] = buf.get(*pos..*pos + 4)?.try_into().ok()?;
            *pos += 4;
            IpAddr::V4(Ipv4Addr::from(oct))
        }
        6 => {
            let oct: [u8; 16] = buf.get(*pos..*pos + 16)?.try_into().ok()?;
            *pos += 16;
            IpAddr::V6(Ipv6Addr::from(oct))
        }
        _ => return None,
    };
    let port = u16::from_be_bytes(buf.get(*pos..*pos + 2)?.try_into().ok()?);
    *pos += 2;
    Some(SocketAddr::new(ip, port))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_v4_and_v6() {
        let p = Preamble {
            src: "203.0.113.9:4242".parse().unwrap(),
            dst: "[2001:db8::53]:53".parse().unwrap(),
            rtt_us: 12_345,
        };
        let mut wire = p.encode();
        wire.extend_from_slice(b"payload");
        let (got, used) = Preamble::parse(&wire).unwrap();
        assert_eq!(got, p);
        assert_eq!(&wire[used..], b"payload");
    }

    #[test]
    fn rejects_foreign_and_torn_input() {
        assert!(Preamble::parse(b"").is_none());
        assert!(Preamble::parse(b"\x12\x34\x01\x00rest-of-dns").is_none());
        let p = Preamble {
            src: "10.0.0.1:1000".parse().unwrap(),
            dst: "10.0.0.2:53".parse().unwrap(),
            rtt_us: 0,
        };
        let wire = p.encode();
        for cut in 1..wire.len() {
            assert!(Preamble::parse(&wire[..cut]).is_none(), "cut {cut}");
        }
    }
}

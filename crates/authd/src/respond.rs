//! The serving hot path: decode → authoritative answer → encode.
//!
//! One [`Responder`] is shared read-only across all worker threads; the
//! only mutable piece of per-query state is the optional RRL gate,
//! which callers pass in (the server shards its limiter by bucket key —
//! `simnet::rrl::ShardedRateLimiter` — so rate decisions stay globally
//! identical to a serial limiter without a global lock).

use dns_wire::message::Message;
use dns_wire::types::Rcode;
use netbase::flow::Transport;
use netbase::time::SimTime;
use simnet::engine::{name_key, name_key_wire};
use simnet::rrl::{RateLimiter, ResponseClass, RrlAction, RrlGate};
use simnet::scenario::DatasetSpec;
use std::net::IpAddr;
use zonedb::zone::ZoneModel;

/// Direct-mapped response-cache slots per [`RespondScratch`].
const CACHE_SLOTS: usize = 1024;
/// Largest cacheable key (query payload minus the id), bytes.
const MAX_CACHED_KEY: usize = 512;
/// Largest cacheable encoded response, bytes.
const MAX_CACHED_RESP: usize = 4096;

/// What the server should do with one inbound message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// Send these bytes back; `truncated` is the UDP TC=1 flag.
    Reply {
        /// Encoded response message.
        bytes: Vec<u8>,
        /// Response was truncated to the advertised UDP size.
        truncated: bool,
        /// RRL replaced the answer with an empty TC=1 slip.
        slipped: bool,
    },
    /// RRL dropped the response; count it, send nothing.
    RrlDrop,
    /// Input did not parse as a DNS query; count it, send nothing.
    Malformed,
}

/// [`Outcome`] borrowing the reply bytes from a [`RespondScratch`]
/// instead of owning them — the zero-allocation return type of
/// [`Responder::handle_into`].
#[derive(Debug, PartialEq, Eq)]
pub enum OutcomeRef<'a> {
    /// Send these bytes back; `truncated` is the UDP TC=1 flag.
    Reply {
        /// Encoded response, valid until the scratch is next used.
        bytes: &'a [u8],
        /// Response was truncated to the advertised UDP size.
        truncated: bool,
        /// RRL replaced the answer with an empty TC=1 slip.
        slipped: bool,
    },
    /// RRL dropped the response; count it, send nothing.
    RrlDrop,
    /// Input did not parse as a DNS query; count it, send nothing.
    Malformed,
}

/// One cached (query → response) pair. The key is the query payload
/// *minus its 2-byte id*; on a hit the cached response is copied out
/// and only its id patched, so the reply is byte-identical to what the
/// slow path would synthesize.
struct CacheEntry {
    key: Vec<u8>,
    transport: Transport,
    resp: Vec<u8>,
    truncated: bool,
    /// Wire length of the qname at response offset 12 (root byte
    /// included) — locates the question section for slip synthesis.
    qname_len: u16,
    /// Response carries an option-less OPT as its final 11 bytes.
    has_edns: bool,
    /// RRL class the slow path derived for this response.
    class: ResponseClass,
}

/// Per-worker mutable state for [`Responder::handle_into`]: a
/// direct-mapped response cache plus the reused output buffer. In
/// steady state (warm cache, stable query mix) the respond path makes
/// zero heap allocations.
pub struct RespondScratch {
    slots: Vec<Option<CacheEntry>>,
    out: Vec<u8>,
    hits: u64,
    misses: u64,
}

impl Default for RespondScratch {
    fn default() -> Self {
        RespondScratch::new()
    }
}

impl RespondScratch {
    /// Empty scratch with all cache slots vacant.
    pub fn new() -> RespondScratch {
        RespondScratch {
            slots: (0..CACHE_SLOTS).map(|_| None).collect(),
            out: Vec::with_capacity(MAX_CACHED_RESP),
            hits: 0,
            misses: 0,
        }
    }

    /// Queries answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Queries that went through full parse + synthesis + encode.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

/// The shape of a cacheable query payload (see [`cacheable_query`]).
struct QueryShape {
    /// Wire length of the qname at offset 12, root byte included.
    qname_len: u16,
    /// The single additional record is an OPT.
    has_opt: bool,
}

/// Decide whether `payload` is simple enough to serve from the response
/// cache: exactly one question whose qname is plain labels at offset
/// 12, no answer/authority records, and at most one additional which
/// must be an OPT. Everything else takes the slow path (and is still
/// answered correctly — just without caching).
fn cacheable_query(payload: &[u8]) -> Option<QueryShape> {
    if payload.len() < 12 || payload.len() - 2 > MAX_CACHED_KEY {
        return None;
    }
    let count = |at: usize| u16::from_be_bytes([payload[at], payload[at + 1]]);
    if count(4) != 1 || count(6) != 0 || count(8) != 0 || count(10) > 1 {
        return None;
    }
    // walk the qname: plain labels only (a compression pointer in a
    // query is exotic; let the slow path deal with it)
    let mut pos = 12usize;
    loop {
        let len = *payload.get(pos)? as usize;
        if len == 0 {
            pos += 1;
            break;
        }
        if len > 63 || pos - 12 > 255 {
            return None;
        }
        pos += 1 + len;
    }
    let qname_len = (pos - 12) as u16;
    let fixed_end = pos + 4; // qtype + qclass
    if payload.len() < fixed_end {
        return None;
    }
    let has_opt = if count(10) == 1 {
        // root owner (0x00) + type OPT (41) right after the question
        if payload.len() < fixed_end + 11
            || payload[fixed_end] != 0
            || payload[fixed_end + 1] != 0
            || payload[fixed_end + 2] != 41
        {
            return None;
        }
        true
    } else {
        false
    };
    Some(QueryShape { qname_len, has_opt })
}

/// FNV-1a over the exact key bytes, seeded by transport.
fn cache_hash(key: &[u8], transport: Transport) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ ((transport == Transport::Tcp) as u64);
    for &b in key {
        h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Stateless response synthesis shared by all workers.
pub struct Responder {
    auth: simnet::auth::Authoritative,
}

impl Responder {
    /// Build a responder serving `zone`.
    pub fn new(zone: ZoneModel) -> Responder {
        Responder {
            auth: simnet::auth::Authoritative::new(zone),
        }
    }

    /// Responder for the zone a dataset spec describes.
    pub fn for_spec(spec: &DatasetSpec) -> Responder {
        Responder::new(spec.zone.build())
    }

    /// The zone being served.
    pub fn zone(&self) -> &ZoneModel {
        self.auth.zone()
    }

    /// Handle one query payload.
    ///
    /// For UDP, the response is truncated to the size the query's EDNS
    /// advertised (512 without EDNS, and never below 512), and `rrl` —
    /// when the dataset enables it — may slip or drop the response. TCP
    /// responses are encoded whole and bypass RRL, exactly like the
    /// offline engine's TCP path.
    pub fn handle(
        &self,
        payload: &[u8],
        transport: Transport,
        src: IpAddr,
        now: SimTime,
        rrl: Option<&mut RateLimiter>,
    ) -> Outcome {
        self.handle_gated(payload, transport, src, now, rrl)
    }

    /// [`Responder::handle`] generic over the RRL gate, so the sharded
    /// server passes a [`simnet::rrl::ShardedRateLimiter`] handle where
    /// the serial server passes `&mut RateLimiter`.
    pub fn handle_gated<L: RrlGate>(
        &self,
        payload: &[u8],
        transport: Transport,
        src: IpAddr,
        now: SimTime,
        rrl: Option<&mut L>,
    ) -> Outcome {
        let Ok(query) = Message::parse(payload) else {
            return Outcome::Malformed;
        };
        if query.header.response {
            return Outcome::Malformed;
        }
        let signed = query
            .question()
            .and_then(|q| self.zone().delegation_index(&q.qname))
            .map(|idx| self.zone().is_signed(idx))
            .unwrap_or(false);
        let answer = self.auth.respond(&query, signed);

        if transport == Transport::Tcp {
            let bytes = answer.message.encode().expect("responses encode");
            return Outcome::Reply {
                bytes,
                truncated: false,
                slipped: false,
            };
        }

        let limit = match &query.edns {
            None => 512,
            Some(e) => e.udp_payload_size.max(512) as usize,
        };
        let action = match rrl {
            Some(limiter) => {
                let class = match answer.rcode {
                    Rcode::NoError => {
                        let key = query
                            .question()
                            .map(|q| name_key(&q.qname))
                            .unwrap_or_default();
                        ResponseClass::Positive(key)
                    }
                    Rcode::NxDomain => ResponseClass::Negative,
                    _ => ResponseClass::Error,
                };
                limiter.gate(src, class, now)
            }
            None => RrlAction::Respond,
        };
        match action {
            RrlAction::Respond => {
                let (bytes, truncated) = answer
                    .message
                    .encode_with_limit(limit)
                    .expect("responses always fit after truncation");
                Outcome::Reply {
                    bytes,
                    truncated,
                    slipped: false,
                }
            }
            RrlAction::Slip => {
                let mut slip = answer.message.clone();
                slip.answers.clear();
                slip.authorities.clear();
                slip.additionals.clear();
                slip.header.truncated = true;
                Outcome::Reply {
                    bytes: slip.encode().expect("slip encodes"),
                    truncated: true,
                    slipped: true,
                }
            }
            RrlAction::Drop => Outcome::RrlDrop,
        }
    }

    /// [`Responder::handle`] through a per-worker response cache,
    /// writing the reply into `scratch` instead of allocating.
    ///
    /// The responder is a pure function of (payload-after-id,
    /// transport): header id aside, identical queries get identical
    /// responses. A cache hit is therefore a memcpy plus a 2-byte id
    /// patch — zero allocations — and RRL slips are synthesized
    /// byte-exactly from the cached response. RRL is consulted exactly
    /// once per UDP query on both the hit and miss paths; slipped and
    /// dropped outcomes are never cached.
    pub fn handle_into<'s>(
        &self,
        payload: &[u8],
        transport: Transport,
        src: IpAddr,
        now: SimTime,
        rrl: Option<&mut RateLimiter>,
        scratch: &'s mut RespondScratch,
    ) -> OutcomeRef<'s> {
        self.handle_into_gated(payload, transport, src, now, rrl, scratch)
    }

    /// [`Responder::handle_into`] generic over the RRL gate (see
    /// [`Responder::handle_gated`]).
    pub fn handle_into_gated<'s, L: RrlGate>(
        &self,
        payload: &[u8],
        transport: Transport,
        src: IpAddr,
        now: SimTime,
        mut rrl: Option<&mut L>,
        scratch: &'s mut RespondScratch,
    ) -> OutcomeRef<'s> {
        let RespondScratch {
            slots,
            out,
            hits,
            misses,
        } = scratch;
        let shape = cacheable_query(payload);
        let idx = shape
            .as_ref()
            .map(|_| cache_hash(&payload[2..], transport) as usize % slots.len());
        if let Some(idx) = idx {
            if let Some(entry) = &slots[idx] {
                if entry.transport == transport && entry.key == payload[2..] {
                    *hits += 1;
                    let action = match (transport, rrl.as_deref_mut()) {
                        (Transport::Udp, Some(limiter)) => limiter.gate(src, entry.class, now),
                        _ => RrlAction::Respond,
                    };
                    return match action {
                        RrlAction::Respond => {
                            out.clear();
                            out.extend_from_slice(&payload[..2]);
                            out.extend_from_slice(&entry.resp[2..]);
                            OutcomeRef::Reply {
                                bytes: out,
                                truncated: entry.truncated,
                                slipped: false,
                            }
                        }
                        RrlAction::Slip => {
                            // an empty TC=1 slip: cleared sections, same
                            // flags/rcode, question + OPT straight from
                            // the cached response bytes
                            out.clear();
                            out.extend_from_slice(&payload[..2]);
                            out.push(entry.resp[2] | 0x02); // TC bit
                            out.push(entry.resp[3]);
                            out.extend_from_slice(&[0, 1, 0, 0, 0, 0, 0, entry.has_edns as u8]);
                            let qlen = entry.qname_len as usize + 4;
                            out.extend_from_slice(&entry.resp[12..12 + qlen]);
                            if entry.has_edns {
                                out.extend_from_slice(&entry.resp[entry.resp.len() - 11..]);
                            }
                            OutcomeRef::Reply {
                                bytes: out,
                                truncated: true,
                                slipped: true,
                            }
                        }
                        RrlAction::Drop => OutcomeRef::RrlDrop,
                    };
                }
            }
        }

        *misses += 1;
        match self.handle_gated(payload, transport, src, now, rrl) {
            Outcome::Reply {
                bytes,
                truncated,
                slipped,
            } => {
                if !slipped && bytes.len() <= MAX_CACHED_RESP {
                    if let (Some(shape), Some(idx)) = (shape, idx) {
                        // with an OPT present its option-less 11-byte
                        // form must close the response, with zero
                        // extended-rcode bits (so resp[3] is the whole
                        // rcode story)
                        let tail_ok = !shape.has_opt || {
                            let t = bytes.len().wrapping_sub(11);
                            bytes.len() >= 23
                                && bytes[t] == 0
                                && bytes[t + 1] == 0
                                && bytes[t + 2] == 41
                                && bytes[t + 5] == 0
                                && bytes[t + 9] == 0
                                && bytes[t + 10] == 0
                        };
                        if tail_ok {
                            let class = match bytes[3] & 0x0f {
                                0 => ResponseClass::Positive(name_key_wire(
                                    &payload[12..12 + shape.qname_len as usize],
                                )),
                                3 => ResponseClass::Negative,
                                _ => ResponseClass::Error,
                            };
                            match &mut slots[idx] {
                                Some(entry) => {
                                    entry.key.clear();
                                    entry.key.extend_from_slice(&payload[2..]);
                                    entry.resp.clear();
                                    entry.resp.extend_from_slice(&bytes);
                                    entry.transport = transport;
                                    entry.truncated = truncated;
                                    entry.qname_len = shape.qname_len;
                                    entry.has_edns = shape.has_opt;
                                    entry.class = class;
                                }
                                vacant => {
                                    *vacant = Some(CacheEntry {
                                        key: payload[2..].to_vec(),
                                        transport,
                                        resp: bytes.clone(),
                                        truncated,
                                        qname_len: shape.qname_len,
                                        has_edns: shape.has_opt,
                                        class,
                                    });
                                }
                            }
                        }
                    }
                }
                *out = bytes;
                OutcomeRef::Reply {
                    bytes: out,
                    truncated,
                    slipped,
                }
            }
            Outcome::RrlDrop => OutcomeRef::RrlDrop,
            Outcome::Malformed => OutcomeRef::Malformed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_wire::builder::MessageBuilder;
    use dns_wire::types::RType;
    use simnet::profile::Vantage;
    use simnet::rrl::RrlConfig;
    use simnet::scenario::dataset;

    fn responder() -> Responder {
        Responder::for_spec(&dataset(Vantage::Nl, 2020))
    }

    fn query_bytes(name: &str, edns: Option<u16>) -> Vec<u8> {
        let mut b = MessageBuilder::query(7, name.parse().unwrap(), RType::A);
        if let Some(size) = edns {
            b = b.with_edns(size, true);
        }
        b.build().encode().unwrap()
    }

    #[test]
    fn answers_inzone_query() {
        let r = responder();
        let q = r.zone().registered_domain(0).to_string();
        let out = r.handle(
            &query_bytes(&q, Some(4096)),
            Transport::Udp,
            "192.0.2.1".parse().unwrap(),
            SimTime(0),
            None,
        );
        let Outcome::Reply {
            bytes,
            truncated,
            slipped,
        } = out
        else {
            panic!("expected a reply, got {out:?}");
        };
        assert!(!truncated);
        assert!(!slipped);
        let msg = Message::parse(&bytes).unwrap();
        assert!(msg.header.response);
        assert_eq!(msg.header.rcode, Rcode::NoError);
        // an A query below a delegation gets a referral: NS records in
        // the authority section
        assert!(!msg.authorities.is_empty());
    }

    #[test]
    fn garbage_and_responses_are_malformed() {
        let r = responder();
        let src = "192.0.2.1".parse().unwrap();
        assert_eq!(
            r.handle(b"\x00\x01junk", Transport::Udp, src, SimTime(0), None),
            Outcome::Malformed
        );
        // a response message must not be answered (no reflection loops)
        let q = r.zone().apex().to_string();
        let mut resp = Message::parse(&query_bytes(&q, None)).unwrap();
        resp.header.response = true;
        let wire = resp.encode().unwrap();
        assert_eq!(
            r.handle(&wire, Transport::Udp, src, SimTime(0), None),
            Outcome::Malformed
        );
    }

    #[test]
    fn udp_truncates_to_advertised_size_tcp_does_not() {
        let r = responder();
        let src = "192.0.2.1".parse().unwrap();
        // find a signed delegation: DNSSEC padding makes the referral
        // overflow a 512-byte answer
        let zone = r.zone();
        let idx = (0..1000)
            .find(|&i| zone.is_signed(i))
            .expect("nl zone has signed delegations");
        let q = zone.registered_domain(idx).to_string();
        let wire = query_bytes(&q, Some(512));
        let udp = r.handle(&wire, Transport::Udp, src, SimTime(0), None);
        let Outcome::Reply {
            bytes: udp_bytes,
            truncated,
            ..
        } = udp
        else {
            panic!("udp reply expected");
        };
        assert!(truncated, "signed referral must truncate at 512");
        assert!(udp_bytes.len() <= 512);
        assert!(Message::parse(&udp_bytes).unwrap().header.truncated);

        let tcp = r.handle(&wire, Transport::Tcp, src, SimTime(0), None);
        let Outcome::Reply {
            bytes: tcp_bytes,
            truncated,
            ..
        } = tcp
        else {
            panic!("tcp reply expected");
        };
        assert!(!truncated);
        assert!(tcp_bytes.len() > udp_bytes.len());
    }

    #[test]
    fn rrl_slips_then_drops_repeated_queries() {
        let r = responder();
        let src: IpAddr = "192.0.2.1".parse().unwrap();
        let mut rrl = RateLimiter::new(RrlConfig {
            responses_per_second: 2,
            burst: 2,
            slip: 2,
            ..RrlConfig::default()
        });
        let wire = query_bytes(&r.zone().registered_domain(3).to_string(), None);
        let mut slips = 0;
        let mut drops = 0;
        for _ in 0..64 {
            match r.handle(&wire, Transport::Udp, src, SimTime(0), Some(&mut rrl)) {
                Outcome::Reply {
                    slipped: true,
                    truncated,
                    ..
                } => {
                    assert!(truncated);
                    slips += 1;
                }
                Outcome::RrlDrop => drops += 1,
                Outcome::Reply { .. } => {}
                Outcome::Malformed => panic!("well-formed query"),
            }
        }
        assert!(slips > 0, "RRL should slip some responses");
        assert!(drops > 0, "RRL should drop some responses");
    }

    #[test]
    fn cached_path_matches_slow_path_bytes() {
        let r = responder();
        let src: IpAddr = "192.0.2.1".parse().unwrap();
        let mut scratch = RespondScratch::new();
        let zone_q: Vec<String> = (0..8)
            .map(|i| r.zone().registered_domain(i).to_string())
            .collect();
        for transport in [Transport::Udp, Transport::Tcp] {
            for pass in 0..2 {
                for (i, qname) in zone_q.iter().enumerate() {
                    let edns = [None, Some(512), Some(1232), Some(4096)][i % 4];
                    let mut wire = query_bytes(qname, edns);
                    // vary the id between passes: ids must never alias
                    // cache entries, and the reply must echo the new id
                    wire[0] = pass as u8;
                    wire[1] = i as u8;
                    let slow = r.handle(&wire, transport, src, SimTime(0), None);
                    let fast = r.handle_into(&wire, transport, src, SimTime(0), None, &mut scratch);
                    let Outcome::Reply {
                        bytes: slow_bytes,
                        truncated: slow_tc,
                        ..
                    } = slow
                    else {
                        panic!("slow path replied");
                    };
                    let OutcomeRef::Reply {
                        bytes: fast_bytes,
                        truncated: fast_tc,
                        ..
                    } = fast
                    else {
                        panic!("fast path replied");
                    };
                    assert_eq!(fast_bytes, &slow_bytes[..], "pass {pass} q {qname}");
                    assert_eq!(fast_tc, slow_tc);
                }
            }
        }
        // second pass onwards hits the cache
        assert!(scratch.hits() > 0, "warm pass must hit");
        assert!(scratch.misses() >= zone_q.len() as u64);
    }

    #[test]
    fn cached_slip_matches_slow_path_slip() {
        let r = responder();
        let src: IpAddr = "192.0.2.1".parse().unwrap();
        let tight = RrlConfig {
            responses_per_second: 1,
            burst: 1,
            slip: 1, // every limited response slips, deterministically
            ..RrlConfig::default()
        };
        let mut rrl_slow = RateLimiter::new(tight);
        let mut rrl_fast = RateLimiter::new(tight);
        let mut scratch = RespondScratch::new();
        // warm the cache outside RRL accounting
        let wire = query_bytes(&r.zone().registered_domain(3).to_string(), Some(1232));
        let _ = r.handle_into(&wire, Transport::Udp, src, SimTime(0), None, &mut scratch);
        // identical limiter sequences must produce identical outcomes,
        // byte-for-byte, including the slips
        for step in 0..16 {
            let slow = r.handle(&wire, Transport::Udp, src, SimTime(0), Some(&mut rrl_slow));
            let fast = r.handle_into(
                &wire,
                Transport::Udp,
                src,
                SimTime(0),
                Some(&mut rrl_fast),
                &mut scratch,
            );
            match (slow, fast) {
                (
                    Outcome::Reply {
                        bytes: sb,
                        truncated: st,
                        slipped: ss,
                    },
                    OutcomeRef::Reply {
                        bytes: fb,
                        truncated: ft,
                        slipped: fs,
                    },
                ) => {
                    assert_eq!(fb, &sb[..], "step {step}");
                    assert_eq!((ft, fs), (st, ss), "step {step}");
                    if fs {
                        let parsed = Message::parse(fb).unwrap();
                        assert!(parsed.header.truncated);
                        assert!(parsed.answers.is_empty());
                        assert!(parsed.edns.is_some(), "slip keeps the OPT");
                    }
                }
                (Outcome::RrlDrop, OutcomeRef::RrlDrop) => {}
                (s, f) => panic!("diverged at step {step}: {s:?} vs {f:?}"),
            }
        }
        assert!(scratch.hits() >= 16, "RRL steps served from cache");
    }

    #[test]
    fn uncacheable_queries_still_answered() {
        let r = responder();
        let src: IpAddr = "192.0.2.1".parse().unwrap();
        let mut scratch = RespondScratch::new();
        // garbage stays malformed through the scratch path
        assert_eq!(
            r.handle_into(
                b"\x00\x01junk",
                Transport::Udp,
                src,
                SimTime(0),
                None,
                &mut scratch
            ),
            OutcomeRef::Malformed
        );
        // a query with two questions is answered but never cached
        let q = r.zone().registered_domain(0).to_string();
        let mut msg = Message::parse(&query_bytes(&q, None)).unwrap();
        let extra = msg.questions[0].clone();
        msg.questions.push(extra);
        let wire = msg.encode().unwrap();
        let before = scratch.hits();
        for _ in 0..3 {
            let slow = r.handle(&wire, Transport::Udp, src, SimTime(0), None);
            let fast = r.handle_into(&wire, Transport::Udp, src, SimTime(0), None, &mut scratch);
            match (slow, fast) {
                (Outcome::Reply { bytes: sb, .. }, OutcomeRef::Reply { bytes: fb, .. }) => {
                    assert_eq!(fb, &sb[..]);
                }
                (Outcome::Malformed, OutcomeRef::Malformed) => {}
                (s, f) => panic!("diverged: {s:?} vs {f:?}"),
            }
        }
        assert_eq!(
            scratch.hits(),
            before,
            "multi-question query bypasses cache"
        );
    }
}

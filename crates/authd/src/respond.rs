//! The serving hot path: decode → authoritative answer → encode.
//!
//! One [`Responder`] is shared read-only across all worker threads; the
//! only mutable piece of per-query state is the optional RRL limiter,
//! which callers pass in (the server keeps it behind its own mutex so
//! the rate buckets are global, as on a real authoritative).

use dns_wire::message::Message;
use dns_wire::types::Rcode;
use netbase::flow::Transport;
use netbase::time::SimTime;
use simnet::engine::name_key;
use simnet::rrl::{RateLimiter, ResponseClass, RrlAction};
use simnet::scenario::DatasetSpec;
use std::net::IpAddr;
use zonedb::zone::ZoneModel;

/// What the server should do with one inbound message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// Send these bytes back; `truncated` is the UDP TC=1 flag.
    Reply {
        /// Encoded response message.
        bytes: Vec<u8>,
        /// Response was truncated to the advertised UDP size.
        truncated: bool,
        /// RRL replaced the answer with an empty TC=1 slip.
        slipped: bool,
    },
    /// RRL dropped the response; count it, send nothing.
    RrlDrop,
    /// Input did not parse as a DNS query; count it, send nothing.
    Malformed,
}

/// Stateless response synthesis shared by all workers.
pub struct Responder {
    auth: simnet::auth::Authoritative,
}

impl Responder {
    /// Build a responder serving `zone`.
    pub fn new(zone: ZoneModel) -> Responder {
        Responder {
            auth: simnet::auth::Authoritative::new(zone),
        }
    }

    /// Responder for the zone a dataset spec describes.
    pub fn for_spec(spec: &DatasetSpec) -> Responder {
        Responder::new(spec.zone.build())
    }

    /// The zone being served.
    pub fn zone(&self) -> &ZoneModel {
        self.auth.zone()
    }

    /// Handle one query payload.
    ///
    /// For UDP, the response is truncated to the size the query's EDNS
    /// advertised (512 without EDNS, and never below 512), and `rrl` —
    /// when the dataset enables it — may slip or drop the response. TCP
    /// responses are encoded whole and bypass RRL, exactly like the
    /// offline engine's TCP path.
    pub fn handle(
        &self,
        payload: &[u8],
        transport: Transport,
        src: IpAddr,
        now: SimTime,
        rrl: Option<&mut RateLimiter>,
    ) -> Outcome {
        let Ok(query) = Message::parse(payload) else {
            return Outcome::Malformed;
        };
        if query.header.response {
            return Outcome::Malformed;
        }
        let signed = query
            .question()
            .and_then(|q| self.zone().delegation_index(&q.qname))
            .map(|idx| self.zone().is_signed(idx))
            .unwrap_or(false);
        let answer = self.auth.respond(&query, signed);

        if transport == Transport::Tcp {
            let bytes = answer.message.encode().expect("responses encode");
            return Outcome::Reply {
                bytes,
                truncated: false,
                slipped: false,
            };
        }

        let limit = match &query.edns {
            None => 512,
            Some(e) => e.udp_payload_size.max(512) as usize,
        };
        let action = match rrl {
            Some(limiter) => {
                let class = match answer.rcode {
                    Rcode::NoError => {
                        let key = query
                            .question()
                            .map(|q| name_key(&q.qname))
                            .unwrap_or_default();
                        ResponseClass::Positive(key)
                    }
                    Rcode::NxDomain => ResponseClass::Negative,
                    _ => ResponseClass::Error,
                };
                limiter.check(src, class, now)
            }
            None => RrlAction::Respond,
        };
        match action {
            RrlAction::Respond => {
                let (bytes, truncated) = answer
                    .message
                    .encode_with_limit(limit)
                    .expect("responses always fit after truncation");
                Outcome::Reply {
                    bytes,
                    truncated,
                    slipped: false,
                }
            }
            RrlAction::Slip => {
                let mut slip = answer.message.clone();
                slip.answers.clear();
                slip.authorities.clear();
                slip.additionals.clear();
                slip.header.truncated = true;
                Outcome::Reply {
                    bytes: slip.encode().expect("slip encodes"),
                    truncated: true,
                    slipped: true,
                }
            }
            RrlAction::Drop => Outcome::RrlDrop,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_wire::builder::MessageBuilder;
    use dns_wire::types::RType;
    use simnet::profile::Vantage;
    use simnet::rrl::RrlConfig;
    use simnet::scenario::dataset;

    fn responder() -> Responder {
        Responder::for_spec(&dataset(Vantage::Nl, 2020))
    }

    fn query_bytes(name: &str, edns: Option<u16>) -> Vec<u8> {
        let mut b = MessageBuilder::query(7, name.parse().unwrap(), RType::A);
        if let Some(size) = edns {
            b = b.with_edns(size, true);
        }
        b.build().encode().unwrap()
    }

    #[test]
    fn answers_inzone_query() {
        let r = responder();
        let q = r.zone().registered_domain(0).to_string();
        let out = r.handle(
            &query_bytes(&q, Some(4096)),
            Transport::Udp,
            "192.0.2.1".parse().unwrap(),
            SimTime(0),
            None,
        );
        let Outcome::Reply {
            bytes,
            truncated,
            slipped,
        } = out
        else {
            panic!("expected a reply, got {out:?}");
        };
        assert!(!truncated);
        assert!(!slipped);
        let msg = Message::parse(&bytes).unwrap();
        assert!(msg.header.response);
        assert_eq!(msg.header.rcode, Rcode::NoError);
        // an A query below a delegation gets a referral: NS records in
        // the authority section
        assert!(!msg.authorities.is_empty());
    }

    #[test]
    fn garbage_and_responses_are_malformed() {
        let r = responder();
        let src = "192.0.2.1".parse().unwrap();
        assert_eq!(
            r.handle(b"\x00\x01junk", Transport::Udp, src, SimTime(0), None),
            Outcome::Malformed
        );
        // a response message must not be answered (no reflection loops)
        let q = r.zone().apex().to_string();
        let mut resp = Message::parse(&query_bytes(&q, None)).unwrap();
        resp.header.response = true;
        let wire = resp.encode().unwrap();
        assert_eq!(
            r.handle(&wire, Transport::Udp, src, SimTime(0), None),
            Outcome::Malformed
        );
    }

    #[test]
    fn udp_truncates_to_advertised_size_tcp_does_not() {
        let r = responder();
        let src = "192.0.2.1".parse().unwrap();
        // find a signed delegation: DNSSEC padding makes the referral
        // overflow a 512-byte answer
        let zone = r.zone();
        let idx = (0..1000)
            .find(|&i| zone.is_signed(i))
            .expect("nl zone has signed delegations");
        let q = zone.registered_domain(idx).to_string();
        let wire = query_bytes(&q, Some(512));
        let udp = r.handle(&wire, Transport::Udp, src, SimTime(0), None);
        let Outcome::Reply {
            bytes: udp_bytes,
            truncated,
            ..
        } = udp
        else {
            panic!("udp reply expected");
        };
        assert!(truncated, "signed referral must truncate at 512");
        assert!(udp_bytes.len() <= 512);
        assert!(Message::parse(&udp_bytes).unwrap().header.truncated);

        let tcp = r.handle(&wire, Transport::Tcp, src, SimTime(0), None);
        let Outcome::Reply {
            bytes: tcp_bytes,
            truncated,
            ..
        } = tcp
        else {
            panic!("tcp reply expected");
        };
        assert!(!truncated);
        assert!(tcp_bytes.len() > udp_bytes.len());
    }

    #[test]
    fn rrl_slips_then_drops_repeated_queries() {
        let r = responder();
        let src: IpAddr = "192.0.2.1".parse().unwrap();
        let mut rrl = RateLimiter::new(RrlConfig {
            responses_per_second: 2,
            burst: 2,
            slip: 2,
            ..RrlConfig::default()
        });
        let wire = query_bytes(&r.zone().registered_domain(3).to_string(), None);
        let mut slips = 0;
        let mut drops = 0;
        for _ in 0..64 {
            match r.handle(&wire, Transport::Udp, src, SimTime(0), Some(&mut rrl)) {
                Outcome::Reply {
                    slipped: true,
                    truncated,
                    ..
                } => {
                    assert!(truncated);
                    slips += 1;
                }
                Outcome::RrlDrop => drops += 1,
                Outcome::Reply { .. } => {}
                Outcome::Malformed => panic!("well-formed query"),
            }
        }
        assert!(slips > 0, "RRL should slip some responses");
        assert!(drops > 0, "RRL should drop some responses");
    }
}

//! The sharded, batched socket layer under the authoritative server.
//!
//! Two UDP strategies behind one [`UdpShard`] API:
//!
//! - **Linux**: per-worker `SO_REUSEPORT` sockets — the kernel hashes
//!   each inbound 4-tuple onto exactly one shard, so workers never
//!   contend on a socket lock — with `recvmmsg`/`sendmmsg` moving up
//!   to [`MAX_BATCH`] datagrams per syscall through pooled message
//!   buffers ([`MsgBufPool`]). The syscalls are declared here directly
//!   against the platform libc (the workspace vendors every dependency;
//!   a `libc` crate is exactly the kind of thing it doesn't take).
//! - **Everywhere else** (and on Linux when the sharded bind fails,
//!   e.g. under a restrictive sandbox): the portable fallback — one
//!   bound socket `try_clone`d per worker, `recv_from`/`send_to`, batch
//!   size 1 — with the identical calling convention, so the server
//!   loop is written once.
//!
//! The shard sockets are *created and configured* through FFI but then
//! wrapped in [`std::net::UdpSocket`] (via `FromRawFd`), so lifetime
//! management, `local_addr`, and `SO_RCVTIMEO` read timeouts stay
//! std's problem. The read timeout makes `recvmmsg` (called with
//! `MSG_WAITFORONE`) return `EAGAIN` when idle, which is how worker
//! loops poll their shutdown flag without spinning.
//!
//! For TCP, [`wait_readable`] wraps `poll(2)` on the listener fd so the
//! accept loop blocks in the kernel until a connection is pending
//! instead of sleeping a fixed 50 ms between `accept` attempts.

use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::time::Duration;

/// Most datagrams moved per `recvmmsg`/`sendmmsg` call.
pub const MAX_BATCH: usize = 32;
/// Kernel receive buffer requested for server sockets. Bursty senders
/// park whole batches in the socket queue between worker sweeps; the
/// default `rmem` drops small datagrams long before this (each skb's
/// truesize accounting dwarfs its payload). Clamped by `rmem_max`.
const SERVER_RCVBUF: usize = 4 << 20;
/// Receive-slot size: the largest UDP datagram (preamble + query).
pub const DATAGRAM_CAP: usize = 65_535;

/// Pooled per-worker message buffers: receive slots filled by
/// [`UdpShard::recv_batch`], reply slots staged with
/// [`MsgBufPool::stage_reply`] and flushed by
/// [`UdpShard::send_staged`]. All buffers are allocated once at
/// construction (replies grow to their high-water mark and are then
/// reused), keeping the worker loop allocation-free in steady state.
pub struct MsgBufPool {
    batch: usize,
    recv_bufs: Vec<Box<[u8]>>,
    recv_lens: Vec<usize>,
    recv_peers: Vec<SocketAddr>,
    reply_bufs: Vec<Vec<u8>>,
    reply_peers: Vec<SocketAddr>,
    staged: usize,
}

impl MsgBufPool {
    /// Pool with `batch` receive and reply slots (clamped to
    /// 1..=[`MAX_BATCH`]).
    pub fn new(batch: usize) -> MsgBufPool {
        let batch = batch.clamp(1, MAX_BATCH);
        let placeholder: SocketAddr = "0.0.0.0:0".parse().expect("static addr");
        MsgBufPool {
            batch,
            recv_bufs: (0..batch)
                .map(|_| vec![0u8; DATAGRAM_CAP].into_boxed_slice())
                .collect(),
            recv_lens: vec![0; batch],
            recv_peers: vec![placeholder; batch],
            reply_bufs: (0..batch).map(|_| Vec::new()).collect(),
            reply_peers: vec![placeholder; batch],
            staged: 0,
        }
    }

    /// Receive slots per batch.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// The `i`-th received datagram of the last batch.
    pub fn datagram(&self, i: usize) -> (&[u8], SocketAddr) {
        (&self.recv_bufs[i][..self.recv_lens[i]], self.recv_peers[i])
    }

    /// Forget staged replies (start of a new batch).
    pub fn clear_replies(&mut self) {
        self.staged = 0;
    }

    /// Stage one reply for the next [`UdpShard::send_staged`]. The
    /// payload is copied into a pooled slot, so the caller's buffer is
    /// free to be reused immediately.
    pub fn stage_reply(&mut self, to: SocketAddr, payload: &[u8]) {
        let slot = &mut self.reply_bufs[self.staged];
        slot.clear();
        slot.extend_from_slice(payload);
        self.reply_peers[self.staged] = to;
        self.staged += 1;
    }

    /// Replies currently staged.
    pub fn staged(&self) -> usize {
        self.staged
    }
}

/// One worker's share of the UDP plane: its own `SO_REUSEPORT` socket
/// on Linux, a `try_clone` of the single shared socket elsewhere.
pub struct UdpShard {
    sock: UdpSocket,
    batched: bool,
}

impl UdpShard {
    /// The underlying socket.
    pub fn socket(&self) -> &UdpSocket {
        &self.sock
    }

    /// Whether this shard moves batches through `recvmmsg`/`sendmmsg`.
    pub fn batched(&self) -> bool {
        self.batched
    }

    /// Receive up to `pool.batch()` datagrams into the pool's receive
    /// slots. Blocks until at least one datagram arrives or the
    /// socket's read timeout elapses; returns `Ok(0)` on timeout so
    /// callers can poll a shutdown flag.
    pub fn recv_batch(&self, pool: &mut MsgBufPool) -> io::Result<usize> {
        #[cfg(target_os = "linux")]
        if self.batched {
            return linux::recv_mmsg(&self.sock, pool);
        }
        match self.sock.recv_from(&mut pool.recv_bufs[0]) {
            Ok((n, peer)) => {
                pool.recv_lens[0] = n;
                pool.recv_peers[0] = peer;
                Ok(1)
            }
            // Interrupted: a signal (e.g. obs::prof's SIGPROF ticker)
            // cut the timed recv short; report an empty batch like the
            // batched Linux path does
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted =>
            {
                Ok(0)
            }
            Err(e) => Err(e),
        }
    }

    /// Send every staged reply; returns `(sent, errors)`. A failed
    /// datagram is counted and skipped — one refused peer must not
    /// wedge the rest of the batch.
    pub fn send_staged(&self, pool: &mut MsgBufPool) -> (u64, u64) {
        #[cfg(target_os = "linux")]
        if self.batched {
            let out = linux::send_mmsg(&self.sock, pool);
            pool.staged = 0;
            return out;
        }
        let (mut sent, mut errors) = (0u64, 0u64);
        for i in 0..pool.staged {
            match self.sock.send_to(&pool.reply_bufs[i], pool.reply_peers[i]) {
                Ok(_) => sent += 1,
                Err(_) => errors += 1,
            }
        }
        pool.staged = 0;
        (sent, errors)
    }

    /// Discard (and count) entries on the socket's error queue — one
    /// per reply datagram the network bounced back. Callers invoke
    /// this when a syscall surfaces `ConnectionRefused`, so the queue
    /// never pins receive-buffer space. Always 0 off Linux.
    pub fn drain_errors(&self) -> u64 {
        #[cfg(target_os = "linux")]
        {
            linux::drain_errqueue(&self.sock)
        }
        #[cfg(not(target_os = "linux"))]
        {
            0
        }
    }
}

/// A set of UDP shards bound to one address, one per worker.
pub struct UdpShardSet {
    shards: Vec<UdpShard>,
    addr: SocketAddr,
    sharded: bool,
}

impl UdpShardSet {
    /// Bind `count` shards on `addr` (port 0 picks one ephemeral port
    /// shared by every shard). Tries the `SO_REUSEPORT` + `*mmsg` path
    /// on Linux for IPv4 binds; falls back to `try_clone` of a single
    /// socket when unsupported or denied. Every shard gets
    /// `read_timeout` as its `SO_RCVTIMEO`.
    pub fn bind(addr: SocketAddr, count: usize, read_timeout: Duration) -> io::Result<UdpShardSet> {
        Self::bind_with(addr, count, read_timeout, true)
    }

    /// [`UdpShardSet::bind`] with the sharded fast path optionally
    /// disabled — the saturation bench uses this to compare the two
    /// strategies on identical worker counts.
    pub fn bind_with(
        addr: SocketAddr,
        count: usize,
        read_timeout: Duration,
        allow_sharded: bool,
    ) -> io::Result<UdpShardSet> {
        let count = count.max(1);
        #[cfg(target_os = "linux")]
        if allow_sharded && addr.is_ipv4() {
            if let Ok(set) = Self::bind_sharded(addr, count, read_timeout) {
                return Ok(set);
            }
        }
        #[cfg(not(target_os = "linux"))]
        let _ = allow_sharded;
        Self::bind_cloned(addr, count, read_timeout)
    }

    #[cfg(target_os = "linux")]
    fn bind_sharded(
        addr: SocketAddr,
        count: usize,
        read_timeout: Duration,
    ) -> io::Result<UdpShardSet> {
        let first = linux::bind_reuseport(addr)?;
        first.set_read_timeout(Some(read_timeout))?;
        linux::set_rcvbuf(&first, SERVER_RCVBUF);
        let real = first.local_addr()?;
        let mut shards = vec![UdpShard {
            sock: first,
            batched: true,
        }];
        for _ in 1..count {
            let sock = linux::bind_reuseport(real)?;
            sock.set_read_timeout(Some(read_timeout))?;
            linux::set_rcvbuf(&sock, SERVER_RCVBUF);
            shards.push(UdpShard {
                sock,
                batched: true,
            });
        }
        Ok(UdpShardSet {
            shards,
            addr: real,
            sharded: true,
        })
    }

    fn bind_cloned(
        addr: SocketAddr,
        count: usize,
        read_timeout: Duration,
    ) -> io::Result<UdpShardSet> {
        let sock = UdpSocket::bind(addr)?;
        sock.set_read_timeout(Some(read_timeout))?;
        #[cfg(target_os = "linux")]
        {
            if addr.is_ipv4() {
                linux::set_recverr(&sock);
            }
            linux::set_rcvbuf(&sock, SERVER_RCVBUF);
        }
        let real = sock.local_addr()?;
        let mut shards = Vec::with_capacity(count);
        for _ in 1..count {
            shards.push(UdpShard {
                sock: sock.try_clone()?,
                batched: false,
            });
        }
        shards.push(UdpShard {
            sock,
            batched: false,
        });
        Ok(UdpShardSet {
            shards,
            addr: real,
            sharded: false,
        })
    }

    /// The bound address (all shards share it).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether the `SO_REUSEPORT` fast path is active.
    pub fn sharded(&self) -> bool {
        self.sharded
    }

    /// Hand the shards to their workers.
    pub fn into_shards(self) -> Vec<UdpShard> {
        self.shards
    }
}

/// Grow a socket's kernel receive buffer (`SO_RCVBUF`). Open-loop
/// senders (the saturation bench) use this so a blasted batch's replies
/// are never dropped for lack of buffer space. Best-effort: a no-op off
/// Linux and on kernels that clamp the request.
pub fn set_rcvbuf(sock: &UdpSocket, bytes: usize) {
    #[cfg(target_os = "linux")]
    linux::set_rcvbuf(sock, bytes);
    #[cfg(not(target_os = "linux"))]
    let _ = (sock, bytes);
}

/// Block until `listener` has a pending connection or `timeout`
/// elapses; `Ok(true)` means accept will not block. On non-unix
/// platforms this degrades to a fixed sleep + `true` (the caller's
/// nonblocking accept then reports `WouldBlock` itself).
pub fn wait_readable(listener: &std::net::TcpListener, timeout: Duration) -> io::Result<bool> {
    #[cfg(unix)]
    {
        unix::poll_readable(listener, timeout)
    }
    #[cfg(not(unix))]
    {
        std::thread::sleep(timeout);
        Ok(true)
    }
}

#[cfg(unix)]
mod unix {
    use std::io;
    use std::net::TcpListener;
    use std::os::fd::AsRawFd;
    use std::time::Duration;

    use std::ffi::c_int;

    #[repr(C)]
    struct PollFd {
        fd: c_int,
        events: i16,
        revents: i16,
    }

    const POLLIN: i16 = 0x001;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout: c_int) -> c_int;
    }

    pub fn poll_readable(listener: &TcpListener, timeout: Duration) -> io::Result<bool> {
        let mut pfd = PollFd {
            fd: listener.as_raw_fd(),
            events: POLLIN,
            revents: 0,
        };
        let ms = timeout.as_millis().min(i32::MAX as u128) as c_int;
        // SAFETY: pfd is a valid pollfd for the lifetime of the call.
        let rc = unsafe { poll(&mut pfd, 1, ms) };
        match rc {
            0 => Ok(false),
            n if n > 0 => Ok(pfd.revents & POLLIN != 0),
            _ => {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    Ok(false)
                } else {
                    Err(e)
                }
            }
        }
    }
}

#[cfg(target_os = "linux")]
mod linux {
    //! Direct declarations against the platform libc for the batched
    //! UDP syscalls. Layouts match the 64-bit Linux ABI (`msghdr` with
    //! `socklen_t` name length and `size_t` iov/control lengths, the
    //! `repr(C)` padding falling exactly where glibc/musl put it).

    use super::{MsgBufPool, DATAGRAM_CAP, MAX_BATCH};
    use std::ffi::{c_int, c_uint, c_void};
    use std::io;
    use std::mem;
    use std::net::{Ipv4Addr, Ipv6Addr, SocketAddr, UdpSocket};
    use std::os::fd::{AsRawFd, FromRawFd};
    use std::ptr;

    const AF_INET: u16 = 2;
    const AF_INET6: u16 = 10;
    const SOCK_DGRAM: c_int = 2;
    const SOCK_CLOEXEC: c_int = 0o2000000;
    const SOL_SOCKET: c_int = 1;
    const SO_REUSEPORT: c_int = 15;
    const SO_RCVBUF: c_int = 8;
    const IPPROTO_IP: c_int = 0;
    /// Deliver async ICMP errors (port unreachable from a vanished
    /// peer) on unconnected sockets; without it udp(7) silently drops
    /// them unless the socket is connected, and a server socket never
    /// is — replies to dead clients would go uncounted.
    const IP_RECVERR: c_int = 11;
    /// `recvmmsg`: block for the first datagram only, then drain
    /// whatever else is already queued without blocking again.
    const MSG_WAITFORONE: c_int = 0x10000;
    const MSG_DONTWAIT: c_int = 0x40;
    const MSG_ERRQUEUE: c_int = 0x2000;

    #[repr(C)]
    struct Iovec {
        iov_base: *mut c_void,
        iov_len: usize,
    }

    #[repr(C)]
    struct MsgHdr {
        msg_name: *mut c_void,
        msg_namelen: u32,
        msg_iov: *mut Iovec,
        msg_iovlen: usize,
        msg_control: *mut c_void,
        msg_controllen: usize,
        msg_flags: c_int,
    }

    #[repr(C)]
    struct MMsgHdr {
        msg_hdr: MsgHdr,
        msg_len: c_uint,
    }

    /// Big enough for any sockaddr the kernel writes back.
    #[repr(C, align(8))]
    #[derive(Clone, Copy)]
    struct SockAddrStorage([u8; 128]);

    #[repr(C)]
    struct SockAddrIn {
        sin_family: u16,
        sin_port: u16, // network byte order
        sin_addr: [u8; 4],
        sin_zero: [u8; 8],
    }

    extern "C" {
        fn socket(domain: c_int, ty: c_int, protocol: c_int) -> c_int;
        fn setsockopt(
            fd: c_int,
            level: c_int,
            optname: c_int,
            optval: *const c_void,
            optlen: u32,
        ) -> c_int;
        fn bind(fd: c_int, addr: *const c_void, addrlen: u32) -> c_int;
        fn recvmmsg(
            fd: c_int,
            msgvec: *mut MMsgHdr,
            vlen: c_uint,
            flags: c_int,
            timeout: *mut c_void, // struct timespec*; always null here
        ) -> c_int;
        fn sendmmsg(fd: c_int, msgvec: *mut MMsgHdr, vlen: c_uint, flags: c_int) -> c_int;
        fn recvmsg(fd: c_int, msg: *mut MsgHdr, flags: c_int) -> isize;
    }

    /// Opt an IPv4 server socket into async ICMP error delivery
    /// (`IP_RECVERR`); a failed reply then surfaces as `ECONNREFUSED`
    /// on the socket's next syscall instead of vanishing. Best-effort.
    pub fn set_recverr(sock: &UdpSocket) {
        let one: c_int = 1;
        // SAFETY: setsockopt on a live fd with a valid c_int payload.
        unsafe {
            let _ = setsockopt(
                sock.as_raw_fd(),
                IPPROTO_IP,
                IP_RECVERR,
                &one as *const c_int as *const c_void,
                mem::size_of::<c_int>() as u32,
            );
        }
    }

    /// Discard every entry queued on the socket's error queue,
    /// returning how many there were. Each entry is one reply datagram
    /// the network bounced; leaving them queued would pin receive
    /// buffer space for the life of the socket.
    pub fn drain_errqueue(sock: &UdpSocket) -> u64 {
        let mut drained = 0u64;
        let mut buf = [0u8; 512];
        let mut control = [0u8; 512];
        loop {
            // SAFETY: all pointers are stack locals valid for the call.
            let rc = unsafe {
                let mut iov = Iovec {
                    iov_base: buf.as_mut_ptr() as *mut c_void,
                    iov_len: buf.len(),
                };
                let mut msg = MsgHdr {
                    msg_name: ptr::null_mut(),
                    msg_namelen: 0,
                    msg_iov: &mut iov,
                    msg_iovlen: 1,
                    msg_control: control.as_mut_ptr() as *mut c_void,
                    msg_controllen: control.len(),
                    msg_flags: 0,
                };
                recvmsg(sock.as_raw_fd(), &mut msg, MSG_ERRQUEUE | MSG_DONTWAIT)
            };
            if rc < 0 {
                return drained;
            }
            drained += 1;
        }
    }

    /// Create an IPv4 UDP socket with `SO_REUSEPORT` set *before* bind
    /// (required for the kernel to add it to an existing reuseport
    /// group), bound to `addr`, owned by a std `UdpSocket`.
    pub fn bind_reuseport(addr: SocketAddr) -> io::Result<UdpSocket> {
        let SocketAddr::V4(v4) = addr else {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "reuseport sharding is IPv4-only; use the cloned fallback",
            ));
        };
        // SAFETY: plain syscalls on a fresh fd; the fd is wrapped in a
        // std UdpSocket immediately so every early return closes it.
        unsafe {
            let fd = socket(AF_INET as c_int, SOCK_DGRAM | SOCK_CLOEXEC, 0);
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            let sock = UdpSocket::from_raw_fd(fd);
            let one: c_int = 1;
            if setsockopt(
                fd,
                SOL_SOCKET,
                SO_REUSEPORT,
                &one as *const c_int as *const c_void,
                mem::size_of::<c_int>() as u32,
            ) < 0
            {
                return Err(io::Error::last_os_error());
            }
            let sin = SockAddrIn {
                sin_family: AF_INET,
                sin_port: v4.port().to_be(),
                sin_addr: v4.ip().octets(),
                sin_zero: [0; 8],
            };
            if bind(
                fd,
                &sin as *const SockAddrIn as *const c_void,
                mem::size_of::<SockAddrIn>() as u32,
            ) < 0
            {
                return Err(io::Error::last_os_error());
            }
            set_recverr(&sock);
            Ok(sock)
        }
    }

    pub fn set_rcvbuf(sock: &UdpSocket, bytes: usize) {
        let val = bytes.min(c_int::MAX as usize) as c_int;
        // SAFETY: setsockopt on a live fd with a valid c_int payload.
        unsafe {
            let _ = setsockopt(
                sock.as_raw_fd(),
                SOL_SOCKET,
                SO_RCVBUF,
                &val as *const c_int as *const c_void,
                mem::size_of::<c_int>() as u32,
            );
        }
    }

    fn decode_sockaddr(storage: &SockAddrStorage) -> Option<SocketAddr> {
        let b = &storage.0;
        let family = u16::from_ne_bytes([b[0], b[1]]);
        let port = u16::from_be_bytes([b[2], b[3]]);
        match family {
            AF_INET => {
                let ip = Ipv4Addr::new(b[4], b[5], b[6], b[7]);
                Some(SocketAddr::new(ip.into(), port))
            }
            AF_INET6 => {
                let mut octets = [0u8; 16];
                octets.copy_from_slice(&b[8..24]);
                Some(SocketAddr::new(Ipv6Addr::from(octets).into(), port))
            }
            _ => None,
        }
    }

    fn encode_sockaddr(addr: SocketAddr, storage: &mut SockAddrStorage) -> u32 {
        let b = &mut storage.0;
        match addr {
            SocketAddr::V4(v4) => {
                b[0..2].copy_from_slice(&AF_INET.to_ne_bytes());
                b[2..4].copy_from_slice(&v4.port().to_be_bytes());
                b[4..8].copy_from_slice(&v4.ip().octets());
                b[8..16].fill(0);
                16
            }
            SocketAddr::V6(v6) => {
                b[0..2].copy_from_slice(&AF_INET6.to_ne_bytes());
                b[2..4].copy_from_slice(&v6.port().to_be_bytes());
                b[4..8].copy_from_slice(&v6.flowinfo().to_ne_bytes());
                b[8..24].copy_from_slice(&v6.ip().octets());
                b[24..28].copy_from_slice(&v6.scope_id().to_ne_bytes());
                28
            }
        }
    }

    pub fn recv_mmsg(sock: &UdpSocket, pool: &mut MsgBufPool) -> io::Result<usize> {
        let n = pool.batch;
        // SAFETY: zeroed pollable structs; every pointer written below
        // outlives the recvmmsg call (the pool's receive buffers are
        // stable Box<[u8]> allocations, the header arrays are stack
        // locals of this frame).
        unsafe {
            let mut addrs: [SockAddrStorage; MAX_BATCH] = mem::zeroed();
            let mut iovs: [Iovec; MAX_BATCH] = mem::zeroed();
            let mut msgs: [MMsgHdr; MAX_BATCH] = mem::zeroed();
            for i in 0..n {
                iovs[i] = Iovec {
                    iov_base: pool.recv_bufs[i].as_mut_ptr() as *mut c_void,
                    iov_len: DATAGRAM_CAP,
                };
                msgs[i].msg_hdr.msg_name = &mut addrs[i] as *mut SockAddrStorage as *mut c_void;
                msgs[i].msg_hdr.msg_namelen = mem::size_of::<SockAddrStorage>() as u32;
                msgs[i].msg_hdr.msg_iov = &mut iovs[i];
                msgs[i].msg_hdr.msg_iovlen = 1;
            }
            let got = recvmmsg(
                sock.as_raw_fd(),
                msgs.as_mut_ptr(),
                n as c_uint,
                MSG_WAITFORONE,
                ptr::null_mut(),
            );
            if got < 0 {
                let e = io::Error::last_os_error();
                return match e.kind() {
                    io::ErrorKind::WouldBlock
                    | io::ErrorKind::TimedOut
                    | io::ErrorKind::Interrupted => Ok(0),
                    _ => Err(e),
                };
            }
            let got = got as usize;
            let mut filled = 0;
            for i in 0..got {
                let Some(peer) = decode_sockaddr(&addrs[i]) else {
                    continue; // unparseable family: skip the slot
                };
                if filled != i {
                    pool.recv_bufs.swap(filled, i);
                }
                pool.recv_lens[filled] = (msgs[i].msg_len as usize).min(DATAGRAM_CAP);
                pool.recv_peers[filled] = peer;
                filled += 1;
            }
            Ok(filled)
        }
    }

    pub fn send_mmsg(sock: &UdpSocket, pool: &mut MsgBufPool) -> (u64, u64) {
        let total = pool.staged;
        let (mut sent, mut errors) = (0u64, 0u64);
        let mut off = 0usize;
        while off < total {
            // SAFETY: as in recv_mmsg — all pointers outlive the call.
            unsafe {
                let mut addrs: [SockAddrStorage; MAX_BATCH] = mem::zeroed();
                let mut iovs: [Iovec; MAX_BATCH] = mem::zeroed();
                let mut msgs: [MMsgHdr; MAX_BATCH] = mem::zeroed();
                let n = (total - off).min(MAX_BATCH);
                for i in 0..n {
                    let slot = off + i;
                    let len = encode_sockaddr(pool.reply_peers[slot], &mut addrs[i]);
                    iovs[i] = Iovec {
                        iov_base: pool.reply_bufs[slot].as_mut_ptr() as *mut c_void,
                        iov_len: pool.reply_bufs[slot].len(),
                    };
                    msgs[i].msg_hdr.msg_name = &mut addrs[i] as *mut SockAddrStorage as *mut c_void;
                    msgs[i].msg_hdr.msg_namelen = len;
                    msgs[i].msg_hdr.msg_iov = &mut iovs[i];
                    msgs[i].msg_hdr.msg_iovlen = 1;
                }
                let rc = sendmmsg(sock.as_raw_fd(), msgs.as_mut_ptr(), n as c_uint, 0);
                if rc <= 0 {
                    // the datagram at `off` failed (async ICMP error or
                    // local failure): count it, skip it, keep going
                    errors += 1;
                    off += 1;
                } else {
                    sent += rc as u64;
                    off += rc as usize;
                    if (rc as usize) < n {
                        // the next datagram is the one that stopped the
                        // batch; the error itself surfaces on the next
                        // syscall touching the socket
                        continue;
                    }
                }
            }
        }
        (sent, errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::time::Instant;

    fn timeout() -> Duration {
        Duration::from_millis(50)
    }

    #[test]
    fn shard_set_round_trips_datagrams() {
        let set = UdpShardSet::bind("127.0.0.1:0".parse().unwrap(), 4, timeout()).unwrap();
        let addr = set.addr();
        let shards = set.into_shards();
        assert_eq!(shards.len(), 4);
        for s in &shards {
            assert_eq!(s.socket().local_addr().unwrap(), addr);
        }

        let client = UdpSocket::bind("127.0.0.1:0").unwrap();
        client
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        for i in 0..64u8 {
            client.send_to(&[i, i, i], addr).unwrap();
        }
        // with SO_REUSEPORT the kernel routes all datagrams from one
        // 4-tuple to one shard; with clones any shard may see them.
        // Echo each datagram back from whichever shard received it.
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut pools: Vec<MsgBufPool> = shards.iter().map(|_| MsgBufPool::new(16)).collect();
        let mut echoed = 0;
        while echoed < 64 && Instant::now() < deadline {
            for (shard, pool) in shards.iter().zip(pools.iter_mut()) {
                let got = shard.recv_batch(pool).unwrap();
                pool.clear_replies();
                for i in 0..got {
                    let (payload, peer) = pool.datagram(i);
                    assert_eq!(payload.len(), 3);
                    let copy = [payload[0], payload[1], payload[2]];
                    pool.stage_reply(peer, &copy);
                }
                let (sent, errors) = shard.send_staged(pool);
                assert_eq!(errors, 0);
                echoed += sent;
            }
        }
        assert_eq!(echoed, 64, "all datagrams echoed");
        let mut buf = [0u8; 16];
        for _ in 0..64 {
            let (n, _) = client.recv_from(&mut buf).unwrap();
            assert_eq!(n, 3);
            assert_eq!(buf[0], buf[1]);
        }
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn linux_binds_the_reuseport_path() {
        let set = UdpShardSet::bind("127.0.0.1:0".parse().unwrap(), 2, timeout()).unwrap();
        assert!(set.sharded(), "linux should take the SO_REUSEPORT path");
        for s in set.into_shards() {
            assert!(s.batched());
        }
        // and the explicit opt-out takes the portable path
        let single =
            UdpShardSet::bind_with("127.0.0.1:0".parse().unwrap(), 2, timeout(), false).unwrap();
        assert!(!single.sharded());
    }

    #[test]
    fn recv_batch_times_out_with_zero() {
        let set = UdpShardSet::bind("127.0.0.1:0".parse().unwrap(), 1, timeout()).unwrap();
        let shard = &set.shards[0];
        let mut pool = MsgBufPool::new(4);
        let t0 = Instant::now();
        assert_eq!(shard.recv_batch(&mut pool).unwrap(), 0);
        assert!(
            t0.elapsed() >= Duration::from_millis(10),
            "blocked on the timeout"
        );
    }

    #[test]
    fn wait_readable_reports_pending_connections() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        assert!(!wait_readable(&listener, Duration::from_millis(20)).unwrap());
        let _client = std::net::TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut ready = false;
        while Instant::now() < deadline {
            if wait_readable(&listener, Duration::from_millis(50)).unwrap() {
                ready = true;
                break;
            }
        }
        assert!(ready, "pending connection must mark the listener readable");
        listener.accept().unwrap();
    }
}

//! The bounded multi-dataset scheduler behind `--jobs`.
//!
//! The paper's analyses repeat over many datasets — nine Table 3
//! captures, five comparison runs, eighteen Figure 3 months — and every
//! run is independent. [`run_tasks`] executes a list of labelled tasks
//! on at most `jobs` worker threads (a shared work index, no
//! oversubscription beyond the cap) and returns results **in input
//! order**, so downstream rendering is byte-identical to a serial run
//! for any job count. [`run_suite`] specializes it to dataset specs.
//!
//! Each task gets its own `obs` stage row (via `stage_owned`), so
//! `--stats` shows per-dataset wall time and throughput whichever way
//! the suite was scheduled.

use crate::experiments::DatasetRun;
use crate::pipeline::{run_spec_with, PipelineOpts};
use simnet::scenario::{DatasetSpec, Scale};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Run labelled tasks on up to `jobs` worker threads; results come back
/// in input order. `items(&result)` feeds each task's `obs` stage row
/// (return 0 when there is no natural record count).
///
/// `jobs <= 1` runs everything inline on the calling thread, bit-for-bit
/// the old serial behaviour.
pub fn run_tasks<T, F, I>(tasks: Vec<(String, F)>, jobs: usize, items: I) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
    I: Fn(&T) -> u64 + Sync,
{
    let jobs = jobs.max(1).min(tasks.len().max(1));
    if jobs == 1 {
        return tasks
            .into_iter()
            .map(|(label, task)| {
                let mut stage = obs::stage_owned(label);
                let out = task();
                stage.add_items(items(&out));
                out
            })
            .collect();
    }

    let n = tasks.len();
    // Slots the workers drain via a shared index: each task is taken
    // exactly once, each result lands back in its input slot.
    let work: Vec<Mutex<Option<(String, F)>>> =
        tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let (work_ref, results_ref, next_ref, items_ref) = (&work, &results, &next, &items);

    crossbeam::thread::scope(|scope| {
        for worker in 0..jobs {
            scope.spawn(move |_| {
                // busy = inside a task; the claim/bookkeeping gaps in
                // between are idle, so the gauge exposes scheduling
                // efficiency alongside the per-task stage rows
                let mut util = obs::Utilization::new(obs::gauge(
                    &format!("suite_worker{worker}_busy_permille"),
                    "suite worker busy fraction (permille, windowed)",
                ));
                loop {
                    let wait = std::time::Instant::now();
                    let i = next_ref.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        util.idle(wait.elapsed());
                        break;
                    }
                    let (label, task) = work_ref[i]
                        .lock()
                        .expect("suite work slot")
                        .take()
                        .expect("each slot taken once");
                    util.idle(wait.elapsed());
                    let run = std::time::Instant::now();
                    let mut stage = obs::stage_owned(label);
                    let out = task();
                    stage.add_items(items_ref(&out));
                    *results_ref[i].lock().expect("suite result slot") = Some(out);
                    util.busy(run.elapsed());
                }
            });
        }
    })
    .expect("suite workers do not panic");

    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("suite result lock")
                .expect("every task ran")
        })
        .collect()
}

/// Generate + analyze each spec, at most `jobs` datasets in flight,
/// results in spec order. The per-dataset pipeline options (generator
/// shards, analysis workers) apply to every run.
pub fn run_suite(
    specs: Vec<DatasetSpec>,
    scale: Scale,
    seed: u64,
    opts: &PipelineOpts,
    jobs: usize,
) -> Vec<DatasetRun> {
    let tasks = specs
        .into_iter()
        .map(|spec| {
            let label = format!("suite.{}", spec.id());
            let opts = opts.clone();
            (label, move || run_spec_with(spec, scale, seed, &opts))
        })
        .collect();
    run_tasks(tasks, jobs, |run: &DatasetRun| run.ingest_stats.rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::profile::Vantage;
    use simnet::scenario::dataset;

    #[test]
    fn results_come_back_in_input_order_for_any_job_count() {
        let tasks = |n: usize| {
            (0..n)
                .map(|i| {
                    (format!("suite.t{i}"), move || {
                        // stagger so late slots finish first under parallelism
                        std::thread::sleep(std::time::Duration::from_millis((n - i) as u64 * 3));
                        i
                    })
                })
                .collect::<Vec<_>>()
        };
        for jobs in [1, 2, 4, 9] {
            let out = run_tasks(tasks(6), jobs, |_| 0);
            assert_eq!(out, vec![0, 1, 2, 3, 4, 5], "jobs={jobs}");
        }
    }

    #[test]
    fn suite_matches_serial_runs() {
        let specs = vec![dataset(Vantage::Nz, 2020), dataset(Vantage::Nl, 2018)];
        let serial = run_suite(
            specs.clone(),
            Scale::tiny(),
            11,
            &PipelineOpts::default(),
            1,
        );
        let parallel = run_suite(specs, Scale::tiny(), 11, &PipelineOpts::default(), 4);
        assert_eq!(serial.len(), 2);
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.id, p.id);
            assert_eq!(s.ingest_stats, p.ingest_stats);
            assert_eq!(s.analysis.total_queries, p.analysis.total_queries);
            assert_eq!(s.analysis.cloud_share(), p.analysis.cloud_share());
        }
    }
}

//! Junk-traffic analysis: Figure 4 (per-provider junk ratios) and the
//! §3 vantage-wide junk overview.

use crate::analysis::DatasetAnalysis;
use asdb::cloud::ALL_PROVIDERS;
use dns_wire::name::Name;
use serde::Serialize;

/// Figure 4 for one dataset.
#[derive(Debug, Clone, Serialize)]
pub struct JunkReport {
    /// Dataset identifier.
    pub id: String,
    /// Vantage-wide junk ratio (1 - Table 3's valid fraction).
    pub overall: f64,
    /// `(provider, junk ratio)` in paper order.
    pub per_provider: Vec<(String, f64)>,
    /// Junk ratio of the non-CP remainder.
    pub other: f64,
}

/// Build the Figure 4 panel.
pub fn junk_report(id: &str, a: &DatasetAnalysis) -> JunkReport {
    let mut stage = obs::stage("analysis.junk");
    stage.add_items(a.total_queries);
    JunkReport {
        id: id.to_string(),
        overall: 1.0 - a.valid_fraction(),
        per_provider: ALL_PROVIDERS
            .iter()
            .map(|&p| (p.name().to_string(), a.provider(Some(p)).junk_ratio()))
            .collect(),
        other: a.provider(None).junk_ratio(),
    }
}

impl JunkReport {
    /// The paper's root-vantage observation: every CP's junk ratio sits
    /// below the vantage-wide ratio. True at B-Root, not at ccTLDs.
    pub fn all_providers_below_overall(&self) -> bool {
        self.per_provider.iter().all(|(_, r)| *r < self.overall)
    }
}

/// Does a qname look like a Chromium network-probe (the single random
/// 7-15 letter label that came to dominate root junk after 2019 —
/// §3's "intentionally generate random, non-existing TLD names")?
///
/// At the root the probe is the whole qname; ccTLD leaks append the
/// TLD, so the test looks at the leftmost label of a 1-2 label name.
pub fn looks_like_chromium_probe(qname: &Name) -> bool {
    if qname.label_count() > 2 {
        return false;
    }
    let Some(label) = qname.labels().next() else {
        return false;
    };
    (7..=15).contains(&label.len()) && label.iter().all(|b| b.is_ascii_lowercase())
}

/// A streaming classifier over junk rows: what share of a vantage's
/// junk is Chromium-shaped? (The paper: root junk grew sharply once
/// Chromium-based browsers began probing.)
#[derive(Debug, Default, Clone, Serialize)]
pub struct ChromiumProbeStats {
    /// Junk (non-NOERROR) queries inspected.
    pub junk_queries: u64,
    /// Of those, Chromium-probe-shaped qnames.
    pub probe_shaped: u64,
}

impl ChromiumProbeStats {
    /// Feed one row (non-junk rows are ignored).
    pub fn push(&mut self, row: &entrada::schema::QueryRow) {
        if !row.is_junk() {
            return;
        }
        self.junk_queries += 1;
        if looks_like_chromium_probe(&row.qname) {
            self.probe_shaped += 1;
        }
    }

    /// The probe-shaped share of junk.
    pub fn probe_share(&self) -> f64 {
        if self.junk_queries == 0 {
            0.0
        } else {
            self.probe_shaped as f64 / self.junk_queries as f64
        }
    }

    /// Merge a partial classifier in (plain sums).
    pub fn merge(&mut self, other: ChromiumProbeStats) {
        self.junk_queries += other.junk_queries;
        self.probe_shaped += other.probe_shaped;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_wire::types::{RType, Rcode};
    use entrada::schema::QueryRow;
    use netbase::flow::Transport;
    use netbase::time::SimTime;
    use zonedb::zone::ZoneModel;

    fn push(a: &mut DatasetAnalysis, provider: Option<asdb::cloud::Provider>, junk: bool) {
        let row = QueryRow {
            timestamp: SimTime::from_date(2020, 5, 6),
            src: if provider.is_some() {
                "8.8.8.8".parse().unwrap()
            } else {
                "192.0.9.1".parse().unwrap()
            },
            src_port: 1,
            server: "199.9.14.201".parse().unwrap(),
            transport: Transport::Udp,
            qname: "example.com.".parse().unwrap(),
            qtype: RType::A,
            edns_size: None,
            do_bit: false,
            rcode: Some(if junk {
                Rcode::NxDomain
            } else {
                Rcode::NoError
            }),
            response_size: Some(50),
            response_truncated: false,
            tcp_rtt_us: 0,
            asn: None,
            provider,
            public_dns: false,
        };
        a.push(&row);
    }

    #[test]
    fn root_style_junk_profile() {
        use asdb::cloud::Provider;
        let mut a = DatasetAnalysis::new(ZoneModel::root(100));
        // CPs: 25% junk; others: 90% junk; overall high
        for p in [
            Provider::Google,
            Provider::Amazon,
            Provider::Microsoft,
            Provider::Facebook,
            Provider::Cloudflare,
        ] {
            for i in 0..8 {
                push(&mut a, Some(p), i < 2);
            }
        }
        for i in 0..100 {
            push(&mut a, None, i < 90);
        }
        let r = junk_report("broot", &a);
        assert!((r.overall - 100.0 / 140.0).abs() < 1e-9);
        assert!(r.all_providers_below_overall());
        assert!((r.other - 0.9).abs() < 1e-12);
        for (_, ratio) in &r.per_provider {
            assert!((*ratio - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn chromium_probe_classifier() {
        let probe: Name = "qwkzlpahd.".parse().unwrap();
        assert!(looks_like_chromium_probe(&probe));
        let leaked: Name = "qwkzlpahd.nl.".parse().unwrap();
        assert!(looks_like_chromium_probe(&leaked));
        // too short / too long / digits / deep names: no
        for s in [
            "ab.",
            "averyveryverylonglabel.",
            "abc123defg.",
            "www.example.nl.",
        ] {
            let n: Name = s.parse().unwrap();
            assert!(!looks_like_chromium_probe(&n), "{s}");
        }
    }

    #[test]
    fn chromium_stats_stream() {
        let mk = |qname: &str, junk: bool| QueryRow {
            timestamp: SimTime::from_date(2020, 5, 6),
            src: "192.0.9.1".parse().unwrap(),
            src_port: 1,
            server: "199.9.14.201".parse().unwrap(),
            transport: Transport::Udp,
            qname: qname.parse().unwrap(),
            qtype: RType::A,
            edns_size: None,
            do_bit: false,
            rcode: Some(if junk {
                Rcode::NxDomain
            } else {
                Rcode::NoError
            }),
            response_size: Some(50),
            response_truncated: false,
            tcp_rtt_us: 0,
            asn: None,
            provider: None,
            public_dns: false,
        };
        let mut stats = ChromiumProbeStats::default();
        stats.push(&mk("qlwkejralsk.", true));
        stats.push(&mk("stalename9.", true));
        stats.push(&mk("example.com.", false)); // valid: ignored
        assert_eq!(stats.junk_queries, 2);
        assert_eq!(stats.probe_shaped, 1);
        assert!((stats.probe_share() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cctld_profile_not_all_below() {
        use asdb::cloud::Provider;
        let mut a = DatasetAnalysis::new(ZoneModel::nl(100));
        for i in 0..10 {
            push(&mut a, Some(Provider::Microsoft), i < 3); // 30% junk CP
        }
        for i in 0..90 {
            push(&mut a, None, i < 9); // 10% junk others
        }
        let r = junk_report("nl", &a);
        assert!(!r.all_providers_below_overall());
    }
}

//! RSSAC002-style root-server aggregate statistics — the §3 cross-check
//! the paper runs against the 11 of 13 root letters that publish
//! per-rcode volumes ("only 32%, 23%, and 22% of queries were actually
//! valid for w2018, w2019, and w2020").

use serde::Serialize;

/// One letter's published per-rcode aggregate for a collection window.
#[derive(Debug, Clone, Serialize)]
pub struct LetterStats {
    /// Root letter ("a".."m").
    pub letter: char,
    /// NOERROR responses.
    pub noerror: u64,
    /// NXDOMAIN responses.
    pub nxdomain: u64,
    /// Everything else (SERVFAIL, REFUSED...).
    pub other: u64,
}

impl LetterStats {
    /// Total responses.
    pub fn total(&self) -> u64 {
        self.noerror + self.nxdomain + self.other
    }
}

/// The cross-check aggregate over the published letters.
#[derive(Debug, Clone, Serialize)]
pub struct RootSystemValidity {
    /// Letters included (the paper had 11 of 13).
    pub letters: usize,
    /// Valid (NOERROR) fraction across them.
    pub valid_fraction: f64,
}

/// Aggregate the per-letter tables.
pub fn system_validity(letters: &[LetterStats]) -> RootSystemValidity {
    let total: u64 = letters.iter().map(LetterStats::total).sum();
    let valid: u64 = letters.iter().map(|l| l.noerror).sum();
    RootSystemValidity {
        letters: letters.len(),
        valid_fraction: if total == 0 {
            0.0
        } else {
            valid as f64 / total as f64
        },
    }
}

/// Generate the synthetic RSSAC002 tables for one DITL year, shaped to
/// the paper's published ratios (valid fraction 32% / 23% / 22% for
/// 2018/2019/2020 across 11 letters). Letter volumes vary by deployment
/// footprint; the per-letter valid share wobbles around the system mean.
pub fn synthetic_year(year: u16) -> Vec<LetterStats> {
    let valid_target = match year {
        2018 => 0.32,
        2019 => 0.23,
        2020 => 0.22,
        other => panic!("no RSSAC002 shape for {other}"),
    };
    // 11 publishing letters (paper: 11 of 13)
    let letters = ['a', 'c', 'd', 'e', 'f', 'h', 'i', 'j', 'k', 'l', 'm'];
    letters
        .iter()
        .enumerate()
        .map(|(i, &letter)| {
            // deterministic per-letter variation
            let volume = 2_000_000_000u64 + (i as u64) * 350_000_000;
            let wobble = ((i as f64 * 0.7).sin()) * 0.04;
            let valid = ((valid_target + wobble).clamp(0.05, 0.95) * volume as f64) as u64;
            let junk = volume - valid;
            LetterStats {
                letter,
                noerror: valid,
                nxdomain: (junk as f64 * 0.9) as u64,
                other: junk - (junk as f64 * 0.9) as u64,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_ratios_reproduced() {
        for (year, target) in [(2018u16, 0.32), (2019, 0.23), (2020, 0.22)] {
            let letters = synthetic_year(year);
            assert_eq!(letters.len(), 11, "11 of 13 letters publish");
            let v = system_validity(&letters);
            assert!(
                (v.valid_fraction - target).abs() < 0.02,
                "{year}: {} vs {target}",
                v.valid_fraction
            );
        }
    }

    #[test]
    fn totals_are_consistent() {
        for l in synthetic_year(2020) {
            assert_eq!(l.total(), l.noerror + l.nxdomain + l.other);
            assert!(l.nxdomain > l.other, "junk is NXDOMAIN-dominated");
        }
    }

    #[test]
    fn empty_system_is_zero() {
        assert_eq!(system_validity(&[]).valid_fraction, 0.0);
    }

    #[test]
    fn validity_declines_over_years() {
        let v18 = system_validity(&synthetic_year(2018)).valid_fraction;
        let v20 = system_validity(&synthetic_year(2020)).valid_fraction;
        assert!(v18 > v20, "Chromium probes grow the junk share");
    }
}

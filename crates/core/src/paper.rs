//! The paper's published numbers, as machine-checkable anchors, and the
//! comparison harness that runs this pipeline and lines its measured
//! values up against them.
//!
//! `dnscentral experiments` uses this to *generate* EXPERIMENTS.md, so
//! the paper-vs-measured record is always reproducible from source.

use crate::analysis::DatasetAnalysis;
use crate::experiments::run_monthly_series_for_jobs;
use crate::qmin::MonthlySample;
use crate::{ednssize, junk, metrics, qmin, transport};
use asdb::cloud::Provider;
use serde::Serialize;
use simnet::profile::Vantage;
use simnet::scenario::Scale;

/// One measured dataset, however it was produced — a fresh pipeline run
/// or a warehouse scan. The comparison body only needs the id and the
/// aggregated analysis.
pub struct Measured {
    /// The dataset id ("nl-w2020"...).
    pub id: String,
    /// The aggregated single-pass analysis.
    pub analysis: DatasetAnalysis,
}

/// One paper-vs-measured comparison row.
#[derive(Debug, Clone, Serialize)]
pub struct ComparisonRow {
    /// Exhibit identifier ("Figure 1", "Table 5"...).
    pub exhibit: &'static str,
    /// What is being compared.
    pub metric: String,
    /// The paper's value, as printed there.
    pub paper: String,
    /// This pipeline's measured value.
    pub measured: String,
    /// Does the measured value sit inside the acceptance band?
    pub ok: bool,
}

fn pct_row(
    exhibit: &'static str,
    metric: impl Into<String>,
    paper: f64,
    measured: f64,
    tolerance: f64,
) -> ComparisonRow {
    ComparisonRow {
        exhibit,
        metric: metric.into(),
        paper: format!("{:.1}%", paper * 100.0),
        measured: format!("{:.1}%", measured * 100.0),
        ok: (paper - measured).abs() <= tolerance,
    }
}

/// Run the comparison suite serially ([`compare_with`] at one job).
pub fn compare(scale: Scale, seed: u64) -> Vec<ComparisonRow> {
    compare_with(scale, seed, 1)
}

/// Run the comparison suite with up to `jobs` datasets (and then
/// monthly samples) in flight. This generates and analyzes five
/// datasets plus two monthly series; at [`Scale::small`] it takes tens
/// of seconds serially, at [`Scale::report`] some minutes. The rows are
/// identical for any job count — results are merged in dataset order.
pub fn compare_with(scale: Scale, seed: u64, jobs: usize) -> Vec<ComparisonRow> {
    use simnet::scenario::dataset;
    let specs = vec![
        dataset(Vantage::Nl, 2020),
        dataset(Vantage::Nl, 2019),
        dataset(Vantage::Nz, 2020),
        dataset(Vantage::Nz, 2019),
        dataset(Vantage::BRoot, 2020),
    ];
    let mut runs = crate::suite::run_suite(
        specs,
        scale,
        seed,
        &crate::pipeline::PipelineOpts::default(),
        jobs,
    )
    .into_iter()
    .map(|run| Measured {
        id: run.id,
        analysis: run.analysis,
    });
    let (nl20, nl19, nz20, nz19, br20) = (
        runs.next().expect("nl-w2020"),
        runs.next().expect("nl-w2019"),
        runs.next().expect("nz-w2020"),
        runs.next().expect("nz-w2019"),
        runs.next().expect("broot-w2020"),
    );
    let nl_series = run_monthly_series_for_jobs(Vantage::Nl, Provider::Google, scale, seed, jobs);
    let nz_series = run_monthly_series_for_jobs(Vantage::Nz, Provider::Google, scale, seed, jobs);
    compare_rows(&nl20, &nl19, &nz20, &nz19, &br20, &nl_series, &nz_series)
}

/// The comparison body over already-measured inputs: the five datasets
/// plus both Figure 3 Google monthly series. [`compare_with`] feeds it
/// fresh pipeline runs; [`crate::store::compare`] feeds it warehouse
/// scans — same rows either way.
pub fn compare_rows(
    nl20: &Measured,
    nl19: &Measured,
    nz20: &Measured,
    nz19: &Measured,
    br20: &Measured,
    nl_series: &[MonthlySample],
    nz_series: &[MonthlySample],
) -> Vec<ComparisonRow> {
    let mut rows = Vec::new();

    // --- Table 3: valid fractions -----------------------------------
    for (run, paper) in [(nl20, 11.88 / 13.75), (nz20, 3.03 / 4.57), (br20, 0.20)] {
        rows.push(pct_row(
            "Table 3",
            format!("{}: valid-query fraction", run.id),
            paper,
            run.analysis.valid_fraction(),
            0.03,
        ));
    }

    // --- Figure 1: cloud shares --------------------------------------
    rows.push(pct_row(
        "Figure 1",
        "nl-w2019: 5-CP share (\u{2248}1/3)",
        0.333,
        nl19.analysis.cloud_share(),
        0.04,
    ));
    rows.push(pct_row(
        "Figure 1",
        "nz-w2019: 5-CP share (<30%)",
        0.28,
        nz19.analysis.cloud_share(),
        0.04,
    ));
    rows.push(pct_row(
        "Figure 1",
        "broot-w2020: 5-CP share",
        0.087,
        br20.analysis.cloud_share(),
        0.015,
    ));

    // --- Table 4/7: the Google split ---------------------------------
    for (run, paper_q, paper_r) in [
        (nl20, 0.865, 0.156),
        (nz20, 0.884, 0.187),
        (nl19, 0.893, 0.154),
        (nz19, 0.844, 0.177),
    ] {
        let g = metrics::google_split(&run.id, &run.analysis);
        rows.push(pct_row(
            "Table 4/7",
            format!("{}: Google Public DNS query share", run.id),
            paper_q,
            g.public_query_ratio,
            0.03,
        ));
        rows.push(pct_row(
            "Table 4/7",
            format!("{}: Google Public DNS resolver share", run.id),
            paper_r,
            g.public_resolver_ratio,
            0.06,
        ));
    }

    // --- Table 5: family/transport (w2020 .nl + .nz) ------------------
    let t5 = |run: &Measured, p: Provider| {
        let rep = transport::transport_report(&run.id, &run.analysis);
        rep.rows
            .into_iter()
            .find(|r| r.provider == p.name())
            .expect("provider present")
    };
    for (run, rows_expected) in [
        (
            nl20,
            [
                (Provider::Google, 0.48, 0.00),
                (Provider::Amazon, 0.03, 0.05),
                (Provider::Microsoft, 0.00, 0.00),
                (Provider::Facebook, 0.76, 0.14),
                (Provider::Cloudflare, 0.49, 0.02),
            ],
        ),
        (
            nz20,
            [
                (Provider::Google, 0.46, 0.00),
                (Provider::Amazon, 0.04, 0.05),
                (Provider::Microsoft, 0.00, 0.00),
                (Provider::Facebook, 0.83, 0.15),
                (Provider::Cloudflare, 0.51, 0.01),
            ],
        ),
    ] {
        for (p, v6, tcp) in rows_expected {
            let got = t5(run, p);
            rows.push(pct_row(
                "Table 5",
                format!("{}: {} IPv6 share", run.id, p.name()),
                v6,
                got.ipv6,
                0.08,
            ));
            rows.push(pct_row(
                "Table 5",
                format!("{}: {} TCP share", run.id, p.name()),
                tcp,
                got.tcp,
                0.06,
            ));
        }
    }

    // --- Table 6: resolver families (w2020) ---------------------------
    for (run, amazon_v6, ms_v6) in [(nl20, 0.018, 0.030), (nz20, 0.021, 0.046)] {
        let a = transport::resolver_families(&run.analysis, Provider::Amazon);
        let m = transport::resolver_families(&run.analysis, Provider::Microsoft);
        rows.push(pct_row(
            "Table 6",
            format!("{}: Amazon IPv6 resolver share", run.id),
            amazon_v6,
            a.v6_share,
            0.02,
        ));
        rows.push(pct_row(
            "Table 6",
            format!("{}: Microsoft IPv6 resolver share", run.id),
            ms_v6,
            m.v6_share,
            0.04,
        ));
    }

    // --- Figure 4: junk ----------------------------------------------
    let root_junk = junk::junk_report(&br20.id, &br20.analysis);
    rows.push(pct_row(
        "Figure 4",
        "broot-w2020: overall junk",
        0.80,
        root_junk.overall,
        0.03,
    ));
    rows.push(ComparisonRow {
        exhibit: "Figure 4",
        metric: "broot-w2020: every CP below the vantage junk level".into(),
        paper: "yes".into(),
        measured: if root_junk.all_providers_below_overall() {
            "yes"
        } else {
            "no"
        }
        .into(),
        ok: root_junk.all_providers_below_overall(),
    });

    // --- Figure 6 / §4.4: EDNS + truncation ---------------------------
    {
        let fb = ednssize::edns_report_for(&nl20.analysis, Provider::Facebook);
        let g = ednssize::edns_report_for(&nl20.analysis, Provider::Google);
        let ms = ednssize::edns_report_for(&nl20.analysis, Provider::Microsoft);
        rows.push(pct_row(
            "Figure 6",
            "nl-w2020: Facebook EDNS \u{2264}512",
            0.30,
            fb.fraction_at_most(512),
            0.12,
        ));
        rows.push(pct_row(
            "Figure 6",
            "nl-w2020: Google EDNS \u{2264}1232",
            0.24,
            g.fraction_at_most(1232),
            0.12,
        ));
        rows.push(pct_row(
            "\u{a7}4.4",
            "nl-w2020: Facebook UDP truncation",
            0.1716,
            fb.truncation_ratio,
            0.07,
        ));
        rows.push(pct_row(
            "\u{a7}4.4",
            "nl-w2020: Google UDP truncation",
            0.0004,
            g.truncation_ratio,
            0.002,
        ));
        rows.push(pct_row(
            "\u{a7}4.4",
            "nl-w2020: Microsoft UDP truncation",
            0.0001,
            ms.truncation_ratio,
            0.002,
        ));
    }

    // --- §4.1: the B-Root AS ranking remark ---------------------------
    let rank = br20.analysis.first_cloud_as_rank();
    rows.push(ComparisonRow {
        exhibit: "\u{a7}4.1",
        metric: "broot-w2020: rank of first cloud AS (behind ISPs)".into(),
        paper: "5".into(),
        measured: rank.map(|r| r.to_string()).unwrap_or_else(|| "-".into()),
        ok: rank.is_some_and(|r| (3..=8).contains(&r)),
    });

    // --- Figure 3: the Q-min change-point -----------------------------
    for (vantage, series) in [(Vantage::Nl, nl_series), (Vantage::Nz, nz_series)] {
        let detected = qmin::detect_cusum(series, 0.05, 0.3);
        let got = detected
            .map(|cp| format!("{}-{:02}", cp.year, cp.month))
            .unwrap_or_else(|| "none".into());
        rows.push(ComparisonRow {
            exhibit: "Figure 3",
            metric: format!("{}: Google Q-min deployment month", vantage.label()),
            paper: "2019-12".into(),
            measured: got.clone(),
            ok: got == "2019-12",
        });
        if vantage == Vantage::Nz {
            let feb = series.iter().find(|s| (s.year, s.month) == (2020, 2));
            let jan = series.iter().find(|s| (s.year, s.month) == (2020, 1));
            let dipped = matches!((jan, feb), (Some(j), Some(f))
                if f.address_share > j.address_share + 0.1);
            rows.push(ComparisonRow {
                exhibit: "Figure 3b",
                metric: ".nz: Feb-2020 cyclic-dependency A/AAAA surge".into(),
                paper: "present".into(),
                measured: if dipped { "present" } else { "absent" }.into(),
                ok: dipped,
            });
        }
    }

    rows
}

/// Render the comparison as a Markdown table.
pub fn render_markdown(rows: &[ComparisonRow]) -> String {
    let mut out = String::new();
    out.push_str("| Exhibit | Metric | Paper | Measured | In band |\n");
    out.push_str("|---|---|---|---|---|\n");
    for r in rows {
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} |\n",
            r.exhibit,
            r.metric,
            r.paper,
            r.measured,
            if r.ok { "yes" } else { "**NO**" }
        ));
    }
    let pass = rows.iter().filter(|r| r.ok).count();
    out.push_str(&format!("\n{pass}/{} comparisons in band.\n", rows.len()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_runs_and_mostly_lands_at_tiny_scale() {
        let rows = compare(Scale::tiny(), 42);
        assert!(rows.len() > 30, "broad coverage: {} rows", rows.len());
        let pass = rows.iter().filter(|r| r.ok).count();
        // tiny scale is noisy; demand a strong majority, not perfection
        assert!(
            pass * 10 >= rows.len() * 8,
            "{pass}/{} in band: {:#?}",
            rows.len(),
            rows.iter().filter(|r| !r.ok).collect::<Vec<_>>()
        );
        // the headline rows must hold even at tiny scale
        for must in ["Google Q-min deployment month", "5-CP share"] {
            assert!(
                rows.iter()
                    .filter(|r| r.metric.contains(must))
                    .all(|r| r.ok),
                "{must}: {:?}",
                rows.iter()
                    .filter(|r| r.metric.contains(must))
                    .collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn markdown_renders() {
        let rows = vec![ComparisonRow {
            exhibit: "Figure 1",
            metric: "test".into(),
            paper: "30%".into(),
            measured: "31%".into(),
            ok: true,
        }];
        let md = render_markdown(&rows);
        assert!(md.contains("| Figure 1 | test | 30% | 31% | yes |"));
        assert!(md.contains("1/1"));
    }
}

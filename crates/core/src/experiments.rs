//! End-to-end experiment runners: generate a dataset through `simnet`,
//! ingest it through `entrada`, aggregate with [`DatasetAnalysis`] —
//! the full pipeline behind every table and figure.
//!
//! The generator and the analyzer are deliberately decoupled by the
//! `.dnscap` file (as pcap decoupled the paper's collection from
//! ENTRADA): the analyzer reconstructs its enrichment context (address
//! plan, zone, PTR view) from the dataset spec + seed via the same
//! deterministic constructors the generator used.

use crate::analysis::DatasetAnalysis;
use crate::dualstack::DualStackAnalysis;
use crate::qmin::MonthlySample;
use crate::sink::{DualStackSink, FanoutSink, RowSink};
use asdb::synth::InternetPlan;
use dns_wire::types::RType;
use entrada::agg::Counter;
use entrada::enrich::Enricher;
use entrada::ingest::{CaptureIngest, IngestStats};
use netbase::capture::{CaptureReader, CaptureWriter};
use simnet::engine::{plan_config_for, DatasetStats, Engine};
use simnet::profile::Vantage;
use simnet::scenario::{
    dataset, figure3_months, monthly_google, monthly_provider, DatasetSpec, Scale,
};
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::{Path, PathBuf};

/// Everything one dataset run produces.
pub struct DatasetRun {
    /// Dataset identifier (`nl-w2020`, ...).
    pub id: String,
    /// The spec it ran from.
    pub spec: DatasetSpec,
    /// The aggregated analysis.
    pub analysis: DatasetAnalysis,
    /// The Facebook dual-stack analysis (Figures 5/8).
    pub dualstack: DualStackAnalysis,
    /// Generator-side counters.
    pub gen_stats: DatasetStats,
    /// Ingest-side counters.
    pub ingest_stats: IngestStats,
}

/// Generate a dataset capture to `path`. Returns generator counters.
pub fn generate_capture(
    spec: &DatasetSpec,
    scale: Scale,
    seed: u64,
    path: &Path,
) -> std::io::Result<DatasetStats> {
    generate_capture_sharded(spec, scale, seed, path, 1)
}

/// Generate a dataset capture to `path` across `shards` generator
/// threads. The file is byte-identical for any shard count.
pub fn generate_capture_sharded(
    spec: &DatasetSpec,
    scale: Scale,
    seed: u64,
    path: &Path,
    shards: usize,
) -> std::io::Result<DatasetStats> {
    let mut stage = obs::stage("pipeline.generate");
    let _span = obs::span(format!("generate {}", spec.id()));
    let engine = Engine::new(spec.clone(), scale, seed);
    let file = File::create(path)?;
    let mut writer = CaptureWriter::new(BufWriter::new(file))?;
    let stats = engine.generate_sharded(&mut writer, shards)?;
    writer.finish()?;
    stage.add_items(stats.queries + stats.responses);
    Ok(stats)
}

/// Generate a dataset capture to `path` with the algorithmic resolver
/// fleet ([`Engine::generate_fleet`]): same capture format, but every
/// record comes out of an iterative resolver's walk. `workers` stripes
/// fleets across threads; the file is byte-identical for any count.
pub fn generate_capture_fleet(
    spec: &DatasetSpec,
    scale: Scale,
    seed: u64,
    path: &Path,
    workers: usize,
) -> std::io::Result<DatasetStats> {
    let mut stage = obs::stage("pipeline.generate");
    let _span = obs::span(format!("generate-fleet {}", spec.id()));
    let engine = Engine::new(spec.clone(), scale, seed);
    let file = File::create(path)?;
    let mut writer = CaptureWriter::new(BufWriter::new(file))?;
    let stats = engine.generate_fleet(&mut writer, workers)?;
    writer.finish()?;
    stage.add_items(stats.queries + stats.responses);
    Ok(stats)
}

/// Analyze a capture at `path` generated from `(spec, scale, seed)`.
pub fn analyze_capture(
    spec: &DatasetSpec,
    scale: Scale,
    seed: u64,
    path: &Path,
) -> std::io::Result<(DatasetAnalysis, DualStackAnalysis, IngestStats)> {
    let mut stage = obs::stage("pipeline.analyze");
    let _span = obs::span(format!("analyze {}", spec.id()));
    // Reconstruct the enrichment context deterministically.
    let plan = InternetPlan::build(&plan_config_for(spec, scale, seed));
    let engine = Engine::new(spec.clone(), scale, seed); // zone + PTR view
    let enricher = Enricher::new(plan.mapper);
    let file = File::open(path)?;
    let reader = CaptureReader::new(BufReader::new(file))
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    let mut ingest = CaptureIngest::new(reader, enricher);
    let mut sink = FanoutSink::new(
        DatasetAnalysis::new(engine.zone().clone()),
        DualStackSink::new(
            DualStackAnalysis::with_servers(&spec.servers),
            engine.ptr_db(),
        ),
    );
    // The generator emits exactly one row per scheduled query, so the
    // a-priori scaled total is the expected row count — a real total
    // makes the progress line render percent + ETA.
    let mut progress = obs::Progress::new(
        format!("analyze {}", spec.id()),
        Some(engine.scaled_total()),
    );
    for row in ingest.by_ref() {
        sink.push(&row);
        progress.tick(1);
    }
    let stats = ingest.stats().clone();
    stage.add_items(stats.rows);
    crate::pipeline::warn_on_capture_errors(&spec.id(), &stats);
    let (analysis, dualstack) = sink.into_parts();
    Ok((analysis, dualstack.into_inner(), stats))
}

/// Generate + analyze one of the nine Table 3 datasets via a temp file.
pub fn run_dataset(vantage: Vantage, year: u16, scale: Scale, seed: u64) -> DatasetRun {
    run_spec(dataset(vantage, year), scale, seed)
}

/// Generate + analyze an arbitrary dataset spec. Since the pipeline
/// fusion this streams records in memory (no intermediate file); use
/// [`crate::pipeline::run_spec_with`] to shard the generator or keep
/// the capture on disk.
pub fn run_spec(spec: DatasetSpec, scale: Scale, seed: u64) -> DatasetRun {
    crate::pipeline::run_spec_with(spec, scale, seed, &crate::pipeline::PipelineOpts::default())
}

/// Run the Figure 3 longitudinal series: one Google-only sample per
/// month (Nov 2018 – Apr 2020) against one ccTLD, returning the monthly
/// qtype summaries the change-point detector consumes.
pub fn run_monthly_series(vantage: Vantage, scale: Scale, seed: u64) -> Vec<MonthlySample> {
    run_monthly_series_for(vantage, asdb::cloud::Provider::Google, scale, seed)
}

/// The Figure 3 machinery for any provider: date *their* Q-min rollout
/// the same way the paper dated Google's.
pub fn run_monthly_series_for(
    vantage: Vantage,
    provider: asdb::cloud::Provider,
    scale: Scale,
    seed: u64,
) -> Vec<MonthlySample> {
    run_monthly_series_for_jobs(vantage, provider, scale, seed, 1)
}

/// [`run_monthly_series_for`] with up to `jobs` months in flight (the
/// 18 monthly runs are independent); samples come back in month order,
/// identical to a serial run for any job count.
pub fn run_monthly_series_for_jobs(
    vantage: Vantage,
    provider: asdb::cloud::Provider,
    scale: Scale,
    seed: u64,
    jobs: usize,
) -> Vec<MonthlySample> {
    let tasks = figure3_months()
        .into_iter()
        .map(|(year, month)| {
            let label = format!("suite.fig3-{provider:?}-{year}-{month:02}").to_lowercase();
            let task = move || {
                let spec = if provider == asdb::cloud::Provider::Google {
                    monthly_google(vantage, year, month)
                } else {
                    monthly_provider(vantage, provider, year, month)
                };
                let run = run_spec(spec, scale, seed ^ ((year as u64) << 8 | month as u64));
                let agg = run.analysis.provider(Some(provider));
                // this run covers exactly one month, so the provider
                // aggregate *is* the monthly bucket
                let mut qtypes: Counter<RType> = Counter::new();
                for (t, c) in agg.qtype.iter() {
                    qtypes.add(*t, c);
                }
                MonthlySample::from_counters(year, month, &qtypes, agg.minimized_ns)
            };
            (label, task)
        })
        .collect();
    crate::suite::run_tasks(tasks, jobs, |s: &MonthlySample| s.total)
}

/// The Figure 3 Google monthly series generated by the *algorithmic
/// resolver fleet* instead of the calibrated sampler: the same months,
/// specs and seeds as [`run_monthly_series`], but every record comes
/// out of an [`simnet::emerge::SimTransport`] walk — so the Dec-2019
/// Q-min change point in the returned samples is emergent, produced by
/// `IterativeResolver::set_qmin` flipping on the rollout date.
pub fn run_monthly_series_fleet(
    vantage: Vantage,
    scale: Scale,
    seed: u64,
    jobs: usize,
) -> Vec<MonthlySample> {
    let provider = asdb::cloud::Provider::Google;
    let tasks = figure3_months()
        .into_iter()
        .map(|(year, month)| {
            let label = format!("suite.fig3-fleet-{year}-{month:02}");
            let task = move || {
                let spec = monthly_google(vantage, year, month);
                let run = crate::pipeline::run_spec_with(
                    spec,
                    scale,
                    seed ^ ((year as u64) << 8 | month as u64),
                    &crate::pipeline::PipelineOpts::with_fleet(),
                );
                let agg = run.analysis.provider(Some(provider));
                let mut qtypes: Counter<RType> = Counter::new();
                for (t, c) in agg.qtype.iter() {
                    qtypes.add(*t, c);
                }
                MonthlySample::from_counters(year, month, &qtypes, agg.minimized_ns)
            };
            (label, task)
        })
        .collect();
    crate::suite::run_tasks(tasks, jobs, |s: &MonthlySample| s.total)
}

/// The nine Table 3 dataset specs, in report order.
pub fn table3_specs() -> Vec<DatasetSpec> {
    [Vantage::Nl, Vantage::Nz, Vantage::BRoot]
        .into_iter()
        .flat_map(|v| [2018u16, 2019, 2020].map(|y| dataset(v, y)))
        .collect()
}

/// Run all nine Table 3 datasets, fanning out across worker threads
/// (the [`crate::suite`] scheduler; results come back in dataset
/// order). On a many-core box this turns the full-report wall time
/// into roughly the longest single dataset's.
pub fn run_all_datasets(scale: Scale, seed: u64) -> Vec<DatasetRun> {
    run_all_datasets_jobs(scale, seed, 9)
}

/// [`run_all_datasets`] with at most `jobs` datasets in flight.
pub fn run_all_datasets_jobs(scale: Scale, seed: u64, jobs: usize) -> Vec<DatasetRun> {
    crate::suite::run_suite(
        table3_specs(),
        scale,
        seed,
        &crate::pipeline::PipelineOpts::default(),
        jobs,
    )
}

/// A collision-resistant temp path for intermediate captures.
pub fn temp_capture_path(id: &str, seed: u64) -> PathBuf {
    let mut dir = std::env::temp_dir();
    dir.push(format!(
        "dnscentral-{id}-{seed}-{}.dnscap",
        std::process::id()
    ));
    dir
}

#[cfg(test)]
mod tests {
    use super::*;
    use asdb::cloud::Provider;

    #[test]
    fn roundtrip_through_file_preserves_counts() {
        let path = temp_capture_path("roundtrip", 11);
        let run = crate::pipeline::run_spec_with(
            dataset(Vantage::Nz, 2020),
            Scale::tiny(),
            11,
            &crate::pipeline::PipelineOpts {
                keep_capture: Some(path.clone()),
                ..Default::default()
            },
        );
        let _ = std::fs::remove_file(&path);
        assert_eq!(run.id, "nz-w2020");
        assert_eq!(run.gen_stats.queries, run.ingest_stats.rows);
        assert_eq!(run.analysis.total_queries, run.gen_stats.queries);
        assert_eq!(run.ingest_stats.malformed, 0);
        assert_eq!(run.ingest_stats.unmatched_responses, 0);
        assert_eq!(
            run.ingest_stats.unanswered_queries, 0,
            "engine answers everything"
        );
    }

    #[test]
    fn analysis_attributes_cloud_traffic() {
        let run = run_dataset(Vantage::Nl, 2020, Scale::tiny(), 11);
        let share = run.analysis.cloud_share();
        assert!((0.2..0.45).contains(&share), "cloud share {share}");
        assert!(run.analysis.provider_share(Provider::Google) > 0.05);
        // facebook rows reached the dual-stack analysis
        assert!(run.dualstack.site_count() > 0);
    }

    #[test]
    fn parallel_runner_matches_sequential() {
        let all = run_all_datasets(Scale::tiny(), 4);
        assert_eq!(all.len(), 9);
        assert_eq!(all[0].id, "nl-w2018");
        assert_eq!(all[8].id, "broot-w2020");
        // identical to a sequential run of the same spec/seed
        let seq = run_dataset(Vantage::Nz, 2019, Scale::tiny(), 4);
        let par = &all[4];
        assert_eq!(par.id, "nz-w2019");
        assert_eq!(par.analysis.total_queries, seq.analysis.total_queries);
        assert_eq!(par.analysis.valid_queries, seq.analysis.valid_queries);
    }

    #[test]
    fn monthly_series_shape() {
        // a coarse scale: the series is 18 generate+analyze runs
        let series = run_monthly_series(Vantage::Nl, Scale::tiny(), 3);
        assert_eq!(series.len(), 18);
        assert!(series.iter().all(|s| s.total > 0));
        // pre-Dec-2019 months have low NS share; post, high
        let pre = &series[6]; // May 2019
        let post = &series[15]; // Feb 2020
        assert!(pre.ns_share < 0.2, "pre {}", pre.ns_share);
        assert!(post.ns_share > 0.3, "post {}", post.ns_share);
    }
}

//! Mergeable row sinks: the interface every analysis consumer speaks.
//!
//! ENTRADA scales to the paper's 55.7B queries by aggregating Parquet
//! partitions in parallel and merging the partials; [`RowSink`] is that
//! shape at library scale. Anything that consumes [`QueryRow`]s
//! implements it — the whole-dataset aggregation
//! ([`crate::analysis::DatasetAnalysis`]), the Facebook dual-stack
//! analysis (via [`DualStackSink`], which carries the PTR view the
//! joins need), the Chromium junk classifier
//! ([`crate::junk::ChromiumProbeStats`]), and the columnar warehouse
//! batch ([`entrada::table::ColumnarBatch`]).
//!
//! The contract behind [`RowSink::merge`]: a sink must be an
//! **order-insensitive function of the row multiset**, so that partials
//! built over disjoint row subsets and merged in any deterministic
//! order are indistinguishable from one serial pass. That property is
//! what lets `core::pipeline` fan the ingest→analysis half out over N
//! workers and still render byte-identical reports, and it is pinned by
//! the `jobs_determinism` proptest.

use crate::analysis::DatasetAnalysis;
use crate::dualstack::DualStackAnalysis;
use crate::junk::ChromiumProbeStats;
use entrada::schema::QueryRow;
use entrada::table::ColumnarBatch;
use simnet::ptr::PtrDb;

/// A mergeable consumer of enriched query rows.
pub trait RowSink {
    /// Consume one row.
    fn push(&mut self, row: &QueryRow);

    /// Absorb a partial sink built over a disjoint subset of the same
    /// dataset's rows. After merging, `self` must equal the sink one
    /// serial pass over the union of both row sets would have built.
    fn merge(&mut self, other: Self)
    where
        Self: Sized;
}

impl RowSink for DatasetAnalysis {
    fn push(&mut self, row: &QueryRow) {
        DatasetAnalysis::push(self, row);
    }

    fn merge(&mut self, other: Self) {
        DatasetAnalysis::merge(self, other);
    }
}

impl RowSink for ChromiumProbeStats {
    fn push(&mut self, row: &QueryRow) {
        ChromiumProbeStats::push(self, row);
    }

    fn merge(&mut self, other: Self) {
        ChromiumProbeStats::merge(self, other);
    }
}

impl RowSink for ColumnarBatch {
    fn push(&mut self, row: &QueryRow) {
        ColumnarBatch::push(self, row);
    }

    fn merge(&mut self, other: Self) {
        ColumnarBatch::merge(self, other);
    }
}

/// [`DualStackAnalysis`] as a [`RowSink`]: the PTR joins of §4.3 need
/// the reverse-DNS view alongside each row, so the sink pairs the
/// analysis state with a borrowed [`PtrDb`].
pub struct DualStackSink<'a> {
    /// The accumulated dual-stack state.
    pub analysis: DualStackAnalysis,
    ptr: &'a PtrDb,
}

impl<'a> DualStackSink<'a> {
    /// Wrap an analysis with the PTR view it joins against.
    pub fn new(analysis: DualStackAnalysis, ptr: &'a PtrDb) -> Self {
        DualStackSink { analysis, ptr }
    }

    /// Unwrap the accumulated analysis.
    pub fn into_inner(self) -> DualStackAnalysis {
        self.analysis
    }
}

impl RowSink for DualStackSink<'_> {
    fn push(&mut self, row: &QueryRow) {
        self.analysis.push(row, self.ptr);
    }

    fn merge(&mut self, other: Self) {
        self.analysis.merge(other.analysis);
    }
}

/// Two sinks fed from one stream: pushes go to both, merges pair up
/// componentwise. Nest for wider fan-out.
pub struct FanoutSink<A, B> {
    /// First branch.
    pub a: A,
    /// Second branch.
    pub b: B,
}

impl<A: RowSink, B: RowSink> FanoutSink<A, B> {
    /// Fan one row stream out to `a` and `b`.
    pub fn new(a: A, b: B) -> Self {
        FanoutSink { a, b }
    }

    /// Unwrap both branches.
    pub fn into_parts(self) -> (A, B) {
        (self.a, self.b)
    }
}

impl<A: RowSink, B: RowSink> RowSink for FanoutSink<A, B> {
    fn push(&mut self, row: &QueryRow) {
        self.a.push(row);
        self.b.push(row);
    }

    fn merge(&mut self, other: Self) {
        self.a.merge(other.a);
        self.b.merge(other.b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asdb::cloud::Provider;
    use dns_wire::types::{RType, Rcode};
    use netbase::flow::Transport;
    use netbase::time::SimTime;
    use zonedb::zone::ZoneModel;

    fn row(i: u64) -> QueryRow {
        let google = i.is_multiple_of(3);
        QueryRow {
            timestamp: SimTime::from_date(2020, 4, 1 + (i % 7) as u32),
            src: if google {
                "8.8.8.8".parse().unwrap()
            } else {
                format!("192.0.2.{}", i % 200).parse().unwrap()
            },
            src_port: 1000 + (i % 50_000) as u16,
            server: "194.0.28.53".parse().unwrap(),
            transport: if i.is_multiple_of(5) {
                Transport::Tcp
            } else {
                Transport::Udp
            },
            qname: format!("host{}.example.nl.", i % 11).parse().unwrap(),
            qtype: if i.is_multiple_of(2) {
                RType::A
            } else {
                RType::Ns
            },
            edns_size: Some(1232),
            do_bit: true,
            rcode: if i.is_multiple_of(7) {
                Some(Rcode::NxDomain)
            } else {
                Some(Rcode::NoError)
            },
            response_size: Some(80 + (i % 400) as u32),
            response_truncated: i.is_multiple_of(13),
            tcp_rtt_us: if i.is_multiple_of(5) { 15_000 } else { 0 },
            asn: Some(if google {
                Provider::Google.asns()[0]
            } else {
                asdb::registry::Asn(64496 + (i % 9) as u32)
            }),
            provider: google.then_some(Provider::Google),
            public_dns: google,
        }
    }

    /// Generic harness: split a row stream across `parts` sinks, merge,
    /// and hand back both the merged sink and a serially-built one.
    fn split_and_merge<S: RowSink, F: Fn() -> S>(make: F, parts: usize, n: u64) -> (S, S) {
        let mut serial = make();
        let mut partials: Vec<S> = (0..parts).map(|_| make()).collect();
        for i in 0..n {
            let r = row(i);
            serial.push(&r);
            partials[(i as usize) % parts].push(&r);
        }
        let mut merged = partials.remove(0);
        for p in partials {
            merged.merge(p);
        }
        (merged, serial)
    }

    #[test]
    fn dataset_analysis_merge_matches_serial() {
        let (merged, serial) =
            split_and_merge(|| DatasetAnalysis::new(ZoneModel::nl(100)), 4, 1000);
        assert_eq!(merged.total_queries, serial.total_queries);
        assert_eq!(merged.valid_queries, serial.valid_queries);
        assert_eq!(merged.resolvers.count(), serial.resolvers.count());
        assert_eq!(merged.ases.count(), serial.ases.count());
        assert_eq!(merged.cloud_share(), serial.cloud_share());
        for p in [None, Some(Provider::Google)] {
            let (m, s) = (merged.provider(p), serial.provider(p));
            assert_eq!(m.queries, s.queries);
            assert_eq!(m.junk, s.junk);
            assert_eq!(m.ns_queries, s.ns_queries);
            assert_eq!(m.minimized_ns, s.minimized_ns);
            assert_eq!(m.edns_sizes.len(), s.edns_sizes.len());
            assert_eq!(m.response_sizes.median(), s.response_sizes.median());
            assert_eq!(m.resolvers_v4.count(), s.resolvers_v4.count());
        }
        assert_eq!(
            merged.google_public.public_query_ratio(),
            serial.google_public.public_query_ratio()
        );
        assert_eq!(merged.first_cloud_as_rank(), serial.first_cloud_as_rank());
    }

    #[test]
    fn probe_stats_merge_matches_serial() {
        let (merged, serial) = split_and_merge(ChromiumProbeStats::default, 3, 500);
        assert_eq!(merged.junk_queries, serial.junk_queries);
        assert_eq!(merged.probe_shaped, serial.probe_shaped);
    }

    /// Satellite: ColumnarBatch speaks RowSink — push rows through the
    /// trait, iterate them back out, and get equal `QueryRow`s.
    #[test]
    fn columnar_batch_roundtrips_through_rowsink() {
        let rows: Vec<QueryRow> = (0..300).map(row).collect();
        let mut batch = ColumnarBatch::new();
        for r in &rows {
            RowSink::push(&mut batch, r);
        }
        let back: Vec<QueryRow> = batch.iter().collect();
        assert_eq!(back, rows);

        let (merged, serial) = split_and_merge(ColumnarBatch::new, 4, 300);
        let merged_rows: Vec<QueryRow> = merged.iter().collect();
        let mut serial_rows: Vec<QueryRow> = serial.iter().collect();
        // partials interleave rows round-robin; compare as multisets
        let mut merged_sorted = merged_rows;
        merged_sorted.sort_by_key(|r| (r.timestamp, r.src_port));
        serial_rows.sort_by_key(|r| (r.timestamp, r.src_port));
        assert_eq!(merged_sorted, serial_rows);
    }

    #[test]
    fn fanout_feeds_both_branches_and_merges() {
        let make = || {
            FanoutSink::new(
                DatasetAnalysis::new(ZoneModel::nl(100)),
                ChromiumProbeStats::default(),
            )
        };
        let (merged, serial) = split_and_merge(make, 4, 800);
        let (ma, mp) = merged.into_parts();
        let (sa, sp) = serial.into_parts();
        assert_eq!(ma.total_queries, sa.total_queries);
        assert_eq!(mp.junk_queries, sp.junk_queries);
        assert_eq!(mp.probe_shaped, sp.probe_shaped);
    }
}

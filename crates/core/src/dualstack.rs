//! The Facebook dual-stack analysis of §4.3 / Figures 5 and 8.
//!
//! Pipeline, exactly as the paper describes it:
//! 1. reverse-look-up every address that sent Facebook queries;
//! 2. parse the site (airport code) and, where present, the embedded
//!    IPv4 address out of the PTR name;
//! 3. join v4/v6 addresses on the embedded-IPv4 key → dual-stack
//!    resolvers;
//! 4. per site and per analyzed server: query volumes by family, and
//!    the median TCP-handshake RTT by family.

use asdb::cloud::Provider;
use entrada::agg::Cdf;
use entrada::schema::QueryRow;
use netbase::flow::{IpVersion, Transport};
use serde::Serialize;
use simnet::ptr::{parse_fb_ptr, PtrDb};
use std::collections::{HashMap, HashSet};
use std::net::IpAddr;

/// Per-(site, server) accumulators.
#[derive(Debug, Default)]
struct SiteServerAgg {
    q_v4: u64,
    q_v6: u64,
    rtt_v4: Cdf,
    rtt_v6: Cdf,
}

impl SiteServerAgg {
    fn merge(&mut self, other: SiteServerAgg) {
        self.q_v4 += other.q_v4;
        self.q_v6 += other.q_v6;
        self.rtt_v4.merge(other.rtt_v4);
        self.rtt_v6.merge(other.rtt_v6);
    }
}

/// The analysis state.
pub struct DualStackAnalysis {
    /// site code -> per-server aggregates (keyed by canonical server
    /// address; a server's v6 service address maps to its v4 one).
    sites: HashMap<String, HashMap<IpAddr, SiteServerAgg>>,
    /// server v6 address -> canonical (v4) address.
    server_alias: HashMap<IpAddr, IpAddr>,
    /// dual-stack join: embedded v4 key -> set of source addresses.
    join: HashMap<(String, std::net::Ipv4Addr), HashSet<IpAddr>>,
    /// addresses that had no PTR record at all.
    pub no_ptr: HashSet<IpAddr>,
    /// addresses whose PTR lacked the embedded IPv4 (the 13th site).
    pub unjoinable: HashSet<IpAddr>,
}

/// One row of the Figure 5 output for a chosen server.
#[derive(Debug, Clone, Serialize)]
pub struct SiteReport {
    /// Rank by total query volume (1 = the dominant site, as in the
    /// paper's "location 1").
    pub rank: usize,
    /// Airport-style site code.
    pub site: String,
    /// IPv4 queries to the chosen server.
    pub queries_v4: u64,
    /// IPv6 queries to the chosen server.
    pub queries_v6: u64,
    /// IPv6 share at this site/server.
    pub v6_ratio: f64,
    /// Median TCP handshake RTT over IPv4, microseconds (None = no TCP
    /// observed — true of the dominant site in the paper).
    pub median_rtt_v4_us: Option<u64>,
    /// Median TCP handshake RTT over IPv6, microseconds.
    pub median_rtt_v6_us: Option<u64>,
}

impl Default for DualStackAnalysis {
    fn default() -> Self {
        Self::new()
    }
}

impl DualStackAnalysis {
    /// Fresh state.
    pub fn new() -> Self {
        DualStackAnalysis {
            sites: HashMap::new(),
            server_alias: HashMap::new(),
            join: HashMap::new(),
            no_ptr: HashSet::new(),
            unjoinable: HashSet::new(),
        }
    }

    /// As [`DualStackAnalysis::new`], registering the analyzed servers
    /// so each server's v4 and v6 service addresses aggregate together
    /// (both families serve the same anycast instance).
    pub fn with_servers(servers: &[simnet::auth::ServerSpec]) -> Self {
        let mut out = Self::new();
        for s in servers {
            out.server_alias.insert(IpAddr::V6(s.v6), IpAddr::V4(s.v4));
        }
        out
    }

    /// Feed one row (non-Facebook rows are ignored). `ptr` is the
    /// reverse-DNS view the analyst queries.
    pub fn push(&mut self, row: &QueryRow, ptr: &PtrDb) {
        if row.provider != Some(Provider::Facebook) {
            return;
        }
        let Some(name) = ptr.lookup(row.src) else {
            self.no_ptr.insert(row.src);
            return;
        };
        let Some((site, embedded)) = parse_fb_ptr(name) else {
            return;
        };
        match embedded {
            Some(v4key) => {
                self.join
                    .entry((site.clone(), v4key))
                    .or_default()
                    .insert(row.src);
            }
            None => {
                self.unjoinable.insert(row.src);
            }
        }
        let server = self
            .server_alias
            .get(&row.server)
            .copied()
            .unwrap_or(row.server);
        let agg = self
            .sites
            .entry(site)
            .or_default()
            .entry(server)
            .or_default();
        match row.ip_version() {
            IpVersion::V4 => agg.q_v4 += 1,
            IpVersion::V6 => agg.q_v6 += 1,
        }
        if row.transport == Transport::Tcp && row.tcp_rtt_us > 0 {
            match row.ip_version() {
                IpVersion::V4 => agg.rtt_v4.add(row.tcp_rtt_us as u64),
                IpVersion::V6 => agg.rtt_v6.add(row.tcp_rtt_us as u64),
            }
        }
    }

    /// Number of identified dual-stack resolvers (both families seen
    /// for the same embedded-v4 join key).
    pub fn dual_stack_resolvers(&self) -> usize {
        self.join
            .values()
            .filter(|addrs| addrs.iter().any(|a| a.is_ipv4()) && addrs.iter().any(|a| a.is_ipv6()))
            .count()
    }

    /// Distinct sites observed.
    pub fn site_count(&self) -> usize {
        self.sites.len()
    }

    /// Merge a partial analysis built over a disjoint subset of the
    /// same dataset's rows (with the same registered servers). All
    /// state is sums and set unions over the row multiset, so merged
    /// worker partials report exactly what one serial pass would.
    pub fn merge(&mut self, other: DualStackAnalysis) {
        for (site, per_server) in other.sites {
            let mine = self.sites.entry(site).or_default();
            for (server, agg) in per_server {
                mine.entry(server).or_default().merge(agg);
            }
        }
        // with_servers seeds identical alias maps into every partial
        self.server_alias.extend(other.server_alias);
        for (key, addrs) in other.join {
            self.join.entry(key).or_default().extend(addrs);
        }
        self.no_ptr.extend(other.no_ptr);
        self.unjoinable.extend(other.unjoinable);
    }

    /// Figure 5 for one analyzed server: sites ranked by *overall*
    /// volume (so "location 1" is stable across servers, like the
    /// paper's numbering), with per-server family mixes and RTTs.
    pub fn report_for_server(&self, server: IpAddr) -> Vec<SiteReport> {
        let mut order: Vec<(String, u64)> = self
            .sites
            .iter()
            .map(|(site, per_server)| {
                let total: u64 = per_server.values().map(|a| a.q_v4 + a.q_v6).sum();
                (site.clone(), total)
            })
            .collect();
        order.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let empty = SiteServerAgg::default();
        order
            .into_iter()
            .enumerate()
            .map(|(i, (site, _))| {
                let agg = self
                    .sites
                    .get(&site)
                    .expect("site present")
                    .get(&server)
                    .unwrap_or(&empty);
                let total = agg.q_v4 + agg.q_v6;
                SiteReport {
                    rank: i + 1,
                    site,
                    queries_v4: agg.q_v4,
                    queries_v6: agg.q_v6,
                    v6_ratio: if total == 0 {
                        0.0
                    } else {
                        agg.q_v6 as f64 / total as f64
                    },
                    median_rtt_v4_us: if agg.rtt_v4.is_empty() {
                        None
                    } else {
                        Some(agg.rtt_v4.median())
                    },
                    median_rtt_v6_us: if agg.rtt_v6.is_empty() {
                        None
                    } else {
                        Some(agg.rtt_v6.median())
                    },
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_wire::types::{RType, Rcode};
    use netbase::time::SimTime;
    use std::net::Ipv4Addr;

    fn row(src: &str, server: &str, tcp: bool, rtt: u32) -> QueryRow {
        QueryRow {
            timestamp: SimTime::from_date(2020, 4, 7),
            src: src.parse().unwrap(),
            src_port: 1,
            server: server.parse().unwrap(),
            transport: if tcp { Transport::Tcp } else { Transport::Udp },
            qname: "example.nl.".parse().unwrap(),
            qtype: RType::A,
            edns_size: Some(512),
            do_bit: true,
            rcode: Some(Rcode::NoError),
            response_size: Some(100),
            response_truncated: false,
            tcp_rtt_us: rtt,
            asn: Some(Provider::Facebook.asns()[0]),
            provider: Some(Provider::Facebook),
            public_dns: false,
        }
    }

    fn setup() -> (PtrDb, DualStackAnalysis) {
        let mut ptr = PtrDb::new();
        let v4a: Ipv4Addr = "157.240.1.1".parse().unwrap();
        ptr.register_dual_stack("ams", 1, v4a, "2a03:2880::1:1".parse().unwrap(), true);
        let v4b: Ipv4Addr = "157.240.2.2".parse().unwrap();
        ptr.register_dual_stack("sjc", 2, v4b, "2a03:2880::2:2".parse().unwrap(), false);
        (ptr, DualStackAnalysis::new())
    }

    const SERVER_A: &str = "194.0.28.53";
    const SERVER_B: &str = "185.159.198.53";

    #[test]
    fn join_identifies_dual_stack() {
        let (ptr, mut a) = setup();
        a.push(&row("157.240.1.1", SERVER_A, false, 0), &ptr);
        a.push(&row("2a03:2880::1:1", SERVER_A, false, 0), &ptr);
        assert_eq!(a.dual_stack_resolvers(), 1);
        // the no-embedded-v4 site cannot be joined
        a.push(&row("157.240.2.2", SERVER_A, false, 0), &ptr);
        a.push(&row("2a03:2880::2:2", SERVER_A, false, 0), &ptr);
        assert_eq!(a.dual_stack_resolvers(), 1);
        assert_eq!(a.unjoinable.len(), 2);
        assert_eq!(a.site_count(), 2);
    }

    #[test]
    fn missing_ptr_is_recorded() {
        let (mut ptr, mut a) = setup();
        ptr.remove("157.240.1.1".parse().unwrap());
        a.push(&row("157.240.1.1", SERVER_A, false, 0), &ptr);
        assert_eq!(a.no_ptr.len(), 1);
        assert_eq!(a.site_count(), 0);
    }

    #[test]
    fn per_server_family_mix_and_rtt() {
        let (ptr, mut a) = setup();
        // ams: 3 v6 + 1 v4 to server A; TCP RTTs differ by family
        a.push(&row("2a03:2880::1:1", SERVER_A, true, 30_000), &ptr);
        a.push(&row("2a03:2880::1:1", SERVER_A, true, 32_000), &ptr);
        a.push(&row("2a03:2880::1:1", SERVER_A, false, 0), &ptr);
        a.push(&row("157.240.1.1", SERVER_A, true, 20_000), &ptr);
        // and some server-B traffic that must not leak into A's report
        a.push(&row("157.240.1.1", SERVER_B, false, 0), &ptr);
        let report = a.report_for_server(SERVER_A.parse().unwrap());
        let ams = report.iter().find(|r| r.site == "ams").unwrap();
        assert_eq!(ams.queries_v4, 1);
        assert_eq!(ams.queries_v6, 3);
        assert!((ams.v6_ratio - 0.75).abs() < 1e-12);
        assert_eq!(ams.median_rtt_v4_us, Some(20_000));
        // nearest-rank median of [30000, 32000]
        assert_eq!(ams.median_rtt_v6_us, Some(30_000));
    }

    #[test]
    fn ranking_is_by_overall_volume() {
        let (ptr, mut a) = setup();
        for _ in 0..10 {
            a.push(&row("157.240.2.2", SERVER_A, false, 0), &ptr);
        }
        a.push(&row("157.240.1.1", SERVER_A, false, 0), &ptr);
        let report = a.report_for_server(SERVER_A.parse().unwrap());
        assert_eq!(report[0].site, "sjc");
        assert_eq!(report[0].rank, 1);
        assert_eq!(report[1].site, "ams");
    }

    #[test]
    fn site_without_tcp_has_no_rtt() {
        let (ptr, mut a) = setup();
        a.push(&row("157.240.1.1", SERVER_A, false, 0), &ptr);
        let report = a.report_for_server(SERVER_A.parse().unwrap());
        let ams = report.iter().find(|r| r.site == "ams").unwrap();
        assert_eq!(ams.median_rtt_v4_us, None);
        assert_eq!(ams.median_rtt_v6_us, None);
    }

    #[test]
    fn non_facebook_rows_ignored() {
        let (ptr, mut a) = setup();
        let mut r = row("8.8.8.8", SERVER_A, false, 0);
        r.provider = Some(Provider::Google);
        a.push(&r, &ptr);
        assert_eq!(a.site_count(), 0);
        assert!(a.no_ptr.is_empty());
    }
}

//! The fused generate→ingest pipeline.
//!
//! [`crate::experiments`] historically decoupled the generator from the
//! analyzer with an on-disk `.dnscap` file. That round trip is pure
//! overhead for experiment runs (ENTRADA itself went streaming for the
//! same reason), so the default path here pipes [`CaptureRecord`]s
//! through a bounded crossbeam channel straight from the (optionally
//! sharded) engine into `entrada`'s ingest — no intermediate file, one
//! pass, backpressure via the channel bound. [`PipelineOpts::keep_capture`]
//! retains the two-pass on-disk behaviour (and the capture itself);
//! both paths produce row-identical results.

use crate::analysis::DatasetAnalysis;
use crate::dualstack::DualStackAnalysis;
use crate::experiments::{analyze_capture, DatasetRun};
use asdb::synth::InternetPlan;
use entrada::enrich::Enricher;
use entrada::ingest::{CaptureIngest, IngestStats};
use netbase::capture::{CaptureError, CaptureRecord, RecordSink, RecordSource};
use simnet::engine::{plan_config_for, Engine};
use simnet::profile::Vantage;
use simnet::scenario::{dataset, DatasetSpec, Scale};
use std::path::PathBuf;

/// Records move through the channel in batches of this many; per-record
/// sends would pay a lock round-trip each, which at millions of records
/// costs more than the disk round-trip the channel replaces.
const BATCH: usize = 512;

/// Batches buffered in flight between the generator and the ingest
/// side; bounds memory (`BATCH * CHANNEL_DEPTH` records) and applies
/// backpressure when ingest lags.
const CHANNEL_DEPTH: usize = 32;

/// How one pipeline run executes.
#[derive(Debug, Clone, Default)]
pub struct PipelineOpts {
    /// Generator worker-thread count (0 and 1 both mean
    /// single-threaded). Output is byte-identical for any value.
    pub shards: usize,
    /// Write the capture to this path and analyze it from disk (the
    /// two-pass behaviour), keeping the file afterwards.
    pub keep_capture: Option<PathBuf>,
}

impl PipelineOpts {
    /// Streaming pipeline with `shards` generator threads.
    pub fn with_shards(shards: usize) -> PipelineOpts {
        PipelineOpts {
            shards,
            ..PipelineOpts::default()
        }
    }

    /// Effective shard count (at least 1).
    pub fn shard_count(&self) -> usize {
        self.shards.max(1)
    }
}

/// [`RecordSink`] over the sending half of a bounded channel: the
/// engine pushes records into it; a full channel blocks (backpressure),
/// a disconnected one (ingest side gone) surfaces as a broken pipe.
/// Records are coalesced into `BATCH`-sized chunks; the tail chunk is
/// flushed on drop, so the ingest side sees every record the moment the
/// generator finishes.
pub struct ChannelSink {
    tx: crossbeam::channel::Sender<Vec<CaptureRecord>>,
    batch: Vec<CaptureRecord>,
}

impl ChannelSink {
    /// Wrap the sending half of a batch channel.
    pub fn new(tx: crossbeam::channel::Sender<Vec<CaptureRecord>>) -> ChannelSink {
        ChannelSink {
            tx,
            batch: Vec::with_capacity(BATCH),
        }
    }
}

impl RecordSink for ChannelSink {
    fn emit(&mut self, rec: CaptureRecord) -> std::io::Result<()> {
        self.batch.push(rec);
        if self.batch.len() < BATCH {
            return Ok(());
        }
        let full = std::mem::replace(&mut self.batch, Vec::with_capacity(BATCH));
        self.tx.send(full).map_err(|_| {
            std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                "pipeline ingest side disconnected",
            )
        })
    }
}

impl Drop for ChannelSink {
    fn drop(&mut self) {
        if !self.batch.is_empty() {
            // receiver already gone is fine here: nothing to report to
            let _ = self.tx.send(std::mem::take(&mut self.batch));
        }
    }
}

/// [`RecordSource`] over the receiving half: sender disconnect (the
/// generator finished and dropped its sink) is the clean end-of-stream.
pub struct ChannelSource {
    rx: crossbeam::channel::Receiver<Vec<CaptureRecord>>,
    buf: std::vec::IntoIter<CaptureRecord>,
}

impl ChannelSource {
    /// Wrap the receiving half of a batch channel.
    pub fn new(rx: crossbeam::channel::Receiver<Vec<CaptureRecord>>) -> ChannelSource {
        ChannelSource {
            rx,
            buf: Vec::new().into_iter(),
        }
    }
}

impl RecordSource for ChannelSource {
    fn next_record(&mut self) -> Result<Option<CaptureRecord>, CaptureError> {
        loop {
            if let Some(rec) = self.buf.next() {
                return Ok(Some(rec));
            }
            match self.rx.recv() {
                Ok(batch) => self.buf = batch.into_iter(),
                Err(_) => return Ok(None),
            }
        }
    }
}

/// Generate + analyze one of the Table 3 datasets with explicit
/// pipeline options.
pub fn run_dataset_with(
    vantage: Vantage,
    year: u16,
    scale: Scale,
    seed: u64,
    opts: &PipelineOpts,
) -> DatasetRun {
    run_spec_with(dataset(vantage, year), scale, seed, opts)
}

/// Generate + analyze an arbitrary dataset spec with explicit pipeline
/// options: streaming (default) or via a kept on-disk capture, 1..N
/// generator shards either way.
pub fn run_spec_with(
    spec: DatasetSpec,
    scale: Scale,
    seed: u64,
    opts: &PipelineOpts,
) -> DatasetRun {
    if let Some(path) = &opts.keep_capture {
        let gen_stats = crate::experiments::generate_capture_sharded(
            &spec,
            scale,
            seed,
            path,
            opts.shard_count(),
        )
        .expect("capture generation succeeds");
        let (analysis, dualstack, ingest_stats) =
            analyze_capture(&spec, scale, seed, path).expect("capture analysis succeeds");
        return DatasetRun {
            id: spec.id(),
            spec,
            analysis,
            dualstack,
            gen_stats,
            ingest_stats,
        };
    }

    let engine = Engine::new(spec.clone(), scale, seed);
    let plan = InternetPlan::build(&plan_config_for(&spec, scale, seed));
    let enricher = Enricher::new(plan.mapper);
    let (tx, rx) = crossbeam::channel::bounded::<Vec<CaptureRecord>>(CHANNEL_DEPTH);
    let shards = opts.shard_count();
    let engine_ref = &engine;
    let spec_ref = &spec;

    let (gen_stats, analysis, dualstack, ingest_stats) = crossbeam::thread::scope(|scope| {
        let generator = scope.spawn(move |_| {
            let mut stage = obs::stage("pipeline.generate");
            let _span = obs::span(format!("generate {}", spec_ref.id()));
            let mut sink = ChannelSink::new(tx);
            let stats = engine_ref.generate_sharded(&mut sink, shards);
            if let Ok(s) = &stats {
                stage.add_items(s.queries + s.responses);
            }
            stats
        });

        let mut stage = obs::stage("pipeline.analyze");
        let _span = obs::span(format!("analyze {}", spec_ref.id()));
        let mut ingest = CaptureIngest::new(ChannelSource::new(rx), enricher);
        let mut analysis = DatasetAnalysis::new(engine_ref.zone().clone());
        let mut dualstack = DualStackAnalysis::with_servers(&spec_ref.servers);
        let mut progress = obs::Progress::new(format!("analyze {}", spec_ref.id()), None);
        for row in ingest.by_ref() {
            analysis.push(&row);
            dualstack.push(&row, engine_ref.ptr_db());
            progress.tick(1);
        }
        let ingest_stats = ingest.stats().clone();
        stage.add_items(ingest_stats.rows);
        let gen_stats = generator
            .join()
            .expect("generator thread")
            .expect("streamed generation succeeds");
        (gen_stats, analysis, dualstack, ingest_stats)
    })
    .expect("pipeline scope join");

    warn_on_capture_errors(&spec.id(), &ingest_stats);
    DatasetRun {
        id: spec.id(),
        spec,
        analysis,
        dualstack,
        gen_stats,
        ingest_stats,
    }
}

/// Surface torn/corrupt capture records: a nonzero count means the
/// ingest stream ended early and every downstream table is computed
/// from a partial dataset — loud on stderr, counted for scrapes.
pub fn warn_on_capture_errors(id: &str, stats: &IngestStats) {
    if stats.capture_errors > 0 {
        eprintln!(
            "warning: {id}: {} torn/corrupt capture record(s) cut the ingest stream short; \
             results cover only the intact prefix",
            stats.capture_errors
        );
        obs::counter(
            "pipeline_capture_errors_total",
            "torn/corrupt capture records observed by experiment runs",
        )
        .add(stats.capture_errors);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{run_spec, temp_capture_path};

    /// The tentpole's correctness claim: the in-memory streamed path
    /// and the kept-capture disk path produce identical results.
    #[test]
    fn streamed_matches_disk_roundtrip() {
        let spec = dataset(Vantage::Nz, 2020);
        let streamed = run_spec_with(spec.clone(), Scale::tiny(), 23, &PipelineOpts::default());
        let path = temp_capture_path("pipeline-disk", 23);
        let disk = run_spec_with(
            spec,
            Scale::tiny(),
            23,
            &PipelineOpts {
                shards: 1,
                keep_capture: Some(path.clone()),
            },
        );
        assert!(path.exists(), "--keep-capture leaves the file behind");
        let _ = std::fs::remove_file(&path);
        assert_eq!(streamed.ingest_stats, disk.ingest_stats);
        assert_eq!(streamed.gen_stats.queries, disk.gen_stats.queries);
        assert_eq!(streamed.analysis.total_queries, disk.analysis.total_queries);
        assert_eq!(streamed.analysis.valid_queries, disk.analysis.valid_queries);
        assert_eq!(streamed.analysis.cloud_share(), disk.analysis.cloud_share());
    }

    /// Sharded streaming equals single-threaded streaming, run to run.
    #[test]
    fn sharded_streaming_matches_single_thread() {
        let spec = dataset(Vantage::Nz, 2019);
        let one = run_spec_with(
            spec.clone(),
            Scale::tiny(),
            31,
            &PipelineOpts::with_shards(1),
        );
        let four = run_spec_with(spec, Scale::tiny(), 31, &PipelineOpts::with_shards(4));
        assert_eq!(one.ingest_stats, four.ingest_stats);
        assert_eq!(one.gen_stats.queries, four.gen_stats.queries);
        assert_eq!(one.gen_stats.per_fleet, four.gen_stats.per_fleet);
        assert_eq!(one.analysis.total_queries, four.analysis.total_queries);
        assert_eq!(one.analysis.valid_queries, four.analysis.valid_queries);
    }

    /// The default `run_spec` is the streaming path and its accounting
    /// balances with zero capture errors.
    #[test]
    fn default_run_is_clean() {
        let run = run_spec(dataset(Vantage::Nl, 2018), Scale::tiny(), 2);
        assert_eq!(run.ingest_stats.capture_errors, 0);
        assert!(run.ingest_stats.balanced(), "{:?}", run.ingest_stats);
        assert_eq!(run.gen_stats.queries, run.ingest_stats.rows);
    }
}

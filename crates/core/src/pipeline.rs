//! The fused generate→ingest pipeline.
//!
//! [`crate::experiments`] historically decoupled the generator from the
//! analyzer with an on-disk `.dnscap` file. That round trip is pure
//! overhead for experiment runs (ENTRADA itself went streaming for the
//! same reason), so the default path here pipes [`CaptureRecord`]s
//! through a bounded crossbeam channel straight from the (optionally
//! sharded) engine into `entrada`'s ingest — no intermediate file, one
//! pass, backpressure via the channel bound. [`PipelineOpts::keep_capture`]
//! retains the two-pass on-disk behaviour (and the capture itself);
//! both paths produce row-identical results.

use crate::analysis::DatasetAnalysis;
use crate::dualstack::DualStackAnalysis;
use crate::experiments::{analyze_capture, DatasetRun};
use crate::sink::{DualStackSink, FanoutSink, RowSink};
use asdb::synth::InternetPlan;
use entrada::enrich::Enricher;
use entrada::ingest::{CaptureIngest, IngestStats};
use entrada::schema::QueryRow;
use netbase::capture::{CaptureError, CaptureRecord, Direction, RecordSink, RecordSource};
use simnet::engine::{plan_config_for, Engine};
use simnet::profile::Vantage;
use simnet::scenario::{dataset, DatasetSpec, Scale};
use std::path::PathBuf;

/// Records move through the channel in batches of this many; per-record
/// sends would pay a lock round-trip each, which at millions of records
/// costs more than the disk round-trip the channel replaces.
const BATCH: usize = 512;

/// Batches buffered in flight between the generator and the ingest
/// side; bounds memory (`BATCH * CHANNEL_DEPTH` records) and applies
/// backpressure when ingest lags.
const CHANNEL_DEPTH: usize = 32;

/// How one pipeline run executes.
#[derive(Debug, Clone, Default)]
pub struct PipelineOpts {
    /// Generator worker-thread count (0 and 1 both mean
    /// single-threaded). Output is byte-identical for any value.
    pub shards: usize,
    /// Analysis (ingest→aggregate) worker-thread count (0 and 1 both
    /// mean single-threaded). Whole time slices are routed to workers,
    /// each runs join+enrich+push into its own sink, and the partials
    /// are merged in worker order — output is byte-identical for any
    /// value because every sink is an order-insensitive function of the
    /// row multiset and the generator's slices are join-self-contained.
    pub jobs: usize,
    /// Write the capture to this path and analyze it from disk (the
    /// two-pass behaviour), keeping the file afterwards.
    pub keep_capture: Option<PathBuf>,
    /// Append every analyzed row to this warehouse source as it streams
    /// through. Each analysis worker owns its own appender (partials
    /// merge like any other sink); partitions are staged on completion
    /// and left for the caller to [`warehouse::Warehouse::commit`].
    pub warehouse: Option<crate::store::WarehouseTarget>,
    /// Generate traffic with the *algorithmic resolver fleet*
    /// ([`Engine::generate_fleet`]): every record is produced by an
    /// iterative resolver walking a simulated hierarchy, instead of the
    /// calibrated per-query sampler. `shards` then stripes fleets (not
    /// time ranges) across generator threads; the capture boundary and
    /// everything downstream of it are unchanged.
    pub fleet: bool,
}

impl PipelineOpts {
    /// Streaming pipeline with `shards` generator threads.
    pub fn with_shards(shards: usize) -> PipelineOpts {
        PipelineOpts {
            shards,
            ..PipelineOpts::default()
        }
    }

    /// Streaming pipeline with `jobs` analysis workers.
    pub fn with_jobs(jobs: usize) -> PipelineOpts {
        PipelineOpts {
            jobs,
            ..PipelineOpts::default()
        }
    }

    /// Effective shard count (at least 1).
    pub fn shard_count(&self) -> usize {
        self.shards.max(1)
    }

    /// Effective analysis-worker count (at least 1).
    pub fn job_count(&self) -> usize {
        self.jobs.max(1)
    }

    /// Streaming pipeline over the algorithmic resolver fleet.
    pub fn with_fleet() -> PipelineOpts {
        PipelineOpts {
            fleet: true,
            ..PipelineOpts::default()
        }
    }
}

/// Flight-recorder hop for a sampled query leaving the generator (one
/// relaxed atomic load when sampling is off; responses never sample).
#[inline]
fn note_gen_hop(rec: &CaptureRecord) {
    if rec.direction == Direction::Query && obs::flight::sampling_enabled() {
        let key =
            obs::flight::query_key(rec.timestamp.as_micros(), &rec.flow.src, rec.flow.src_port);
        if obs::flight::sampled(key) {
            obs::flight::hop("pipeline.gen", key);
        }
    }
}

/// Flight-recorder hops for a sampled row coming out of ingest and
/// about to be pushed into the analysis sinks. The key derives from
/// the same (timestamp, src, src_port) triple the generator hop used,
/// so one query's events chain across the pipeline.
#[inline]
fn note_row_hops(row: &QueryRow) {
    if obs::flight::sampling_enabled() {
        let key = obs::flight::query_key(row.timestamp.as_micros(), &row.src, row.src_port);
        if obs::flight::sampled(key) {
            obs::flight::hop("pipeline.ingest", key);
            obs::flight::hop("pipeline.sink", key);
        }
    }
}

/// [`RecordSink`] over the sending half of a bounded channel: the
/// engine pushes records into it; a full channel blocks (backpressure),
/// a disconnected one (ingest side gone) surfaces as a broken pipe.
/// Records are coalesced into `BATCH`-sized chunks; the tail chunk is
/// flushed on drop, so the ingest side sees every record the moment the
/// generator finishes.
pub struct ChannelSink {
    tx: crossbeam::channel::Sender<Vec<CaptureRecord>>,
    batch: Vec<CaptureRecord>,
}

impl ChannelSink {
    /// Wrap the sending half of a batch channel.
    pub fn new(tx: crossbeam::channel::Sender<Vec<CaptureRecord>>) -> ChannelSink {
        ChannelSink {
            tx,
            batch: Vec::with_capacity(BATCH),
        }
    }
}

impl RecordSink for ChannelSink {
    fn emit(&mut self, rec: CaptureRecord) -> std::io::Result<()> {
        note_gen_hop(&rec);
        self.batch.push(rec);
        if self.batch.len() < BATCH {
            return Ok(());
        }
        let full = std::mem::replace(&mut self.batch, Vec::with_capacity(BATCH));
        self.tx.send(full).map_err(|_| {
            std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                "pipeline ingest side disconnected",
            )
        })
    }
}

impl Drop for ChannelSink {
    fn drop(&mut self) {
        if !self.batch.is_empty() {
            // receiver already gone is fine here: nothing to report to
            let _ = self.tx.send(std::mem::take(&mut self.batch));
        }
    }
}

/// Slices buffered in flight per analysis worker. A slice is one
/// generator hour — the unit the join state partitions on — so this
/// bounds parallel-consumer memory to `jobs * SLICE_DEPTH` slices.
const SLICE_DEPTH: usize = 2;

/// [`RecordSink`] that routes whole time slices to analysis workers:
/// records buffer until the generator's [`RecordSink::slice_end`], then
/// the complete slice goes to worker `slot % jobs`. Because every
/// query/response exchange falls entirely within one slice, each
/// worker's ingest joins exactly the transactions it would have joined
/// serially — the per-slice-partitionable join state the parallel
/// consumer rests on.
pub struct SliceRouter {
    txs: Vec<crossbeam::channel::Sender<Vec<CaptureRecord>>>,
    buf: Vec<CaptureRecord>,
}

impl SliceRouter {
    /// Route slices round-robin by slot over the given worker channels.
    pub fn new(txs: Vec<crossbeam::channel::Sender<Vec<CaptureRecord>>>) -> SliceRouter {
        assert!(!txs.is_empty(), "at least one analysis worker");
        SliceRouter {
            txs,
            buf: Vec::new(),
        }
    }
}

impl RecordSink for SliceRouter {
    fn emit(&mut self, rec: CaptureRecord) -> std::io::Result<()> {
        note_gen_hop(&rec);
        self.buf.push(rec);
        Ok(())
    }

    fn slice_end(&mut self, slot: u64) -> std::io::Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        let slice = std::mem::take(&mut self.buf);
        self.txs[(slot as usize) % self.txs.len()]
            .send(slice)
            .map_err(|_| {
                std::io::Error::new(
                    std::io::ErrorKind::BrokenPipe,
                    "pipeline analysis worker disconnected",
                )
            })
    }
}

impl Drop for SliceRouter {
    fn drop(&mut self) {
        // The engine closes every slot with slice_end, so this buffer
        // is empty on the happy path; on an abort, salvage the tail
        // rather than silently dropping records.
        if !self.buf.is_empty() {
            let _ = self.txs[0].send(std::mem::take(&mut self.buf));
        }
    }
}

/// [`RecordSource`] over the receiving half: sender disconnect (the
/// generator finished and dropped its sink) is the clean end-of-stream.
pub struct ChannelSource {
    rx: crossbeam::channel::Receiver<Vec<CaptureRecord>>,
    buf: std::vec::IntoIter<CaptureRecord>,
    telemetry: Option<SourceTelemetry>,
}

/// Busy/idle and queue-depth accounting for an instrumented
/// [`ChannelSource`], updated once per batch refill (two clock reads
/// per `BATCH` records) so the per-record path stays untouched.
struct SourceTelemetry {
    util: obs::Utilization,
    queue: obs::QueueDepth,
    /// When the last refill handed a batch to the consumer; the gap to
    /// the next refill is time spent analyzing that batch.
    last_refill: Option<std::time::Instant>,
}

impl ChannelSource {
    /// Wrap the receiving half of a batch channel.
    pub fn new(rx: crossbeam::channel::Receiver<Vec<CaptureRecord>>) -> ChannelSource {
        ChannelSource {
            rx,
            buf: Vec::new().into_iter(),
            telemetry: None,
        }
    }

    /// [`ChannelSource::new`] plus telemetry: registers
    /// `{prefix}_busy_permille` (consumer busy fraction) and
    /// `{prefix}_queue_depth`/`_peak` (batches waiting in the channel)
    /// in the global metrics registry.
    pub fn instrumented(
        rx: crossbeam::channel::Receiver<Vec<CaptureRecord>>,
        prefix: &str,
    ) -> ChannelSource {
        let mut source = ChannelSource::new(rx);
        source.telemetry = Some(SourceTelemetry {
            util: obs::Utilization::new(obs::gauge(
                &format!("{prefix}_busy_permille"),
                "analysis consumer busy fraction (permille, windowed)",
            )),
            queue: obs::QueueDepth::register(
                prefix,
                "record batches buffered between generator and ingest",
            ),
            last_refill: None,
        });
        source
    }
}

impl RecordSource for ChannelSource {
    fn next_record(&mut self) -> Result<Option<CaptureRecord>, CaptureError> {
        loop {
            if let Some(rec) = self.buf.next() {
                return Ok(Some(rec));
            }
            if let Some(t) = &mut self.telemetry {
                let now = std::time::Instant::now();
                if let Some(prev) = t.last_refill.take() {
                    t.util.busy(now.duration_since(prev));
                }
                match self.rx.recv() {
                    Ok(batch) => {
                        let refilled = std::time::Instant::now();
                        t.util.idle(refilled.duration_since(now));
                        t.queue.record(self.rx.len());
                        t.last_refill = Some(refilled);
                        self.buf = batch.into_iter();
                    }
                    Err(_) => return Ok(None),
                }
            } else {
                match self.rx.recv() {
                    Ok(batch) => self.buf = batch.into_iter(),
                    Err(_) => return Ok(None),
                }
            }
        }
    }
}

/// Generate + analyze one of the Table 3 datasets with explicit
/// pipeline options.
pub fn run_dataset_with(
    vantage: Vantage,
    year: u16,
    scale: Scale,
    seed: u64,
    opts: &PipelineOpts,
) -> DatasetRun {
    run_spec_with(dataset(vantage, year), scale, seed, opts)
}

/// Generate + analyze an arbitrary dataset spec with explicit pipeline
/// options: streaming (default) or via a kept on-disk capture, 1..N
/// generator shards either way.
pub fn run_spec_with(
    spec: DatasetSpec,
    scale: Scale,
    seed: u64,
    opts: &PipelineOpts,
) -> DatasetRun {
    if let Some(path) = &opts.keep_capture {
        let gen_stats = if opts.fleet {
            crate::experiments::generate_capture_fleet(&spec, scale, seed, path, opts.shard_count())
        } else {
            crate::experiments::generate_capture_sharded(
                &spec,
                scale,
                seed,
                path,
                opts.shard_count(),
            )
        }
        .expect("capture generation succeeds");
        let (analysis, dualstack, ingest_stats) =
            analyze_capture(&spec, scale, seed, path).expect("capture analysis succeeds");
        if let Some(target) = &opts.warehouse {
            crate::store::append_capture(target, &spec, scale, seed, path)
                .expect("warehouse append from kept capture succeeds");
        }
        return DatasetRun {
            id: spec.id(),
            spec,
            analysis,
            dualstack,
            gen_stats,
            ingest_stats,
        };
    }

    let engine = Engine::new(spec.clone(), scale, seed);
    let plan = InternetPlan::build(&plan_config_for(&spec, scale, seed));
    let mapper = plan.mapper;
    let shards = opts.shard_count();
    let jobs = opts.job_count();
    let fleet = opts.fleet;
    let engine_ref = &engine;
    let spec_ref = &spec;
    let mapper_ref = &mapper;
    // Each consumer (the serial loop, or one of N workers) owns a fresh
    // copy of the full analysis state; partials merge losslessly. The
    // warehouse branch rides the same fanout: every consumer gets its
    // own appender and the staged partitions merge with the partials.
    let store_target = opts.warehouse.as_ref();
    let fresh_sink = || {
        FanoutSink::new(
            FanoutSink::new(
                DatasetAnalysis::new(engine_ref.zone().clone()),
                DualStackSink::new(
                    DualStackAnalysis::with_servers(&spec_ref.servers),
                    engine_ref.ptr_db(),
                ),
            ),
            crate::store::StoreSink::new(
                store_target.map(|t| t.store.appender(&t.source, t.config)),
            ),
        )
    };

    let (gen_stats, sink, ingest_stats) = crossbeam::thread::scope(|scope| {
        if jobs == 1 {
            let (tx, rx) = crossbeam::channel::bounded::<Vec<CaptureRecord>>(CHANNEL_DEPTH);
            let generator = scope.spawn(move |_| {
                let mut stage = obs::stage("pipeline.generate");
                let _span = obs::span(format!("generate {}", spec_ref.id()));
                let mut sink = ChannelSink::new(tx);
                let stats = if fleet {
                    engine_ref.generate_fleet(&mut sink, shards)
                } else {
                    engine_ref.generate_sharded(&mut sink, shards)
                };
                if let Ok(s) = &stats {
                    stage.add_items(s.queries + s.responses);
                }
                stats
            });

            let mut stage = obs::stage("pipeline.analyze");
            let _span = obs::span(format!("analyze {}", spec_ref.id()));
            let mut ingest = CaptureIngest::new(
                ChannelSource::instrumented(rx, "pipeline_analyze"),
                Enricher::new(mapper_ref.clone()),
            );
            let mut sink = fresh_sink();
            let mut progress = obs::Progress::new(
                format!("analyze {}", spec_ref.id()),
                Some(engine_ref.scaled_total()),
            );
            for row in ingest.by_ref() {
                note_row_hops(&row);
                sink.push(&row);
                progress.tick(1);
            }
            let ingest_stats = ingest.stats().clone();
            stage.add_items(ingest_stats.rows);
            let gen_stats = generator
                .join()
                .expect("generator thread")
                .expect("streamed generation succeeds");
            (gen_stats, sink, ingest_stats)
        } else {
            // Parallel consumer: whole slices are routed to worker
            // `slot % jobs`; each worker joins and aggregates its own
            // subset (sound because slices are join-self-contained),
            // and the partials merge in worker order below.
            let mut txs = Vec::with_capacity(jobs);
            let mut rxs = Vec::with_capacity(jobs);
            for _ in 0..jobs {
                let (tx, rx) = crossbeam::channel::bounded::<Vec<CaptureRecord>>(SLICE_DEPTH);
                txs.push(tx);
                rxs.push(rx);
            }
            let generator = scope.spawn(move |_| {
                let mut stage = obs::stage("pipeline.generate");
                let _span = obs::span(format!("generate {}", spec_ref.id()));
                let mut sink = SliceRouter::new(txs);
                let stats = if fleet {
                    engine_ref.generate_fleet(&mut sink, shards)
                } else {
                    engine_ref.generate_sharded(&mut sink, shards)
                };
                if let Ok(s) = &stats {
                    stage.add_items(s.queries + s.responses);
                }
                stats
            });

            let mut stage = obs::stage("pipeline.analyze");
            let _span = obs::span(format!("analyze {}", spec_ref.id()));
            let fresh_sink = &fresh_sink;
            let workers: Vec<_> = rxs
                .into_iter()
                .enumerate()
                .map(|(w, rx)| {
                    scope.spawn(move |_| {
                        let mut wstage = obs::stage_owned(format!("pipeline.analyze.worker{w}"));
                        let mut ingest = CaptureIngest::new(
                            ChannelSource::instrumented(rx, &format!("pipeline_analyze_worker{w}")),
                            Enricher::new(mapper_ref.clone()),
                        );
                        let mut sink = fresh_sink();
                        for row in ingest.by_ref() {
                            note_row_hops(&row);
                            sink.push(&row);
                        }
                        let stats = ingest.stats().clone();
                        wstage.add_items(stats.rows);
                        (sink, stats)
                    })
                })
                .collect();
            let gen_stats = generator
                .join()
                .expect("generator thread")
                .expect("streamed generation succeeds");
            let mut parts = workers
                .into_iter()
                .map(|h| h.join().expect("analysis worker"));
            let (mut sink, mut ingest_stats) = parts.next().expect("at least one worker");
            for (partial, partial_stats) in parts {
                sink.merge(partial);
                ingest_stats.merge(&partial_stats);
            }
            stage.add_items(ingest_stats.rows);
            (gen_stats, sink, ingest_stats)
        }
    })
    .expect("pipeline scope join");
    let (inner, store_sink) = sink.into_parts();
    let (analysis, dualstack) = inner.into_parts();
    let dualstack = dualstack.into_inner();
    store_sink
        .finish()
        .expect("warehouse append flushes cleanly");

    warn_on_capture_errors(&spec.id(), &ingest_stats);
    DatasetRun {
        id: spec.id(),
        spec,
        analysis,
        dualstack,
        gen_stats,
        ingest_stats,
    }
}

/// Surface torn/corrupt capture records: a nonzero count means the
/// ingest stream ended early and every downstream table is computed
/// from a partial dataset — loud on stderr, counted for scrapes.
pub fn warn_on_capture_errors(id: &str, stats: &IngestStats) {
    if stats.capture_errors > 0 {
        eprintln!(
            "warning: {id}: {} torn/corrupt capture record(s) cut the ingest stream short; \
             results cover only the intact prefix",
            stats.capture_errors
        );
        obs::counter(
            "pipeline_capture_errors_total",
            "torn/corrupt capture records observed by experiment runs",
        )
        .add(stats.capture_errors);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{run_spec, temp_capture_path};

    /// The tentpole's correctness claim: the in-memory streamed path
    /// and the kept-capture disk path produce identical results.
    #[test]
    fn streamed_matches_disk_roundtrip() {
        let spec = dataset(Vantage::Nz, 2020);
        let streamed = run_spec_with(spec.clone(), Scale::tiny(), 23, &PipelineOpts::default());
        let path = temp_capture_path("pipeline-disk", 23);
        let disk = run_spec_with(
            spec,
            Scale::tiny(),
            23,
            &PipelineOpts {
                keep_capture: Some(path.clone()),
                ..Default::default()
            },
        );
        assert!(path.exists(), "--keep-capture leaves the file behind");
        let _ = std::fs::remove_file(&path);
        assert_eq!(streamed.ingest_stats, disk.ingest_stats);
        assert_eq!(streamed.gen_stats.queries, disk.gen_stats.queries);
        assert_eq!(streamed.analysis.total_queries, disk.analysis.total_queries);
        assert_eq!(streamed.analysis.valid_queries, disk.analysis.valid_queries);
        assert_eq!(streamed.analysis.cloud_share(), disk.analysis.cloud_share());
    }

    /// Sharded streaming equals single-threaded streaming, run to run.
    #[test]
    fn sharded_streaming_matches_single_thread() {
        let spec = dataset(Vantage::Nz, 2019);
        let one = run_spec_with(
            spec.clone(),
            Scale::tiny(),
            31,
            &PipelineOpts::with_shards(1),
        );
        let four = run_spec_with(spec, Scale::tiny(), 31, &PipelineOpts::with_shards(4));
        assert_eq!(one.ingest_stats, four.ingest_stats);
        assert_eq!(one.gen_stats.queries, four.gen_stats.queries);
        assert_eq!(one.gen_stats.per_fleet, four.gen_stats.per_fleet);
        assert_eq!(one.analysis.total_queries, four.analysis.total_queries);
        assert_eq!(one.analysis.valid_queries, four.analysis.valid_queries);
    }

    /// Parallel analysis workers equal the single-threaded consumer:
    /// same rows, same joins, same aggregates, same accounting.
    #[test]
    fn parallel_analysis_matches_single_worker() {
        let spec = dataset(Vantage::Nl, 2020);
        let one = run_spec_with(spec.clone(), Scale::tiny(), 17, &PipelineOpts::with_jobs(1));
        let four = run_spec_with(spec, Scale::tiny(), 17, &PipelineOpts::with_jobs(4));
        assert_eq!(one.ingest_stats, four.ingest_stats);
        assert!(four.ingest_stats.balanced(), "{:?}", four.ingest_stats);
        assert_eq!(one.gen_stats.queries, four.gen_stats.queries);
        assert_eq!(one.analysis.total_queries, four.analysis.total_queries);
        assert_eq!(one.analysis.valid_queries, four.analysis.valid_queries);
        assert_eq!(one.analysis.cloud_share(), four.analysis.cloud_share());
        assert_eq!(
            one.analysis.resolvers.count(),
            four.analysis.resolvers.count()
        );
        assert_eq!(
            one.dualstack.dual_stack_resolvers(),
            four.dualstack.dual_stack_resolvers()
        );
        assert_eq!(one.dualstack.site_count(), four.dualstack.site_count());
    }

    /// Generator shards and analysis workers compose.
    #[test]
    fn shards_and_jobs_compose() {
        let spec = dataset(Vantage::Nz, 2020);
        let serial = run_spec_with(spec.clone(), Scale::tiny(), 9, &PipelineOpts::default());
        let both = run_spec_with(
            spec,
            Scale::tiny(),
            9,
            &PipelineOpts {
                shards: 3,
                jobs: 3,
                ..Default::default()
            },
        );
        assert_eq!(serial.ingest_stats, both.ingest_stats);
        assert_eq!(serial.analysis.total_queries, both.analysis.total_queries);
        assert_eq!(serial.analysis.cloud_share(), both.analysis.cloud_share());
    }

    /// The fleet generator streams through the same ingest unchanged:
    /// accounting balances, rows appear, and parallel analysis workers
    /// agree with the serial consumer.
    #[test]
    fn fleet_path_flows_through_ingest() {
        let spec = dataset(Vantage::Nl, 2020);
        let one = run_spec_with(spec.clone(), Scale::tiny(), 13, &PipelineOpts::with_fleet());
        assert!(one.ingest_stats.rows > 0, "fleet produced no rows");
        assert_eq!(one.ingest_stats.capture_errors, 0);
        assert!(one.ingest_stats.balanced(), "{:?}", one.ingest_stats);
        assert_eq!(one.gen_stats.queries, one.ingest_stats.rows);
        let four = run_spec_with(
            spec,
            Scale::tiny(),
            13,
            &PipelineOpts {
                fleet: true,
                shards: 2,
                jobs: 3,
                ..Default::default()
            },
        );
        assert_eq!(one.ingest_stats, four.ingest_stats);
        assert_eq!(one.analysis.total_queries, four.analysis.total_queries);
        assert_eq!(one.analysis.cloud_share(), four.analysis.cloud_share());
    }

    /// Fleet streaming equals the fleet kept-capture disk round trip.
    #[test]
    fn fleet_streamed_matches_disk_roundtrip() {
        let spec = dataset(Vantage::Nz, 2019);
        let streamed = run_spec_with(spec.clone(), Scale::tiny(), 5, &PipelineOpts::with_fleet());
        let path = temp_capture_path("pipeline-fleet-disk", 5);
        let disk = run_spec_with(
            spec,
            Scale::tiny(),
            5,
            &PipelineOpts {
                fleet: true,
                keep_capture: Some(path.clone()),
                ..Default::default()
            },
        );
        assert!(path.exists());
        let _ = std::fs::remove_file(&path);
        assert_eq!(streamed.ingest_stats, disk.ingest_stats);
        assert_eq!(streamed.gen_stats.queries, disk.gen_stats.queries);
        assert_eq!(streamed.analysis.total_queries, disk.analysis.total_queries);
        assert_eq!(streamed.analysis.cloud_share(), disk.analysis.cloud_share());
    }

    /// The default `run_spec` is the streaming path and its accounting
    /// balances with zero capture errors.
    #[test]
    fn default_run_is_clean() {
        let run = run_spec(dataset(Vantage::Nl, 2018), Scale::tiny(), 2);
        assert_eq!(run.ingest_stats.capture_errors, 0);
        assert!(run.ingest_stats.balanced(), "{:?}", run.ingest_stats);
        assert_eq!(run.gen_stats.queries, run.ingest_stats.rows);
    }
}

//! Centralization metrics: Table 3, Figure 1 and Tables 4/7 views.

use crate::analysis::DatasetAnalysis;
use asdb::cloud::{Provider, ALL_PROVIDERS};
use serde::Serialize;

/// One Table 3 row: dataset totals.
#[derive(Debug, Clone, Serialize, PartialEq)]
pub struct DatasetSummary {
    /// Dataset identifier (`nl-w2020`, ...).
    pub id: String,
    /// All queries.
    pub queries_total: u64,
    /// NOERROR-answered queries.
    pub queries_valid: u64,
    /// Distinct resolvers.
    pub resolvers: u64,
    /// Distinct ASes.
    pub ases: u64,
}

/// Figure 1: per-provider share for one dataset.
#[derive(Debug, Clone, Serialize)]
pub struct CloudShare {
    /// Dataset identifier.
    pub id: String,
    /// `(provider name, share of all queries)` in paper order.
    pub per_provider: Vec<(String, f64)>,
    /// Sum over the five providers.
    pub total: f64,
}

/// Tables 4/7: the Google Public DNS split.
#[derive(Debug, Clone, Serialize)]
pub struct GoogleSplit {
    /// Dataset identifier.
    pub id: String,
    /// All Google queries.
    pub total_queries: u64,
    /// Queries from the advertised Public DNS ranges.
    pub public_queries: u64,
    /// Queries from the rest of the cloud.
    pub rest_queries: u64,
    /// Distinct Google resolvers.
    pub total_resolvers: u64,
    /// Distinct Public DNS resolvers.
    pub public_resolvers: u64,
    /// Public share of queries (paper: 86.5% / 88.4% in w2020).
    pub public_query_ratio: f64,
    /// Public share of resolvers (paper: 15.6% / 18.7% in w2020).
    pub public_resolver_ratio: f64,
}

/// Figure 2: the per-provider query-type mix.
#[derive(Debug, Clone, Serialize)]
pub struct QtypeMix {
    /// Dataset identifier.
    pub id: String,
    /// Provider name ("Other" for the rest of the Internet).
    pub provider: String,
    /// `(qtype mnemonic, share)` sorted by share, descending.
    pub shares: Vec<(String, f64)>,
}

/// Build the Table 3 row.
pub fn dataset_summary(id: &str, a: &DatasetAnalysis) -> DatasetSummary {
    DatasetSummary {
        id: id.to_string(),
        queries_total: a.total_queries,
        queries_valid: a.valid_queries,
        resolvers: a.resolvers.count(),
        ases: a.ases.count(),
    }
}

/// Build the Figure 1 bars.
pub fn cloud_share(id: &str, a: &DatasetAnalysis) -> CloudShare {
    let per_provider: Vec<(String, f64)> = ALL_PROVIDERS
        .iter()
        .map(|&p| (p.name().to_string(), a.provider_share(p)))
        .collect();
    CloudShare {
        id: id.to_string(),
        total: per_provider.iter().map(|(_, s)| s).sum(),
        per_provider,
    }
}

/// Build the Table 4/7 split.
pub fn google_split(id: &str, a: &DatasetAnalysis) -> GoogleSplit {
    let g = &a.google_public;
    GoogleSplit {
        id: id.to_string(),
        total_queries: g.public_queries + g.rest_queries,
        public_queries: g.public_queries,
        rest_queries: g.rest_queries,
        total_resolvers: g.public_resolvers.count() + g.rest_resolvers.count(),
        public_resolvers: g.public_resolvers.count(),
        public_query_ratio: g.public_query_ratio(),
        public_resolver_ratio: g.public_resolver_ratio(),
    }
}

/// Build the Figure 2 panel for one provider.
pub fn qtype_mix(id: &str, a: &DatasetAnalysis, provider: Option<Provider>) -> QtypeMix {
    let agg = a.provider(provider);
    let mut shares: Vec<(String, f64)> = agg
        .qtype
        .iter()
        .map(|(t, c)| (t.mnemonic(), c as f64 / agg.queries.max(1) as f64))
        .collect();
    shares.sort_by(|x, y| y.1.partial_cmp(&x.1).expect("no NaN").then(x.0.cmp(&y.0)));
    QtypeMix {
        id: id.to_string(),
        provider: provider
            .map(|p| p.name().to_string())
            .unwrap_or_else(|| "Other".into()),
        shares,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_wire::types::{RType, Rcode};
    use entrada::schema::QueryRow;
    use netbase::flow::Transport;
    use netbase::time::SimTime;
    use zonedb::zone::ZoneModel;

    fn sample_analysis() -> DatasetAnalysis {
        let mut a = DatasetAnalysis::new(ZoneModel::nl(100));
        let base = QueryRow {
            timestamp: SimTime::from_date(2020, 4, 7),
            src: "8.8.8.8".parse().unwrap(),
            src_port: 1,
            server: "194.0.28.53".parse().unwrap(),
            transport: Transport::Udp,
            qname: "example.nl.".parse().unwrap(),
            qtype: RType::A,
            edns_size: Some(1232),
            do_bit: false,
            rcode: Some(Rcode::NoError),
            response_size: Some(100),
            response_truncated: false,
            tcp_rtt_us: 0,
            asn: Some(asdb::registry::Asn(15169)),
            provider: Some(asdb::cloud::Provider::Google),
            public_dns: true,
        };
        for i in 0..6 {
            let mut r = base.clone();
            if i >= 5 {
                r.src = "74.125.0.9".parse().unwrap();
                r.public_dns = false;
                r.qtype = RType::Ns;
            }
            a.push(&r);
        }
        let mut other = base.clone();
        other.src = "192.0.9.1".parse().unwrap();
        other.provider = None;
        other.public_dns = false;
        other.asn = Some(asdb::registry::Asn(64512));
        other.rcode = Some(Rcode::NxDomain);
        for _ in 0..4 {
            a.push(&other);
        }
        a
    }

    #[test]
    fn summary_counts() {
        let a = sample_analysis();
        let s = dataset_summary("test", &a);
        assert_eq!(s.queries_total, 10);
        assert_eq!(s.queries_valid, 6);
        assert_eq!(s.resolvers, 3);
        assert_eq!(s.ases, 2);
    }

    #[test]
    fn figure1_shares() {
        let a = sample_analysis();
        let f = cloud_share("test", &a);
        assert_eq!(f.per_provider.len(), 5);
        assert!((f.total - 0.6).abs() < 1e-12);
        let google = f.per_provider.iter().find(|(n, _)| n == "Google").unwrap();
        assert!((google.1 - 0.6).abs() < 1e-12);
    }

    #[test]
    fn table4_split() {
        let a = sample_analysis();
        let g = google_split("test", &a);
        assert_eq!(g.total_queries, 6);
        assert_eq!(g.public_queries, 5);
        assert!((g.public_query_ratio - 5.0 / 6.0).abs() < 1e-12);
        assert_eq!(g.total_resolvers, 2);
        assert!((g.public_resolver_ratio - 0.5).abs() < 1e-12);
    }

    #[test]
    fn figure2_mix_sorted() {
        let a = sample_analysis();
        let m = qtype_mix("test", &a, Some(asdb::cloud::Provider::Google));
        assert_eq!(m.shares[0].0, "A");
        assert!((m.shares[0].1 - 5.0 / 6.0).abs() < 1e-12);
        assert_eq!(m.shares[1].0, "NS");
        let o = qtype_mix("test", &a, None);
        assert_eq!(o.provider, "Other");
        assert_eq!(o.shares[0].0, "A");
    }
}

//! Concentration indices over the AS-level traffic distribution.
//!
//! The paper reports the five CPs' combined share (Figure 1); related
//! work (Allman, IMC'18; the ISOC consolidation report it cites)
//! quantifies centralization with standard market-concentration
//! indices. This module adds them over the same per-AS query volumes:
//!
//! - **CR-k**: combined share of the k heaviest ASes.
//! - **HHI** (Herfindahl–Hirschman): Σ sᵢ², the antitrust standard
//!   (≤ 0.01 competitive, ≥ 0.25 highly concentrated).
//! - **Gini** coefficient of the per-AS volume distribution.

use crate::analysis::DatasetAnalysis;
use serde::Serialize;

/// Concentration summary for one dataset.
#[derive(Debug, Clone, Serialize)]
pub struct ConcentrationReport {
    /// Dataset identifier.
    pub id: String,
    /// Number of ASes with attributed traffic.
    pub ases: usize,
    /// Share of the single heaviest AS.
    pub cr1: f64,
    /// Share of the 10 heaviest ASes.
    pub cr10: f64,
    /// Share of the 100 heaviest ASes.
    pub cr100: f64,
    /// Herfindahl–Hirschman index in [0, 1].
    pub hhi: f64,
    /// Gini coefficient in [0, 1).
    pub gini: f64,
    /// Combined share of the paper's 20 cloud-provider ASes.
    pub cloud_share: f64,
}

/// Compute the indices from a dataset analysis.
pub fn concentration(id: &str, a: &DatasetAnalysis) -> ConcentrationReport {
    let mut stage = obs::stage("analysis.concentration");
    stage.add_items(a.total_queries);
    let mut volumes: Vec<u64> = a.as_volume.iter().map(|(_, c)| c).collect();
    volumes.sort_unstable_by(|x, y| y.cmp(x));
    let total: u64 = volumes.iter().sum();
    let share_of_top = |k: usize| -> f64 {
        if total == 0 {
            0.0
        } else {
            volumes.iter().take(k).sum::<u64>() as f64 / total as f64
        }
    };
    ConcentrationReport {
        id: id.to_string(),
        ases: volumes.len(),
        cr1: share_of_top(1),
        cr10: share_of_top(10),
        cr100: share_of_top(100),
        hhi: hhi(&volumes, total),
        gini: gini(&volumes, total),
        cloud_share: a.cloud_share(),
    }
}

fn hhi(volumes: &[u64], total: u64) -> f64 {
    if total == 0 {
        return 0.0;
    }
    volumes
        .iter()
        .map(|&v| {
            let s = v as f64 / total as f64;
            s * s
        })
        .sum()
}

/// Gini over a descending-sorted volume vector.
fn gini(desc: &[u64], total: u64) -> f64 {
    let n = desc.len();
    if n == 0 || total == 0 {
        return 0.0;
    }
    // G = (n + 1 - 2 * Σ cumshare_i / n) / n with ascending order;
    // compute from the descending vector by reversing the rank weights.
    let mut weighted = 0f64;
    for (rank_desc, &v) in desc.iter().enumerate() {
        let rank_asc = n - rank_desc; // 1-based ascending rank
        weighted += rank_asc as f64 * v as f64;
    }
    let mean = total as f64 / n as f64;
    (2.0 * weighted) / (n as f64 * n as f64 * mean) - (n as f64 + 1.0) / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use asdb::registry::Asn;
    use dns_wire::types::{RType, Rcode};
    use entrada::schema::QueryRow;
    use netbase::flow::Transport;
    use netbase::time::SimTime;
    use zonedb::zone::ZoneModel;

    fn push(a: &mut DatasetAnalysis, asn: u32, count: usize) {
        for _ in 0..count {
            let row = QueryRow {
                timestamp: SimTime::from_date(2020, 4, 7),
                src: "192.0.9.1".parse().unwrap(),
                src_port: 1,
                server: "194.0.28.53".parse().unwrap(),
                transport: Transport::Udp,
                qname: "example.nl.".parse().unwrap(),
                qtype: RType::A,
                edns_size: None,
                do_bit: false,
                rcode: Some(Rcode::NoError),
                response_size: Some(64),
                response_truncated: false,
                tcp_rtt_us: 0,
                asn: Some(Asn(asn)),
                provider: None,
                public_dns: false,
            };
            a.push(&row);
        }
    }

    #[test]
    fn uniform_distribution_is_unconcentrated() {
        let mut a = DatasetAnalysis::new(ZoneModel::nl(10));
        for asn in 1..=100 {
            push(&mut a, asn, 10);
        }
        let r = concentration("t", &a);
        assert_eq!(r.ases, 100);
        assert!((r.cr1 - 0.01).abs() < 1e-9);
        assert!((r.cr10 - 0.10).abs() < 1e-9);
        assert!((r.cr100 - 1.0).abs() < 1e-9);
        assert!(
            (r.hhi - 0.01).abs() < 1e-9,
            "HHI of 100 equal firms = 1/100"
        );
        assert!(r.gini.abs() < 1e-9, "gini {}", r.gini);
    }

    #[test]
    fn monopoly_is_maximally_concentrated() {
        let mut a = DatasetAnalysis::new(ZoneModel::nl(10));
        push(&mut a, 15169, 1000);
        let r = concentration("t", &a);
        assert!((r.cr1 - 1.0).abs() < 1e-9);
        assert!((r.hhi - 1.0).abs() < 1e-9);
        assert_eq!(r.gini, 0.0, "one AS: no inequality *among* ASes");
    }

    #[test]
    fn skew_raises_all_indices() {
        let mut flat = DatasetAnalysis::new(ZoneModel::nl(10));
        for asn in 1..=50 {
            push(&mut flat, asn, 10);
        }
        let mut skewed = DatasetAnalysis::new(ZoneModel::nl(10));
        for asn in 1..=50 {
            push(&mut skewed, asn, if asn <= 2 { 200 } else { 2 });
        }
        let f = concentration("flat", &flat);
        let s = concentration("skewed", &skewed);
        assert!(s.cr1 > f.cr1);
        assert!(s.cr10 > f.cr10);
        assert!(s.hhi > f.hhi);
        assert!(s.gini > f.gini + 0.3, "gini {} vs {}", s.gini, f.gini);
    }

    #[test]
    fn empty_analysis_is_zero() {
        let a = DatasetAnalysis::new(ZoneModel::nl(10));
        let r = concentration("t", &a);
        assert_eq!(r.ases, 0);
        assert_eq!(r.hhi, 0.0);
        assert_eq!(r.gini, 0.0);
    }

    #[test]
    fn gini_bounds() {
        let mut a = DatasetAnalysis::new(ZoneModel::nl(10));
        for asn in 1..=30 {
            push(&mut a, asn, asn as usize * 3);
        }
        let r = concentration("t", &a);
        assert!(r.gini > 0.0 && r.gini < 1.0, "gini {}", r.gini);
    }
}

//! QNAME-minimization analysis: the Figure 3 monthly qtype series and
//! the change-point detector that pinpoints *when* a provider deployed
//! Q-min (the paper found Dec 2019 for Google and confirmed it with
//! Google's operators).

use dns_wire::types::RType;
use entrada::agg::Counter;
use serde::Serialize;

/// One month of a provider's query stream, summarized.
#[derive(Debug, Clone, Serialize)]
pub struct MonthlySample {
    /// Calendar year.
    pub year: i32,
    /// Calendar month (1-12).
    pub month: u32,
    /// Queries that month.
    pub total: u64,
    /// `(qtype mnemonic, count)` for the stacked Figure 3 bars.
    pub qtype_counts: Vec<(String, u64)>,
    /// NS share of the month's queries.
    pub ns_share: f64,
    /// Among NS queries, the share in minimized form (one label below
    /// the zone cut) — the paper's manual qname verification, automated.
    pub minimized_ns_share: f64,
    /// A+AAAA share (rises during the Feb-2020 `.nz` incident).
    pub address_share: f64,
}

impl MonthlySample {
    /// Build from a month's qtype histogram plus the minimized count.
    pub fn from_counters(
        year: i32,
        month: u32,
        qtypes: &Counter<RType>,
        minimized_ns: u64,
    ) -> MonthlySample {
        let total = qtypes.total();
        let ns = qtypes.get(&RType::Ns);
        let a = qtypes.get(&RType::A) + qtypes.get(&RType::Aaaa);
        let mut qtype_counts: Vec<(String, u64)> =
            qtypes.iter().map(|(t, c)| (t.mnemonic(), c)).collect();
        qtype_counts.sort_by(|x, y| y.1.cmp(&x.1).then(x.0.cmp(&y.0)));
        MonthlySample {
            year,
            month,
            total,
            qtype_counts,
            ns_share: if total == 0 {
                0.0
            } else {
                ns as f64 / total as f64
            },
            minimized_ns_share: if ns == 0 {
                0.0
            } else {
                minimized_ns as f64 / ns as f64
            },
            address_share: if total == 0 {
                0.0
            } else {
                a as f64 / total as f64
            },
        }
    }
}

/// A detected deployment event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct ChangePoint {
    /// Year of the first changed month.
    pub year: i32,
    /// Month of the first changed month.
    pub month: u32,
}

/// Simple baseline detector: the first month whose NS share exceeds the
/// running pre-change mean by `min_jump`, provided minimized qnames
/// dominate the post-change NS stream.
pub fn detect_threshold(series: &[MonthlySample], min_jump: f64) -> Option<ChangePoint> {
    if series.len() < 2 {
        return None;
    }
    let mut baseline_sum = series[0].ns_share;
    let mut baseline_n = 1.0;
    for sample in &series[1..] {
        let baseline = baseline_sum / baseline_n;
        if sample.ns_share > baseline + min_jump && sample.minimized_ns_share > 0.5 {
            return Some(ChangePoint {
                year: sample.year,
                month: sample.month,
            });
        }
        baseline_sum += sample.ns_share;
        baseline_n += 1.0;
    }
    None
}

/// CUSUM detector over the NS-share series: robust to noise and to the
/// incident months a threshold detector can trip on. `drift` absorbs
/// slow growth; `alarm` is the decision threshold. The reported
/// change-point is the month the cumulative sum started rising.
pub fn detect_cusum(series: &[MonthlySample], drift: f64, alarm: f64) -> Option<ChangePoint> {
    let mut stage = obs::stage("analysis.qmin");
    stage.add_items(series.len() as u64);
    if series.len() < 4 {
        return detect_threshold(series, 0.15);
    }
    // baseline from the first three months (pre-deployment by
    // construction of any 18-month window that contains a deployment)
    let baseline: f64 = series[..3].iter().map(|s| s.ns_share).sum::<f64>() / 3.0;
    let mut s = 0.0f64;
    let mut run_start: Option<usize> = None;
    for (i, sample) in series.iter().enumerate() {
        let dev = sample.ns_share - baseline - drift;
        let next = (s + dev).max(0.0);
        if next > 0.0 && s == 0.0 {
            run_start = Some(i);
        }
        if next == 0.0 {
            run_start = None;
        }
        s = next;
        if s > alarm {
            let at = run_start.unwrap_or(i);
            // require the qname evidence, as the paper did
            let evidence = series[at..]
                .iter()
                .take(3)
                .any(|m| m.minimized_ns_share > 0.5);
            if evidence {
                return Some(ChangePoint {
                    year: series[at].year,
                    month: series[at].month,
                });
            }
            s = 0.0;
            run_start = None;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(year: i32, month: u32, ns_share: f64, minimized: f64) -> MonthlySample {
        MonthlySample {
            year,
            month,
            total: 1000,
            qtype_counts: vec![],
            ns_share,
            minimized_ns_share: minimized,
            address_share: 1.0 - ns_share,
        }
    }

    /// An 18-month series shaped like Figure 3: flat ~4% NS until
    /// Dec 2019, then ~45%.
    fn google_like() -> Vec<MonthlySample> {
        let mut out = Vec::new();
        let (mut y, mut m) = (2018, 11);
        loop {
            let deployed = (y, m) >= (2019, 12);
            let jitter = ((m * 7 + y as u32) % 5) as f64 * 0.004;
            out.push(sample(
                y,
                m,
                if deployed {
                    0.45 + jitter
                } else {
                    0.04 + jitter
                },
                if deployed { 0.93 } else { 0.35 },
            ));
            if (y, m) == (2020, 4) {
                break;
            }
            m += 1;
            if m > 12 {
                m = 1;
                y += 1;
            }
        }
        out
    }

    #[test]
    fn both_detectors_find_december_2019() {
        let series = google_like();
        assert_eq!(
            detect_threshold(&series, 0.15),
            Some(ChangePoint {
                year: 2019,
                month: 12
            })
        );
        assert_eq!(
            detect_cusum(&series, 0.05, 0.3),
            Some(ChangePoint {
                year: 2019,
                month: 12
            })
        );
    }

    #[test]
    fn flat_series_has_no_changepoint() {
        let series: Vec<MonthlySample> = (1..=12)
            .map(|m| sample(2019, m, 0.04 + (m as f64) * 0.001, 0.3))
            .collect();
        assert_eq!(detect_threshold(&series, 0.15), None);
        assert_eq!(detect_cusum(&series, 0.05, 0.3), None);
    }

    #[test]
    fn ns_jump_without_minimized_names_is_rejected() {
        // e.g. a monitoring burst of apex-NS queries, not Q-min
        let mut series: Vec<MonthlySample> = (1..=6).map(|m| sample(2019, m, 0.04, 0.3)).collect();
        for m in 7..=12 {
            series.push(sample(2019, m, 0.5, 0.2)); // NS up, not minimized
        }
        assert_eq!(detect_threshold(&series, 0.15), None);
        assert_eq!(detect_cusum(&series, 0.05, 0.3), None);
    }

    #[test]
    fn cusum_tolerates_incident_dip() {
        // Figure 3b: Feb 2020 incident floods A/AAAA, diluting NS share
        // for one month after deployment; detection must survive it.
        let mut series = google_like();
        let feb = series
            .iter_mut()
            .find(|s| (s.year, s.month) == (2020, 2))
            .unwrap();
        feb.ns_share = 0.18;
        feb.address_share = 0.78;
        assert_eq!(
            detect_cusum(&series, 0.05, 0.3),
            Some(ChangePoint {
                year: 2019,
                month: 12
            })
        );
    }

    #[test]
    fn short_series_handled() {
        assert_eq!(detect_threshold(&[], 0.1), None);
        assert_eq!(detect_cusum(&[], 0.05, 0.3), None);
        let one = vec![sample(2019, 1, 0.5, 0.9)];
        assert_eq!(detect_threshold(&one, 0.1), None);
    }

    #[test]
    fn monthly_sample_from_counters() {
        let mut c = Counter::new();
        c.add(RType::A, 40);
        c.add(RType::Aaaa, 10);
        c.add(RType::Ns, 50);
        let s = MonthlySample::from_counters(2019, 12, &c, 45);
        assert_eq!(s.total, 100);
        assert!((s.ns_share - 0.5).abs() < 1e-12);
        assert!((s.minimized_ns_share - 0.9).abs() < 1e-12);
        assert!((s.address_share - 0.5).abs() < 1e-12);
        assert_eq!(s.qtype_counts[0].0, "NS");
    }
}

//! `dnscentral-core`: the DNS-centralization analyses of *"Clouding up
//! the Internet: how centralized is DNS traffic becoming?"* (IMC 2020).
//!
//! Everything here consumes the enriched [`entrada::QueryRow`] stream
//! and produces the paper's tables and figures:
//!
//! | Module | Reproduces |
//! |---|---|
//! | [`analysis`] | the single-pass aggregation feeding everything below |
//! | [`metrics`] | Table 3 (datasets), Figure 1 (cloud share), Tables 4/7 (Google split) |
//! | [`qmin`] | Figure 3 (monthly series) + the Q-min change-point detector |
//! | [`junk`] | Figure 4 (junk ratio per provider) and the §3 junk overview |
//! | [`transport`] | Table 5 (IPv4/IPv6, UDP/TCP) and Table 6 (resolver families) |
//! | [`dualstack`] | Figures 5/8 (Facebook sites: PTR join, RTT medians, family mix) |
//! | [`ednssize`] | Figure 6 (EDNS(0) size CDF) and §4.4 truncation rates |
//! | [`rootstats`] | the RSSAC002-style root junk cross-check of §3 |
//! | [`report`] | text/JSON rendering of every table and figure |
//! | [`experiments`] | end-to-end experiment runners (generate → ingest → analyze) |
//! | [`pipeline`] | the fused, sharded streaming pipeline behind the runners |
//! | [`sink`] | the mergeable [`sink::RowSink`] trait every consumer implements |
//! | [`suite`] | the bounded multi-dataset scheduler behind `--jobs` |
//! | [`store`] | the warehouse bridge: persistent ingest + scan-based reports |

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analysis;
pub mod concentration;
pub mod dualstack;
pub mod ednssize;
pub mod experiments;
pub mod junk;
pub mod metrics;
pub mod paper;
pub mod pipeline;
pub mod qmin;
pub mod report;
pub mod rootstats;
pub mod sink;
pub mod store;
pub mod suite;
pub mod transport;

pub use analysis::{DatasetAnalysis, ProviderAgg};
pub use experiments::{run_dataset, run_monthly_series, DatasetRun};
pub use pipeline::{run_dataset_with, run_spec_with, PipelineOpts};
pub use sink::{FanoutSink, RowSink};
pub use suite::{run_suite, run_tasks};

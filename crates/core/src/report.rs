//! Text rendering of every table and figure the paper reports.
//!
//! Each `render_*` function produces a plain-text block shaped like the
//! paper's corresponding exhibit, so the CLI's `report` subcommand and
//! EXPERIMENTS.md can be regenerated mechanically.

use crate::analysis::DatasetAnalysis;
use crate::dualstack::SiteReport;
use crate::ednssize::EdnsCdfReport;
use crate::junk::JunkReport;
use crate::metrics::{CloudShare, DatasetSummary, GoogleSplit, QtypeMix};
use crate::qmin::{ChangePoint, MonthlySample};
use crate::transport::{ResolverFamilyRow, TransportReport};
use asdb::cloud::ALL_PROVIDERS;

/// A minimal fixed-width text table.
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Start a table with column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                out.push_str(&format!("{:<w$}", cell, w = widths[i]));
                if i + 1 < cols {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        };
        line(&self.header, &mut out);
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            line(row, &mut out);
        }
        out
    }
}

fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

fn frac2(x: f64) -> String {
    format!("{x:.2}")
}

/// Table 1: the providers and their ASes (static ground truth).
pub fn render_table1() -> String {
    let mut t = TextTable::new(vec!["Company", "ASes", "Public DNS?"]);
    for p in ALL_PROVIDERS {
        let asns = p
            .asns()
            .iter()
            .map(|a| a.0.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        t.row(vec![
            p.name().to_string(),
            asns,
            if p.runs_public_dns() {
                "Yes".into()
            } else {
                "No".into()
            },
        ]);
    }
    format!(
        "Table 1: Cloud/content providers and their ASes\n{}",
        t.render()
    )
}

/// Table 2: the analyzed authoritative servers and zone sizes, from
/// the scenario configuration.
pub fn render_table2() -> String {
    use simnet::profile::Vantage;
    use simnet::scenario::{dataset, ZoneSpec};
    let mut t = TextTable::new(vec!["Week", "Vantage", "Analyzed NSes", "Zone size"]);
    for vantage in [Vantage::Nl, Vantage::Nz] {
        for year in [2018u16, 2019, 2020] {
            let spec = dataset(vantage, year);
            let size = match spec.zone {
                ZoneSpec::Nl { slds } => format!("{:.1}M", slds as f64 / 1e6),
                ZoneSpec::Nz { slds, thirds } => {
                    format!("{}K", (slds + thirds) / 1000)
                }
                ZoneSpec::Root { tlds } => format!("{tlds} TLDs"),
            };
            t.row(vec![
                format!("w{year}: {}", spec.start.civil_date()),
                vantage.label().to_string(),
                spec.servers.len().to_string(),
                size,
            ]);
        }
    }
    format!(
        "Table 2: analyzed authoritative servers and zones\n{}",
        t.render()
    )
}

/// Table 3: the dataset inventory.
pub fn render_table3(summaries: &[DatasetSummary]) -> String {
    let mut t = TextTable::new(vec![
        "Dataset",
        "Queries(total)",
        "Queries(valid)",
        "Resolvers",
        "ASes",
    ]);
    for s in summaries {
        t.row(vec![
            s.id.clone(),
            s.queries_total.to_string(),
            s.queries_valid.to_string(),
            s.resolvers.to_string(),
            s.ases.to_string(),
        ]);
    }
    format!("Table 3: Evaluated datasets (scaled)\n{}", t.render())
}

/// Figure 1: cloud query share per dataset.
pub fn render_fig1(shares: &[CloudShare]) -> String {
    let mut t = TextTable::new(vec![
        "Dataset",
        "Google",
        "Amazon",
        "Microsoft",
        "Facebook",
        "Cloudflare",
        "All CPs",
    ]);
    for s in shares {
        let mut cells = vec![s.id.clone()];
        for (_, share) in &s.per_provider {
            cells.push(pct(*share));
        }
        cells.push(pct(s.total));
        t.row(cells);
    }
    format!("Figure 1: Clouds query ratio per vantage\n{}", t.render())
}

/// Tables 4/7: the Google Public DNS split.
pub fn render_table4(splits: &[GoogleSplit]) -> String {
    let mut t = TextTable::new(vec![
        "Dataset",
        "Google queries",
        "Public DNS",
        "Rest",
        "Ratio pub (q)",
        "Resolvers",
        "Pub resolvers",
        "Ratio pub (r)",
    ]);
    for g in splits {
        t.row(vec![
            g.id.clone(),
            g.total_queries.to_string(),
            g.public_queries.to_string(),
            g.rest_queries.to_string(),
            pct(g.public_query_ratio),
            g.total_resolvers.to_string(),
            g.public_resolvers.to_string(),
            pct(g.public_resolver_ratio),
        ]);
    }
    format!(
        "Table 4/7: Queries from Google, Public DNS vs rest\n{}",
        t.render()
    )
}

/// Figure 2: per-provider qtype mixes (top types).
pub fn render_fig2(mixes: &[QtypeMix]) -> String {
    let mut out = String::from("Figure 2: Resource records per cloud provider\n");
    for m in mixes {
        out.push_str(&format!("[{} @ {}] ", m.provider, m.id));
        let top: Vec<String> = m
            .shares
            .iter()
            .take(6)
            .map(|(t, s)| format!("{t}={}", pct(*s)))
            .collect();
        out.push_str(&top.join("  "));
        out.push('\n');
    }
    out
}

/// Figure 3: the monthly Google series with detection verdicts.
pub fn render_fig3(label: &str, series: &[MonthlySample], detected: Option<ChangePoint>) -> String {
    let mut t = TextTable::new(vec![
        "Month",
        "Queries",
        "NS share",
        "A+AAAA share",
        "NS minimized",
    ]);
    for s in series {
        t.row(vec![
            format!("{}-{:02}", s.year, s.month),
            s.total.to_string(),
            pct(s.ns_share),
            pct(s.address_share),
            pct(s.minimized_ns_share),
        ]);
    }
    let verdict = match detected {
        Some(cp) => format!("Q-min change-point detected: {}-{:02}", cp.year, cp.month),
        None => "No Q-min change-point detected".to_string(),
    };
    format!(
        "Figure 3: Google monthly queries to {label}\n{}{verdict}\n",
        t.render()
    )
}

/// Figure 4: junk ratios.
pub fn render_fig4(reports: &[JunkReport]) -> String {
    let mut t = TextTable::new(vec![
        "Dataset",
        "Overall",
        "Google",
        "Amazon",
        "Microsoft",
        "Facebook",
        "Cloudflare",
        "Other",
    ]);
    for r in reports {
        let mut cells = vec![r.id.clone(), pct(r.overall)];
        for (_, ratio) in &r.per_provider {
            cells.push(pct(*ratio));
        }
        cells.push(pct(r.other));
        t.row(cells);
    }
    format!("Figure 4: Clouds' DNS junk ratio\n{}", t.render())
}

/// Table 5: transport/family distribution.
pub fn render_table5(reports: &[TransportReport]) -> String {
    let mut t = TextTable::new(vec!["Dataset", "Provider", "IPv4", "IPv6", "UDP", "TCP"]);
    for rep in reports {
        for row in &rep.rows {
            t.row(vec![
                rep.id.clone(),
                row.provider.clone(),
                frac2(row.ipv4),
                frac2(row.ipv6),
                frac2(row.udp),
                frac2(row.tcp),
            ]);
        }
    }
    format!("Table 5: Query distribution per CP\n{}", t.render())
}

/// Table 6: Amazon/Microsoft resolver families.
pub fn render_table6(rows: &[(String, ResolverFamilyRow)]) -> String {
    let mut t = TextTable::new(vec![
        "Dataset",
        "Provider",
        "Resolvers",
        "IPv4",
        "IPv6",
        "IPv6 share",
        "IPv6 traffic",
    ]);
    for (id, r) in rows {
        t.row(vec![
            id.clone(),
            r.provider.clone(),
            r.total.to_string(),
            r.v4.to_string(),
            r.v6.to_string(),
            pct(r.v6_share),
            pct(r.v6_traffic_share),
        ]);
    }
    format!(
        "Table 6: Resolver populations by IP version\n{}",
        t.render()
    )
}

/// Figures 5/8: Facebook sites against one server.
pub fn render_fig5(server_label: &str, sites: &[SiteReport]) -> String {
    let mut t = TextTable::new(vec![
        "Loc",
        "Site",
        "IPv4 q",
        "IPv6 q",
        "IPv6 ratio",
        "med RTT v4 (ms)",
        "med RTT v6 (ms)",
    ]);
    for s in sites {
        let fmt_rtt = |r: Option<u64>| match r {
            Some(us) => format!("{:.1}", us as f64 / 1000.0),
            None => "-".to_string(),
        };
        t.row(vec![
            s.rank.to_string(),
            s.site.clone(),
            s.queries_v4.to_string(),
            s.queries_v6.to_string(),
            pct(s.v6_ratio),
            fmt_rtt(s.median_rtt_v4_us),
            fmt_rtt(s.median_rtt_v6_us),
        ]);
    }
    format!(
        "Figure 5/8: Facebook sites vs {server_label}\n{}",
        t.render()
    )
}

/// Figure 6: EDNS size CDFs + truncation.
pub fn render_fig6(reports: &[EdnsCdfReport]) -> String {
    let mut t = TextTable::new(vec![
        "Provider",
        "<=512",
        "<=1232",
        "<=1400",
        "<=4096",
        "Truncated UDP",
        "Med. resp (B)",
    ]);
    for r in reports {
        let at = |x: u64| pct(r.fraction_at_most(x));
        t.row(vec![
            r.provider.clone(),
            at(512),
            at(1232),
            at(1400),
            at(4096),
            format!("{:.2}%", r.truncation_ratio * 100.0),
            r.median_response_size
                .map(|v| v.to_string())
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    format!(
        "Figure 6: CDF of EDNS(0) UDP size + truncation\n{}",
        t.render()
    )
}

/// Every per-dataset exhibit as one text block: the `dataset`
/// subcommand's output, and the per-source body of warehouse-backed
/// `report --warehouse` — both paths render through here so they are
/// byte-identical by construction.
pub fn render_dataset_report(
    id: &str,
    vantage: simnet::profile::Vantage,
    analysis: &DatasetAnalysis,
    dualstack: &crate::dualstack::DualStackAnalysis,
    spec: &simnet::scenario::DatasetSpec,
) -> String {
    use crate::{ednssize, junk, metrics, transport};
    let mut out = format!("=== {id} ===\n");
    out.push_str(&render_table3(&[metrics::dataset_summary(id, analysis)]));
    out.push_str(&render_fig1(&[metrics::cloud_share(id, analysis)]));
    out.push_str(&render_table4(&[metrics::google_split(id, analysis)]));
    let mixes: Vec<_> = ALL_PROVIDERS
        .iter()
        .map(|&p| metrics::qtype_mix(id, analysis, Some(p)))
        .collect();
    out.push_str(&render_fig2(&mixes));
    out.push_str(&render_fig4(&[junk::junk_report(id, analysis)]));
    out.push_str(&render_table5(&[transport::transport_report(id, analysis)]));
    let t6: Vec<_> = [
        asdb::cloud::Provider::Amazon,
        asdb::cloud::Provider::Microsoft,
    ]
    .iter()
    .map(|&p| (id.to_string(), transport::resolver_families(analysis, p)))
    .collect();
    out.push_str(&render_table6(&t6));
    out.push_str(&render_fig6(&ednssize::edns_report(analysis)));
    if vantage == simnet::profile::Vantage::BRoot {
        out.push_str(&render_as_ranking(analysis, 8));
    }
    for server in spec.servers.iter().take(2) {
        let sites = dualstack.report_for_server(std::net::IpAddr::V4(server.v4));
        if sites.iter().any(|s| s.queries_v4 + s.queries_v6 > 0) {
            out.push_str(&render_fig5(&server.name, &sites));
        }
    }
    out
}

/// Machine-readable export of every per-dataset exhibit, for plotting
/// pipelines and EXPERIMENTS.md generation.
pub fn dataset_json(id: &str, analysis: &DatasetAnalysis) -> serde_json::Value {
    use crate::{concentration, ednssize, junk, metrics, transport};
    let mixes: Vec<_> = ALL_PROVIDERS
        .iter()
        .map(|&p| metrics::qtype_mix(id, analysis, Some(p)))
        .collect();
    let t6: Vec<_> = [
        asdb::cloud::Provider::Amazon,
        asdb::cloud::Provider::Microsoft,
    ]
    .iter()
    .map(|&p| transport::resolver_families(analysis, p))
    .collect();
    serde_json::json!({
        "id": id,
        "table3": metrics::dataset_summary(id, analysis),
        "figure1": metrics::cloud_share(id, analysis),
        "table4": metrics::google_split(id, analysis),
        "figure2": mixes,
        "figure4": junk::junk_report(id, analysis),
        "table5": transport::transport_report(id, analysis),
        "table6": t6,
        "figure6": ednssize::edns_report(analysis),
        "concentration": concentration::concentration(id, analysis),
    })
}

/// Concentration indices (the Allman/ISOC-style extension).
pub fn render_concentration(reports: &[crate::concentration::ConcentrationReport]) -> String {
    let mut t = TextTable::new(vec![
        "Dataset",
        "ASes",
        "CR-1",
        "CR-10",
        "CR-100",
        "HHI",
        "Gini",
        "5-CP share",
    ]);
    for r in reports {
        t.row(vec![
            r.id.clone(),
            r.ases.to_string(),
            pct(r.cr1),
            pct(r.cr10),
            pct(r.cr100),
            format!("{:.4}", r.hhi),
            format!("{:.3}", r.gini),
            pct(r.cloud_share),
        ]);
    }
    format!(
        "Concentration indices over per-AS query volume\n{}",
        t.render()
    )
}

/// The §3 root junk cross-check against RSSAC002-style aggregates.
pub fn render_junk_overview(measured_broot_valid: &[(u16, f64)]) -> String {
    let mut t = TextTable::new(vec![
        "Year",
        "RSSAC002 valid (11 letters)",
        "B-Root valid (this pipeline)",
        "Paper B-Root valid",
    ]);
    let paper = [(2018u16, 0.347), (2019, 0.346), (2020, 0.20)];
    for (year, measured) in measured_broot_valid {
        let rssac = crate::rootstats::system_validity(&crate::rootstats::synthetic_year(*year));
        let p = paper
            .iter()
            .find(|(y, _)| y == year)
            .map(|(_, v)| *v)
            .unwrap_or(f64::NAN);
        t.row(vec![
            year.to_string(),
            pct(rssac.valid_fraction),
            pct(*measured),
            pct(p),
        ]);
    }
    format!(
        "Junk overview (§3): the root system is junk-dominated; ccTLDs are not\n{}",
        t.render()
    )
}

/// The B-Root ranking remark of §4.1.
pub fn render_as_ranking(a: &DatasetAnalysis, k: usize) -> String {
    let mut t = TextTable::new(vec!["Rank", "AS", "Queries"]);
    for (i, (asn, count)) in a.as_volume.top_k(k).into_iter().enumerate() {
        t.row(vec![
            (i + 1).to_string(),
            asn.to_string(),
            count.to_string(),
        ]);
    }
    let first_cp = a
        .first_cloud_as_rank()
        .map(|r| format!("first cloud AS at rank {r}"))
        .unwrap_or_else(|| "no cloud AS observed".to_string());
    format!("Top source ASes ({first_cp})\n{}", t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(vec!["a", "bbbb"]);
        t.row(vec!["xxxx", "y"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("a   "));
        assert!(lines[2].starts_with("xxxx"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn wrong_width_panics() {
        TextTable::new(vec!["a"]).row(vec!["x", "y"]);
    }

    #[test]
    fn table1_contains_ground_truth() {
        let s = render_table1();
        assert!(s.contains("15169"));
        assert!(s.contains("Cloudflare"));
        assert!(s.contains("8068"));
        assert!(s.contains("Yes"));
        assert!(s.contains("No"));
    }

    #[test]
    fn fig3_verdict_rendering() {
        let s = render_fig3(
            ".nl",
            &[],
            Some(ChangePoint {
                year: 2019,
                month: 12,
            }),
        );
        assert!(s.contains("2019-12"));
        let s = render_fig3(".nl", &[], None);
        assert!(s.contains("No Q-min change-point"));
    }

    #[test]
    fn table2_renders_zone_sizes() {
        let s = render_table2();
        assert!(s.contains("5.9M"));
        assert!(s.contains("710K"));
        assert!(s.contains(".nl"));
        assert!(s.contains("2020-04-05"));
    }

    #[test]
    fn fig6_renders_median_column() {
        let r = crate::ednssize::EdnsCdfReport {
            provider: "Facebook".into(),
            curve: vec![(512, 0.3), (4096, 1.0)],
            samples: 100,
            truncation_ratio: 0.1716,
            median_response_size: Some(612),
        };
        let s = render_fig6(&[r]);
        assert!(s.contains("17.16%"));
        assert!(s.contains("612"));
    }

    #[test]
    fn concentration_renders() {
        let r = crate::concentration::ConcentrationReport {
            id: "x".into(),
            ases: 42,
            cr1: 0.1,
            cr10: 0.3,
            cr100: 0.9,
            hhi: 0.0123,
            gini: 0.456,
            cloud_share: 0.32,
        };
        let s = render_concentration(&[r]);
        assert!(s.contains("0.0123"));
        assert!(s.contains("0.456"));
        assert!(s.contains("32.0%"));
    }

    #[test]
    fn junk_overview_renders_all_years() {
        let s = render_junk_overview(&[(2018, 0.35), (2019, 0.35), (2020, 0.20)]);
        assert!(s.contains("2018"));
        assert!(s.contains("2020"));
        assert!(s.contains("20.0%"));
        // RSSAC002 side present
        assert!(s.contains("32.") || s.contains("31."));
    }

    #[test]
    fn fig5_renders_missing_rtt_as_dash() {
        let site = crate::dualstack::SiteReport {
            rank: 1,
            site: "ams".into(),
            queries_v4: 10,
            queries_v6: 90,
            v6_ratio: 0.9,
            median_rtt_v4_us: None,
            median_rtt_v6_us: Some(23_500),
        };
        let s = render_fig5("nl-A", &[site]);
        assert!(s.contains('-'));
        assert!(s.contains("23.5"));
        assert!(s.contains("90.0%"));
    }

    #[test]
    fn percent_formatting() {
        assert_eq!(pct(0.865), "86.5%");
        assert_eq!(frac2(0.48), "0.48");
    }
}

//! The single-pass dataset aggregation: one walk over the query stream
//! accumulates every quantity the paper's tables and figures need.

use asdb::cloud::{Provider, ALL_PROVIDERS};
use asdb::registry::Asn;
use dns_wire::types::RType;
use entrada::agg::{Cdf, Counter, DistinctCounter};
use entrada::schema::QueryRow;
use netbase::flow::{IpVersion, Transport};
use std::collections::HashMap;
use std::net::IpAddr;
use zonedb::zone::ZoneModel;

/// Per-provider (or per-"rest of Internet") accumulators.
#[derive(Debug, Default, Clone)]
pub struct ProviderAgg {
    /// Queries attributed.
    pub queries: u64,
    /// Junk (non-NOERROR) among them.
    pub junk: u64,
    /// Query-type histogram (Figure 2).
    pub qtype: Counter<RType>,
    /// Source-family split (Table 5).
    pub v4_queries: u64,
    /// IPv6 queries.
    pub v6_queries: u64,
    /// Transport split (Table 5).
    pub udp_queries: u64,
    /// TCP queries.
    pub tcp_queries: u64,
    /// Distinct IPv4 resolvers (Table 6).
    pub resolvers_v4: DistinctCounter<IpAddr>,
    /// Distinct IPv6 resolvers (Table 6).
    pub resolvers_v6: DistinctCounter<IpAddr>,
    /// EDNS advertised sizes on UDP queries (Figure 6).
    pub edns_sizes: Cdf,
    /// Sizes of (non-truncated) UDP responses, octets — what the
    /// advertised EDNS limit is tested against in §4.4.
    pub response_sizes: Cdf,
    /// UDP queries answered with TC=1 (§4.4).
    pub truncated_udp: u64,
    /// UDP queries answered at all (truncation denominator).
    pub answered_udp: u64,
    /// NS queries whose qname is in minimized form (§4.2.1).
    pub minimized_ns: u64,
    /// All NS queries.
    pub ns_queries: u64,
}

impl ProviderAgg {
    /// Junk ratio (Figure 4).
    pub fn junk_ratio(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.junk as f64 / self.queries as f64
        }
    }

    /// IPv6 share of queries (Table 5).
    pub fn v6_ratio(&self) -> f64 {
        let total = self.v4_queries + self.v6_queries;
        if total == 0 {
            0.0
        } else {
            self.v6_queries as f64 / total as f64
        }
    }

    /// TCP share of queries (Table 5).
    pub fn tcp_ratio(&self) -> f64 {
        let total = self.udp_queries + self.tcp_queries;
        if total == 0 {
            0.0
        } else {
            self.tcp_queries as f64 / total as f64
        }
    }

    /// Fraction of UDP answers that were truncated (§4.4).
    pub fn truncation_ratio(&self) -> f64 {
        if self.answered_udp == 0 {
            0.0
        } else {
            self.truncated_udp as f64 / self.answered_udp as f64
        }
    }

    /// Share of qtype `t` among this provider's queries (Figure 2).
    pub fn qtype_ratio(&self, t: RType) -> f64 {
        self.qtype.ratio(&t)
    }

    /// Share of NS queries that are minimized-form (Q-min signal).
    pub fn minimized_ns_ratio(&self) -> f64 {
        if self.ns_queries == 0 {
            0.0
        } else {
            self.minimized_ns as f64 / self.ns_queries as f64
        }
    }

    /// Merge another partial aggregate in. Every field is a sum, a set
    /// union, or a sample-multiset union, so partials built over
    /// disjoint row subsets merge into exactly the aggregate one serial
    /// pass over all rows would build.
    pub fn merge(&mut self, other: ProviderAgg) {
        self.queries += other.queries;
        self.junk += other.junk;
        self.qtype.merge(other.qtype);
        self.v4_queries += other.v4_queries;
        self.v6_queries += other.v6_queries;
        self.udp_queries += other.udp_queries;
        self.tcp_queries += other.tcp_queries;
        self.resolvers_v4.merge(other.resolvers_v4);
        self.resolvers_v6.merge(other.resolvers_v6);
        self.edns_sizes.merge(other.edns_sizes);
        self.response_sizes.merge(other.response_sizes);
        self.truncated_udp += other.truncated_udp;
        self.answered_udp += other.answered_udp;
        self.minimized_ns += other.minimized_ns;
        self.ns_queries += other.ns_queries;
    }
}

/// Whole-dataset aggregation (one pass, streaming).
#[derive(Debug, Clone)]
pub struct DatasetAnalysis {
    zone: ZoneModel,
    /// All queries seen.
    pub total_queries: u64,
    /// NOERROR-answered queries (Table 3 "valid").
    pub valid_queries: u64,
    /// Distinct source addresses (Table 3 "resolvers").
    pub resolvers: DistinctCounter<IpAddr>,
    /// Distinct source ASes (Table 3 "ASes").
    pub ases: DistinctCounter<Asn>,
    /// Per-provider accumulators; the `None` key is the rest of the
    /// Internet.
    pub by_provider: HashMap<Option<Provider>, ProviderAgg>,
    /// Google Public DNS vs rest-of-Google (Tables 4/7).
    pub google_public: GoogleSplitAgg,
    /// Monthly qtype series per provider (Figure 3), keyed
    /// `(provider, year, month)`.
    pub monthly_qtype: HashMap<(Provider, i32, u32), Counter<RType>>,
    /// Top source ASes by query volume (the B-Root ranking remark).
    pub as_volume: Counter<Asn>,
    /// Queries per hour-of-day (0-23): the diurnal load shape the
    /// paper compensates for by using week-long snapshots.
    pub hourly: Counter<u32>,
}

/// The Table 4/7 split accumulators.
#[derive(Debug, Default, Clone)]
pub struct GoogleSplitAgg {
    /// Queries from the advertised Public DNS ranges.
    pub public_queries: u64,
    /// Queries from the rest of Google's network.
    pub rest_queries: u64,
    /// Distinct Public DNS resolver addresses.
    pub public_resolvers: DistinctCounter<IpAddr>,
    /// Distinct rest-of-Google resolver addresses.
    pub rest_resolvers: DistinctCounter<IpAddr>,
}

impl GoogleSplitAgg {
    /// Public share of Google queries (≈86-88% in the paper).
    pub fn public_query_ratio(&self) -> f64 {
        let total = self.public_queries + self.rest_queries;
        if total == 0 {
            0.0
        } else {
            self.public_queries as f64 / total as f64
        }
    }

    /// Public share of Google resolvers (≈15-19% in the paper).
    pub fn public_resolver_ratio(&self) -> f64 {
        let total = self.public_resolvers.count() + self.rest_resolvers.count();
        if total == 0 {
            0.0
        } else {
            self.public_resolvers.count() as f64 / total as f64
        }
    }

    /// Merge another partial split in (sums + set unions).
    pub fn merge(&mut self, other: GoogleSplitAgg) {
        self.public_queries += other.public_queries;
        self.rest_queries += other.rest_queries;
        self.public_resolvers.merge(other.public_resolvers);
        self.rest_resolvers.merge(other.rest_resolvers);
    }
}

impl DatasetAnalysis {
    /// Build for a dataset served from `zone` (needed for the
    /// minimized-qname test).
    pub fn new(zone: ZoneModel) -> Self {
        let mut by_provider = HashMap::new();
        for p in ALL_PROVIDERS {
            by_provider.insert(Some(p), ProviderAgg::default());
        }
        by_provider.insert(None, ProviderAgg::default());
        DatasetAnalysis {
            zone,
            total_queries: 0,
            valid_queries: 0,
            resolvers: DistinctCounter::new(),
            ases: DistinctCounter::new(),
            by_provider,
            google_public: GoogleSplitAgg::default(),
            monthly_qtype: HashMap::new(),
            as_volume: Counter::new(),
            hourly: Counter::new(),
        }
    }

    /// Consume one row.
    pub fn push(&mut self, row: &QueryRow) {
        self.total_queries += 1;
        if row.is_valid() {
            self.valid_queries += 1;
        }
        self.resolvers.observe(row.src);
        self.hourly.incr(row.timestamp.hour_of_day_f64() as u32);
        if let Some(asn) = row.asn {
            self.ases.observe(asn);
            self.as_volume.incr(asn);
        }

        let agg = self.by_provider.entry(row.provider).or_default();
        agg.queries += 1;
        if row.is_junk() {
            agg.junk += 1;
        }
        agg.qtype.incr(row.qtype);
        match row.ip_version() {
            IpVersion::V4 => {
                agg.v4_queries += 1;
                agg.resolvers_v4.observe(row.src);
            }
            IpVersion::V6 => {
                agg.v6_queries += 1;
                agg.resolvers_v6.observe(row.src);
            }
        }
        match row.transport {
            Transport::Udp => {
                agg.udp_queries += 1;
                if let Some(size) = row.edns_size {
                    agg.edns_sizes.add(size as u64);
                }
                if row.rcode.is_some() {
                    agg.answered_udp += 1;
                    if row.response_truncated {
                        agg.truncated_udp += 1;
                    } else if let Some(size) = row.response_size {
                        agg.response_sizes.add(size as u64);
                    }
                }
            }
            Transport::Tcp => agg.tcp_queries += 1,
        }
        if row.qtype == RType::Ns {
            agg.ns_queries += 1;
            if self.zone.minimized_qname(&row.qname) == row.qname {
                agg.minimized_ns += 1;
            }
        }

        if let Some(provider) = row.provider {
            if provider == Provider::Google {
                if row.public_dns {
                    self.google_public.public_queries += 1;
                    self.google_public.public_resolvers.observe(row.src);
                } else {
                    self.google_public.rest_queries += 1;
                    self.google_public.rest_resolvers.observe(row.src);
                }
            }
            let (y, m) = row.year_month();
            self.monthly_qtype
                .entry((provider, y, m))
                .or_default()
                .incr(row.qtype);
        }
    }

    /// Consume a whole stream.
    pub fn extend(&mut self, rows: impl IntoIterator<Item = QueryRow>) {
        for row in rows {
            self.push(&row);
        }
    }

    /// Merge a partial aggregate built over a disjoint subset of the
    /// same dataset's rows (and the same zone). Every accumulator is an
    /// order-insensitive function of the row multiset — sums, set
    /// unions, CDF sample unions — so merging worker partials in any
    /// deterministic order reproduces the serial aggregate exactly.
    pub fn merge(&mut self, other: DatasetAnalysis) {
        self.total_queries += other.total_queries;
        self.valid_queries += other.valid_queries;
        self.resolvers.merge(other.resolvers);
        self.ases.merge(other.ases);
        for (key, agg) in other.by_provider {
            self.by_provider.entry(key).or_default().merge(agg);
        }
        self.google_public.merge(other.google_public);
        for (key, counter) in other.monthly_qtype {
            self.monthly_qtype.entry(key).or_default().merge(counter);
        }
        self.as_volume.merge(other.as_volume);
        self.hourly.merge(other.hourly);
    }

    /// The zone this analysis runs against.
    pub fn zone(&self) -> &ZoneModel {
        &self.zone
    }

    /// Accumulator for one provider (`None` = rest of Internet).
    pub fn provider(&self, p: Option<Provider>) -> &ProviderAgg {
        self.by_provider.get(&p).expect("all providers pre-seeded")
    }

    /// Query share of one provider (Figure 1 bars).
    pub fn provider_share(&self, p: Provider) -> f64 {
        if self.total_queries == 0 {
            0.0
        } else {
            self.provider(Some(p)).queries as f64 / self.total_queries as f64
        }
    }

    /// Combined share of the five CPs (Figure 1's headline number).
    pub fn cloud_share(&self) -> f64 {
        ALL_PROVIDERS.iter().map(|&p| self.provider_share(p)).sum()
    }

    /// Valid fraction (Table 3).
    pub fn valid_fraction(&self) -> f64 {
        if self.total_queries == 0 {
            0.0
        } else {
            self.valid_queries as f64 / self.total_queries as f64
        }
    }

    /// Peak-to-trough ratio of the hourly load shape; near 1.0 means
    /// flat, the engine's diurnal model targets ~1.5-2.
    pub fn diurnal_peak_trough(&self) -> f64 {
        let counts: Vec<u64> = (0..24).map(|h| self.hourly.get(&h)).collect();
        let max = counts.iter().copied().max().unwrap_or(0);
        let min = counts.iter().copied().min().unwrap_or(0);
        if min == 0 {
            0.0
        } else {
            max as f64 / min as f64
        }
    }

    /// The rank of the first cloud-provider AS in the by-volume AS
    /// ranking (the paper: 5th at B-Root 2020, behind four ISPs).
    pub fn first_cloud_as_rank(&self) -> Option<usize> {
        let cloud_asns: std::collections::HashSet<u32> = ALL_PROVIDERS
            .iter()
            .flat_map(|p| p.asns())
            .map(|a| a.0)
            .collect();
        self.as_volume
            .top_k(self.as_volume.keys())
            .iter()
            .position(|(asn, _)| cloud_asns.contains(&asn.0))
            .map(|i| i + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_wire::types::Rcode;
    use netbase::time::SimTime;

    fn row(
        src: &str,
        provider: Option<Provider>,
        qtype: RType,
        rcode: Rcode,
        transport: Transport,
    ) -> QueryRow {
        QueryRow {
            timestamp: SimTime::from_date(2020, 4, 7),
            src: src.parse().unwrap(),
            src_port: 1000,
            server: "194.0.28.53".parse().unwrap(),
            transport,
            qname: "example.nl.".parse().unwrap(),
            qtype,
            edns_size: Some(1232),
            do_bit: false,
            rcode: Some(rcode),
            response_size: Some(120),
            response_truncated: false,
            tcp_rtt_us: 0,
            asn: provider.map(|p| p.asns()[0]),
            provider,
            public_dns: src.starts_with("8.8."),
        }
    }

    #[test]
    fn shares_and_validity() {
        let mut a = DatasetAnalysis::new(ZoneModel::nl(100));
        a.push(&row(
            "8.8.8.8",
            Some(Provider::Google),
            RType::A,
            Rcode::NoError,
            Transport::Udp,
        ));
        a.push(&row(
            "8.8.4.4",
            Some(Provider::Google),
            RType::A,
            Rcode::NoError,
            Transport::Udp,
        ));
        a.push(&row(
            "1.1.1.1",
            Some(Provider::Cloudflare),
            RType::Ds,
            Rcode::NoError,
            Transport::Udp,
        ));
        a.push(&row(
            "192.0.9.1",
            None,
            RType::A,
            Rcode::NxDomain,
            Transport::Udp,
        ));
        assert_eq!(a.total_queries, 4);
        assert_eq!(a.valid_queries, 3);
        assert!((a.valid_fraction() - 0.75).abs() < 1e-12);
        assert!((a.provider_share(Provider::Google) - 0.5).abs() < 1e-12);
        assert!((a.cloud_share() - 0.75).abs() < 1e-12);
        assert_eq!(a.resolvers.count(), 4);
        assert_eq!(a.ases.count(), 2, "only attributed rows count ASes");
        assert_eq!(a.provider(None).junk, 1);
    }

    #[test]
    fn google_split_tracks_public_ranges() {
        let mut a = DatasetAnalysis::new(ZoneModel::nl(100));
        for _ in 0..9 {
            a.push(&row(
                "8.8.8.8",
                Some(Provider::Google),
                RType::A,
                Rcode::NoError,
                Transport::Udp,
            ));
        }
        a.push(&row(
            "74.125.1.1",
            Some(Provider::Google),
            RType::A,
            Rcode::NoError,
            Transport::Udp,
        ));
        assert!((a.google_public.public_query_ratio() - 0.9).abs() < 1e-12);
        assert_eq!(a.google_public.public_resolvers.count(), 1);
        assert_eq!(a.google_public.rest_resolvers.count(), 1);
    }

    #[test]
    fn transport_and_family_aggregation() {
        let mut a = DatasetAnalysis::new(ZoneModel::nl(100));
        a.push(&row(
            "2a03:2880::1",
            Some(Provider::Facebook),
            RType::A,
            Rcode::NoError,
            Transport::Udp,
        ));
        a.push(&row(
            "2a03:2880::1",
            Some(Provider::Facebook),
            RType::A,
            Rcode::NoError,
            Transport::Tcp,
        ));
        a.push(&row(
            "31.13.64.1",
            Some(Provider::Facebook),
            RType::A,
            Rcode::NoError,
            Transport::Udp,
        ));
        let fb = a.provider(Some(Provider::Facebook));
        assert!((fb.v6_ratio() - 2.0 / 3.0).abs() < 1e-12);
        assert!((fb.tcp_ratio() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(fb.resolvers_v4.count(), 1);
        assert_eq!(fb.resolvers_v6.count(), 1);
    }

    #[test]
    fn minimized_ns_detection() {
        let mut a = DatasetAnalysis::new(ZoneModel::nl(100));
        let mut minimized = row(
            "8.8.8.8",
            Some(Provider::Google),
            RType::Ns,
            Rcode::NoError,
            Transport::Udp,
        );
        minimized.qname = "example.nl.".parse().unwrap(); // 2 labels: minimized form
        a.push(&minimized);
        let mut full = row(
            "8.8.8.8",
            Some(Provider::Google),
            RType::Ns,
            Rcode::NoError,
            Transport::Udp,
        );
        full.qname = "www.example.nl.".parse().unwrap();
        a.push(&full);
        let g = a.provider(Some(Provider::Google));
        assert_eq!(g.ns_queries, 2);
        assert_eq!(g.minimized_ns, 1);
        assert!((g.minimized_ns_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn truncation_denominator_is_answered_udp() {
        let mut a = DatasetAnalysis::new(ZoneModel::nl(100));
        let mut tr = row(
            "31.13.64.1",
            Some(Provider::Facebook),
            RType::A,
            Rcode::NoError,
            Transport::Udp,
        );
        tr.response_truncated = true;
        a.push(&tr);
        a.push(&row(
            "31.13.64.1",
            Some(Provider::Facebook),
            RType::A,
            Rcode::NoError,
            Transport::Udp,
        ));
        a.push(&row(
            "31.13.64.1",
            Some(Provider::Facebook),
            RType::A,
            Rcode::NoError,
            Transport::Tcp,
        ));
        let fb = a.provider(Some(Provider::Facebook));
        assert!(
            (fb.truncation_ratio() - 0.5).abs() < 1e-12,
            "TCP rows excluded"
        );
    }

    #[test]
    fn monthly_series_buckets() {
        let mut a = DatasetAnalysis::new(ZoneModel::nl(100));
        let mut r1 = row(
            "8.8.8.8",
            Some(Provider::Google),
            RType::A,
            Rcode::NoError,
            Transport::Udp,
        );
        r1.timestamp = SimTime::from_date(2019, 11, 20);
        a.push(&r1);
        let mut r2 = row(
            "8.8.8.8",
            Some(Provider::Google),
            RType::Ns,
            Rcode::NoError,
            Transport::Udp,
        );
        r2.timestamp = SimTime::from_date(2019, 12, 2);
        a.push(&r2);
        assert_eq!(
            a.monthly_qtype[&(Provider::Google, 2019, 11)].get(&RType::A),
            1
        );
        assert_eq!(
            a.monthly_qtype[&(Provider::Google, 2019, 12)].get(&RType::Ns),
            1
        );
    }

    #[test]
    fn first_cloud_as_rank() {
        let mut a = DatasetAnalysis::new(ZoneModel::root(50));
        // two ISP ASes outrank Google's
        for _ in 0..10 {
            let mut r = row("192.0.9.1", None, RType::A, Rcode::NoError, Transport::Udp);
            r.asn = Some(Asn(9999));
            a.push(&r);
        }
        for _ in 0..8 {
            let mut r = row("192.0.10.1", None, RType::A, Rcode::NoError, Transport::Udp);
            r.asn = Some(Asn(8888));
            a.push(&r);
        }
        for _ in 0..5 {
            a.push(&row(
                "8.8.8.8",
                Some(Provider::Google),
                RType::A,
                Rcode::NoError,
                Transport::Udp,
            ));
        }
        assert_eq!(a.first_cloud_as_rank(), Some(3));
    }
}

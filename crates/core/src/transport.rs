//! Transport and address-family characterization: Table 5 (IPv4/IPv6,
//! UDP/TCP shares per provider) and Table 6 (Amazon/Microsoft resolver
//! populations by family).

use crate::analysis::DatasetAnalysis;
use asdb::cloud::{Provider, ALL_PROVIDERS};
use serde::Serialize;

/// One Table 5 row.
#[derive(Debug, Clone, Serialize)]
pub struct TransportRow {
    /// Provider name.
    pub provider: String,
    /// IPv4 share of queries.
    pub ipv4: f64,
    /// IPv6 share of queries.
    pub ipv6: f64,
    /// UDP share of queries.
    pub udp: f64,
    /// TCP share of queries.
    pub tcp: f64,
}

/// Table 5 for one dataset.
#[derive(Debug, Clone, Serialize)]
pub struct TransportReport {
    /// Dataset identifier.
    pub id: String,
    /// One row per provider, paper order.
    pub rows: Vec<TransportRow>,
}

/// One Table 6 block: resolver counts by family.
#[derive(Debug, Clone, Serialize)]
pub struct ResolverFamilyRow {
    /// Provider name.
    pub provider: String,
    /// Total distinct resolvers.
    pub total: u64,
    /// Distinct IPv4 resolvers.
    pub v4: u64,
    /// Distinct IPv6 resolvers.
    pub v6: u64,
    /// IPv6 share of the resolver population.
    pub v6_share: f64,
    /// IPv6 share of the provider's *queries* (for the Table 5/6
    /// correlation the paper draws).
    pub v6_traffic_share: f64,
}

/// Build Table 5.
pub fn transport_report(id: &str, a: &DatasetAnalysis) -> TransportReport {
    let rows = ALL_PROVIDERS
        .iter()
        .map(|&p| {
            let agg = a.provider(Some(p));
            TransportRow {
                provider: p.name().to_string(),
                ipv4: 1.0 - agg.v6_ratio(),
                ipv6: agg.v6_ratio(),
                udp: 1.0 - agg.tcp_ratio(),
                tcp: agg.tcp_ratio(),
            }
        })
        .collect();
    TransportReport {
        id: id.to_string(),
        rows,
    }
}

/// Build one Table 6 block.
pub fn resolver_families(a: &DatasetAnalysis, provider: Provider) -> ResolverFamilyRow {
    let agg = a.provider(Some(provider));
    let v4 = agg.resolvers_v4.count();
    let v6 = agg.resolvers_v6.count();
    ResolverFamilyRow {
        provider: provider.name().to_string(),
        total: v4 + v6,
        v4,
        v6,
        v6_share: if v4 + v6 == 0 {
            0.0
        } else {
            v6 as f64 / (v4 + v6) as f64
        },
        v6_traffic_share: agg.v6_ratio(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_wire::types::{RType, Rcode};
    use entrada::schema::QueryRow;
    use netbase::flow::Transport;
    use netbase::time::SimTime;
    use zonedb::zone::ZoneModel;

    fn push(a: &mut DatasetAnalysis, src: &str, provider: Provider, tcp: bool) {
        let row = QueryRow {
            timestamp: SimTime::from_date(2020, 4, 7),
            src: src.parse().unwrap(),
            src_port: 1,
            server: "194.0.28.53".parse().unwrap(),
            transport: if tcp { Transport::Tcp } else { Transport::Udp },
            qname: "example.nl.".parse().unwrap(),
            qtype: RType::A,
            edns_size: Some(512),
            do_bit: true,
            rcode: Some(Rcode::NoError),
            response_size: Some(100),
            response_truncated: false,
            tcp_rtt_us: if tcp { 20_000 } else { 0 },
            asn: Some(provider.asns()[0]),
            provider: Some(provider),
            public_dns: false,
        };
        a.push(&row);
    }

    #[test]
    fn table5_rows() {
        let mut a = DatasetAnalysis::new(ZoneModel::nl(10));
        // Microsoft: pure v4/UDP
        for i in 0..10 {
            push(&mut a, &format!("40.64.0.{i}"), Provider::Microsoft, false);
        }
        // Facebook: 3 v6 + 1 v4, 1 TCP
        push(&mut a, "2a03:2880::1", Provider::Facebook, false);
        push(&mut a, "2a03:2880::2", Provider::Facebook, false);
        push(&mut a, "2a03:2880::3", Provider::Facebook, true);
        push(&mut a, "31.13.64.1", Provider::Facebook, false);
        let t = transport_report("nl-w2020", &a);
        let ms = t.rows.iter().find(|r| r.provider == "Microsoft").unwrap();
        assert_eq!(ms.ipv4, 1.0);
        assert_eq!(ms.ipv6, 0.0);
        assert_eq!(ms.udp, 1.0);
        let fb = t.rows.iter().find(|r| r.provider == "Facebook").unwrap();
        assert!((fb.ipv6 - 0.75).abs() < 1e-12);
        assert!((fb.tcp - 0.25).abs() < 1e-12);
        // rows always sum to 1 across each pair
        for r in &t.rows {
            assert!((r.ipv4 + r.ipv6 - 1.0).abs() < 1e-9 || (r.ipv4, r.ipv6) == (1.0, 0.0));
            assert!((r.udp + r.tcp - 1.0).abs() < 1e-9 || (r.udp, r.tcp) == (1.0, 0.0));
        }
    }

    #[test]
    fn table6_resolver_counts() {
        let mut a = DatasetAnalysis::new(ZoneModel::nl(10));
        for i in 0..98 {
            push(
                &mut a,
                &format!("52.0.{}.{}", i / 250, i % 250),
                Provider::Amazon,
                false,
            );
        }
        push(&mut a, "2600:1f00::1", Provider::Amazon, false);
        push(&mut a, "2600:1f00::2", Provider::Amazon, false);
        // repeat queries must not inflate resolver counts
        push(&mut a, "2600:1f00::2", Provider::Amazon, false);
        let r = resolver_families(&a, Provider::Amazon);
        assert_eq!(r.total, 100);
        assert_eq!(r.v4, 98);
        assert_eq!(r.v6, 2);
        assert!((r.v6_share - 0.02).abs() < 1e-12);
        // traffic share counts queries, not resolvers
        assert!((r.v6_traffic_share - 3.0 / 101.0).abs() < 1e-12);
    }

    #[test]
    fn empty_provider_is_all_zero() {
        let a = DatasetAnalysis::new(ZoneModel::nl(10));
        let r = resolver_families(&a, Provider::Cloudflare);
        assert_eq!(r.total, 0);
        assert_eq!(r.v6_share, 0.0);
    }
}

//! EDNS(0) UDP message-size analysis: Figure 6's CDF and the §4.4
//! truncation rates it explains.

use crate::analysis::DatasetAnalysis;
use asdb::cloud::{Provider, ALL_PROVIDERS};
use serde::Serialize;

/// The size points the paper's Figure 6 x-axis spans.
pub const CDF_POINTS: [u64; 8] = [512, 1024, 1232, 1400, 2048, 4096, 8192, 65535];

/// Figure 6 for one provider.
#[derive(Debug, Clone, Serialize)]
pub struct EdnsCdfReport {
    /// Provider name.
    pub provider: String,
    /// `(size, P(advertised ≤ size))` at [`CDF_POINTS`].
    pub curve: Vec<(u64, f64)>,
    /// UDP queries with EDNS present.
    pub samples: u64,
    /// Fraction of UDP answers truncated (§4.4; Facebook 17.16% vs
    /// Google 0.04% / Microsoft 0.01% in w2020 `.nl`).
    pub truncation_ratio: f64,
    /// Median size of the provider's (untruncated) UDP answers, octets.
    pub median_response_size: Option<u64>,
}

/// Build the Figure 6 curves for every provider.
pub fn edns_report(a: &DatasetAnalysis) -> Vec<EdnsCdfReport> {
    let mut stage = obs::stage("analysis.ednssize");
    let reports: Vec<EdnsCdfReport> = ALL_PROVIDERS
        .iter()
        .map(|&p| edns_report_for(a, p))
        .collect();
    stage.add_items(reports.iter().map(|r| r.samples).sum());
    reports
}

/// Build one provider's curve.
pub fn edns_report_for(a: &DatasetAnalysis, provider: Provider) -> EdnsCdfReport {
    let agg = a.provider(Some(provider));
    let samples = agg.edns_sizes.len() as u64;
    let curve = agg.edns_sizes.curve(&CDF_POINTS);
    let median_response_size = if agg.response_sizes.is_empty() {
        None
    } else {
        Some(agg.response_sizes.median())
    };
    EdnsCdfReport {
        provider: provider.name().to_string(),
        curve,
        samples,
        truncation_ratio: agg.truncation_ratio(),
        median_response_size,
    }
}

impl EdnsCdfReport {
    /// P(advertised size ≤ `size`).
    pub fn fraction_at_most(&self, size: u64) -> f64 {
        self.curve
            .iter()
            .filter(|(x, _)| *x <= size)
            .map(|(_, f)| *f)
            .next_back()
            .unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_wire::types::{RType, Rcode};
    use entrada::schema::QueryRow;
    use netbase::flow::Transport;
    use netbase::time::SimTime;
    use zonedb::zone::ZoneModel;

    fn push(a: &mut DatasetAnalysis, provider: Provider, edns: u16, truncated: bool) {
        let row = QueryRow {
            timestamp: SimTime::from_date(2020, 4, 7),
            src: "31.13.64.1".parse().unwrap(),
            src_port: 1,
            server: "194.0.28.53".parse().unwrap(),
            transport: Transport::Udp,
            qname: "example.nl.".parse().unwrap(),
            qtype: RType::A,
            edns_size: Some(edns),
            do_bit: true,
            rcode: Some(Rcode::NoError),
            response_size: Some(400),
            response_truncated: truncated,
            tcp_rtt_us: 0,
            asn: Some(provider.asns()[0]),
            provider: Some(provider),
            public_dns: false,
        };
        a.push(&row);
    }

    #[test]
    fn facebook_style_cdf() {
        let mut a = DatasetAnalysis::new(ZoneModel::nl(10));
        for _ in 0..30 {
            push(&mut a, Provider::Facebook, 512, true);
        }
        for _ in 0..70 {
            push(&mut a, Provider::Facebook, 4096, false);
        }
        let r = edns_report_for(&a, Provider::Facebook);
        assert_eq!(r.samples, 100);
        assert!((r.fraction_at_most(512) - 0.30).abs() < 1e-12);
        assert!((r.fraction_at_most(1232) - 0.30).abs() < 1e-12);
        assert!((r.fraction_at_most(4096) - 1.0).abs() < 1e-12);
        assert!((r.truncation_ratio - 0.30).abs() < 1e-12);
    }

    #[test]
    fn google_style_cdf() {
        let mut a = DatasetAnalysis::new(ZoneModel::nl(10));
        for _ in 0..24 {
            push(&mut a, Provider::Google, 1232, false);
        }
        for _ in 0..76 {
            push(&mut a, Provider::Google, 4096, false);
        }
        let r = edns_report_for(&a, Provider::Google);
        assert!((r.fraction_at_most(512)).abs() < 1e-12);
        assert!((r.fraction_at_most(1232) - 0.24).abs() < 1e-12);
        assert_eq!(r.truncation_ratio, 0.0);
    }

    #[test]
    fn curves_are_monotone() {
        let mut a = DatasetAnalysis::new(ZoneModel::nl(10));
        for s in [512u16, 1232, 1400, 4096, 8192] {
            for _ in 0..5 {
                push(&mut a, Provider::Amazon, s, false);
            }
        }
        let r = edns_report_for(&a, Provider::Amazon);
        for w in r.curve.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
        assert!((r.curve.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn all_providers_reported() {
        let mut a = DatasetAnalysis::new(ZoneModel::nl(10));
        push(&mut a, Provider::Google, 1232, false);
        let all = edns_report(&a);
        assert_eq!(all.len(), 5);
        assert!(all.iter().any(|r| r.provider == "Google" && r.samples == 1));
        assert!(all
            .iter()
            .any(|r| r.provider == "Microsoft" && r.samples == 0));
    }
}

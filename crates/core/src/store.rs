//! The warehouse bridge: feed pipeline rows into a persistent
//! [`warehouse::Warehouse`] and rebuild every report from partition
//! scans instead of in-memory runs.
//!
//! The paper's split between collection and analysis was ENTRADA's
//! Parquet-on-HDFS warehouse; this module is the equivalent seam. The
//! write side hangs a [`StoreSink`] off the fused pipeline's fanout
//! (every analysis worker owns an appender, partials merge like any
//! other [`RowSink`]), so `ingest` fills partitions in the same single
//! pass that produces the in-memory report. The read side rebuilds the
//! exact per-dataset analysis from committed partitions: each source
//! records its `(spec, scale, seed)` as manifest metadata
//! ([`SourceInfo`]), scans reconstruct the enrichment context from it
//! the same way [`crate::experiments::analyze_capture`] does from a
//! capture file, and partition chunks fan out over
//! [`crate::suite::run_tasks`] — order-insensitive sinks make the
//! result byte-identical to the in-memory path for any `--jobs` value.

use crate::analysis::DatasetAnalysis;
use crate::dualstack::DualStackAnalysis;
use crate::experiments::DatasetRun;
use crate::paper::{compare_rows, ComparisonRow, Measured};
use crate::pipeline::{run_spec_with, PipelineOpts};
use crate::qmin::MonthlySample;
use crate::sink::{DualStackSink, FanoutSink, RowSink};
use asdb::cloud::Provider;
use asdb::synth::InternetPlan;
use dns_wire::types::RType;
use entrada::agg::Counter;
use entrada::enrich::Enricher;
use entrada::ingest::CaptureIngest;
use entrada::schema::QueryRow;
use netbase::capture::CaptureReader;
use serde::{Deserialize, Serialize};
use simnet::engine::{plan_config_for, Engine};
use simnet::profile::Vantage;
use simnet::scenario::{
    dataset, figure3_months, monthly_google, monthly_provider, DatasetSpec, Scale,
};
use std::path::Path;
use std::sync::Arc;
use warehouse::scan::row_matches;
use warehouse::{AppendConfig, AppendStats, Appender, Predicate, ScanStats, Warehouse};

/// The identity a warehouse source records in the manifest: everything
/// a scan needs to rebuild the enrichment context (zone, PTR view,
/// server list) exactly as the ingest that wrote the rows had it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SourceInfo {
    /// The dataset spec the rows were generated from.
    pub spec: DatasetSpec,
    /// Scale the run used.
    pub scale: Scale,
    /// Seed the run used.
    pub seed: u64,
}

/// Where the pipeline appends rows: a shared open warehouse, the
/// source id to append under, and the partition flush budget.
#[derive(Debug, Clone)]
pub struct WarehouseTarget {
    /// The open warehouse (shared across ingest workers).
    pub store: Arc<Warehouse>,
    /// Source id the rows append under (register it first with
    /// [`ensure_source`]).
    pub source: String,
    /// Appender tuning (partition width, row/byte flush budget).
    pub config: AppendConfig,
}

/// [`RowSink`] adapter over an optional [`Appender`], so the pipeline
/// can thread a warehouse branch through its existing fanout without
/// special-casing runs that do not persist anything.
pub struct StoreSink<'w>(Option<Appender<'w>>);

impl<'w> StoreSink<'w> {
    /// Wrap an appender (or nothing, for runs without a warehouse).
    pub fn new(appender: Option<Appender<'w>>) -> Self {
        StoreSink(appender)
    }

    /// Flush the appender's open buckets. Partitions stay staged until
    /// the caller commits the warehouse.
    pub fn finish(self) -> Result<AppendStats, warehouse::WarehouseError> {
        match self.0 {
            Some(app) => app.finish(),
            None => Ok(AppendStats::default()),
        }
    }
}

impl RowSink for StoreSink<'_> {
    fn push(&mut self, row: &QueryRow) {
        if let Some(app) = &mut self.0 {
            if obs::flight::sampling_enabled() {
                let key = obs::flight::query_key(row.timestamp.as_micros(), &row.src, row.src_port);
                if obs::flight::sampled(key) {
                    obs::flight::hop("warehouse.append", key);
                }
            }
            app.push(row);
        }
    }

    fn merge(&mut self, other: Self) {
        match (&mut self.0, other.0) {
            (Some(a), Some(b)) => a.merge(b),
            (None, None) => {}
            _ => unreachable!("all sinks of one run share the same warehouse target"),
        }
    }
}

/// Register `id` in the warehouse manifest with `info` as its
/// metadata, or verify that an existing registration matches —
/// re-ingesting under a different spec/scale/seed is rejected because
/// scans would rebuild the wrong enrichment context.
pub fn ensure_source(wh: &Warehouse, id: &str, info: &SourceInfo) -> Result<(), String> {
    let meta = serde_json::to_string(info).expect("source metadata serializes");
    wh.ensure_source(id, &meta).map_err(|e| e.to_string())
}

/// Load and parse one source's recorded [`SourceInfo`].
pub fn source_info(wh: &Warehouse, id: &str) -> Result<SourceInfo, String> {
    let meta = wh
        .source(id)
        .ok_or_else(|| format!("warehouse has no source {id:?} (run `dnscentral ingest` first)"))?;
    serde_json::from_str(&meta.meta).map_err(|e| format!("source {id:?} metadata unreadable: {e}"))
}

/// Generate + analyze `spec` with the fused pipeline, appending every
/// row to the warehouse under `spec.id()` on the way through. Staged
/// partitions are left for the caller to [`Warehouse::commit`], so one
/// CLI invocation is one atomic manifest update.
pub fn ingest_spec(
    wh: &Arc<Warehouse>,
    spec: DatasetSpec,
    scale: Scale,
    seed: u64,
    opts: &PipelineOpts,
    config: AppendConfig,
) -> Result<DatasetRun, String> {
    let id = spec.id();
    ensure_source(
        wh,
        &id,
        &SourceInfo {
            spec: spec.clone(),
            scale,
            seed,
        },
    )?;
    let opts = PipelineOpts {
        warehouse: Some(WarehouseTarget {
            store: Arc::clone(wh),
            source: id,
            config,
        }),
        ..opts.clone()
    };
    Ok(run_spec_with(spec, scale, seed, &opts))
}

/// The warehouse source id of one Figure 3 monthly sample.
pub fn monthly_source_id(vantage: Vantage, provider: Provider, year: i32, month: u32) -> String {
    format!("fig3-{provider:?}-{vantage:?}-{year}-{month:02}").to_lowercase()
}

/// The per-month seed of the Figure 3 series (the same derivation
/// [`crate::experiments::run_monthly_series_for_jobs`] uses).
fn monthly_seed(seed: u64, year: i32, month: u32) -> u64 {
    seed ^ ((year as u64) << 8 | month as u64)
}

/// Ingest the 18-month Figure 3 series (Nov 2018 – Apr 2020) for one
/// vantage and provider, up to `jobs` months in flight. Each month is
/// its own warehouse source carrying its own spec and derived seed.
/// Staged partitions are left for the caller to commit.
#[allow(clippy::too_many_arguments)]
pub fn ingest_monthly(
    wh: &Arc<Warehouse>,
    vantage: Vantage,
    provider: Provider,
    scale: Scale,
    seed: u64,
    opts: &PipelineOpts,
    config: AppendConfig,
    jobs: usize,
) -> Result<Vec<DatasetRun>, String> {
    let months: Vec<(String, DatasetSpec, u64)> = figure3_months()
        .into_iter()
        .map(|(year, month)| {
            let spec = if provider == Provider::Google {
                monthly_google(vantage, year, month)
            } else {
                monthly_provider(vantage, provider, year, month)
            };
            (
                monthly_source_id(vantage, provider, year, month),
                spec,
                monthly_seed(seed, year, month),
            )
        })
        .collect();
    // Register every source before any generation work, so a
    // spec/scale/seed conflict fails fast instead of mid-series.
    for (id, spec, mseed) in &months {
        ensure_source(
            wh,
            id,
            &SourceInfo {
                spec: spec.clone(),
                scale,
                seed: *mseed,
            },
        )?;
    }
    let tasks = months
        .into_iter()
        .map(|(id, spec, mseed)| {
            let opts = PipelineOpts {
                warehouse: Some(WarehouseTarget {
                    store: Arc::clone(wh),
                    source: id.clone(),
                    config,
                }),
                ..opts.clone()
            };
            let label = format!("store.ingest.{id}");
            (label, move || run_spec_with(spec, scale, mseed, &opts))
        })
        .collect();
    Ok(crate::suite::run_tasks(tasks, jobs, |run: &DatasetRun| {
        run.ingest_stats.rows
    }))
}

/// Re-read a capture file and append its rows to the warehouse (the
/// two-pass `--keep-capture` path, and `analyze`/`live` on an existing
/// capture). The enrichment context is reconstructed from
/// `(spec, scale, seed)` exactly as the analysis pass does, so the
/// stored rows match what the analyzer saw. Partitions stay staged.
pub fn append_capture(
    target: &WarehouseTarget,
    spec: &DatasetSpec,
    scale: Scale,
    seed: u64,
    path: &Path,
) -> Result<AppendStats, String> {
    let plan = InternetPlan::build(&plan_config_for(spec, scale, seed));
    let enricher = Enricher::new(plan.mapper);
    let file = std::fs::File::open(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let reader = CaptureReader::new(std::io::BufReader::new(file))
        .map_err(|e| format!("{}: {e}", path.display()))?;
    let mut ingest = CaptureIngest::new(reader, enricher);
    let mut app = target.store.appender(&target.source, target.config);
    for row in ingest.by_ref() {
        app.push(&row);
    }
    app.finish().map_err(|e| e.to_string())
}

/// [`append_capture`] with source registration under `spec.id()`: the
/// convenience entry the `analyze --warehouse` and `live --warehouse`
/// commands use on an existing capture file.
pub fn append_dataset_capture(
    wh: &Arc<Warehouse>,
    spec: &DatasetSpec,
    scale: Scale,
    seed: u64,
    path: &Path,
    config: AppendConfig,
) -> Result<AppendStats, String> {
    let id = spec.id();
    ensure_source(
        wh,
        &id,
        &SourceInfo {
            spec: spec.clone(),
            scale,
            seed,
        },
    )?;
    let target = WarehouseTarget {
        store: Arc::clone(wh),
        source: id,
        config,
    };
    append_capture(&target, spec, scale, seed, path)
}

/// One source's full analysis state, rebuilt from warehouse scans.
pub struct SourceAnalysis {
    /// The source id (usually the dataset id, `nl-w2020`...).
    pub id: String,
    /// The recorded identity the enrichment context came from.
    pub info: SourceInfo,
    /// The aggregated analysis over the matching rows.
    pub analysis: DatasetAnalysis,
    /// The Facebook dual-stack analysis over the matching rows.
    pub dualstack: DualStackAnalysis,
    /// Scan accounting (pruned/scanned/corrupt partitions, row counts).
    pub stats: ScanStats,
}

/// Rebuild one source's analysis from committed partitions, with
/// `pred` pushed down (zone-map pruning first, residual row filter on
/// survivors). Partitions are split into at most `jobs * 4` contiguous
/// chunks scanned in parallel, each holding one decoded partition at a
/// time — memory stays bounded by `jobs`, not warehouse size — and the
/// chunk partials merge in input order, so the result is byte-identical
/// for any job count.
pub fn analyze_source(
    wh: &Warehouse,
    id: &str,
    pred: &Predicate,
    jobs: usize,
) -> Result<SourceAnalysis, String> {
    let info = source_info(wh, id)?;
    let mut pred = pred.clone();
    pred.source = Some(id.to_string());
    let (metas, mut stats) = wh.plan(&pred);
    if warehouse::explain::enabled() {
        let text = warehouse::explain::render_plan(&pred, &metas, &stats);
        warehouse::explain::record_plan(id.to_string(), text);
    }
    // zone + PTR view, reconstructed as analyze_capture does
    let engine = Engine::new(info.spec.clone(), info.scale, info.seed);
    let fresh_sink = || {
        FanoutSink::new(
            DatasetAnalysis::new(engine.zone().clone()),
            DualStackSink::new(
                DualStackAnalysis::with_servers(&info.spec.servers),
                engine.ptr_db(),
            ),
        )
    };

    let sink = if metas.is_empty() {
        fresh_sink()
    } else {
        let chunk_count = metas.len().min(jobs.max(1) * 4);
        let chunk_size = metas.len().div_ceil(chunk_count);
        let fresh_ref = &fresh_sink;
        let pred_ref = &pred;
        let tasks: Vec<(String, _)> = metas
            .chunks(chunk_size)
            .enumerate()
            .map(|(i, chunk)| {
                let label = format!("store.scan.{id}.{i}");
                (label, move || {
                    let mut stats = ScanStats::default();
                    let mut sink = fresh_ref();
                    for meta in chunk {
                        let Some(batch) = wh.read_for_scan(meta, &mut stats) else {
                            continue;
                        };
                        for row in batch.iter() {
                            if row_matches(&row, pred_ref) {
                                stats.rows_matched += 1;
                                sink.push(&row);
                            }
                        }
                    }
                    (sink, stats)
                })
            })
            .collect();
        let mut parts =
            crate::suite::run_tasks(tasks, jobs, |(_, s): &(_, ScanStats)| s.rows).into_iter();
        let (mut sink, part_stats) = parts.next().expect("at least one chunk");
        stats.merge(&part_stats);
        for (partial, partial_stats) in parts {
            sink.merge(partial);
            stats.merge(&partial_stats);
        }
        sink
    };

    let (analysis, dualstack) = sink.into_parts();
    let dualstack = dualstack.into_inner();
    Ok(SourceAnalysis {
        id: id.to_string(),
        info,
        analysis,
        dualstack,
        stats,
    })
}

/// The sources a warehouse report covers: the one `pred` names, or
/// every registered dataset source in registration order — the
/// `fig3-*` monthly samples are series points, not datasets, and
/// belong to [`monthly_series`].
fn report_sources(wh: &Warehouse, pred: &Predicate) -> Vec<String> {
    match &pred.source {
        Some(id) => vec![id.clone()],
        None => wh
            .sources()
            .into_iter()
            .map(|s| s.id)
            .filter(|id| !id.starts_with("fig3-"))
            .collect(),
    }
}

/// Rebuild every covered source's analysis from warehouse scans.
pub fn analyze_sources(
    wh: &Warehouse,
    pred: &Predicate,
    jobs: usize,
) -> Result<Vec<SourceAnalysis>, String> {
    report_sources(wh, pred)
        .iter()
        .map(|id| analyze_source(wh, id, pred, jobs))
        .collect()
}

/// The per-dataset text report (the same exhibits `dnscentral dataset`
/// prints) for every covered source, rendered from warehouse scans,
/// plus the merged scan accounting.
pub fn render_report(
    wh: &Warehouse,
    pred: &Predicate,
    jobs: usize,
) -> Result<(String, ScanStats), String> {
    let mut out = String::new();
    let mut stats = ScanStats::default();
    for sa in analyze_sources(wh, pred, jobs)? {
        out.push_str(&crate::report::render_dataset_report(
            &sa.id,
            sa.info.spec.vantage,
            &sa.analysis,
            &sa.dualstack,
            &sa.info.spec,
        ));
        stats.merge(&sa.stats);
    }
    Ok((out, stats))
}

/// The JSON report from warehouse scans: one
/// [`crate::report::dataset_json`] document per covered source. A
/// single-source scan yields that document bare (exactly what
/// `dnscentral dataset --json` prints), several yield an array.
pub fn report_json(
    wh: &Warehouse,
    pred: &Predicate,
    jobs: usize,
) -> Result<(serde_json::Value, ScanStats), String> {
    let sas = analyze_sources(wh, pred, jobs)?;
    let mut stats = ScanStats::default();
    let mut docs: Vec<serde_json::Value> = Vec::with_capacity(sas.len());
    for sa in &sas {
        docs.push(crate::report::dataset_json(&sa.id, &sa.analysis));
        stats.merge(&sa.stats);
    }
    let doc = if docs.len() == 1 {
        docs.pop().expect("one doc")
    } else {
        serde_json::Value::Array(docs)
    };
    Ok((doc, stats))
}

/// The Figure 3 monthly series from warehouse scans: one sample per
/// ingested `fig3-*` source, up to `jobs` months in flight, samples in
/// month order for any job count.
pub fn monthly_series(
    wh: &Warehouse,
    vantage: Vantage,
    provider: Provider,
    jobs: usize,
) -> Result<(Vec<MonthlySample>, ScanStats), String> {
    let tasks = figure3_months()
        .into_iter()
        .map(|(year, month)| {
            let id = monthly_source_id(vantage, provider, year, month);
            let label = format!("store.fig3.{id}");
            let task = move || -> Result<(MonthlySample, ScanStats), String> {
                let sa = analyze_source(wh, &id, &Predicate::all(), 1)?;
                let agg = sa.analysis.provider(Some(provider));
                let mut qtypes: Counter<RType> = Counter::new();
                for (t, c) in agg.qtype.iter() {
                    qtypes.add(*t, c);
                }
                Ok((
                    MonthlySample::from_counters(year, month, &qtypes, agg.minimized_ns),
                    sa.stats,
                ))
            };
            (label, task)
        })
        .collect();
    let out = crate::suite::run_tasks(tasks, jobs, |r: &Result<(MonthlySample, ScanStats), _>| {
        r.as_ref().map(|(s, _)| s.total).unwrap_or(0)
    });
    let mut series = Vec::with_capacity(out.len());
    let mut stats = ScanStats::default();
    for r in out {
        let (sample, s) = r?;
        series.push(sample);
        stats.merge(&s);
    }
    Ok((series, stats))
}

/// The measured-vs-paper comparison ([`crate::paper::compare_with`])
/// rebuilt entirely from warehouse scans: the five comparison datasets
/// plus both Figure 3 series must have been ingested. Produces the
/// same rows the in-memory run does on the same `(scale, seed)`.
pub fn compare(wh: &Warehouse, jobs: usize) -> Result<(Vec<ComparisonRow>, ScanStats), String> {
    let mut stats = ScanStats::default();
    let mut get = |vantage: Vantage, year: u16| -> Result<Measured, String> {
        let sa = analyze_source(wh, &dataset(vantage, year).id(), &Predicate::all(), jobs)?;
        stats.merge(&sa.stats);
        Ok(Measured {
            id: sa.id,
            analysis: sa.analysis,
        })
    };
    let nl20 = get(Vantage::Nl, 2020)?;
    let nl19 = get(Vantage::Nl, 2019)?;
    let nz20 = get(Vantage::Nz, 2020)?;
    let nz19 = get(Vantage::Nz, 2019)?;
    let br20 = get(Vantage::BRoot, 2020)?;
    let (nl_series, nl_stats) = monthly_series(wh, Vantage::Nl, Provider::Google, jobs)?;
    let (nz_series, nz_stats) = monthly_series(wh, Vantage::Nz, Provider::Google, jobs)?;
    stats.merge(&nl_stats);
    stats.merge(&nz_stats);
    let rows = compare_rows(&nl20, &nl19, &nz20, &nz19, &br20, &nl_series, &nz_series);
    Ok((rows, stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monthly_ids_are_distinct_and_stable() {
        let a = monthly_source_id(Vantage::Nl, Provider::Google, 2019, 12);
        let b = monthly_source_id(Vantage::Nz, Provider::Google, 2019, 12);
        let c = monthly_source_id(Vantage::Nl, Provider::Google, 2020, 1);
        assert_eq!(a, "fig3-google-nl-2019-12");
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn source_info_roundtrips_through_manifest_metadata() {
        let dir = std::env::temp_dir().join(format!("dnswh-src-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let wh = Warehouse::open(&dir).unwrap();
        let info = SourceInfo {
            spec: dataset(Vantage::Nz, 2019),
            scale: Scale::tiny(),
            seed: 77,
        };
        ensure_source(&wh, "nz-w2019", &info).unwrap();
        // same identity re-registers cleanly; a different seed is refused
        ensure_source(&wh, "nz-w2019", &info).unwrap();
        let again = SourceInfo {
            seed: 78,
            ..info.clone()
        };
        assert!(ensure_source(&wh, "nz-w2019", &again).is_err());
        let back = source_info(&wh, "nz-w2019").unwrap();
        assert_eq!(back.seed, 77);
        assert_eq!(back.spec.id(), "nz-w2019");
        assert!(source_info(&wh, "missing").is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn monthly_seed_matches_series_derivation() {
        assert_eq!(monthly_seed(42, 2019, 12), 42 ^ ((2019u64 << 8) | 12));
    }
}

//! Parallel analysis is a pure parallelization: for any seed and any
//! worker count, the rendered report is identical to the serial run.
//! Whole time slices are routed to workers, every sink is an
//! order-insensitive function of its row multiset, and partials merge
//! in worker order — so determinism is structural. This property test
//! pins the consumer side the way `shard_determinism` pins the
//! generator side.

use dnscentral_core::pipeline::{run_spec_with, PipelineOpts};
use dnscentral_core::report;
use proptest::prelude::*;
use simnet::profile::Vantage;
use simnet::scenario::{dataset, Scale};

/// Everything report-shaped one run produces, as comparable strings.
fn rendered_run(seed: u64, jobs: usize) -> (String, entrada::ingest::IngestStats, String) {
    let run = run_spec_with(
        dataset(Vantage::Nz, 2020),
        Scale::tiny(),
        seed,
        &PipelineOpts::with_jobs(jobs),
    );
    let json = serde_json::to_string_pretty(&report::dataset_json(&run.id, &run.analysis))
        .expect("serializes");
    let mut dual = String::new();
    for server in &run.spec.servers {
        for site in run.dualstack.report_for_server(server.v4.into()) {
            dual.push_str(&format!("{site:?}\n"));
        }
    }
    (json, run.ingest_stats, dual)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// N analysis workers render byte-identical reports to one.
    #[test]
    fn parallel_analysis_is_byte_identical(seed in 0u64..10_000, jobs in 2usize..=4) {
        let (json1, stats1, dual1) = rendered_run(seed, 1);
        let (jsonn, statsn, dualn) = rendered_run(seed, jobs);
        prop_assert_eq!(stats1, statsn, "jobs={} ingest accounting diverged", jobs);
        prop_assert_eq!(json1, jsonn, "jobs={} dataset JSON diverged", jobs);
        prop_assert_eq!(dual1, dualn, "jobs={} dual-stack reports diverged", jobs);
    }
}

/// The headline case from the issue, pinned as a plain test so it runs
/// even when the property sampler picks other job counts.
#[test]
fn one_equals_four() {
    let (json1, stats1, dual1) = rendered_run(42, 1);
    let (json4, stats4, dual4) = rendered_run(42, 4);
    assert_eq!(stats1, stats4);
    assert_eq!(json1, json4);
    assert_eq!(dual1, dual4);
}

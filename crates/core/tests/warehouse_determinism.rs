//! The tentpole's acceptance tests at the core level: a report rebuilt
//! from warehouse scans is byte-identical to the in-memory pipeline's
//! report for any `--jobs` value, zone-map pruning actually skips
//! partitions, and a corrupt partition degrades to a warning + counter
//! instead of sinking the whole scan.

use dnscentral_core::pipeline::PipelineOpts;
use dnscentral_core::report::render_dataset_report;
use dnscentral_core::store;
use simnet::profile::Vantage;
use simnet::scenario::{dataset, Scale};
use std::sync::Arc;
use warehouse::{AppendConfig, Predicate, Warehouse};

fn fresh_root(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("dnswh-core-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Small partitions so even tiny-scale datasets span several files —
/// otherwise the pruning and parallel-chunk paths have nothing to do.
fn config() -> AppendConfig {
    AppendConfig {
        max_rows: 4096,
        ..AppendConfig::default()
    }
}

#[test]
fn warehouse_report_is_byte_identical_to_in_memory_for_any_jobs() {
    let root = fresh_root("determinism");
    let wh = Arc::new(Warehouse::open(&root).expect("open"));
    let opts = PipelineOpts::default();

    // Ingest two datasets through the fused pipeline; the returned runs
    // ARE the in-memory analyses the scans must reproduce.
    let runs = [
        store::ingest_spec(
            &wh,
            dataset(Vantage::Nz, 2020),
            Scale::tiny(),
            42,
            &opts,
            config(),
        )
        .expect("ingest nz"),
        store::ingest_spec(
            &wh,
            dataset(Vantage::Nl, 2018),
            Scale::tiny(),
            42,
            &opts,
            config(),
        )
        .expect("ingest nl"),
    ];
    let committed = wh.commit().expect("commit");
    assert!(committed >= 2, "{committed} partitions across two datasets");

    let expected: String = runs
        .iter()
        .map(|run| {
            render_dataset_report(
                &run.id,
                run.spec.vantage,
                &run.analysis,
                &run.dualstack,
                &run.spec,
            )
        })
        .collect();

    // Reopen from disk: everything below must come from the files.
    let wh = Warehouse::open(&root).expect("reopen");
    for jobs in [1, 4] {
        let (text, stats) =
            store::render_report(&wh, &Predicate::all(), jobs).expect("warehouse report");
        assert_eq!(
            text, expected,
            "report --warehouse (jobs={jobs}) diverges from the in-memory report"
        );
        assert_eq!(stats.corrupt, 0);
        assert_eq!(stats.rows, stats.rows_matched);
    }

    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn zone_maps_prune_partitions_outside_the_time_range() {
    let root = fresh_root("pruning");
    let wh = Arc::new(Warehouse::open(&root).expect("open"));
    let opts = PipelineOpts::default();
    let nz = dataset(Vantage::Nz, 2020);
    let nl = dataset(Vantage::Nl, 2018);
    let nl_rows = [
        store::ingest_spec(&wh, nz, Scale::tiny(), 7, &opts, config()).expect("ingest nz"),
        store::ingest_spec(&wh, nl.clone(), Scale::tiny(), 7, &opts, config()).expect("ingest nl"),
    ][1]
    .ingest_stats
    .rows;
    wh.commit().expect("commit");

    // The .nl 2018 week: every nz-w2020 partition must be pruned by its
    // zone map alone, and the matched rows are exactly the nl ingest.
    let pred = Predicate::between(nl.start, nl.end());
    let sa = store::analyze_source(&wh, "nl-w2018", &pred, 2).expect("scan");
    assert_eq!(sa.stats.rows_matched, nl_rows);
    let (metas, stats) = wh.plan(&Predicate::between(nl.start, nl.end()));
    assert!(stats.pruned > 0, "{}", stats.summary());
    assert!(metas.iter().all(|m| m.source == "nl-w2018"));

    // A window before every dataset prunes everything.
    let (metas, stats) = wh.plan(&Predicate::between(
        netbase::time::SimTime(0),
        netbase::time::SimTime(1),
    ));
    assert!(metas.is_empty());
    assert_eq!(stats.pruned, stats.partitions_total);

    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn corrupt_partition_is_skipped_with_a_warning_not_a_panic() {
    let root = fresh_root("corrupt");
    let wh = Arc::new(Warehouse::open(&root).expect("open"));
    let opts = PipelineOpts::default();
    store::ingest_spec(
        &wh,
        dataset(Vantage::Nz, 2020),
        Scale::tiny(),
        3,
        &opts,
        config(),
    )
    .expect("ingest");
    wh.commit().expect("commit");

    let metas = wh.partitions();
    assert!(metas.len() >= 2, "need several partitions to corrupt one");
    let victim = root.join(&metas[0].file);
    let bytes = std::fs::read(&victim).expect("read partition");
    std::fs::write(&victim, &bytes[..bytes.len() / 2]).expect("truncate partition");

    let wh = Warehouse::open(&root).expect("reopen");
    let sa = store::analyze_source(&wh, "nz-w2020", &Predicate::all(), 2).expect("scan survives");
    assert_eq!(sa.stats.corrupt, 1, "{}", sa.stats.summary());
    assert_eq!(sa.stats.scanned, metas.len() as u64 - 1);
    assert_eq!(
        sa.stats.rows,
        metas.iter().skip(1).map(|m| m.zone.rows).sum::<u64>(),
        "every intact partition is still served"
    );

    let _ = std::fs::remove_dir_all(&root);
}

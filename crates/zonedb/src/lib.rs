//! Zone models for the three vantage points of the IMC 2020 study:
//! `.nl` (second-level registrations only), `.nz` (second- *and*
//! third-level registrations, analyzed together with its subzones), and
//! the root zone served by B-Root.
//!
//! The real registries hold millions of names we cannot ship, so names
//! are *generated*: an invertible syllable encoding maps a domain index
//! to a pronounceable label and back, which lets an authoritative-server
//! model answer membership queries (`NOERROR` vs `NXDOMAIN`) over a
//! multi-million-name zone without materializing it.
//!
//! [`popularity`] provides the Zipf sampler that makes some domains hot
//! (what resolver caches then flatten into the cache-miss stream the
//! vantages observe), and [`junk`] generates the paper's §3 "junk"
//! traffic, including Chromium's random-TLD probes.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod junk;
pub mod names;
pub mod popularity;
pub mod zone;

pub use junk::JunkGenerator;
pub use names::{decode_label, encode_label};
pub use popularity::ZipfSampler;
pub use zone::{Lookup, ZoneModel};

//! Zipf-distributed domain popularity.
//!
//! Query volume across domains in a TLD is heavy-tailed: a few names
//! absorb most traffic. The sampler uses continuous inverse-CDF
//! approximation of the Zipf(s, n) distribution — cheap (O(1) per
//! draw), deterministic under a seeded RNG, and accurate enough that
//! the rank-frequency slope matches the configured exponent.

use rand::Rng;

/// Approximate Zipf sampler over ranks `0..n` (rank 0 is the hottest).
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    n: u64,
    s: f64,
    /// H(n+1) with H the continuous harmonic integral, precomputed.
    h_total: f64,
}

impl ZipfSampler {
    /// Build for `n` items with exponent `s` (s=1.0 is classic Zipf).
    ///
    /// # Panics
    /// If `n` is 0 or `s` is negative/non-finite.
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n > 0, "empty population");
        assert!(s.is_finite() && s >= 0.0, "bad exponent");
        ZipfSampler {
            n,
            s,
            h_total: h(n as f64 + 1.0, s),
        }
    }

    /// Number of items.
    pub fn population(&self) -> u64 {
        self.n
    }

    /// Draw a rank in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen_range(0.0..1.0);
        let x = h_inv(u * self.h_total, self.s);
        // x is in [1, n+1); shift to 0-based rank and clamp defensively.
        ((x.floor() as u64).saturating_sub(1)).min(self.n - 1)
    }
}

/// Continuous harmonic integral: ∫ 1..x t^-s dt (plus the s=1 limit).
fn h(x: f64, s: f64) -> f64 {
    if (s - 1.0).abs() < 1e-9 {
        x.ln()
    } else {
        (x.powf(1.0 - s) - 1.0) / (1.0 - s)
    }
}

/// Inverse of [`h`].
fn h_inv(y: f64, s: f64) -> f64 {
    if (s - 1.0).abs() < 1e-9 {
        y.exp()
    } else {
        (1.0 + y * (1.0 - s)).powf(1.0 / (1.0 - s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_in_range() {
        let z = ZipfSampler::new(1000, 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 1000);
        }
    }

    #[test]
    fn rank_zero_is_hottest() {
        let z = ZipfSampler::new(10_000, 1.0);
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts = vec![0u64; 10_000];
        for _ in 0..200_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        assert!(counts[0] > counts[9], "{} !> {}", counts[0], counts[9]);
        assert!(counts[0] > counts[99]);
        assert!(counts[0] > counts[999]);
        // head concentration: top-100 of 10k should hold a large share
        let head: u64 = counts[..100].iter().sum();
        let total: u64 = counts.iter().sum();
        assert!(
            head as f64 / total as f64 > 0.35,
            "top-1% share {}",
            head as f64 / total as f64
        );
    }

    #[test]
    fn exponent_zero_is_roughly_uniform() {
        let z = ZipfSampler::new(100, 0.0);
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = vec![0u64; 100];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(
            (*max as f64) / (*min as f64) < 1.5,
            "uniform-ish expected: min={min} max={max}"
        );
    }

    #[test]
    fn higher_exponent_concentrates_more() {
        let mut rng = StdRng::seed_from_u64(6);
        let share = |s: f64, rng: &mut StdRng| {
            let z = ZipfSampler::new(1000, s);
            let mut top = 0u64;
            for _ in 0..50_000 {
                if z.sample(rng) < 10 {
                    top += 1;
                }
            }
            top as f64 / 50_000.0
        };
        let light = share(0.6, &mut rng);
        let heavy = share(1.4, &mut rng);
        assert!(heavy > light + 0.1, "heavy={heavy} light={light}");
    }

    #[test]
    fn single_item_population() {
        let z = ZipfSampler::new(1, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }

    #[test]
    #[should_panic(expected = "empty population")]
    fn zero_population_panics() {
        ZipfSampler::new(0, 1.0);
    }

    #[test]
    fn deterministic_with_seed() {
        let z = ZipfSampler::new(500, 0.9);
        let mut a = StdRng::seed_from_u64(8);
        let mut b = StdRng::seed_from_u64(8);
        for _ in 0..1000 {
            assert_eq!(z.sample(&mut a), z.sample(&mut b));
        }
    }
}

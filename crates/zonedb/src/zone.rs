//! Authoritative zone models for `.nl`, `.nz` and the root.

use crate::names::{decode_label, encode_label, tld_label};
use dns_wire::name::Name;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The `.nz` second-level subzones under which third-level registrations
/// live (the paper: ".nz allows registrations as a third-level domain
/// ... as well as a second-level domain"). Weights approximate the real
/// skew towards `co.nz`.
pub const NZ_SUBZONES: [(&str, f64); 7] = [
    ("co", 0.72),
    ("net", 0.06),
    ("org", 0.08),
    ("govt", 0.02),
    ("ac", 0.03),
    ("school", 0.05),
    ("geek", 0.04),
];

/// What an authoritative server would say about a qname.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Lookup {
    /// The name is the zone apex or an in-zone structural name
    /// (e.g. `co.nz` at the `.nz` servers); answered authoritatively.
    InZone,
    /// The name equals or falls under a registered delegation; the
    /// server returns a referral (or the delegation's records) —
    /// NOERROR either way.
    Delegated,
    /// Nothing registered matches: NXDOMAIN.
    NxDomain,
}

impl Lookup {
    /// Does this resolution produce a NOERROR rcode (the paper's
    /// "valid query" criterion)?
    pub fn is_valid(self) -> bool {
        !matches!(self, Lookup::NxDomain)
    }
}

/// The kind of zone, fixing its registration structure.
#[derive(Debug, Clone, PartialEq)]
enum ZoneKind {
    /// Registrations are second-level domains only (`.nl`).
    SecondLevel {
        /// Number of registered SLDs.
        slds: u64,
    },
    /// Registrations at the second level plus third level under fixed
    /// subzones (`.nz`).
    MixedLevel {
        /// Number of direct second-level registrations.
        slds: u64,
        /// Number of third-level registrations (spread over
        /// [`NZ_SUBZONES`] by weight).
        thirds: u64,
    },
    /// The root: registrations are TLD delegations.
    Root {
        /// Number of TLDs.
        tlds: usize,
    },
}

/// A generated zone: apex plus a deterministic registration universe.
#[derive(Debug, Clone)]
pub struct ZoneModel {
    apex: Name,
    kind: ZoneKind,
    /// Fraction of registered domains that are DNSSEC-signed (have DS
    /// records at the parent); drives DS-query volume.
    pub signed_fraction: f64,
    tld_cache: Option<HashMap<Name, u64>>,
}

impl PartialEq for ZoneModel {
    fn eq(&self, other: &Self) -> bool {
        self.apex == other.apex && self.kind == other.kind
    }
}

impl ZoneModel {
    /// The `.nl` model with `slds` registered second-level domains
    /// (paper: 5.8-5.9M; simulations scale this down). More than half of
    /// `.nl` is DNSSEC-signed, the highest of any large TLD.
    pub fn nl(slds: u64) -> Self {
        ZoneModel {
            apex: "nl".parse().expect("static"),
            kind: ZoneKind::SecondLevel { slds },
            signed_fraction: 0.55,
            tld_cache: None,
        }
    }

    /// The `.nz` model (paper: 140-141k SLDs + 569-580k third-level).
    pub fn nz(slds: u64, thirds: u64) -> Self {
        ZoneModel {
            apex: "nz".parse().expect("static"),
            kind: ZoneKind::MixedLevel { slds, thirds },
            signed_fraction: 0.05,
            tld_cache: None,
        }
    }

    /// The root-zone model with `tlds` delegations (~1500 in reality).
    pub fn root(tlds: usize) -> Self {
        let mut cache = HashMap::with_capacity(tlds);
        for i in 0..tlds {
            let label = tld_label(i);
            cache.insert(label.parse().expect("generated TLDs parse"), i as u64);
        }
        ZoneModel {
            apex: Name::root(),
            kind: ZoneKind::Root { tlds },
            signed_fraction: 0.90,
            tld_cache: Some(cache),
        }
    }

    /// The zone apex.
    pub fn apex(&self) -> &Name {
        &self.apex
    }

    /// Total registered delegations.
    pub fn domain_count(&self) -> u64 {
        match self.kind {
            ZoneKind::SecondLevel { slds } => slds,
            ZoneKind::MixedLevel { slds, thirds } => slds + thirds,
            ZoneKind::Root { tlds } => tlds as u64,
        }
    }

    /// The `idx`-th registered delegation name (idx < domain_count).
    ///
    /// For `.nz`, indices below the SLD count yield `label.nz`; the rest
    /// yield `label.<subzone>.nz` with subzones weighted per
    /// [`NZ_SUBZONES`].
    pub fn registered_domain(&self, idx: u64) -> Name {
        match &self.kind {
            ZoneKind::SecondLevel { slds } => {
                assert!(idx < *slds, "index out of zone");
                self.apex
                    .child(encode_label(idx).as_bytes())
                    .expect("generated labels are short")
            }
            ZoneKind::MixedLevel { slds, thirds } => {
                assert!(idx < slds + thirds, "index out of zone");
                if idx < *slds {
                    self.apex
                        .child(encode_label(idx).as_bytes())
                        .expect("generated labels are short")
                } else {
                    let t = idx - slds;
                    let (sub, local) = third_level_split(t, *thirds);
                    self.apex
                        .child(sub.as_bytes())
                        .and_then(|z| z.child(encode_label(local).as_bytes()))
                        .expect("generated labels are short")
                }
            }
            ZoneKind::Root { tlds } => {
                assert!(idx < *tlds as u64, "index out of zone");
                tld_label(idx as usize)
                    .parse()
                    .expect("generated TLDs parse")
            }
        }
    }

    /// Whether the registered delegation at `idx` is DNSSEC-signed.
    /// Deterministic: a hash of the index against `signed_fraction`.
    pub fn is_signed(&self, idx: u64) -> bool {
        // splitmix-style scramble for a uniform [0,1) slot
        let mut z = idx.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        (z as f64 / u64::MAX as f64) < self.signed_fraction
    }

    /// Resolve a qname the way this zone's authoritative servers would.
    pub fn classify(&self, qname: &Name) -> Lookup {
        if qname == &self.apex {
            return Lookup::InZone;
        }
        if !qname.is_subdomain_of(&self.apex) {
            // A query for an out-of-bailiwick name: the real servers
            // answer REFUSED, but for rcode accounting it is junk
            // either way; callers treat it as NxDomain-class.
            return Lookup::NxDomain;
        }
        match &self.kind {
            ZoneKind::SecondLevel { slds } => {
                let sld = ancestor_at(qname, 2);
                match leftmost_index(&sld) {
                    Some(idx) if idx < *slds => Lookup::Delegated,
                    _ => Lookup::NxDomain,
                }
            }
            ZoneKind::MixedLevel { slds, thirds } => {
                let sld = ancestor_at(qname, 2);
                let sld_label = label_string(&sld);
                // structural subzone like co.nz?
                if let Some(sub_pos) = NZ_SUBZONES.iter().position(|(s, _)| *s == sld_label) {
                    if qname.label_count() == 2 {
                        return Lookup::InZone;
                    }
                    let third = ancestor_at(qname, 3);
                    match leftmost_index(&third) {
                        Some(local) if third_level_member(sub_pos, local, *thirds) => {
                            Lookup::Delegated
                        }
                        _ => Lookup::NxDomain,
                    }
                } else {
                    match leftmost_index(&sld) {
                        Some(idx) if idx < *slds => Lookup::Delegated,
                        _ => Lookup::NxDomain,
                    }
                }
            }
            ZoneKind::Root { .. } => {
                let tld = ancestor_at(qname, 1);
                let cache = self.tld_cache.as_ref().expect("root model has cache");
                if cache.contains_key(&tld) {
                    Lookup::Delegated
                } else {
                    Lookup::NxDomain
                }
            }
        }
    }

    /// The qname a QNAME-minimizing resolver (RFC 7816) would send to
    /// this zone's servers when resolving `full`: stripped to one label
    /// more than the deepest zone cut the servers are authoritative for.
    ///
    /// For `.nl`: `a.b.example.nl` -> `example.nl`. For `.nz`, names
    /// under a structural subzone strip to the third level on the second
    /// pass (`a.example.co.nz` -> `example.co.nz`) but a first-pass
    /// resolver asks for `co.nz` itself; both appear in real minimized
    /// streams. This returns the deepest minimized form.
    pub fn minimized_qname(&self, full: &Name) -> Name {
        let apex_depth = self.apex.label_count();
        match &self.kind {
            ZoneKind::MixedLevel { .. } => {
                let sld = ancestor_at(full, 2);
                if NZ_SUBZONES.iter().any(|(s, _)| *s == label_string(&sld))
                    && full.label_count() >= 3
                {
                    return ancestor_at(full, 3);
                }
                ancestor_at(full, apex_depth + 1)
            }
            _ => ancestor_at(full, apex_depth + 1),
        }
    }

    /// The registration index of the delegation `qname` equals or falls
    /// under — the inverse of [`ZoneModel::registered_domain`]. `None`
    /// for junk, in-zone, and out-of-bailiwick names. This is what lets
    /// an authoritative server decide, from the qname alone, whether the
    /// delegation is DNSSEC-signed (`delegation_index` → `is_signed`).
    pub fn delegation_index(&self, qname: &Name) -> Option<u64> {
        if self.classify(qname) != Lookup::Delegated {
            return None;
        }
        match &self.kind {
            ZoneKind::SecondLevel { .. } => leftmost_index(&ancestor_at(qname, 2)),
            ZoneKind::MixedLevel { slds, thirds } => {
                let sld = ancestor_at(qname, 2);
                let sld_label = label_string(&sld);
                match NZ_SUBZONES.iter().position(|(s, _)| *s == sld_label) {
                    Some(sub_pos) => {
                        let local = leftmost_index(&ancestor_at(qname, 3))?;
                        let start: u64 = (0..sub_pos)
                            .map(|j| share_of(j, NZ_SUBZONES[j].1, *thirds))
                            .sum();
                        Some(slds + start + local)
                    }
                    None => leftmost_index(&sld),
                }
            }
            ZoneKind::Root { .. } => {
                let tld = ancestor_at(qname, 1);
                self.tld_cache.as_ref().and_then(|c| c.get(&tld).copied())
            }
        }
    }

    /// True when this is the root-zone model.
    pub fn is_root_zone(&self) -> bool {
        matches!(self.kind, ZoneKind::Root { .. })
    }
}

/// Where third-level registration index `t` (0-based over all thirds)
/// lands: subzone label and index local to that subzone.
fn third_level_split(t: u64, thirds: u64) -> (&'static str, u64) {
    let mut start = 0u64;
    for (i, (label, w)) in NZ_SUBZONES.iter().enumerate() {
        let count = share_of(i, *w, thirds);
        if t < start + count {
            return (label, t - start);
        }
        start += count;
    }
    // rounding remainder lands in the last subzone
    let (label, _) = NZ_SUBZONES[NZ_SUBZONES.len() - 1];
    (
        label,
        t - start
            + share_of(
                NZ_SUBZONES.len() - 1,
                NZ_SUBZONES[NZ_SUBZONES.len() - 1].1,
                thirds,
            ),
    )
}

/// Registration count allotted to subzone `i` out of `thirds` total.
fn share_of(i: usize, weight: f64, thirds: u64) -> u64 {
    if i == NZ_SUBZONES.len() - 1 {
        // absorb rounding remainder in the last subzone
        let assigned: u64 = NZ_SUBZONES[..i]
            .iter()
            .map(|(_, w)| (*w * thirds as f64) as u64)
            .sum();
        thirds - assigned
    } else {
        (weight * thirds as f64) as u64
    }
}

/// Is `local` a registered third-level index inside subzone `sub_pos`?
fn third_level_member(sub_pos: usize, local: u64, thirds: u64) -> bool {
    local < share_of(sub_pos, NZ_SUBZONES[sub_pos].1, thirds)
}

/// The ancestor of `name` with exactly `depth` labels (`name` itself if
/// already at or below that depth).
fn ancestor_at(name: &Name, depth: usize) -> Name {
    let mut n = name.clone();
    while n.label_count() > depth {
        n = n.parent();
    }
    n
}

/// The leftmost label as a lowercase string.
fn label_string(name: &Name) -> String {
    name.labels()
        .next()
        .map(|l| String::from_utf8_lossy(l).to_lowercase())
        .unwrap_or_default()
}

/// Decode the leftmost label of `name` as a registration index.
fn leftmost_index(name: &Name) -> Option<u64> {
    name.labels().next().and_then(|l| {
        let s = std::str::from_utf8(l).ok()?;
        decode_label(&s.to_lowercase())
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    #[test]
    fn delegation_index_inverts_registered_domain() {
        for zone in [
            ZoneModel::nl(1000),
            ZoneModel::nz(140, 560),
            ZoneModel::root(300),
        ] {
            for idx in 0..zone.domain_count() {
                let name = zone.registered_domain(idx);
                assert_eq!(
                    zone.delegation_index(&name),
                    Some(idx),
                    "{name} in {}",
                    zone.apex()
                );
                // deep names under the delegation resolve to the same index
                if !zone.is_root_zone() {
                    let www = name.child(b"www").unwrap();
                    assert_eq!(zone.delegation_index(&www), Some(idx), "{www}");
                }
            }
            // junk and apex names have no index
            assert_eq!(zone.delegation_index(zone.apex()), None);
        }
        let nl = ZoneModel::nl(50);
        assert_eq!(nl.delegation_index(&n("not-registered-x.nl")), None);
        assert_eq!(nl.delegation_index(&n("example.com")), None);
    }

    #[test]
    fn nl_membership() {
        let z = ZoneModel::nl(1000);
        assert_eq!(z.domain_count(), 1000);
        for idx in [0u64, 1, 500, 999] {
            let d = z.registered_domain(idx);
            assert_eq!(d.label_count(), 2);
            assert!(d.is_subdomain_of(z.apex()));
            assert_eq!(z.classify(&d), Lookup::Delegated, "{d}");
            // names under a registered delegation are NOERROR referrals
            let www = d.child(b"www").unwrap();
            assert_eq!(z.classify(&www), Lookup::Delegated, "{www}");
        }
        // index 1000 is out of zone
        let ghost = z.apex().child(encode_label(1000).as_bytes()).unwrap();
        assert_eq!(z.classify(&ghost), Lookup::NxDomain);
        // garbage label
        assert_eq!(z.classify(&n("xyzzy123.nl")), Lookup::NxDomain);
        // apex itself
        assert_eq!(z.classify(&n("nl")), Lookup::InZone);
        // out of bailiwick
        assert_eq!(z.classify(&n("example.nz")), Lookup::NxDomain);
    }

    #[test]
    fn nl_case_insensitive_membership() {
        let z = ZoneModel::nl(100);
        let d = z.registered_domain(42);
        let upper: Name = d.to_string().to_uppercase().parse().unwrap();
        assert_eq!(z.classify(&upper), Lookup::Delegated);
    }

    #[test]
    fn nz_mixed_levels() {
        let z = ZoneModel::nz(140, 580);
        assert_eq!(z.domain_count(), 720);
        // SLD range
        let sld = z.registered_domain(10);
        assert_eq!(sld.label_count(), 2);
        assert_eq!(z.classify(&sld), Lookup::Delegated);
        // third-level range
        let third = z.registered_domain(140);
        assert_eq!(third.label_count(), 3, "{third}");
        assert_eq!(z.classify(&third), Lookup::Delegated, "{third}");
        // subzone apexes are in-zone, not NXDOMAIN
        assert_eq!(z.classify(&n("co.nz")), Lookup::InZone);
        assert_eq!(z.classify(&n("geek.nz")), Lookup::InZone);
        // unregistered third level
        assert_eq!(z.classify(&n("zzzzz.co.nz")), Lookup::NxDomain);
    }

    #[test]
    fn nz_all_thirds_resolve() {
        let z = ZoneModel::nz(100, 500);
        for idx in 100..600 {
            let d = z.registered_domain(idx);
            assert_eq!(z.classify(&d), Lookup::Delegated, "idx {idx} -> {d}");
        }
    }

    #[test]
    fn nz_subzone_weights_respected() {
        let z = ZoneModel::nz(0, 10_000);
        let mut co = 0;
        for idx in 0..10_000 {
            let d = z.registered_domain(idx);
            if d.to_string().ends_with(".co.nz.") {
                co += 1;
            }
        }
        let share = co as f64 / 10_000.0;
        assert!((0.65..0.8).contains(&share), "co.nz share {share}");
    }

    #[test]
    fn root_membership() {
        let z = ZoneModel::root(100);
        assert!(z.is_root_zone());
        assert_eq!(z.classify(&n("nl")), Lookup::Delegated);
        assert_eq!(z.classify(&n("example.com")), Lookup::Delegated);
        assert_eq!(z.classify(&n("a.b.c.org")), Lookup::Delegated);
        // Chromium-style junk probe
        assert_eq!(z.classify(&n("qwkzlpahd")), Lookup::NxDomain);
        assert_eq!(z.classify(&n("foo.notarealtld")), Lookup::NxDomain);
        for i in 0..100u64 {
            let d = z.registered_domain(i);
            assert_eq!(z.classify(&d), Lookup::Delegated, "{d}");
        }
    }

    #[test]
    fn minimized_qnames() {
        let nl = ZoneModel::nl(100);
        assert_eq!(nl.minimized_qname(&n("a.b.example.nl")), n("example.nl"));
        assert_eq!(nl.minimized_qname(&n("example.nl")), n("example.nl"));

        let nz = ZoneModel::nz(10, 10);
        assert_eq!(nz.minimized_qname(&n("www.shop.co.nz")), n("shop.co.nz"));
        assert_eq!(nz.minimized_qname(&n("direct.nz")), n("direct.nz"));
        assert_eq!(nz.minimized_qname(&n("www.direct.nz")), n("direct.nz"));

        let root = ZoneModel::root(20);
        assert_eq!(root.minimized_qname(&n("www.example.com")), n("com"));
    }

    #[test]
    fn minimized_qname_is_one_label_below_cut() {
        let nl = ZoneModel::nl(100);
        let full = n("deep.sub.host.example.nl");
        let m = nl.minimized_qname(&full);
        assert!(m.is_minimized_child_of(nl.apex()));
    }

    #[test]
    fn signed_fraction_is_deterministic_and_plausible() {
        let z = ZoneModel::nl(10_000);
        let signed = (0..10_000).filter(|&i| z.is_signed(i)).count();
        let frac = signed as f64 / 10_000.0;
        assert!((0.5..0.6).contains(&frac), "signed {frac}");
        // determinism
        assert_eq!(z.is_signed(77), z.is_signed(77));
    }

    #[test]
    fn lookup_validity_matches_rcode_semantics() {
        assert!(Lookup::InZone.is_valid());
        assert!(Lookup::Delegated.is_valid());
        assert!(!Lookup::NxDomain.is_valid());
    }

    #[test]
    #[should_panic(expected = "index out of zone")]
    fn out_of_range_index_panics() {
        ZoneModel::nl(5).registered_domain(5);
    }
}

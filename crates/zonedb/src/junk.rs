//! Junk-query generation: the traffic the paper's §3 classifies as
//! non-NOERROR.
//!
//! The root receives 68-80% junk, dominated (since 2019) by
//! Chromium-based browsers probing random, non-existent TLDs at network
//! startup; the ccTLDs see 11-34% junk, mostly typos and stale names.
//! This module generates both families of junk deterministically.

use crate::zone::ZoneModel;
use dns_wire::name::Name;
use rand::Rng;

/// What flavor of junk a generated qname represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JunkKind {
    /// A Chromium-style probe: one random alphabetic label, 7-15 chars,
    /// queried at the root (or leaked to a TLD).
    ChromiumProbe,
    /// A typo/stale name: an unregistered label under the zone apex.
    StaleName,
    /// A name under a different (wrong) TLD entirely.
    OutOfZone,
}

/// Deterministic junk-name generator for one zone.
#[derive(Debug, Clone)]
pub struct JunkGenerator {
    zone: ZoneModel,
}

impl JunkGenerator {
    /// Build for the given zone.
    pub fn new(zone: ZoneModel) -> Self {
        JunkGenerator { zone }
    }

    /// Draw a junk qname. Every returned name classifies as
    /// [`crate::zone::Lookup::NxDomain`] against the zone (tested).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> (Name, JunkKind) {
        let kind = if self.zone.is_root_zone() {
            // root junk skews heavily to Chromium probes (after 2019)
            if rng.gen_bool(0.75) {
                JunkKind::ChromiumProbe
            } else {
                JunkKind::StaleName
            }
        } else if rng.gen_bool(0.85) {
            JunkKind::StaleName
        } else {
            JunkKind::ChromiumProbe
        };
        let name = match kind {
            JunkKind::ChromiumProbe => {
                let probe = chromium_probe_label(rng);
                if self.zone.is_root_zone() {
                    probe.parse().expect("probe labels parse")
                } else {
                    // a probe leaked as a subdomain query to the ccTLD
                    self.zone
                        .apex()
                        .child(probe.as_bytes())
                        .expect("short label")
                }
            }
            JunkKind::StaleName => {
                // digits cannot appear in the syllable encoding, so a
                // label with a digit is guaranteed unregistered
                let stale = format!("{}{}", chromium_probe_label(rng), rng.gen_range(0..10));
                if self.zone.is_root_zone() {
                    stale.parse().expect("labels parse")
                } else {
                    self.zone
                        .apex()
                        .child(stale.as_bytes())
                        .expect("short label")
                }
            }
            JunkKind::OutOfZone => unreachable!("not drawn by sample"),
        };
        (name, kind)
    }
}

/// A Chromium network-probe label: 7-15 random lowercase letters.
pub fn chromium_probe_label<R: Rng + ?Sized>(rng: &mut R) -> String {
    let len = rng.gen_range(7..=15);
    // exclude vowel-heavy syllable collisions by allowing any letters:
    // the syllable decoder rejects odd lengths and unknown pairs, and a
    // random 7-15 letter string virtually never decodes; stale-name
    // callers add a digit to make rejection certain.
    (0..len)
        .map(|_| (b'a' + rng.gen_range(0..26u8)) as char)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zone::Lookup;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn junk_is_always_nxdomain_nl() {
        let z = ZoneModel::nl(10_000);
        let g = JunkGenerator::new(z.clone());
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..2000 {
            let (name, _) = g.sample(&mut rng);
            assert_eq!(z.classify(&name), Lookup::NxDomain, "{name}");
        }
    }

    #[test]
    fn junk_is_always_nxdomain_nz() {
        let z = ZoneModel::nz(1000, 4000);
        let g = JunkGenerator::new(z.clone());
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..2000 {
            let (name, _) = g.sample(&mut rng);
            assert_eq!(z.classify(&name), Lookup::NxDomain, "{name}");
        }
    }

    #[test]
    fn junk_is_always_nxdomain_root() {
        let z = ZoneModel::root(1500);
        let g = JunkGenerator::new(z.clone());
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..2000 {
            let (name, _) = g.sample(&mut rng);
            assert_eq!(z.classify(&name), Lookup::NxDomain, "{name}");
        }
    }

    #[test]
    fn root_junk_is_mostly_chromium() {
        let g = JunkGenerator::new(ZoneModel::root(1500));
        let mut rng = StdRng::seed_from_u64(14);
        let mut chromium = 0;
        for _ in 0..5000 {
            if g.sample(&mut rng).1 == JunkKind::ChromiumProbe {
                chromium += 1;
            }
        }
        let share = chromium as f64 / 5000.0;
        assert!((0.65..0.85).contains(&share), "chromium share {share}");
    }

    #[test]
    fn cctld_junk_is_mostly_stale() {
        let g = JunkGenerator::new(ZoneModel::nl(100));
        let mut rng = StdRng::seed_from_u64(15);
        let stale = (0..5000)
            .filter(|_| g.sample(&mut rng).1 == JunkKind::StaleName)
            .count();
        let share = stale as f64 / 5000.0;
        assert!(share > 0.75, "stale share {share}");
    }

    #[test]
    fn probe_labels_look_like_chromium() {
        let mut rng = StdRng::seed_from_u64(16);
        for _ in 0..500 {
            let l = chromium_probe_label(&mut rng);
            assert!((7..=15).contains(&l.len()));
            assert!(l.bytes().all(|b| b.is_ascii_lowercase()));
        }
    }

    #[test]
    fn generator_is_deterministic() {
        let g = JunkGenerator::new(ZoneModel::nl(100));
        let mut a = StdRng::seed_from_u64(17);
        let mut b = StdRng::seed_from_u64(17);
        for _ in 0..100 {
            assert_eq!(g.sample(&mut a).0, g.sample(&mut b).0);
        }
    }
}

//! Invertible label generation: domain index <-> pronounceable label.
//!
//! Each index is written in base-64 using a fixed table of two-letter
//! syllables, producing labels like `bakedu` or `zosifexa`. Because the
//! encoding is a bijection, an authoritative model can answer "is this
//! label registered?" by decoding it back to an index and checking the
//! index against the zone size — no stored name list needed.

/// The 64 syllables; index = digit value. All distinct two-letter
/// strings so decoding is an unambiguous chunk-by-chunk table lookup.
const SYLLABLES: [&str; 64] = [
    "ba", "be", "bi", "bo", "bu", "da", "de", "di", "do", "du", "fa", "fe", "fi", "fo", "fu", "ga",
    "ge", "gi", "go", "gu", "ha", "he", "hi", "ho", "hu", "ja", "je", "ji", "jo", "ju", "ka", "ke",
    "ki", "ko", "ku", "la", "le", "li", "lo", "lu", "ma", "me", "mi", "mo", "mu", "na", "ne", "ni",
    "no", "nu", "pa", "pe", "pi", "po", "pu", "ra", "re", "ri", "ro", "ru", "sa", "se", "si", "so",
];

/// Encode an index as a syllable label (most significant digit first).
///
/// ```
/// assert_eq!(zonedb::names::encode_label(0), "ba");
/// assert_eq!(zonedb::names::decode_label("ba"), Some(0));
/// ```
pub fn encode_label(mut idx: u64) -> String {
    let mut digits = Vec::new();
    loop {
        digits.push((idx % 64) as usize);
        idx /= 64;
        if idx == 0 {
            break;
        }
    }
    let mut out = String::with_capacity(digits.len() * 2);
    for &d in digits.iter().rev() {
        out.push_str(SYLLABLES[d]);
    }
    out
}

/// Decode a syllable label back to its index; `None` if the string is
/// not a valid encoding (odd length, unknown syllable, non-canonical
/// leading zero).
pub fn decode_label(label: &str) -> Option<u64> {
    if label.is_empty() || !label.len().is_multiple_of(2) || label.len() > 22 {
        return None;
    }
    let mut idx: u64 = 0;
    let bytes = label.as_bytes();
    for chunk in bytes.chunks(2) {
        let syl = std::str::from_utf8(chunk).ok()?;
        let d = SYLLABLES.iter().position(|&s| s == syl)? as u64;
        idx = idx.checked_mul(64)?.checked_add(d)?;
    }
    // reject non-canonical encodings like "baba" for 0 ("ba")
    if encode_label(idx).len() != label.len() {
        return None;
    }
    Some(idx)
}

/// The generated TLD inventory for the root-zone model: a handful of
/// real anchor TLDs (so the ccTLD studies compose) plus synthesized
/// ones up to `count`.
pub fn tld_label(i: usize) -> String {
    const ANCHORS: [&str; 12] = [
        "nl", "nz", "com", "net", "org", "de", "uk", "fr", "jp", "br", "io", "info",
    ];
    if i < ANCHORS.len() {
        ANCHORS[i].to_string()
    } else {
        // 't' prefix keeps synthetic TLDs out of the syllable namespace
        format!("t{}", encode_label((i - ANCHORS.len()) as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bijection_small() {
        for i in 0..5000u64 {
            let l = encode_label(i);
            assert_eq!(decode_label(&l), Some(i), "label {l}");
        }
    }

    #[test]
    fn bijection_large() {
        for i in [1u64 << 20, 1 << 32, u64::MAX / 3, u64::MAX] {
            let l = encode_label(i);
            assert!(l.len() <= 22);
            assert_eq!(decode_label(&l), Some(i));
        }
    }

    #[test]
    fn labels_are_dns_safe() {
        for i in (0..100_000u64).step_by(997) {
            let l = encode_label(i);
            assert!(l.len() <= 63);
            assert!(l.bytes().all(|b| b.is_ascii_lowercase()));
        }
    }

    #[test]
    fn invalid_strings_decode_to_none() {
        for s in ["", "b", "xx", "ba7", "hello", "qa", "BA", "bax", "ba-"] {
            assert_eq!(decode_label(s), None, "{s:?}");
        }
    }

    #[test]
    fn non_canonical_rejected() {
        // "ba" is digit 0; a leading zero digit would be "ba" + encode(x)
        let padded = format!("ba{}", encode_label(5));
        assert_eq!(decode_label(&padded), None);
    }

    #[test]
    fn distinct_indices_distinct_labels() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for i in 0..20_000u64 {
            assert!(seen.insert(encode_label(i)));
        }
    }

    #[test]
    fn tld_inventory() {
        assert_eq!(tld_label(0), "nl");
        assert_eq!(tld_label(1), "nz");
        assert_eq!(tld_label(2), "com");
        assert!(tld_label(12).starts_with('t'));
        assert_ne!(tld_label(12), tld_label(13));
    }
}

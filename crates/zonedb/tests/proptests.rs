//! Property tests for the zone models: membership coherence between
//! generation and classification, Q-min semantics, junk guarantees.

use proptest::prelude::*;
use zonedb::names::{decode_label, encode_label};
use zonedb::zone::{Lookup, ZoneModel};

proptest! {
    /// Label encoding is a bijection.
    #[test]
    fn label_bijection(idx in 0u64..u64::MAX) {
        prop_assert_eq!(decode_label(&encode_label(idx)), Some(idx));
    }

    /// Every generated registration classifies as Delegated, and any
    /// name beneath it stays NOERROR (a referral covers the subtree).
    #[test]
    fn nl_membership_coherent(slds in 1u64..100_000, idx_frac in 0.0f64..1.0) {
        let zone = ZoneModel::nl(slds);
        let idx = ((slds - 1) as f64 * idx_frac) as u64;
        let d = zone.registered_domain(idx);
        prop_assert_eq!(zone.classify(&d), Lookup::Delegated);
        let www = d.child(b"www").unwrap();
        prop_assert_eq!(zone.classify(&www), Lookup::Delegated);
        // the next index past the zone end is NXDOMAIN
        let ghost = zone.apex().child(encode_label(slds + idx).as_bytes()).unwrap();
        prop_assert_eq!(zone.classify(&ghost), Lookup::NxDomain);
    }

    /// Same coherence for the mixed-level `.nz` model over its whole
    /// index space, including the subzone boundary.
    #[test]
    fn nz_membership_coherent(
        slds in 1u64..5_000,
        thirds in 1u64..20_000,
        idx_frac in 0.0f64..1.0,
    ) {
        let zone = ZoneModel::nz(slds, thirds);
        let idx = ((slds + thirds - 1) as f64 * idx_frac) as u64;
        let d = zone.registered_domain(idx);
        prop_assert_eq!(zone.classify(&d), Lookup::Delegated, "{}", d);
        prop_assert!(d.is_subdomain_of(zone.apex()));
    }

    /// The minimized qname always (a) sits under the apex, (b) has at
    /// most the original label count, and (c) is a prefix-ancestor of
    /// the full name.
    #[test]
    fn minimization_laws(slds in 1u64..10_000, idx_frac in 0.0f64..1.0, depth in 0usize..3) {
        let zone = ZoneModel::nl(slds);
        let idx = ((slds - 1) as f64 * idx_frac) as u64;
        let mut full = zone.registered_domain(idx);
        for i in 0..depth {
            full = full.child(format!("l{i}").as_bytes()).unwrap();
        }
        let min = zone.minimized_qname(&full);
        prop_assert!(min.is_subdomain_of(zone.apex()));
        prop_assert!(min.label_count() <= full.label_count());
        prop_assert!(full.is_subdomain_of(&min));
        // idempotent
        prop_assert_eq!(zone.minimized_qname(&min).clone(), min);
    }

    /// Junk names never collide with the registration space.
    #[test]
    fn junk_never_registered(seed in 0u64..10_000) {
        use rand::SeedableRng;
        let zone = ZoneModel::nz(1000, 3000);
        let junk = zonedb::junk::JunkGenerator::new(zone.clone());
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..20 {
            let (name, _) = junk.sample(&mut rng);
            prop_assert_eq!(zone.classify(&name), Lookup::NxDomain, "{}", name);
        }
    }

    /// Zipf sampling stays in range and is deterministic per seed.
    #[test]
    fn zipf_in_range(n in 1u64..1_000_000, s in 0.0f64..1.8, seed in 0u64..1000) {
        use rand::SeedableRng;
        let z = zonedb::popularity::ZipfSampler::new(n, s);
        let mut a = rand::rngs::StdRng::seed_from_u64(seed);
        let mut b = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            let x = z.sample(&mut a);
            prop_assert!(x < n);
            prop_assert_eq!(x, z.sample(&mut b));
        }
    }
}

//! Prometheus text-format exposition over a tiny built-in HTTP server.
//!
//! [`serve`] binds a `TcpListener` on a background thread and answers
//! `GET /metrics` (and `HEAD`) with the global registry rendered by
//! [`crate::metrics::Registry::render_prometheus`] — enough HTTP for
//! `curl` and a Prometheus scraper, with no dependencies. Unknown paths
//! get `404`, other methods `405`, every response carries
//! `Content-Length` and `Connection: close`, and a read deadline keeps
//! half-open clients from pinning the listener thread. Dropping the
//! returned [`MetricsServer`] (or calling
//! [`MetricsServer::shutdown`]) stops the listener.

use crate::metrics::Registry;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How often the accept loop polls the shutdown flag.
const POLL: Duration = Duration::from_millis(50);
/// Cap on request bytes read before responding.
const REQUEST_CAP: usize = 8 * 1024;
/// Per-read socket timeout.
const READ_TIMEOUT: Duration = Duration::from_secs(2);
/// Total budget for receiving the request head; a client that trickles
/// bytes (or goes half-open) is cut off here instead of pinning the
/// single listener thread.
const READ_DEADLINE: Duration = Duration::from_secs(3);

/// A running exposition endpoint; see [`serve`].
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the listener and join its thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Serve the global registry at `http://{addr}/metrics`. Returns once
/// the socket is bound; requests are handled on a background thread.
pub fn serve(addr: SocketAddr) -> io::Result<MetricsServer> {
    serve_registry(addr, Registry::global())
}

/// [`serve`] for an explicit registry (tests).
pub fn serve_registry(addr: SocketAddr, registry: &'static Registry) -> io::Result<MetricsServer> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let bound = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let handle = std::thread::Builder::new()
        .name("obs-metrics".into())
        .spawn(move || {
            while !stop_flag.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _)) => handle_conn(stream, registry),
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(POLL);
                    }
                    Err(_) => std::thread::sleep(POLL),
                }
            }
        })?;
    Ok(MetricsServer {
        addr: bound,
        stop,
        handle: Some(handle),
    })
}

fn handle_conn(mut stream: TcpStream, registry: &Registry) {
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let _ = stream.set_nodelay(true);
    // read until the end of the request head, under a total deadline
    let started = std::time::Instant::now();
    let mut req = Vec::new();
    let mut chunk = [0u8; 1024];
    let mut complete = false;
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                req.extend_from_slice(&chunk[..n]);
                if req.windows(4).any(|w| w == b"\r\n\r\n") {
                    complete = true;
                    break;
                }
                if req.len() > REQUEST_CAP || started.elapsed() >= READ_DEADLINE {
                    break;
                }
            }
            // a SIGPROF tick (obs::prof) interrupting the read is not
            // a dead client — retry under the same deadline
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {
                if started.elapsed() >= READ_DEADLINE {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    // incomplete head (half-open, trickler, or garbage): just close
    if !complete {
        return;
    }
    let head = String::from_utf8_lossy(&req);
    let mut parts = head.lines().next().unwrap_or("").split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    // split off the query string before matching the path
    let (path, query) = match path.split_once('?') {
        Some((p, q)) => (p, q),
        None => (path, ""),
    };

    let (status, content_type, body) = match (method, path) {
        ("GET" | "HEAD", "/metrics") => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            registry.render_prometheus(),
        ),
        // the flight recorder's retained window, when one is running
        ("GET" | "HEAD", "/flight.json") => match crate::flight::recorder() {
            Some(rec) => ("200 OK", "application/json", rec.snapshot_json()),
            None => (
                "404 Not Found",
                "text/plain; version=0.0.4; charset=utf-8",
                "flight recorder not running (pass --flight)\n".to_string(),
            ),
        },
        // on-demand CPU profile: blocks this (single) listener thread
        // for the requested window, then answers with folded stacks
        ("GET" | "HEAD", "/profile") => profile_response(query),
        ("GET" | "HEAD", _) => (
            "404 Not Found",
            "text/plain; version=0.0.4; charset=utf-8",
            "not found\n".to_string(),
        ),
        _ => (
            "405 Method Not Allowed",
            "text/plain; version=0.0.4; charset=utf-8",
            "method not allowed\n".to_string(),
        ),
    };
    let allow = if status.starts_with("405") {
        "Allow: GET, HEAD\r\n"
    } else {
        ""
    };
    let header = format!(
        "HTTP/1.1 {status}\r\n\
         Content-Type: {content_type}\r\n\
         Content-Length: {}\r\n\
         {allow}Connection: close\r\n\r\n",
        body.len(),
    );
    let _ = stream.write_all(header.as_bytes());
    // HEAD gets headers only — but with the Content-Length a GET would see
    if method != "HEAD" {
        let _ = stream.write_all(body.as_bytes());
    }
}

/// `GET /profile?seconds=N` — run a bounded sampling session via
/// [`crate::prof`] and return flamegraph-ready folded stacks. Answers
/// `400` for an unparseable duration, `501` where sampling is
/// unsupported, and `503` immediately (never a hang) when a profile is
/// already running — the profiler is process-global single-flight.
fn profile_response(query: &str) -> (&'static str, &'static str, String) {
    const TEXT: &str = "text/plain; charset=utf-8";
    let seconds = query
        .split('&')
        .find_map(|kv| kv.strip_prefix("seconds="))
        .map_or(Ok(2), str::parse::<u64>);
    let seconds = match seconds {
        Ok(s @ 1..=60) => s,
        Ok(_) | Err(_) => {
            return (
                "400 Bad Request",
                TEXT,
                "seconds must be an integer in 1..=60\n".to_string(),
            )
        }
    };
    if !crate::prof::supported() {
        return (
            "501 Not Implemented",
            TEXT,
            "CPU sampling is not supported on this platform\n".to_string(),
        );
    }
    match crate::prof::profile_for(Duration::from_secs(seconds), crate::prof::DEFAULT_HZ) {
        Ok(profile) => ("200 OK", TEXT, profile.folded()),
        Err(e) => ("503 Service Unavailable", TEXT, format!("{e}\n")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn http_get(addr: SocketAddr) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"GET /metrics HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n")
            .unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn scrape_roundtrip() {
        let c = crate::metrics::counter("obs_prom_test_total", "prom module test counter");
        c.add(5);
        let server = serve("127.0.0.1:0".parse().unwrap()).unwrap();
        let addr = server.addr();
        let response = http_get(addr);
        assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
        assert!(
            response.contains("Content-Type: text/plain; version=0.0.4"),
            "{response}"
        );
        let body = response.split("\r\n\r\n").nth(1).expect("body");
        assert!(
            body.contains("# TYPE obs_prom_test_total counter"),
            "{body}"
        );
        assert!(body.contains("obs_prom_test_total 5"), "{body}");
        // a second scrape sees updated values
        c.add(1);
        assert!(http_get(addr).contains("obs_prom_test_total 6"));
        server.shutdown();
        // the port is released: connecting now fails (or is refused fast)
        std::thread::sleep(Duration::from_millis(100));
        assert!(TcpStream::connect_timeout(&addr, Duration::from_millis(250)).is_err());
    }

    fn raw_request(addr: SocketAddr, request: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(request.as_bytes()).unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    fn content_length(response: &str) -> usize {
        response
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .expect("Content-Length header")
            .trim()
            .parse()
            .expect("numeric length")
    }

    #[test]
    fn unknown_path_is_404_and_bad_method_is_405() {
        let server = serve("127.0.0.1:0".parse().unwrap()).unwrap();
        let addr = server.addr();

        let resp = raw_request(addr, "GET /nope HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 404"), "{resp}");
        assert!(resp.contains("Connection: close"), "{resp}");
        let body = resp.split("\r\n\r\n").nth(1).expect("body");
        assert_eq!(content_length(&resp), body.len());

        let resp = raw_request(addr, "POST /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 405"), "{resp}");
        assert!(resp.contains("Allow: GET, HEAD"), "{resp}");
        assert!(resp.contains("Connection: close"), "{resp}");

        // query strings don't defeat path matching
        let resp = raw_request(addr, "GET /metrics?x=1 HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
        server.shutdown();
    }

    #[test]
    fn flight_json_route_404s_then_serves_the_recorder() {
        let server = serve("127.0.0.1:0".parse().unwrap()).unwrap();
        let addr = server.addr();
        // no recorder yet: the route explains itself with a 404
        let resp = raw_request(addr, "GET /flight.json HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 404"), "{resp}");
        assert!(resp.contains("flight recorder not running"), "{resp}");

        // start the global recorder and force one sample
        crate::flight::start(Duration::from_secs(3600));
        crate::metrics::counter("obs_prom_flight_total", "t").add(9);
        crate::flight::recorder()
            .expect("recorder started")
            .tick_registry(crate::metrics::Registry::global());
        let resp = raw_request(addr, "GET /flight.json HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
        assert!(resp.contains("Content-Type: application/json"), "{resp}");
        let body = resp.split("\r\n\r\n").nth(1).expect("body");
        assert_eq!(content_length(&resp), body.len());
        let doc: serde_json::Value = serde_json::from_str(body).expect("valid JSON window");
        assert!(
            doc["metrics"]
                .as_array()
                .expect("metrics array")
                .iter()
                .any(|m| m["name"] == "obs_prom_flight_total"),
            "{body}"
        );
        server.shutdown();
    }

    #[test]
    fn head_sends_headers_only_with_get_length() {
        let c = crate::metrics::counter("obs_prom_head_total", "head test counter");
        c.add(3);
        let server = serve("127.0.0.1:0".parse().unwrap()).unwrap();
        let addr = server.addr();

        let get = raw_request(addr, "GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
        let head = raw_request(addr, "HEAD /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        // no body after the header terminator...
        assert_eq!(head.split("\r\n\r\n").nth(1).unwrap_or(""), "", "{head}");
        // ...but the advertised length matches what GET returns
        assert_eq!(content_length(&head), content_length(&get));
        assert_eq!(
            content_length(&get),
            get.split("\r\n\r\n").nth(1).expect("body").len()
        );
        server.shutdown();
    }

    #[test]
    fn profile_route_validates_returns_503_when_busy_and_serves_folded_stacks() {
        let _guard = crate::prof::test_lock();
        let server = serve("127.0.0.1:0".parse().unwrap()).unwrap();
        let addr = server.addr();

        // unparseable / out-of-range durations are a 400, not a hang
        let resp = raw_request(
            addr,
            "GET /profile?seconds=bogus HTTP/1.1\r\nHost: t\r\n\r\n",
        );
        assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");
        let resp = raw_request(addr, "GET /profile?seconds=0 HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");

        if !crate::prof::supported() {
            let resp = raw_request(addr, "GET /profile?seconds=1 HTTP/1.1\r\nHost: t\r\n\r\n");
            assert!(resp.starts_with("HTTP/1.1 501"), "{resp}");
            server.shutdown();
            return;
        }

        // a session already running means 503 immediately
        crate::prof::start(99).expect("arm profiler");
        let resp = raw_request(addr, "GET /profile?seconds=1 HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 503"), "{resp}");
        assert!(resp.contains("already running"), "{resp}");
        crate::prof::stop().expect("disarm profiler");

        // happy path: keep a thread busy while the 1s profile runs
        let stop = Arc::new(AtomicBool::new(false));
        let burn = Arc::clone(&stop);
        let spinner = std::thread::spawn(move || {
            let mut acc = 1u64;
            while !burn.load(Ordering::Relaxed) {
                for i in 0..10_000u64 {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
                }
                std::hint::black_box(acc);
            }
        });
        let resp = raw_request(addr, "GET /profile?seconds=1 HTTP/1.1\r\nHost: t\r\n\r\n");
        stop.store(true, Ordering::Relaxed);
        spinner.join().unwrap();
        assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
        assert!(resp.contains("Connection: close"), "{resp}");
        let body = resp.split("\r\n\r\n").nth(1).expect("body");
        assert_eq!(content_length(&resp), body.len());
        assert!(!body.trim().is_empty(), "no folded stacks captured");
        for line in body.lines() {
            let (stack, count) = line.rsplit_once(' ').expect("folded line");
            assert!(!stack.is_empty(), "{line:?}");
            count.parse::<u64>().expect("folded count parses");
        }
        server.shutdown();
    }

    #[test]
    fn half_open_client_does_not_pin_the_listener() {
        let server = serve("127.0.0.1:0".parse().unwrap()).unwrap();
        let addr = server.addr();
        // open a connection and send an incomplete head, then stall
        let mut stalled = TcpStream::connect(addr).unwrap();
        stalled.write_all(b"GET /metrics HTT").unwrap();
        // the listener must cut the stalled client off at the read
        // deadline and serve the next request
        let done = std::sync::mpsc::channel();
        let tx = done.0;
        std::thread::spawn(move || {
            let resp = http_get(addr);
            let _ = tx.send(resp);
        });
        let resp = done
            .1
            .recv_timeout(READ_DEADLINE + Duration::from_secs(3))
            .expect("listener recovered from half-open client");
        assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
        // the stalled connection got no response bytes
        stalled
            .set_read_timeout(Some(Duration::from_millis(200)))
            .unwrap();
        let mut buf = [0u8; 64];
        match stalled.read(&mut buf) {
            Ok(0) => {} // closed without a response
            Ok(n) => panic!("stalled client unexpectedly got {n} bytes"),
            Err(_) => {} // reset or still pending close
        }
        server.shutdown();
    }
}

//! Prometheus text-format exposition over a tiny built-in HTTP server.
//!
//! [`serve`] binds a `TcpListener` on a background thread and answers
//! every GET with the global registry rendered by
//! [`crate::metrics::Registry::render_prometheus`] — enough HTTP for
//! `curl` and a Prometheus scraper, with no dependencies. Dropping the
//! returned [`MetricsServer`] (or calling
//! [`MetricsServer::shutdown`]) stops the listener.

use crate::metrics::Registry;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How often the accept loop polls the shutdown flag.
const POLL: Duration = Duration::from_millis(50);
/// Cap on request bytes read before responding.
const REQUEST_CAP: usize = 8 * 1024;

/// A running exposition endpoint; see [`serve`].
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the listener and join its thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Serve the global registry at `http://{addr}/metrics` (any path
/// answers). Returns once the socket is bound; requests are handled on
/// a background thread.
pub fn serve(addr: SocketAddr) -> io::Result<MetricsServer> {
    serve_registry(addr, Registry::global())
}

/// [`serve`] for an explicit registry (tests).
pub fn serve_registry(addr: SocketAddr, registry: &'static Registry) -> io::Result<MetricsServer> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let bound = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let handle = std::thread::Builder::new()
        .name("obs-metrics".into())
        .spawn(move || {
            while !stop_flag.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _)) => handle_conn(stream, registry),
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(POLL);
                    }
                    Err(_) => std::thread::sleep(POLL),
                }
            }
        })?;
    Ok(MetricsServer {
        addr: bound,
        stop,
        handle: Some(handle),
    })
}

fn handle_conn(mut stream: TcpStream, registry: &Registry) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let _ = stream.set_nodelay(true);
    // read until the end of the request head (we ignore its contents:
    // every method/path gets the metrics page)
    let mut req = Vec::new();
    let mut chunk = [0u8; 1024];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                req.extend_from_slice(&chunk[..n]);
                if req.windows(4).any(|w| w == b"\r\n\r\n") || req.len() > REQUEST_CAP {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    if req.is_empty() {
        return;
    }
    let body = registry.render_prometheus();
    let response = format!(
        "HTTP/1.1 200 OK\r\n\
         Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\n\
         Connection: close\r\n\r\n{body}",
        body.len(),
    );
    let _ = stream.write_all(response.as_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn http_get(addr: SocketAddr) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"GET /metrics HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n")
            .unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn scrape_roundtrip() {
        let c = crate::metrics::counter("obs_prom_test_total", "prom module test counter");
        c.add(5);
        let server = serve("127.0.0.1:0".parse().unwrap()).unwrap();
        let addr = server.addr();
        let response = http_get(addr);
        assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
        assert!(
            response.contains("Content-Type: text/plain; version=0.0.4"),
            "{response}"
        );
        let body = response.split("\r\n\r\n").nth(1).expect("body");
        assert!(
            body.contains("# TYPE obs_prom_test_total counter"),
            "{body}"
        );
        assert!(body.contains("obs_prom_test_total 5"), "{body}");
        // a second scrape sees updated values
        c.add(1);
        assert!(http_get(addr).contains("obs_prom_test_total 6"));
        server.shutdown();
        // the port is released: connecting now fails (or is refused fast)
        std::thread::sleep(Duration::from_millis(100));
        assert!(TcpStream::connect_timeout(&addr, Duration::from_millis(250)).is_err());
    }
}

//! Per-stage pipeline accounting and throttled progress reporting.
//!
//! Every instrumented pipeline stage (simnet generation, entrada
//! ingest, the analysis passes, report rendering) opens a [`StageTimer`]
//! around its work and sets the number of items it processed; the
//! global table accumulates wall time and throughput per stage across
//! the whole run and renders as the `--stats` summary table.
//!
//! [`Progress`] emits throttled `records/s` + ETA lines to stderr for
//! long `report`-scale runs; it is silent unless [`set_progress`] was
//! called (the CLI ties it to `--stats`).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

#[derive(Default, Clone)]
struct StageAgg {
    calls: u64,
    total: Duration,
    items: u64,
}

fn table() -> &'static Mutex<HashMap<String, StageAgg>> {
    static TABLE: OnceLock<Mutex<HashMap<String, StageAgg>>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Times one stage invocation; records duration + item count into the
/// global stage table (and a trace span) on drop.
pub struct StageTimer {
    name: std::borrow::Cow<'static, str>,
    started: Instant,
    items: u64,
    span: crate::trace::Span,
}

/// Open a stage timer named `name`.
pub fn stage(name: &'static str) -> StageTimer {
    StageTimer {
        name: std::borrow::Cow::Borrowed(name),
        started: Instant::now(),
        items: 0,
        span: crate::trace::span(name),
    }
}

/// Open a stage timer with a runtime-built name (e.g. a per-shard
/// `simnet.generate.shard3` row).
pub fn stage_owned(name: String) -> StageTimer {
    StageTimer {
        span: crate::trace::span(name.clone()),
        name: std::borrow::Cow::Owned(name),
        started: Instant::now(),
        items: 0,
    }
}

impl StageTimer {
    /// Add `n` processed items (shown as records + records/s).
    pub fn add_items(&mut self, n: u64) {
        self.items += n;
    }
}

impl Drop for StageTimer {
    fn drop(&mut self) {
        let elapsed = self.started.elapsed();
        let mut table = table().lock().expect("stage table lock");
        let agg = table.entry(self.name.clone().into_owned()).or_default();
        agg.calls += 1;
        agg.total += elapsed;
        agg.items += self.items;
        drop(table);
        // the trace span closes here too, covering the same interval
        let _ = &self.span;
    }
}

/// Human-scaled count (`975`, `12.3k`, `4.56M`).
fn human(n: f64) -> String {
    if n >= 1e9 {
        format!("{:.2}G", n / 1e9)
    } else if n >= 1e6 {
        format!("{:.2}M", n / 1e6)
    } else if n >= 1e3 {
        format!("{:.1}k", n / 1e3)
    } else {
        format!("{n:.0}")
    }
}

/// Human-scaled duration (`850ms`, `2.41s`, `3m12s`).
fn human_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 60.0 {
        format!("{}m{:02.0}s", (s / 60.0) as u64, s % 60.0)
    } else if s >= 1.0 {
        format!("{s:.2}s")
    } else {
        format!("{:.0}ms", s * 1000.0)
    }
}

/// Render the per-stage summary table (stages sorted by total time,
/// descending). Empty string when nothing was recorded.
pub fn render_table() -> String {
    use std::fmt::Write;
    let table = table().lock().expect("stage table lock");
    if table.is_empty() {
        return String::new();
    }
    let mut rows: Vec<(String, StageAgg)> =
        table.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
    drop(table);
    rows.sort_by_key(|r| std::cmp::Reverse(r.1.total));
    let mut out = String::new();
    writeln!(out, "== per-stage summary ==").expect("string write");
    writeln!(
        out,
        "{:<28} {:>6} {:>10} {:>12} {:>12}",
        "stage", "calls", "time", "records", "records/s"
    )
    .expect("string write");
    for (name, agg) in &rows {
        let rate = if agg.total.as_secs_f64() > 0.0 {
            human(agg.items as f64 / agg.total.as_secs_f64())
        } else {
            "-".to_string()
        };
        writeln!(
            out,
            "{:<28} {:>6} {:>10} {:>12} {:>12}",
            name,
            agg.calls,
            human_duration(agg.total),
            if agg.items > 0 {
                agg.items.to_string()
            } else {
                "-".to_string()
            },
            if agg.items > 0 { rate } else { "-".to_string() },
        )
        .expect("string write");
    }
    out
}

/// Drop all recorded stages (tests).
pub fn reset() {
    table().lock().expect("stage table lock").clear();
}

static PROGRESS: AtomicBool = AtomicBool::new(false);

/// Turn periodic progress lines on or off (default off).
pub fn set_progress(enabled: bool) {
    PROGRESS.store(enabled, Ordering::Relaxed);
}

/// Whether progress lines are enabled.
pub fn progress_enabled() -> bool {
    PROGRESS.load(Ordering::Relaxed)
}

/// Throttled progress reporter: call [`Progress::tick`] as often as you
/// like; at most one line per second reaches stderr, carrying counts,
/// rate, and (when a total is known) percent complete and ETA.
pub struct Progress {
    label: String,
    total: Option<u64>,
    done: u64,
    started: Instant,
    last_print: Instant,
}

impl Progress {
    /// A reporter for `label`; `total` enables percent + ETA.
    pub fn new(label: impl Into<String>, total: Option<u64>) -> Progress {
        let now = Instant::now();
        Progress {
            label: label.into(),
            total,
            done: 0,
            started: now,
            last_print: now,
        }
    }

    /// Record `n` more items; maybe emit a line.
    pub fn tick(&mut self, n: u64) {
        self.done += n;
        if !progress_enabled() || self.last_print.elapsed() < Duration::from_secs(1) {
            return;
        }
        self.last_print = Instant::now();
        eprintln!("{}", self.line(self.started.elapsed().as_secs_f64()));
    }

    /// Render the progress line for a given elapsed time. Zero (or
    /// pathological) durations degrade to a rate-less line — never
    /// `inf` or `NaN` in the output.
    pub fn line(&self, elapsed_secs: f64) -> String {
        let rate = if elapsed_secs > 0.0 && elapsed_secs.is_finite() {
            self.done as f64 / elapsed_secs
        } else {
            0.0
        };
        match self.total {
            Some(total) if total > 0 && rate > 0.0 && rate.is_finite() => {
                let pct = 100.0 * self.done as f64 / total as f64;
                let eta = (total.saturating_sub(self.done)) as f64 / rate;
                format!(
                    "[{}] {}/{} ({pct:.0}%) {}/s eta {}",
                    self.label,
                    self.done,
                    total,
                    human(rate),
                    human_duration(Duration::from_secs_f64(eta)),
                )
            }
            _ if rate > 0.0 && rate.is_finite() => {
                format!("[{}] {} done, {}/s", self.label, self.done, human(rate))
            }
            _ => format!("[{}] {} done", self.label, self.done),
        }
    }

    /// Items recorded so far.
    pub fn done(&self) -> u64 {
        self.done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_table_accumulates_and_renders() {
        {
            let mut t = stage("test.alpha");
            t.add_items(500);
            std::thread::sleep(Duration::from_millis(5));
        }
        {
            let mut t = stage("test.alpha");
            t.add_items(500);
        }
        {
            let _t = stage("test.beta");
        }
        let text = render_table();
        assert!(text.contains("== per-stage summary =="), "{text}");
        assert!(text.contains("records/s"), "{text}");
        let alpha = text
            .lines()
            .find(|l| l.starts_with("test.alpha"))
            .expect("alpha row");
        assert!(alpha.contains("2"), "two calls: {alpha}");
        assert!(alpha.contains("1000"), "items summed: {alpha}");
        let beta = text
            .lines()
            .find(|l| l.starts_with("test.beta"))
            .expect("beta row");
        assert!(beta.contains('-'), "no items recorded: {beta}");
    }

    #[test]
    fn progress_is_silent_by_default_and_counts() {
        let mut p = Progress::new("test", Some(100));
        p.tick(10);
        p.tick(20);
        assert_eq!(p.done(), 30);
    }

    #[test]
    fn progress_line_never_prints_inf_or_nan() {
        let mut p = Progress::new("zero", Some(1000));
        p.tick(0);
        // zero elapsed, zero done: no rate, no ETA, no inf/NaN
        for line in [p.line(0.0), p.line(f64::NAN), p.line(f64::INFINITY)] {
            assert!(!line.contains("inf"), "{line}");
            assert!(!line.contains("NaN"), "{line}");
            assert_eq!(line, "[zero] 0 done", "{line}");
        }
        // items recorded but still zero elapsed: same degradation
        p.tick(500);
        let line = p.line(0.0);
        assert_eq!(line, "[zero] 500 done", "{line}");
        // and a sane duration produces the full percent + ETA form
        let line = p.line(2.0);
        assert!(line.contains("(50%)"), "{line}");
        assert!(line.contains("eta"), "{line}");
        assert!(!line.contains("inf") && !line.contains("NaN"), "{line}");
        // unknown total, healthy rate
        let mut open = Progress::new("open", None);
        open.tick(250);
        assert_eq!(open.line(1.0), "[open] 250 done, 250/s");
    }

    #[test]
    fn duplicate_stage_names_aggregate_into_one_row() {
        for _ in 0..3 {
            let mut t = stage("test.dup.same");
            t.add_items(10);
        }
        let text = render_table();
        let rows: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with("test.dup.same"))
            .collect();
        assert_eq!(rows.len(), 1, "one aggregated row, got: {text}");
        assert!(rows[0].contains("30"), "items summed: {}", rows[0]);
        // a zero-duration stage renders "-" rather than inf records/s
        assert!(!text.contains("inf"), "{text}");
        assert!(!text.contains("NaN"), "{text}");
    }

    #[test]
    fn human_units() {
        assert_eq!(human(975.0), "975");
        assert_eq!(human(12_300.0), "12.3k");
        assert_eq!(human(4_560_000.0), "4.56M");
        assert_eq!(human_duration(Duration::from_millis(850)), "850ms");
        assert_eq!(human_duration(Duration::from_secs_f64(2.41)), "2.41s");
        assert_eq!(human_duration(Duration::from_secs(192)), "3m12s");
    }
}

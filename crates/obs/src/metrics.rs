//! Lock-free metrics: counters, gauges, log-linear histograms, and the
//! registry that names them.
//!
//! Hot-path discipline: recording is always a `fetch_add(Relaxed)` (two
//! for histograms, which also track the sum) on pre-fetched `Arc`
//! handles — the registry's `RwLock` is touched only at registration
//! and render time, never per sample.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Duration;

/// A monotonically increasing counter.
#[derive(Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A fresh zeroed counter (unregistered; see [`Registry::counter`]).
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge holding the latest `f64` sample (stored as bits).
#[derive(Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A fresh zeroed gauge.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Replace the value.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Raise the value to `v` if `v` is greater (monotonic max — used
    /// for high-water marks like queue peaks).
    #[inline]
    pub fn set_max(&self, v: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        while f64::from_bits(cur) < v {
            match self.0.compare_exchange_weak(
                cur,
                v.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// How much busy/idle time a [`Utilization`] accumulates before it
/// publishes a fresh busy fraction and starts a new window.
const UTILIZATION_WINDOW: Duration = Duration::from_millis(500);

/// Windowed busy-fraction accounting for a worker loop.
///
/// The worker attributes each loop iteration to [`Utilization::busy`]
/// (did real work) or [`Utilization::idle`] (poll timeout, empty
/// channel); once a window's worth of wall time has accumulated, the
/// fraction is published to the gauge as a permille (0..=1000) and the
/// window restarts — so the flight recorder's periodic samples see
/// *recent* utilization, not a lifetime average that stops moving.
/// Dropping flushes a partial window so short-lived workers report too.
pub struct Utilization {
    gauge: Arc<Gauge>,
    busy: Duration,
    idle: Duration,
}

impl Utilization {
    /// Track busy fraction into `gauge` (conventionally named
    /// `*_busy_permille`).
    pub fn new(gauge: Arc<Gauge>) -> Utilization {
        Utilization {
            gauge,
            busy: Duration::ZERO,
            idle: Duration::ZERO,
        }
    }

    /// Attribute `d` of wall time to useful work.
    #[inline]
    pub fn busy(&mut self, d: Duration) {
        self.busy += d;
        self.maybe_flush();
    }

    /// Attribute `d` of wall time to waiting for work.
    #[inline]
    pub fn idle(&mut self, d: Duration) {
        self.idle += d;
        self.maybe_flush();
    }

    fn maybe_flush(&mut self) {
        if self.busy + self.idle >= UTILIZATION_WINDOW {
            self.flush();
        }
    }

    fn flush(&mut self) {
        let total = self.busy + self.idle;
        if total.is_zero() {
            return;
        }
        let permille = self.busy.as_secs_f64() / total.as_secs_f64() * 1000.0;
        self.gauge.set(permille.round());
        self.busy = Duration::ZERO;
        self.idle = Duration::ZERO;
    }
}

impl Drop for Utilization {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Instantaneous + high-water depth gauges for a bounded channel.
///
/// Registers `{prefix}_queue_depth` (latest observed occupancy) and
/// `{prefix}_queue_peak` (monotonic high-water mark) in the global
/// registry, so the pair shows up in Prometheus exposition, in
/// `/flight.json` time series, and in the CLI's `== queues ==` block.
pub struct QueueDepth {
    depth: Arc<Gauge>,
    peak: Arc<Gauge>,
}

impl QueueDepth {
    /// Register the gauge pair under `{prefix}_queue_depth/_peak`.
    pub fn register(prefix: &str, help: &str) -> QueueDepth {
        QueueDepth {
            depth: gauge(&format!("{prefix}_queue_depth"), help),
            peak: gauge(
                &format!("{prefix}_queue_peak"),
                &format!("{help} (high-water mark)"),
            ),
        }
    }

    /// Record one occupancy observation.
    #[inline]
    pub fn record(&self, depth: usize) {
        self.depth.set(depth as f64);
        self.peak.set_max(depth as f64);
    }
}

/// Sub-bucket resolution: 2^3 = 8 sub-buckets per octave, bounding the
/// relative quantile error at 1/16 (±6.25%) above the linear region.
const SUB_BITS: u32 = 3;
/// Sub-buckets per octave group.
const SUBS: usize = 1 << SUB_BITS;
/// Bucket groups: group 0 is exact 0..8; group g ≥ 1 covers
/// `[8 << (g-1), 16 << (g-1))` with width `1 << (g-1)` each. 40 groups
/// span microseconds to ~50 days.
const GROUPS: usize = 40;
/// Total atomic buckets per histogram.
const BUCKETS: usize = GROUPS * SUBS;

/// A log-linear histogram with atomic buckets.
///
/// Values 0..7 get exact buckets; above that each power-of-two octave
/// is split into 8 linear sub-buckets, so any recorded value lands in a
/// bucket no wider than 1/8 of its magnitude. Quantiles report the
/// bucket *midpoint* (not the upper bound), keeping the estimate within
/// ±6.25% of the true sample — unlike a pure log2 histogram, whose
/// upper-bound reporting is biased high by up to 2×.
pub struct Histogram {
    sum: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

/// Bucket index for a recorded value.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUBS as u64 {
        return v as usize;
    }
    let octave = 63 - v.leading_zeros() as usize; // ≥ SUB_BITS
    let group = octave - SUB_BITS as usize + 1;
    if group >= GROUPS {
        return BUCKETS - 1;
    }
    let sub = ((v >> (octave - SUB_BITS as usize)) & (SUBS as u64 - 1)) as usize;
    group * SUBS + sub
}

/// `(lower_bound, width)` of bucket `i`; the bucket covers the integer
/// values `lower .. lower + width`.
fn bucket_bounds(i: usize) -> (u64, u64) {
    let g = i / SUBS;
    let s = (i % SUBS) as u64;
    if g == 0 {
        (s, 1)
    } else {
        let w = 1u64 << (g - 1);
        ((SUBS as u64 + s) * w, w)
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Midpoint of the bucket holding quantile `q` in `0..=1`, or 0
    /// when empty. Within ±6.25% of the true sample value.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((total as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                let (lower, width) = bucket_bounds(i);
                return lower + (width - 1) / 2;
            }
        }
        let (lower, width) = bucket_bounds(BUCKETS - 1);
        lower + (width - 1) / 2
    }

    /// Fold every sample of `other` into `self` (bucket-wise atomic
    /// adds), preserving total count and sum. `other` is unchanged;
    /// used to combine per-shard histograms into a run-wide one.
    pub fn merge(&self, other: &Histogram) {
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
    }

    /// The occupied buckets as `(inclusive_upper_bound, cumulative
    /// count)` pairs in ascending bound order — the Prometheus
    /// `_bucket{le=...}` series without the trailing `+Inf` (that one
    /// is just [`Histogram::count`]). Buckets that change nothing
    /// (zero occupancy) are skipped, so the exposition stays sparse.
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                cum += n;
                let (lower, width) = bucket_bounds(i);
                out.push((lower + width - 1, cum));
            }
        }
        out
    }
}

/// One metric's value at a point in time, as enumerated by
/// [`Registry::sample`] — the read-side unit the flight recorder
/// ([`crate::flight`]) snapshots into its rings.
#[derive(Debug, Clone, PartialEq)]
pub enum SampleValue {
    /// A counter's current value.
    Counter(u64),
    /// A gauge's current value.
    Gauge(f64),
    /// A histogram's count, sum, and p50/p90/p99/p999 quantiles.
    Histogram {
        /// Total samples recorded.
        count: u64,
        /// Sum of all recorded samples.
        sum: u64,
        /// The p50, p90, p99 and p999 bucket midpoints.
        quantiles: [u64; 4],
    },
}

/// One named metric slot.
enum Slot {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

struct Entry {
    help: String,
    slot: Slot,
}

/// A named collection of metrics; [`Registry::global`] is the
/// process-wide instance everything registers into by default.
#[derive(Default)]
pub struct Registry {
    entries: RwLock<HashMap<String, Entry>>,
}

impl Registry {
    /// A fresh empty registry (tests; production code uses
    /// [`Registry::global`]).
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The process-wide registry.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    /// Get or register a counter under `name`.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        if let Some(Entry {
            slot: Slot::Counter(c),
            ..
        }) = self.entries.read().expect("registry lock").get(name)
        {
            return Arc::clone(c);
        }
        let c = Arc::new(Counter::new());
        self.insert(name, help, Slot::Counter(Arc::clone(&c)));
        c
    }

    /// Get or register a gauge under `name`.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        if let Some(Entry {
            slot: Slot::Gauge(g),
            ..
        }) = self.entries.read().expect("registry lock").get(name)
        {
            return Arc::clone(g);
        }
        let g = Arc::new(Gauge::new());
        self.insert(name, help, Slot::Gauge(Arc::clone(&g)));
        g
    }

    /// Get or register a histogram under `name`.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        if let Some(Entry {
            slot: Slot::Histogram(h),
            ..
        }) = self.entries.read().expect("registry lock").get(name)
        {
            return Arc::clone(h);
        }
        let h = Arc::new(Histogram::new());
        self.insert(name, help, Slot::Histogram(Arc::clone(&h)));
        h
    }

    /// Expose an externally owned counter under `name`, replacing any
    /// previous occupant (a restarted subsystem re-publishes its own
    /// live handles).
    pub fn publish_counter(&self, name: &str, help: &str, handle: Arc<Counter>) {
        self.insert(name, help, Slot::Counter(handle));
    }

    /// Expose an externally owned gauge under `name` (see
    /// [`Registry::publish_counter`]).
    pub fn publish_gauge(&self, name: &str, help: &str, handle: Arc<Gauge>) {
        self.insert(name, help, Slot::Gauge(handle));
    }

    /// Expose an externally owned histogram under `name` (see
    /// [`Registry::publish_counter`]).
    pub fn publish_histogram(&self, name: &str, help: &str, handle: Arc<Histogram>) {
        self.insert(name, help, Slot::Histogram(handle));
    }

    fn insert(&self, name: &str, help: &str, slot: Slot) {
        debug_assert!(
            name.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
                && !name.starts_with(|c: char| c.is_ascii_digit()),
            "invalid metric name {name:?}"
        );
        self.entries.write().expect("registry lock").insert(
            name.to_string(),
            Entry {
                help: help.to_string(),
                slot,
            },
        );
    }

    /// Render every metric in Prometheus text exposition format
    /// (version 0.0.4), names sorted for deterministic output.
    /// Histograms render both the legacy summary series (quantile
    /// gauges + `_sum`/`_count`) and a true cumulative histogram: one
    /// sparse `{name}_hist_bucket{le="..."}` series over the occupied
    /// log-linear buckets plus `+Inf`, so external scrapers can compute
    /// their own quantiles.
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write;
        let entries = self.entries.read().expect("registry lock");
        let mut names: Vec<&String> = entries.keys().collect();
        names.sort();
        let mut out = String::new();
        for name in names {
            let entry = &entries[name];
            if !entry.help.is_empty() {
                writeln!(out, "# HELP {name} {}", entry.help).expect("string write");
            }
            match &entry.slot {
                Slot::Counter(c) => {
                    writeln!(out, "# TYPE {name} counter").expect("string write");
                    writeln!(out, "{name} {}", c.get()).expect("string write");
                }
                Slot::Gauge(g) => {
                    writeln!(out, "# TYPE {name} gauge").expect("string write");
                    writeln!(out, "{name} {}", g.get()).expect("string write");
                }
                Slot::Histogram(h) => {
                    writeln!(out, "# TYPE {name} summary").expect("string write");
                    for (label, q) in [("0.5", 0.5), ("0.9", 0.9), ("0.99", 0.99), ("0.999", 0.999)]
                    {
                        writeln!(out, "{name}{{quantile=\"{label}\"}} {}", h.quantile(q))
                            .expect("string write");
                    }
                    writeln!(out, "{name}_sum {}", h.sum()).expect("string write");
                    writeln!(out, "{name}_count {}", h.count()).expect("string write");
                    // the same buckets as a proper Prometheus histogram
                    // family (kept distinct from the summary above — one
                    // name cannot carry two TYPEs)
                    writeln!(out, "# TYPE {name}_hist histogram").expect("string write");
                    for (le, cum) in h.cumulative_buckets() {
                        writeln!(out, "{name}_hist_bucket{{le=\"{le}\"}} {cum}")
                            .expect("string write");
                    }
                    writeln!(out, "{name}_hist_bucket{{le=\"+Inf\"}} {}", h.count())
                        .expect("string write");
                    writeln!(out, "{name}_hist_sum {}", h.sum()).expect("string write");
                    writeln!(out, "{name}_hist_count {}", h.count()).expect("string write");
                }
            }
        }
        out
    }

    /// Snapshot every registered metric as `(name, value)` pairs in
    /// name order — the flight recorder's per-tick read. Histograms
    /// collapse to count/sum/quantiles so a tick's cost is independent
    /// of sample volume.
    pub fn sample(&self) -> Vec<(String, SampleValue)> {
        let entries = self.entries.read().expect("registry lock");
        let mut out: Vec<(String, SampleValue)> = entries
            .iter()
            .map(|(name, entry)| {
                let value = match &entry.slot {
                    Slot::Counter(c) => SampleValue::Counter(c.get()),
                    Slot::Gauge(g) => SampleValue::Gauge(g.get()),
                    Slot::Histogram(h) => SampleValue::Histogram {
                        count: h.count(),
                        sum: h.sum(),
                        quantiles: [
                            h.quantile(0.5),
                            h.quantile(0.9),
                            h.quantile(0.99),
                            h.quantile(0.999),
                        ],
                    },
                };
                (name.clone(), value)
            })
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

/// Get or register a counter in the global registry.
pub fn counter(name: &str, help: &str) -> Arc<Counter> {
    Registry::global().counter(name, help)
}

/// Get or register a gauge in the global registry.
pub fn gauge(name: &str, help: &str) -> Arc<Gauge> {
    Registry::global().gauge(name, help)
}

/// Get or register a histogram in the global registry.
pub fn histogram(name: &str, help: &str) -> Arc<Histogram> {
    Registry::global().histogram(name, help)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        let g = Gauge::new();
        g.set(2.5);
        assert!((g.get() - 2.5).abs() < 1e-12);
        g.set(-1.0);
        assert!((g.get() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn gauge_set_max_is_monotonic() {
        let g = Gauge::new();
        g.set_max(3.0);
        g.set_max(1.0);
        assert!((g.get() - 3.0).abs() < 1e-12);
        g.set_max(7.5);
        assert!((g.get() - 7.5).abs() < 1e-12);
    }

    #[test]
    fn utilization_publishes_busy_permille() {
        let g = Arc::new(Gauge::new());
        let mut u = Utilization::new(Arc::clone(&g));
        u.busy(Duration::from_millis(300));
        u.idle(Duration::from_millis(100));
        // window (400ms) not yet full: nothing published
        assert_eq!(g.get(), 0.0);
        u.idle(Duration::from_millis(100));
        // 300ms busy of 500ms total → 600 permille
        assert!((g.get() - 600.0).abs() < 1.0, "got {}", g.get());
        // drop flushes a partial window
        u.busy(Duration::from_millis(100));
        drop(u);
        assert!((g.get() - 1000.0).abs() < 1.0, "got {}", g.get());
    }

    #[test]
    fn queue_depth_tracks_latest_and_peak() {
        let q = QueueDepth::register("test_metrics_qd", "test queue");
        q.record(3);
        q.record(9);
        q.record(2);
        let depth = gauge("test_metrics_qd_queue_depth", "");
        let peak = gauge("test_metrics_qd_queue_peak", "");
        assert_eq!(depth.get(), 2.0);
        assert_eq!(peak.get(), 9.0);
    }

    #[test]
    fn bucket_index_is_monotone_and_continuous() {
        let mut last = 0usize;
        for v in 0..100_000u64 {
            let i = bucket_index(v);
            assert!(i >= last, "index regressed at {v}");
            // the value lands inside its bucket's bounds
            let (lower, width) = bucket_bounds(i);
            assert!(
                v >= lower && v < lower + width,
                "{v} outside bucket {i}: [{lower}, {})",
                lower + width
            );
            last = i;
        }
    }

    #[test]
    fn quantiles_on_constant_distribution() {
        let h = Histogram::new();
        for _ in 0..1000 {
            h.record(100);
        }
        for q in [0.01, 0.5, 0.99, 1.0] {
            let est = h.quantile(q) as f64;
            assert!((est - 100.0).abs() / 100.0 <= 0.0625, "q{q}: {est} vs 100");
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum(), 100_000);
    }

    #[test]
    fn quantiles_on_uniform_distribution() {
        // 1..=10_000 once each: true quantile q is ~q*10_000
        let h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        for (q, truth) in [(0.25, 2500.0), (0.5, 5000.0), (0.9, 9000.0), (0.99, 9900.0)] {
            let est = h.quantile(q) as f64;
            let rel = (est - truth).abs() / truth;
            assert!(rel <= 0.07, "q{q}: {est} vs {truth} (rel {rel:.4})");
        }
    }

    #[test]
    fn quantiles_not_biased_high() {
        // A pure log2 histogram reporting upper bounds would put every
        // 100µs sample at 128; midpoint reporting must stay below that
        // and within the sub-bucket of the sample.
        let h = Histogram::new();
        for _ in 0..99 {
            h.record(100);
        }
        h.record(1_000_000); // far-tail outlier
        let p50 = h.quantile(0.5);
        assert!((94..=106).contains(&p50), "p50 {p50} not ≈100");
        let p99 = h.quantile(0.99);
        assert!(p99 < 128, "p99 {p99} leaked the log2 upper-bound bias");
        assert!(h.quantile(1.0) >= 900_000, "max reaches the outlier");
    }

    #[test]
    fn quantiles_on_bimodal_distribution() {
        let h = Histogram::new();
        for _ in 0..900 {
            h.record(50);
        }
        for _ in 0..100 {
            h.record(5_000);
        }
        let p50 = h.quantile(0.5) as f64;
        assert!((p50 - 50.0).abs() / 50.0 <= 0.0625, "p50 {p50}");
        let p95 = h.quantile(0.95) as f64;
        assert!((p95 - 5000.0).abs() / 5000.0 <= 0.0625, "p95 {p95}");
    }

    #[test]
    fn histogram_empty_and_extremes() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        h.record(0);
        h.record(u64::MAX); // clamps to the last bucket
        assert_eq!(h.count(), 2);
        assert_eq!(h.quantile(0.0), 0);
        assert!(h.quantile(1.0) > 1u64 << 40);
    }

    #[test]
    fn top_bucket_saturation_keeps_quantiles_monotone() {
        // u64::MAX (and everything past the last group) saturates into
        // the final bucket without panicking or wrapping
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        let h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.count(), 4);
        // quantile estimates never decrease as q increases
        let grid: Vec<u64> = (0..=20).map(|i| h.quantile(i as f64 / 20.0)).collect();
        for w in grid.windows(2) {
            assert!(w[0] <= w[1], "quantiles regressed: {grid:?}");
        }
        assert_eq!(h.quantile(0.0), 0);
        let top = h.quantile(1.0);
        let (lower, width) = bucket_bounds(BUCKETS - 1);
        assert_eq!(top, lower + (width - 1) / 2, "top sample in last bucket");
    }

    #[test]
    fn merge_preserves_count_sum_and_quantile_bounds() {
        let a = Histogram::new();
        let b = Histogram::new();
        for _ in 0..600 {
            a.record(100);
        }
        for _ in 0..400 {
            b.record(10_000);
        }
        let (ca, cb) = (a.count(), b.count());
        let (sa, sb) = (a.sum(), b.sum());
        a.merge(&b);
        assert_eq!(a.count(), ca + cb, "merged count is the sum");
        assert_eq!(a.sum(), sa + sb, "merged sum is the sum");
        // b is untouched
        assert_eq!(b.count(), cb);
        assert_eq!(b.sum(), sb);
        // quantiles of the merge stay within the inputs' bounds and
        // reflect the mixture: p50 near the low mode (600/1000 below),
        // p90 near the high mode
        let p50 = a.quantile(0.5) as f64;
        assert!((p50 - 100.0).abs() / 100.0 <= 0.0625, "p50 {p50}");
        let p90 = a.quantile(0.9) as f64;
        assert!((p90 - 10_000.0).abs() / 10_000.0 <= 0.0625, "p90 {p90}");
        // extremes bounded by the inputs' extremes
        assert!(a.quantile(0.0) >= 94 && a.quantile(1.0) <= 10_625);
        // merging an empty histogram is a no-op
        let before = (a.count(), a.sum(), a.quantile(0.5));
        a.merge(&Histogram::new());
        assert_eq!((a.count(), a.sum(), a.quantile(0.5)), before);
    }

    #[test]
    fn registry_get_or_register_is_idempotent() {
        let r = Registry::new();
        let a = r.counter("obs_test_total", "a test counter");
        let b = r.counter("obs_test_total", "ignored on re-register");
        a.add(3);
        assert_eq!(b.get(), 3, "same underlying counter");
    }

    #[test]
    fn publish_replaces_previous_handle() {
        let r = Registry::new();
        let old = Arc::new(Counter::new());
        old.add(7);
        r.publish_counter("obs_replaced_total", "h", Arc::clone(&old));
        let new = Arc::new(Counter::new());
        new.add(1);
        r.publish_counter("obs_replaced_total", "h", Arc::clone(&new));
        let text = r.render_prometheus();
        assert!(text.contains("obs_replaced_total 1"), "{text}");
    }

    #[test]
    fn prometheus_exposition_golden() {
        let r = Registry::new();
        r.counter("demo_queries_total", "queries handled").add(123);
        r.gauge("demo_qps", "current rate").set(42.5);
        let h = r.histogram("demo_latency_us", "latency in microseconds");
        for _ in 0..100 {
            h.record(100);
        }
        let expected = "\
# HELP demo_latency_us latency in microseconds
# TYPE demo_latency_us summary
demo_latency_us{quantile=\"0.5\"} 99
demo_latency_us{quantile=\"0.9\"} 99
demo_latency_us{quantile=\"0.99\"} 99
demo_latency_us{quantile=\"0.999\"} 99
demo_latency_us_sum 10000
demo_latency_us_count 100
# TYPE demo_latency_us_hist histogram
demo_latency_us_hist_bucket{le=\"103\"} 100
demo_latency_us_hist_bucket{le=\"+Inf\"} 100
demo_latency_us_hist_sum 10000
demo_latency_us_hist_count 100
# HELP demo_qps current rate
# TYPE demo_qps gauge
demo_qps 42.5
# HELP demo_queries_total queries handled
# TYPE demo_queries_total counter
demo_queries_total 123
";
        assert_eq!(r.render_prometheus(), expected);
    }

    #[test]
    fn cumulative_buckets_are_monotone_and_cover_count() {
        let h = Histogram::new();
        for v in [3u64, 3, 100, 100, 100, 5_000] {
            h.record(v);
        }
        let buckets = h.cumulative_buckets();
        assert_eq!(buckets.len(), 3, "three distinct buckets occupied");
        for w in buckets.windows(2) {
            assert!(w[0].0 < w[1].0, "bounds ascend: {buckets:?}");
            assert!(w[0].1 < w[1].1, "cumulative counts ascend: {buckets:?}");
        }
        assert_eq!(buckets.last().unwrap().1, h.count());
        // every recorded value is <= the bound of the bucket it fell in
        assert!(buckets[0].0 >= 3 && buckets[1].0 >= 100 && buckets[2].0 >= 5_000);
    }

    #[test]
    fn registry_sample_enumerates_every_kind_in_name_order() {
        let r = Registry::new();
        r.counter("s_total", "c").add(7);
        r.gauge("a_qps", "g").set(1.5);
        let h = r.histogram("m_lat", "h");
        h.record(10);
        h.record(1000);
        let snap = r.sample();
        let names: Vec<&str> = snap.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["a_qps", "m_lat", "s_total"], "sorted by name");
        assert_eq!(snap[2].1, SampleValue::Counter(7));
        assert_eq!(snap[0].1, SampleValue::Gauge(1.5));
        match &snap[1].1 {
            SampleValue::Histogram {
                count,
                sum,
                quantiles,
            } => {
                assert_eq!(*count, 2);
                assert_eq!(*sum, 1010);
                assert!(quantiles[0] <= quantiles[3], "quantiles monotone");
            }
            other => panic!("expected histogram sample, got {other:?}"),
        }
    }
}

//! `prof` — a dependency-free in-process sampling CPU profiler.
//!
//! On Linux, [`start`] arms a process-wide `setitimer(ITIMER_PROF)`
//! ticker: the kernel delivers `SIGPROF` to whichever thread is
//! currently burning CPU, and the async-signal-safe handler walks the
//! frame-pointer chain of the interrupted context into a fixed-size
//! lock-free ring (no allocation, no locks, errno untouched). A
//! background collector thread drains the ring while the profile runs;
//! [`stop`] symbolizes the unique program counters off-signal — the
//! main executable through its own ELF `.symtab` (static Rust symbols
//! never reach `.dynsym`, so `dladdr` alone cannot name them), shared
//! objects through `dladdr`, everything else through the
//! `/proc/self/maps` region name — and returns a [`Profile`] that
//! renders collapsed folded stacks (`flamegraph.pl`/`inferno`
//! compatible) plus a top-N hot-frame summary.
//!
//! The sampler relies on frame pointers: the workspace builds with
//! `-C force-frame-pointers=yes` (see `.cargo/config.toml`) so the
//! chain is intact through our own code; foreign frames without frame
//! pointers terminate the walk at the first return address that lands
//! outside every executable mapping.
//!
//! After [`stop`] the signal handler stays installed but the timer is
//! disarmed — an *armed but idle* profiler adds zero work (one relaxed
//! atomic load if a stray signal ever arrives) and zero allocations to
//! instrumented paths.
//!
//! Off Linux (or on architectures without a frame-record convention we
//! walk) everything degrades to an inert no-op: [`start`]/[`stop`]
//! succeed, [`supported`] reports `false`, and the profile is empty.

#![allow(unsafe_code)] // the SIGPROF/setitimer FFI and handler ring; nothing else

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

/// Default sampling rate for long-running commands (`--profile`).
pub const DEFAULT_HZ: u32 = 99;
/// Sampling rate used for short per-scenario bench profiles, where a
/// run lasts a few seconds at most and 99 Hz would be too coarse.
pub const BENCH_HZ: u32 = 499;

/// One frame's aggregate weight in a [`Profile`]: `self_samples` counts
/// samples where the frame was the leaf, `total_samples` counts samples
/// where it appeared anywhere on the stack.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HotFrame {
    /// Demangled frame name.
    pub name: String,
    /// Samples with this frame on top of the stack.
    pub self_samples: u64,
    /// Samples with this frame anywhere on the stack.
    pub total_samples: u64,
}

/// A finished CPU profile: aggregated, symbolized stacks.
#[derive(Debug, Default)]
pub struct Profile {
    /// Samples captured (after ring losses).
    pub samples: u64,
    /// Samples dropped because the ring was full or the walk failed.
    pub lost: u64,
    /// Wall-clock span between [`start`] and [`stop`].
    pub duration: Duration,
    /// Sampling rate the timer was armed with.
    pub hz: u32,
    /// Root-first symbolized stacks and their sample counts.
    stacks: Vec<(Vec<String>, u64)>,
}

impl Profile {
    /// True when no samples were captured.
    pub fn is_empty(&self) -> bool {
        self.samples == 0
    }

    /// Collapsed folded-stack rendering: one `frame;frame;... count`
    /// line per unique stack (root first), sorted for determinism —
    /// feed straight into `flamegraph.pl` or `inferno-flamegraph`.
    pub fn folded(&self) -> String {
        let mut lines: Vec<String> = self
            .stacks
            .iter()
            .map(|(frames, n)| format!("{} {n}", frames.join(";")))
            .collect();
        lines.sort();
        let mut out = lines.join("\n");
        if !out.is_empty() {
            out.push('\n');
        }
        out
    }

    /// The `n` hottest frames by self time (ties broken by total).
    pub fn hot_frames(&self, n: usize) -> Vec<HotFrame> {
        let mut tally: HashMap<&str, (u64, u64)> = HashMap::new();
        for (frames, count) in &self.stacks {
            if let Some(leaf) = frames.last() {
                tally.entry(leaf).or_insert((0, 0)).0 += count;
            }
            let mut seen: Vec<&str> = Vec::with_capacity(frames.len());
            for f in frames {
                if !seen.contains(&f.as_str()) {
                    seen.push(f);
                    tally.entry(f).or_insert((0, 0)).1 += count;
                }
            }
        }
        let mut out: Vec<HotFrame> = tally
            .into_iter()
            .map(|(name, (selfs, total))| HotFrame {
                name: name.to_string(),
                self_samples: selfs,
                total_samples: total,
            })
            .collect();
        out.sort_by(|a, b| {
            (b.self_samples, b.total_samples, &a.name).cmp(&(
                a.self_samples,
                a.total_samples,
                &b.name,
            ))
        });
        out.truncate(n);
        out
    }

    /// Fold another profile's stacks into this one (used by `bench` to
    /// accumulate a run-wide folded file across scenarios).
    pub fn merge(&mut self, other: Profile) {
        self.samples += other.samples;
        self.lost += other.lost;
        self.duration += other.duration;
        if self.hz == 0 {
            self.hz = other.hz;
        }
        let mut map: HashMap<Vec<String>, u64> = self.stacks.drain(..).collect();
        for (stack, n) in other.stacks {
            *map.entry(stack).or_insert(0) += n;
        }
        self.stacks = map.into_iter().collect();
    }
}

/// True when this build can actually capture samples (Linux on
/// x86_64/aarch64); elsewhere the profiler is an inert no-op.
pub fn supported() -> bool {
    backend::SUPPORTED
}

/// True while a profiling session is active (timer armed).
pub fn is_running() -> bool {
    RUNNING.load(Ordering::Acquire)
}

struct Session {
    hz: u32,
    started: Instant,
    stop_flag: Arc<AtomicBool>,
    collector: JoinHandle<HashMap<Vec<usize>, u64>>,
    lost_at_start: u64,
}

static RUNNING: AtomicBool = AtomicBool::new(false);

fn session_slot() -> &'static Mutex<Option<Session>> {
    static SLOT: OnceLock<Mutex<Option<Session>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(None))
}

/// Arm the sampler at `hz` samples per second of *process CPU time*
/// (clamped to 1..=1000). Errs if a session is already running — there
/// is exactly one process-wide profiler. On unsupported platforms this
/// succeeds and records nothing.
pub fn start(hz: u32) -> Result<(), String> {
    let hz = hz.clamp(1, 1000);
    let mut slot = session_slot().lock().expect("prof session lock");
    if slot.is_some() {
        return Err("profiler already running".to_string());
    }
    backend::init()?;
    let stop_flag = Arc::new(AtomicBool::new(false));
    let lost_at_start = backend::lost_count();
    let flag = Arc::clone(&stop_flag);
    let collector = std::thread::Builder::new()
        .name("obs-prof".to_string())
        .spawn(move || {
            let samples = crate::counter(
                "obs_prof_samples_total",
                "CPU profile samples captured by obs::prof",
            );
            let lost = crate::counter(
                "obs_prof_lost_total",
                "CPU profile samples dropped (ring full or unwalkable stack)",
            );
            let mut lost_seen = backend::lost_count();
            let mut agg: HashMap<Vec<usize>, u64> = HashMap::new();
            loop {
                let done = flag.load(Ordering::Acquire);
                let n = backend::drain(&mut agg);
                if n > 0 {
                    samples.add(n);
                }
                let lost_now = backend::lost_count();
                if lost_now > lost_seen {
                    lost.add(lost_now - lost_seen);
                    lost_seen = lost_now;
                }
                if done {
                    return agg;
                }
                std::thread::sleep(Duration::from_millis(20));
            }
        })
        .map_err(|e| format!("spawn obs-prof collector: {e}"))?;
    backend::arm(hz)?;
    *slot = Some(Session {
        hz,
        started: Instant::now(),
        stop_flag,
        collector,
        lost_at_start,
    });
    RUNNING.store(true, Ordering::Release);
    Ok(())
}

/// Disarm the timer, drain and symbolize, and return the profile.
/// `None` when no session is running. The signal handler stays
/// installed (armed but idle) — re-[`start`]ing is cheap.
pub fn stop() -> Option<Profile> {
    let mut slot = session_slot().lock().expect("prof session lock");
    let session = slot.take()?;
    backend::disarm();
    RUNNING.store(false, Ordering::Release);
    // Let any handler that fired just before disarm finish publishing
    // its slot so the final drain sees it.
    std::thread::sleep(Duration::from_millis(10));
    session.stop_flag.store(true, Ordering::Release);
    let agg = session.collector.join().unwrap_or_default();
    let lost = backend::lost_count().saturating_sub(session.lost_at_start);
    let stacks = backend::symbolize(agg);
    let samples = stacks.iter().map(|(_, n)| n).sum();
    Some(Profile {
        samples,
        lost,
        duration: session.started.elapsed(),
        hz: session.hz,
        stacks,
    })
}

/// Run a bounded profiling session: arm, sleep `duration`, stop. This
/// is the `/profile?seconds=N` entry point — it errs (rather than
/// queueing) when a session is already running so the HTTP layer can
/// answer 503 immediately.
pub fn profile_for(duration: Duration, hz: u32) -> Result<Profile, String> {
    start(hz)?;
    std::thread::sleep(duration);
    Ok(stop().expect("profiler session vanished mid-run"))
}

/// Sampling backend for Linux on x86_64/aarch64: SIGPROF + frame-pointer
/// walk + lock-free ring, all via direct libc FFI.
#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod backend {
    use std::cell::UnsafeCell;
    use std::collections::HashMap;
    use std::ffi::CStr;
    use std::os::raw::{c_char, c_int, c_void};
    use std::ptr;
    use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, AtomicUsize, Ordering};

    pub const SUPPORTED: bool = true;

    /// Deepest stack we record per sample.
    const MAX_DEPTH: usize = 48;
    /// Ring capacity in samples; at the worst case (every core busy,
    /// 1000 Hz of process CPU per core) the 20 ms collector cadence
    /// drains long before this fills.
    const RING: usize = 4096;
    /// Executable-mapping ranges we validate return addresses against.
    const MAX_TEXT: usize = 64;
    /// How far above the interrupted stack pointer the walk may roam.
    const STACK_WINDOW: usize = 1 << 22;

    // ---- libc FFI (same direct-syscall style as authd::sockets) ----

    const SIGPROF: c_int = 27;
    const ITIMER_PROF: c_int = 2;
    const SA_SIGINFO: c_int = 0x0000_0004;
    const SA_RESTART: c_int = 0x1000_0000;

    #[repr(C)]
    struct Timeval {
        tv_sec: i64,
        tv_usec: i64,
    }

    #[repr(C)]
    struct Itimerval {
        it_interval: Timeval,
        it_value: Timeval,
    }

    /// glibc/musl `struct sigaction` on 64-bit Linux: handler, 128-byte
    /// signal mask, flags, restorer.
    #[repr(C)]
    struct Sigaction {
        sa_sigaction: usize,
        sa_mask: [u64; 16],
        sa_flags: c_int,
        sa_restorer: usize,
    }

    #[repr(C)]
    struct DlInfo {
        dli_fname: *const c_char,
        dli_fbase: *mut c_void,
        dli_sname: *const c_char,
        dli_saddr: *mut c_void,
    }

    /// Leading fields of glibc's `dl_phdr_info`; the callback only
    /// reads these, which every libc provides at these offsets.
    #[repr(C)]
    struct DlPhdrInfo {
        dlpi_addr: usize,
        dlpi_name: *const c_char,
        dlpi_phdr: *const c_void,
        dlpi_phnum: u16,
    }

    extern "C" {
        fn sigaction(signum: c_int, act: *const Sigaction, old: *mut Sigaction) -> c_int;
        fn setitimer(which: c_int, new: *const Itimerval, old: *mut Itimerval) -> c_int;
        fn dladdr(addr: *const c_void, info: *mut DlInfo) -> c_int;
        fn dl_iterate_phdr(
            cb: extern "C" fn(*mut DlPhdrInfo, usize, *mut c_void) -> c_int,
            data: *mut c_void,
        ) -> c_int;
    }

    // ---- the sample ring (bounded Vyukov MPMC; producers are signal
    // handlers on arbitrary threads, the consumer is the collector) ----

    struct Slot {
        seq: AtomicUsize,
        depth: UnsafeCell<usize>,
        pcs: UnsafeCell<[usize; MAX_DEPTH]>,
    }

    // SAFETY: `depth`/`pcs` are only touched by the producer that won
    // the seq CAS for this position, or by the consumer after seeing
    // the producer's Release store of seq — the classic bounded-queue
    // handoff protocol.
    unsafe impl Sync for Slot {}

    static RING_PTR: AtomicPtr<Slot> = AtomicPtr::new(ptr::null_mut());
    static HEAD: AtomicUsize = AtomicUsize::new(0);
    static TAIL: AtomicUsize = AtomicUsize::new(0);
    static LOST: AtomicU64 = AtomicU64::new(0);
    static ACTIVE: AtomicBool = AtomicBool::new(false);

    #[allow(clippy::declare_interior_mutable_const)] // static array seed
    const ZERO: AtomicUsize = AtomicUsize::new(0);
    static TEXT_LO: [AtomicUsize; MAX_TEXT] = [ZERO; MAX_TEXT];
    static TEXT_HI: [AtomicUsize; MAX_TEXT] = [ZERO; MAX_TEXT];
    static TEXT_N: AtomicUsize = AtomicUsize::new(0);

    /// One-time (per process) ring allocation + handler install, plus a
    /// per-session refresh of the executable-mapping table. Called
    /// under the session lock, so never concurrently.
    pub fn init() -> Result<(), String> {
        if RING_PTR.load(Ordering::Acquire).is_null() {
            let slots: Box<[Slot]> = (0..RING)
                .map(|i| Slot {
                    seq: AtomicUsize::new(i),
                    depth: UnsafeCell::new(0),
                    pcs: UnsafeCell::new([0; MAX_DEPTH]),
                })
                .collect();
            RING_PTR.store(Box::leak(slots).as_mut_ptr(), Ordering::Release);
        }
        refresh_text_ranges()?;
        install_handler()
    }

    /// Record every executable mapping from /proc/self/maps so the
    /// handler can reject return addresses that point nowhere runnable.
    fn refresh_text_ranges() -> Result<(), String> {
        let maps = std::fs::read_to_string("/proc/self/maps")
            .map_err(|e| format!("read /proc/self/maps: {e}"))?;
        let mut n = 0usize;
        for (lo, hi, _path) in parse_maps(&maps, true) {
            if n == MAX_TEXT {
                // overflow: widen the last range rather than dropping
                TEXT_HI[MAX_TEXT - 1].store(hi, Ordering::Relaxed);
                continue;
            }
            TEXT_LO[n].store(lo, Ordering::Relaxed);
            TEXT_HI[n].store(hi, Ordering::Relaxed);
            n += 1;
        }
        if n == 0 {
            return Err("no executable mappings found".to_string());
        }
        TEXT_N.store(n, Ordering::Release);
        Ok(())
    }

    /// `(lo, hi, path)` for each mapping; `exec_only` keeps just r-x.
    fn parse_maps(maps: &str, exec_only: bool) -> Vec<(usize, usize, String)> {
        let mut out = Vec::new();
        for line in maps.lines() {
            let mut parts = line.split_whitespace();
            let (Some(range), Some(perms)) = (parts.next(), parts.next()) else {
                continue;
            };
            if exec_only && perms.as_bytes().get(2) != Some(&b'x') {
                continue;
            }
            let Some((lo, hi)) = range.split_once('-') else {
                continue;
            };
            let (Ok(lo), Ok(hi)) = (usize::from_str_radix(lo, 16), usize::from_str_radix(hi, 16))
            else {
                continue;
            };
            let path = line
                .splitn(6, char::is_whitespace)
                .nth(5)
                .map(str::trim)
                .unwrap_or("")
                .to_string();
            out.push((lo, hi, path));
        }
        out
    }

    fn install_handler() -> Result<(), String> {
        static INSTALLED: AtomicBool = AtomicBool::new(false);
        if INSTALLED.load(Ordering::Acquire) {
            return Ok(());
        }
        let act = Sigaction {
            sa_sigaction: on_sigprof as *const () as usize,
            sa_mask: [0; 16],
            sa_flags: SA_SIGINFO | SA_RESTART,
            sa_restorer: 0,
        };
        // SAFETY: `act` is a valid glibc-layout sigaction; the handler
        // is async-signal-safe (atomics and raw stack reads only).
        let rc = unsafe { sigaction(SIGPROF, &act, ptr::null_mut()) };
        if rc != 0 {
            return Err(format!(
                "sigaction(SIGPROF): {}",
                std::io::Error::last_os_error()
            ));
        }
        INSTALLED.store(true, Ordering::Release);
        Ok(())
    }

    pub fn arm(hz: u32) -> Result<(), String> {
        ACTIVE.store(true, Ordering::Release);
        let usec = (1_000_000 / i64::from(hz.max(1))).max(1_000);
        let tick = Itimerval {
            it_interval: Timeval {
                tv_sec: 0,
                tv_usec: usec,
            },
            it_value: Timeval {
                tv_sec: 0,
                tv_usec: usec,
            },
        };
        // SAFETY: plain struct pointer into a process-wide timer API.
        let rc = unsafe { setitimer(ITIMER_PROF, &tick, ptr::null_mut()) };
        if rc != 0 {
            ACTIVE.store(false, Ordering::Release);
            return Err(format!(
                "setitimer(ITIMER_PROF): {}",
                std::io::Error::last_os_error()
            ));
        }
        Ok(())
    }

    pub fn disarm() {
        let off = Itimerval {
            it_interval: Timeval {
                tv_sec: 0,
                tv_usec: 0,
            },
            it_value: Timeval {
                tv_sec: 0,
                tv_usec: 0,
            },
        };
        // SAFETY: zeroed itimerval disarms the timer; cannot fail with
        // valid arguments.
        unsafe { setitimer(ITIMER_PROF, &off, ptr::null_mut()) };
        ACTIVE.store(false, Ordering::Release);
    }

    pub fn lost_count() -> u64 {
        LOST.load(Ordering::Relaxed)
    }

    /// Is `pc` inside any executable mapping? Handler-safe: a bounded
    /// scan over atomics.
    #[inline]
    fn in_text(pc: usize) -> bool {
        let n = TEXT_N.load(Ordering::Relaxed).min(MAX_TEXT);
        for i in 0..n {
            if pc >= TEXT_LO[i].load(Ordering::Relaxed) && pc < TEXT_HI[i].load(Ordering::Relaxed) {
                return true;
            }
        }
        false
    }

    /// The SIGPROF handler. Async-signal-safe by construction: atomics,
    /// raw in-bounds stack reads, no allocation, no locks, no libc
    /// calls (errno is left untouched).
    extern "C" fn on_sigprof(_sig: c_int, _info: *mut c_void, ctx: *mut c_void) {
        if !ACTIVE.load(Ordering::Relaxed) {
            return;
        }
        let ring = RING_PTR.load(Ordering::Acquire);
        if ring.is_null() || ctx.is_null() {
            return;
        }
        let mut pcs = [0usize; MAX_DEPTH];
        // SAFETY: ctx is the kernel-provided ucontext for this arch;
        // capture_stack bounds every read (see its comments).
        let depth = unsafe { capture_stack(ctx, &mut pcs) };
        if depth == 0 {
            LOST.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let mut pos = HEAD.load(Ordering::Relaxed);
        loop {
            // SAFETY: ring points at RING leaked slots; index is masked.
            let slot = unsafe { &*ring.add(pos % RING) };
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == pos {
                if HEAD
                    .compare_exchange_weak(pos, pos + 1, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok()
                {
                    // SAFETY: winning the CAS grants exclusive write
                    // access to this slot until the seq store below.
                    unsafe {
                        *slot.depth.get() = depth;
                        (&mut *slot.pcs.get())[..depth].copy_from_slice(&pcs[..depth]);
                    }
                    slot.seq.store(pos + 1, Ordering::Release);
                    return;
                }
                pos = HEAD.load(Ordering::Relaxed);
            } else if seq < pos {
                // consumer hasn't freed this slot yet: ring full
                LOST.fetch_add(1, Ordering::Relaxed);
                return;
            } else {
                pos = HEAD.load(Ordering::Relaxed);
            }
        }
    }

    /// Leaf pc, frame pointer, and stack pointer of the interrupted
    /// context, read at the documented glibc `ucontext_t` offsets
    /// (which match the kernel sigcontext register order, so musl's
    /// layout agrees on these fields).
    #[cfg(target_arch = "x86_64")]
    unsafe fn interrupted_regs(ctx: *mut c_void) -> (usize, usize, usize) {
        // gregs[] at byte 40; RBP=10, RSP=15, RIP=16.
        let gregs = (ctx as *const u8).add(40) as *const u64;
        let fp = *gregs.add(10) as usize;
        let sp = *gregs.add(15) as usize;
        let pc = *gregs.add(16) as usize;
        (pc, fp, sp)
    }

    #[cfg(target_arch = "aarch64")]
    unsafe fn interrupted_regs(ctx: *mut c_void) -> (usize, usize, usize) {
        // mcontext at byte 176: fault_address, regs[31], sp, pc.
        let mc = (ctx as *const u8).add(176);
        let fp = *(mc.add(8 + 29 * 8) as *const u64) as usize;
        let sp = *(mc.add(8 + 31 * 8) as *const u64) as usize;
        let pc = *(mc.add(8 + 32 * 8) as *const u64) as usize;
        (pc, fp, sp)
    }

    /// Walk the frame-pointer chain, leaf first. Both x86_64 and
    /// aarch64 use the same frame record: `[fp]` is the caller's frame
    /// pointer, `[fp+8]` the return address. Every step must stay
    /// 8-aligned, move strictly upward within a bounded window above
    /// the interrupted stack pointer (that region is mapped — it holds
    /// the frames that got us here), and produce a return address
    /// inside an executable mapping; anything else ends the walk.
    unsafe fn capture_stack(ctx: *mut c_void, out: &mut [usize; MAX_DEPTH]) -> usize {
        let (pc, mut fp, sp) = interrupted_regs(ctx);
        let limit = sp.wrapping_add(STACK_WINDOW);
        let mut n = 0;
        if in_text(pc) {
            out[n] = pc;
            n += 1;
        }
        while n < MAX_DEPTH {
            if fp < sp || fp >= limit || fp & 7 != 0 {
                break;
            }
            let next_fp = *(fp as *const usize);
            let ret = *((fp + 8) as *const usize);
            if !in_text(ret) {
                break;
            }
            out[n] = ret;
            n += 1;
            if next_fp <= fp {
                break;
            }
            fp = next_fp;
        }
        n
    }

    /// Drain every published sample into `agg` (keyed by the raw
    /// leaf-first pc stack). Single consumer: the collector thread.
    pub fn drain(agg: &mut HashMap<Vec<usize>, u64>) -> u64 {
        let ring = RING_PTR.load(Ordering::Acquire);
        if ring.is_null() {
            return 0;
        }
        let mut drained = 0u64;
        loop {
            let pos = TAIL.load(Ordering::Relaxed);
            // SAFETY: same leaked ring as the producer side.
            let slot = unsafe { &*ring.add(pos % RING) };
            if slot.seq.load(Ordering::Acquire) != pos + 1 {
                return drained; // empty, or a producer is mid-write
            }
            // SAFETY: seq == pos+1 means the producer's Release store
            // published this slot; we own it until the store below.
            let stack = unsafe {
                let depth = (*slot.depth.get()).min(MAX_DEPTH);
                (&*slot.pcs.get())[..depth].to_vec()
            };
            slot.seq.store(pos + RING, Ordering::Release);
            TAIL.store(pos + 1, Ordering::Relaxed);
            *agg.entry(stack).or_insert(0) += 1;
            drained += 1;
        }
    }

    // ---- off-signal symbolization ----

    struct Sym {
        addr: usize,
        size: usize,
        name: String,
    }

    struct Resolver {
        bias: usize,
        exe_ranges: Vec<(usize, usize)>,
        regions: Vec<(usize, usize, String)>,
        syms: Vec<Sym>,
    }

    extern "C" fn first_phdr(info: *mut DlPhdrInfo, _size: usize, data: *mut c_void) -> c_int {
        // SAFETY: the callback contract hands us valid pointers; the
        // first entry is always the main executable.
        unsafe { *(data as *mut usize) = (*info).dlpi_addr };
        1 // stop after the first object
    }

    impl Resolver {
        fn new() -> Resolver {
            let maps = std::fs::read_to_string("/proc/self/maps").unwrap_or_default();
            let regions = parse_maps(&maps, true);
            let exe_path = std::fs::read_link("/proc/self/exe")
                .map(|p| p.to_string_lossy().into_owned())
                .unwrap_or_default();
            let exe_ranges: Vec<(usize, usize)> = regions
                .iter()
                .filter(|(_, _, p)| !exe_path.is_empty() && p == &exe_path)
                .map(|&(lo, hi, _)| (lo, hi))
                .collect();
            let mut bias = 0usize;
            // SAFETY: first_phdr only writes through the usize pointer
            // we pass in.
            unsafe { dl_iterate_phdr(first_phdr, &mut bias as *mut usize as *mut c_void) };
            let mut syms = std::fs::read(&exe_path)
                .ok()
                .map(|data| parse_elf_functions(&data))
                .unwrap_or_default();
            syms.sort_by_key(|s| s.addr);
            Resolver {
                bias,
                exe_ranges,
                regions,
                syms,
            }
        }

        fn lookup_exe(&self, addr: usize) -> Option<&Sym> {
            let file_addr = addr.checked_sub(self.bias)?;
            let idx = self.syms.partition_point(|s| s.addr <= file_addr);
            let sym = self.syms.get(idx.checked_sub(1)?)?;
            // size-0 symbols (hand-written asm, PLT stubs) get a
            // generous window rather than a miss
            let size = if sym.size == 0 { 1 << 16 } else { sym.size };
            (file_addr < sym.addr + size).then_some(sym)
        }

        fn resolve(&self, pc: usize) -> String {
            if self.exe_ranges.iter().any(|&(lo, hi)| pc >= lo && pc < hi) {
                if let Some(sym) = self.lookup_exe(pc) {
                    return sanitize(&demangle(&sym.name));
                }
                return format!("0x{:x}", pc.saturating_sub(self.bias));
            }
            let mut info = DlInfo {
                dli_fname: ptr::null(),
                dli_fbase: ptr::null_mut(),
                dli_sname: ptr::null(),
                dli_saddr: ptr::null_mut(),
            };
            // SAFETY: dladdr only reads pc and fills `info`; the
            // returned strings live as long as the mapped object.
            let rc = unsafe { dladdr(pc as *const c_void, &mut info) };
            if rc != 0 && !info.dli_sname.is_null() {
                // SAFETY: dladdr reported a valid NUL-terminated name.
                let name = unsafe { CStr::from_ptr(info.dli_sname) }.to_string_lossy();
                return sanitize(&demangle(&name));
            }
            for (lo, hi, path) in &self.regions {
                if pc >= *lo && pc < *hi {
                    let base = path.rsplit('/').next().unwrap_or(path);
                    let label = if base.is_empty() { "anon" } else { base };
                    return format!("[{}]", sanitize(label));
                }
            }
            "[unknown]".to_string()
        }
    }

    fn rd_u16(d: &[u8], off: usize) -> Option<u16> {
        Some(u16::from_le_bytes(d.get(off..off + 2)?.try_into().ok()?))
    }
    fn rd_u32(d: &[u8], off: usize) -> Option<u32> {
        Some(u32::from_le_bytes(d.get(off..off + 4)?.try_into().ok()?))
    }
    fn rd_u64(d: &[u8], off: usize) -> Option<u64> {
        Some(u64::from_le_bytes(d.get(off..off + 8)?.try_into().ok()?))
    }

    /// STT_FUNC entries of the ELF64 `.symtab` (falling back to
    /// `.dynsym` for stripped binaries).
    fn parse_elf_functions(data: &[u8]) -> Vec<Sym> {
        parse_elf_inner(data).unwrap_or_default()
    }

    fn parse_elf_inner(data: &[u8]) -> Option<Vec<Sym>> {
        if data.get(..4)? != b"\x7fELF" || data.get(4) != Some(&2) || data.get(5) != Some(&1) {
            return None; // not ELF64 little-endian
        }
        let shoff = rd_u64(data, 0x28)? as usize;
        let shentsize = rd_u16(data, 0x3a)? as usize;
        let shnum = rd_u16(data, 0x3c)? as usize;
        if shentsize < 64 {
            return None;
        }
        let section = |i: usize| -> Option<(u32, usize, usize, usize)> {
            let base = shoff + i * shentsize;
            Some((
                rd_u32(data, base + 4)?,             // sh_type
                rd_u64(data, base + 0x18)? as usize, // sh_offset
                rd_u64(data, base + 0x20)? as usize, // sh_size
                rd_u32(data, base + 0x28)? as usize, // sh_link
            ))
        };
        const SHT_SYMTAB: u32 = 2;
        const SHT_DYNSYM: u32 = 11;
        let mut chosen = None;
        for i in 0..shnum {
            let Some(s) = section(i) else { continue };
            if s.0 == SHT_SYMTAB {
                chosen = Some(s);
                break;
            }
            if s.0 == SHT_DYNSYM && chosen.is_none() {
                chosen = Some(s);
            }
        }
        let (_, sym_off, sym_size, link) = chosen?;
        let (_, str_off, str_size, _) = section(link)?;
        let strtab = data.get(str_off..str_off + str_size)?;
        let mut out = Vec::new();
        const ENT: usize = 24;
        for i in 0..sym_size / ENT {
            let base = sym_off + i * ENT;
            let info = *data.get(base + 4)?;
            if info & 0xf != 2 {
                continue; // not STT_FUNC
            }
            let value = rd_u64(data, base + 8)? as usize;
            if value == 0 {
                continue;
            }
            let name_off = rd_u32(data, base)? as usize;
            let name_end = strtab
                .get(name_off..)?
                .iter()
                .position(|&b| b == 0)
                .map(|p| name_off + p)?;
            let name = std::str::from_utf8(&strtab[name_off..name_end])
                .ok()?
                .to_string();
            if name.is_empty() {
                continue;
            }
            out.push(Sym {
                addr: value,
                size: rd_u64(data, base + 16)? as usize,
                name,
            });
        }
        Some(out)
    }

    /// Symbolize raw pc stacks into root-first frame-name stacks.
    /// Return addresses (every frame past the leaf) are shifted back by
    /// one byte so they attribute to the call site, not the line after.
    pub fn symbolize(agg: HashMap<Vec<usize>, u64>) -> Vec<(Vec<String>, u64)> {
        let resolver = Resolver::new();
        let mut cache: HashMap<usize, String> = HashMap::new();
        let mut folded: HashMap<Vec<String>, u64> = HashMap::new();
        for (pcs, count) in agg {
            let mut frames: Vec<String> = pcs
                .iter()
                .enumerate()
                .map(|(i, &pc)| {
                    let lookup = if i == 0 { pc } else { pc.saturating_sub(1) };
                    cache
                        .entry(lookup)
                        .or_insert_with(|| resolver.resolve(lookup))
                        .clone()
                })
                .collect();
            frames.reverse(); // leaf-first capture → root-first folded
            *folded.entry(frames).or_insert(0) += count;
        }
        folded.into_iter().collect()
    }

    /// Legacy Rust mangling (`_ZN…17h<hash>E`) → `path::segments`; v0
    /// (`_R…`) and foreign names pass through unchanged.
    pub(super) fn demangle(sym: &str) -> String {
        demangle_legacy(sym).unwrap_or_else(|| sym.to_string())
    }

    fn demangle_legacy(sym: &str) -> Option<String> {
        let rest = sym.strip_prefix("_ZN")?;
        let bytes = rest.as_bytes();
        let mut segs: Vec<&str> = Vec::new();
        let mut i = 0;
        while bytes.get(i) != Some(&b'E') {
            let start = i;
            while bytes.get(i).is_some_and(u8::is_ascii_digit) {
                i += 1;
            }
            let len: usize = rest.get(start..i)?.parse().ok()?;
            let seg = rest.get(i..i + len)?;
            // segments that begin with a `$…$` escape get an extra
            // leading `_` in the mangled form; drop it
            segs.push(seg.strip_prefix("_$").map_or(seg, |_| &seg[1..]));
            i += len;
        }
        if segs.last().is_some_and(|s| {
            s.len() == 17 && s.starts_with('h') && s[1..].bytes().all(|b| b.is_ascii_hexdigit())
        }) {
            segs.pop();
        }
        if segs.is_empty() {
            return None;
        }
        Some(unescape(&segs.join("::")))
    }

    /// Expand `$LT$`-style and `$uXX$` hex escapes from the legacy
    /// mangling scheme.
    fn unescape(s: &str) -> String {
        let mut out = String::with_capacity(s.len());
        let mut rest = s;
        while let Some(pos) = rest.find('$') {
            out.push_str(&rest[..pos]);
            let tail = &rest[pos + 1..];
            let Some(end) = tail.find('$') else {
                out.push_str(&rest[pos..]);
                return out;
            };
            let token = &tail[..end];
            match token {
                "SP" => out.push('@'),
                "BP" => out.push('*'),
                "RF" => out.push('&'),
                "LT" => out.push('<'),
                "GT" => out.push('>'),
                "LP" => out.push('('),
                "RP" => out.push(')'),
                "C" => out.push(','),
                _ => {
                    let expanded = token
                        .strip_prefix('u')
                        .and_then(|hex| u32::from_str_radix(hex, 16).ok())
                        .and_then(char::from_u32);
                    match expanded {
                        Some(c) => out.push(c),
                        None => {
                            out.push('$');
                            out.push_str(token);
                            out.push('$');
                        }
                    }
                }
            }
            rest = &tail[end + 1..];
        }
        out.push_str(rest);
        out
    }

    /// Folded-format hygiene: `;` separates frames and space separates
    /// the count, so neither may appear inside a name.
    fn sanitize(name: &str) -> String {
        name.replace(';', ":").replace(' ', "_")
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn demangles_legacy_symbols() {
            assert_eq!(
                demangle("_ZN4core3fmt9Formatter3pad17h1234567890abcdefE"),
                "core::fmt::Formatter::pad"
            );
            assert_eq!(
                demangle("_ZN38_$LT$Vec$LT$T$GT$$u20$as$u20$Clone$GT$5clone17habcdefabcdefabcdE"),
                "<Vec<T> as Clone>::clone"
            );
            // foreign / v0 names pass through
            assert_eq!(demangle("memcpy"), "memcpy");
            assert_eq!(demangle("_RNvNtCs123_4core3fmt"), "_RNvNtCs123_4core3fmt");
        }

        #[test]
        fn parses_own_elf_symtab() {
            let exe = std::fs::read("/proc/self/exe").expect("read self");
            let syms = parse_elf_functions(&exe);
            assert!(
                syms.len() > 100,
                "expected a rich .symtab, got {} functions",
                syms.len()
            );
            assert!(
                syms.iter().any(|s| s.name.contains("parse_elf")),
                "own function missing from parsed symtab"
            );
        }
    }
}

/// Inert fallback: every operation succeeds and captures nothing.
#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
mod backend {
    use std::collections::HashMap;

    pub const SUPPORTED: bool = false;

    pub fn init() -> Result<(), String> {
        Ok(())
    }
    pub fn arm(_hz: u32) -> Result<(), String> {
        Ok(())
    }
    pub fn disarm() {}
    pub fn lost_count() -> u64 {
        0
    }
    pub fn drain(_agg: &mut HashMap<Vec<usize>, u64>) -> u64 {
        0
    }
    pub fn symbolize(_agg: HashMap<Vec<usize>, u64>) -> Vec<(Vec<String>, u64)> {
        Vec::new()
    }
}

/// Serialize unit tests that arm the process-global profiler; the test
/// binary runs them in parallel threads of one process. Also used by
/// [`crate::prom`]'s `/profile` tests.
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exclusive() -> std::sync::MutexGuard<'static, ()> {
        test_lock()
    }

    #[test]
    fn profiles_a_busy_loop_and_renders_folded_stacks() {
        let _guard = exclusive();
        start(BENCH_HZ).expect("start profiler");
        assert!(is_running());
        let t0 = Instant::now();
        let mut acc = 1u64;
        while t0.elapsed() < Duration::from_millis(400) {
            for i in 0..100_000u64 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            std::hint::black_box(acc);
        }
        let profile = stop().expect("a session was running");
        assert!(!is_running());
        if !supported() {
            assert!(profile.is_empty());
            return;
        }
        assert!(profile.samples > 0, "busy loop produced no samples");
        let folded = profile.folded();
        assert!(!folded.is_empty());
        for line in folded.lines() {
            let (stack, count) = line.rsplit_once(' ').expect("folded line has a count");
            assert!(!stack.is_empty(), "empty stack in {line:?}");
            count.parse::<u64>().expect("count parses");
        }
        let hot = profile.hot_frames(5);
        assert!(!hot.is_empty());
        assert!(hot[0].total_samples >= hot[0].self_samples || hot[0].self_samples > 0);
    }

    #[test]
    fn second_start_reports_busy_and_stop_is_none_when_idle() {
        let _guard = exclusive();
        assert!(stop().is_none());
        start(99).expect("start");
        let err = start(99).expect_err("second start must fail");
        assert!(err.contains("already running"), "{err}");
        stop().expect("stop the session");
        assert!(stop().is_none());
    }

    #[cfg(not(target_os = "linux"))]
    #[test]
    fn off_linux_is_an_inert_noop() {
        let _guard = exclusive();
        assert!(!supported());
        start(99).expect("no-op start succeeds");
        let p = stop().expect("session existed");
        assert!(p.is_empty());
        assert_eq!(p.folded(), "");
    }

    #[test]
    fn merge_accumulates_counts() {
        let a = Profile {
            samples: 2,
            lost: 0,
            duration: Duration::from_secs(1),
            hz: 99,
            stacks: vec![(vec!["main".into(), "work".into()], 2)],
        };
        let mut b = Profile {
            samples: 3,
            lost: 1,
            duration: Duration::from_secs(1),
            hz: 99,
            stacks: vec![
                (vec!["main".into(), "work".into()], 1),
                (vec!["main".into(), "other".into()], 2),
            ],
        };
        b.merge(a);
        assert_eq!(b.samples, 5);
        assert_eq!(b.lost, 1);
        let folded = b.folded();
        assert!(folded.contains("main;work 3"), "{folded}");
        assert!(folded.contains("main;other 2"), "{folded}");
    }
}

//! Lightweight span tracing with Chrome trace-event export.
//!
//! [`span`] returns an RAII guard; when tracing is enabled (the CLI's
//! `--trace <file>` flag calls [`enable`]) the guard records a complete
//! ("X") event on drop — name, thread id, start timestamp, duration —
//! into a global collector. [`write_jsonl`] dumps the collected events
//! as one JSON object per line, loadable by `chrome://tracing` and
//! Perfetto (both accept newline-delimited trace events).
//!
//! When tracing is disabled, [`span`] costs one relaxed atomic load and
//! allocates nothing: instrumented hot loops stay hot.

use std::borrow::Cow;
use std::io::{self, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// One collected trace event: a completed span or an instant marker.
#[derive(Debug, Clone)]
struct Event {
    name: Cow<'static, str>,
    tid: u64,
    start_us: u64,
    end_us: u64,
    /// Inner body of the Chrome `args` object (pre-rendered JSON
    /// key/value pairs, no braces); `None` for plain spans.
    args: Option<String>,
    /// `true` for instant ("i") events, `false` for complete ("X").
    instant: bool,
}

struct Collector {
    epoch: Instant,
    events: Mutex<Vec<Event>>,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static COLLECTOR: OnceLock<Collector> = OnceLock::new();
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

/// Turn span collection on (idempotent; stays on for the process).
pub fn enable() {
    COLLECTOR.get_or_init(|| Collector {
        epoch: Instant::now(),
        events: Mutex::new(Vec::new()),
    });
    ENABLED.store(true, Ordering::Release);
}

/// Whether spans are being collected.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Acquire)
}

/// An in-flight span; records itself on drop. Obtain via [`span`].
pub struct Span {
    live: Option<(Cow<'static, str>, u64)>, // (name, start_us)
}

/// Open a span named `name`; the returned guard records the elapsed
/// interval when dropped. Nested guards (dropped in LIFO order) produce
/// properly nested intervals per thread.
#[inline]
pub fn span(name: impl Into<Cow<'static, str>>) -> Span {
    if !enabled() {
        return Span { live: None };
    }
    let collector = COLLECTOR.get().expect("enabled implies initialized");
    let start_us = collector.epoch.elapsed().as_micros() as u64;
    Span {
        live: Some((name.into(), start_us)),
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some((name, start_us)) = self.live.take() else {
            return;
        };
        let Some(collector) = COLLECTOR.get() else {
            return;
        };
        let end_us = collector.epoch.elapsed().as_micros() as u64;
        let tid = TID.with(|t| *t);
        collector.events.lock().expect("trace lock").push(Event {
            name,
            tid,
            start_us,
            end_us,
            args: None,
            instant: false,
        });
    }
}

/// Record an instant ("i") event at the current timestamp, carrying
/// `args` as the inner body of the Chrome `args` object (pre-rendered
/// JSON key/value pairs without the surrounding braces, e.g.
/// `"hop":"gen","latency_us":12`). A no-op unless tracing is
/// [`enable`]d. The flight recorder's query-sampled hop events land
/// here, thread-scoped so Perfetto pins them to the worker lane that
/// produced them.
pub fn instant(name: impl Into<Cow<'static, str>>, args: String) {
    if !enabled() {
        return;
    }
    let Some(collector) = COLLECTOR.get() else {
        return;
    };
    let now_us = collector.epoch.elapsed().as_micros() as u64;
    let tid = TID.with(|t| *t);
    collector.events.lock().expect("trace lock").push(Event {
        name: name.into(),
        tid,
        start_us: now_us,
        end_us: now_us,
        args: Some(args),
        instant: true,
    });
}

/// Microseconds elapsed since the trace epoch, or `None` when tracing
/// is disabled (the epoch only exists once [`enable`] ran).
pub fn now_us() -> Option<u64> {
    COLLECTOR
        .get()
        .map(|c| c.epoch.elapsed().as_micros() as u64)
}

/// Number of spans collected so far.
pub fn collected() -> usize {
    COLLECTOR
        .get()
        .map(|c| c.events.lock().expect("trace lock").len())
        .unwrap_or(0)
}

/// Minimal JSON string escaping (span names are identifiers, but stay
/// safe for arbitrary input).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Write every collected event as Chrome trace-event JSONL: one
/// complete ("X") span or instant ("i") marker per line. Returns the
/// number of events written. The collector keeps its events (repeated
/// calls re-export).
pub fn write_jsonl<W: Write>(mut w: W) -> io::Result<usize> {
    let Some(collector) = COLLECTOR.get() else {
        return Ok(0);
    };
    let mut events = collector.events.lock().expect("trace lock").clone();
    // stable order: by start, parents (longer) before children on ties
    events.sort_by_key(|e| (e.start_us, std::cmp::Reverse(e.end_us)));
    for e in &events {
        if e.instant {
            write!(
                w,
                "{{\"name\":\"{}\",\"cat\":\"obs\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{},\"ts\":{}",
                escape(&e.name),
                e.tid,
                e.start_us,
            )?;
            if let Some(args) = &e.args {
                write!(w, ",\"args\":{{{args}}}")?;
            }
            writeln!(w, "}}")?;
        } else {
            writeln!(
                w,
                "{{\"name\":\"{}\",\"cat\":\"obs\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{}}}",
                escape(&e.name),
                e.tid,
                e.start_us,
                e.end_us - e.start_us,
            )?;
        }
    }
    Ok(events.len())
}

/// [`write_jsonl`] to a file path.
pub fn write_jsonl_file(path: &std::path::Path) -> io::Result<usize> {
    let file = std::fs::File::create(path)?;
    let mut w = io::BufWriter::new(file);
    let n = write_jsonl(&mut w)?;
    w.flush()?;
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_export_valid_jsonl() {
        enable();
        {
            let _outer = span("outer");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = span("inner");
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            let _dynamic = span(format!("dataset {}", "nl-w2020"));
        }
        let mut buf = Vec::new();
        let n = write_jsonl(&mut buf).unwrap();
        assert!(n >= 3);
        let text = String::from_utf8(buf).unwrap();
        let mut seen = Vec::new();
        for line in text.lines() {
            let v: serde_json::Value = serde_json::from_str(line).expect("line parses");
            // the collector is global: other tests' instant events may
            // be interleaved — spans are the "X" lines
            if v["ph"].as_str() == Some("i") {
                continue;
            }
            assert_eq!(v["ph"].as_str(), Some("X"));
            assert!(v["ts"].as_u64().is_some());
            assert!(v["dur"].as_u64().is_some());
            assert!(v["tid"].as_u64().is_some());
            seen.push((
                v["name"].as_str().unwrap().to_string(),
                v["ts"].as_u64().unwrap(),
                v["dur"].as_u64().unwrap(),
                v["tid"].as_u64().unwrap(),
            ));
        }
        let outer = seen.iter().find(|s| s.0 == "outer").unwrap().clone();
        let inner = seen.iter().find(|s| s.0 == "inner").unwrap().clone();
        assert!(seen.iter().any(|s| s.0 == "dataset nl-w2020"));
        // this test's spans share one thread and nest strictly
        assert_eq!(outer.3, inner.3);
        assert!(inner.1 >= outer.1, "inner starts after outer");
        assert!(
            inner.1 + inner.2 <= outer.1 + outer.2,
            "inner ends before outer"
        );
        assert!(inner.2 >= 1_000, "inner span covers its sleep");
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn instant_events_export_with_args() {
        enable();
        instant("hop", "\"hop\":\"gen\",\"latency_us\":12".to_string());
        let mut buf = Vec::new();
        write_jsonl(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let line = text
            .lines()
            .find(|l| l.contains("\"ph\":\"i\""))
            .expect("instant event exported");
        let v: serde_json::Value = serde_json::from_str(line).expect("instant line parses");
        assert_eq!(v["name"].as_str(), Some("hop"));
        assert_eq!(v["s"].as_str(), Some("t"), "thread-scoped");
        assert_eq!(v["args"]["hop"].as_str(), Some("gen"));
        assert_eq!(v["args"]["latency_us"].as_u64(), Some(12));
        assert!(v["ts"].as_u64().is_some());
    }
}

//! `obs` — the workspace observability layer.
//!
//! ENTRADA's operational value comes from knowing what the pipeline is
//! doing while billions of queries flow through it; this crate is the
//! reproduction's equivalent, shared by the simulator, the analytics
//! pipeline, and the live serving loop:
//!
//! - [`metrics`] — a lock-free registry of named atomic counters,
//!   gauges, and log-linear histograms. Handles are `Arc`-cheap and
//!   every hot-path update is a single `fetch_add(Relaxed)`.
//! - [`trace`] — scoped RAII span timers on a per-thread id, exported
//!   as Chrome trace-event JSONL (`chrome://tracing`, Perfetto).
//!   Disabled spans cost one atomic load.
//! - [`mod@stage`] — per-stage duration/throughput accounting behind the
//!   CLI's `--stats` summary table, plus a throttled [`stage::Progress`]
//!   reporter (records/s, ETA) for `report`-scale runs.
//! - [`flight`] — the flight recorder: a background thread samples the
//!   registry into fixed-capacity lock-free ring buffers (value + rate
//!   for counters, quantile vectors for histograms) behind `--flight`,
//!   plus a deterministic 1-in-N query sampler whose per-hop instant
//!   events land in the Chrome trace.
//! - [`prom`] — Prometheus text-format exposition of the registry,
//!   served by a tiny built-in HTTP listener (`--metrics-addr`); also
//!   answers `/flight.json` with the recorder's retained window.
//! - [`mod@bench`] — the perf-observability core: a warmup/trimmed-stats
//!   benchmark runner and the `BENCH_*.json` report model with
//!   noise-aware baseline diffing (the CI regression gate).
//! - [`alloc`] — an optional counting `#[global_allocator]` so bench
//!   rows report allocs/op and zero-alloc hot paths are asserted.
//! - [`prof`] — a dependency-free sampling CPU profiler: SIGPROF +
//!   frame-pointer walks into a lock-free ring on Linux, symbolized
//!   off-signal into flamegraph-ready folded stacks (`--profile`,
//!   `/profile?seconds=N`); inert no-op elsewhere.
//!
//! Everything runs on std plus the workspace's vendored serde shims
//! (used only by the [`mod@bench`] report model): no async runtime, nothing
//! blocking on the instrumented paths.

#![warn(missing_docs)]
// `alloc` (GlobalAlloc impl) and `prof` (signal/timer FFI) opt out locally
#![deny(unsafe_code)]

pub mod alloc;
pub mod bench;
pub mod flight;
pub mod metrics;
pub mod prof;
pub mod prom;
pub mod stage;
pub mod trace;

pub use metrics::{
    counter, gauge, histogram, Counter, Gauge, Histogram, QueueDepth, Registry, SampleValue,
    Utilization,
};
pub use stage::{stage, stage_owned, Progress, StageTimer};
pub use trace::span;

//! The flight recorder: continuous time-series telemetry and
//! deterministic query sampling.
//!
//! The paper's headline findings are *temporal* — Google's Dec-2019
//! Q-min flip, the Feb-2020 `.nz` surge, diurnal cloud-share swings —
//! but a Prometheus scrape or a final `--stats` table only shows one
//! point in time. This module keeps a rolling window of history inside
//! the process:
//!
//! - A [`Recorder`] snapshots every metric in a [`Registry`] at a fixed
//!   interval into fixed-capacity **lock-free ring buffers** (one per
//!   metric, single-writer seqlock slots — safe code, per-slot
//!   atomics). Counters carry their value plus a derived per-second
//!   rate, histograms carry count/sum/rate and the p50/p90/p99/p999
//!   quantile vector. The window dumps as JSONL (`--flight=file`) and
//!   serves as one JSON document at `/flight.json` on the
//!   [`crate::prom`] listener.
//! - A **deterministic 1-in-N query sampler** ([`enable_sampling`],
//!   [`sampled`], [`hop`]): a seeded splitmix64 over a stable per-query
//!   key ([`query_key`]) picks the same queries on every run regardless
//!   of shard or job count, and each pipeline hop a sampled query
//!   crosses emits one instant event into the Chrome trace
//!   ([`crate::trace::instant`]) with the latency since its previous
//!   hop.
//!
//! Neither piece touches the hot path when idle: an unsampled query
//! costs one relaxed atomic load plus one splitmix round, and the
//! recorder runs on its own background thread at the sampling interval
//! ([`start`]), reading the same atomics the workers bump.

use crate::metrics::{Registry, SampleValue};
use std::collections::HashMap;
use std::io::{self, Write};
use std::net::IpAddr;
use std::sync::atomic::{fence, AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Default sampling interval (`--flight-interval`).
pub const DEFAULT_INTERVAL: Duration = Duration::from_secs(1);

/// Points retained per metric: ten minutes of history at the default
/// 1 s interval, in a few KB per metric.
pub const RING_CAPACITY: usize = 600;

/// Atomic fields per ring slot (timestamp + the widest point kind).
const FIELDS: usize = 8;

/// What a ring records (mirrors [`SampleValue`] without the payload).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn name(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

/// One decoded time-series point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// Milliseconds since the recorder's epoch.
    pub t_ms: u64,
    /// The metric's value at that instant.
    pub value: PointValue,
}

/// The per-kind payload of a [`Point`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PointValue {
    /// Counter value plus the rate derived from the previous point.
    Counter {
        /// Counter reading.
        value: u64,
        /// Increase per second since the previous sample (0 on the
        /// first).
        rate: f64,
    },
    /// Gauge reading.
    Gauge {
        /// Gauge value.
        value: f64,
    },
    /// Histogram summary plus the sample-arrival rate.
    Histogram {
        /// Total samples recorded so far.
        count: u64,
        /// New samples per second since the previous point.
        rate: f64,
        /// Sum of all recorded samples.
        sum: u64,
        /// p50/p90/p99/p999 bucket midpoints.
        quantiles: [u64; 4],
    },
}

/// A slot holds one point; `seq == sample_index + 1` marks it valid,
/// `0` marks it mid-write (the seqlock invalid state).
struct Slot {
    seq: AtomicU64,
    fields: [AtomicU64; FIELDS],
}

impl Slot {
    fn new() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            fields: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// A fixed-capacity single-writer ring of points for one metric.
/// Writes never block reads and vice versa: the writer invalidates a
/// slot, stores its fields, then republishes it under the new sample
/// index; a reader that catches a slot mid-overwrite simply discards
/// that point.
struct Ring {
    kind: Kind,
    /// Samples ever written (the next write index).
    head: AtomicU64,
    slots: Box<[Slot]>,
}

impl Ring {
    fn new(kind: Kind, capacity: usize) -> Ring {
        Ring {
            kind,
            head: AtomicU64::new(0),
            slots: (0..capacity.max(1)).map(|_| Slot::new()).collect(),
        }
    }

    /// Append one point (single writer: the recorder tick holds the
    /// tick lock).
    fn push(&self, point: &Point) {
        let idx = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(idx % self.slots.len() as u64) as usize];
        slot.seq.store(0, Ordering::Relaxed);
        fence(Ordering::Release);
        let mut fields = [0u64; FIELDS];
        fields[0] = point.t_ms;
        match point.value {
            PointValue::Counter { value, rate } => {
                fields[1] = value;
                fields[2] = rate.to_bits();
            }
            PointValue::Gauge { value } => {
                fields[1] = value.to_bits();
            }
            PointValue::Histogram {
                count,
                rate,
                sum,
                quantiles,
            } => {
                fields[1] = count;
                fields[2] = rate.to_bits();
                fields[3] = sum;
                fields[4..8].copy_from_slice(&quantiles);
            }
        }
        for (f, v) in slot.fields.iter().zip(fields) {
            f.store(v, Ordering::Relaxed);
        }
        slot.seq.store(idx + 1, Ordering::Release);
        self.head.store(idx + 1, Ordering::Release);
    }

    /// The retained points, oldest first. Points the writer is
    /// concurrently overwriting are skipped (at most one per call).
    fn points(&self) -> Vec<Point> {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let first = head.saturating_sub(cap);
        let mut out = Vec::with_capacity((head - first) as usize);
        for idx in first..head {
            let slot = &self.slots[(idx % cap) as usize];
            if slot.seq.load(Ordering::Acquire) != idx + 1 {
                continue; // mid-overwrite or already lapped
            }
            let mut fields = [0u64; FIELDS];
            for (v, f) in fields.iter_mut().zip(slot.fields.iter()) {
                *v = f.load(Ordering::Relaxed);
            }
            fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) != idx + 1 {
                continue; // torn read: writer got in between
            }
            let value = match self.kind {
                Kind::Counter => PointValue::Counter {
                    value: fields[1],
                    rate: f64::from_bits(fields[2]),
                },
                Kind::Gauge => PointValue::Gauge {
                    value: f64::from_bits(fields[1]),
                },
                Kind::Histogram => PointValue::Histogram {
                    count: fields[1],
                    rate: f64::from_bits(fields[2]),
                    sum: fields[3],
                    quantiles: [fields[4], fields[5], fields[6], fields[7]],
                },
            };
            out.push(Point {
                t_ms: fields[0],
                value,
            });
        }
        out
    }
}

/// Last-seen cumulative value per metric, for rate derivation.
struct PrevSample {
    t_ms: u64,
    value: u64,
}

/// The time-series recorder: snapshots a registry into per-metric
/// rings. One global instance runs behind [`start`]; tests drive their
/// own against a private registry via [`Recorder::new`] +
/// [`Recorder::tick_registry`].
pub struct Recorder {
    capacity: usize,
    epoch: Instant,
    interval: Duration,
    rings: Mutex<HashMap<String, Arc<Ring>>>,
    /// Writer-only state; doubles as the single-writer guarantee for
    /// the rings (every tick holds it end to end).
    prev: Mutex<HashMap<String, PrevSample>>,
    ticks: AtomicU64,
}

impl Recorder {
    /// A recorder retaining `capacity` points per metric.
    pub fn new(interval: Duration, capacity: usize) -> Recorder {
        Recorder {
            capacity: capacity.max(2),
            epoch: Instant::now(),
            interval,
            rings: Mutex::new(HashMap::new()),
            prev: Mutex::new(HashMap::new()),
            ticks: AtomicU64::new(0),
        }
    }

    /// Ticks taken so far.
    pub fn ticks(&self) -> u64 {
        self.ticks.load(Ordering::Relaxed)
    }

    /// The configured sampling interval.
    pub fn interval(&self) -> Duration {
        self.interval
    }

    /// Take one sample of `registry` at the current elapsed time.
    pub fn tick_registry(&self, registry: &Registry) {
        let t_ms = self.epoch.elapsed().as_millis() as u64;
        self.tick_at(registry, t_ms);
    }

    /// [`Recorder::tick_registry`] at an explicit timestamp (tests pin
    /// wall-clock-free rate math with it).
    pub fn tick_at(&self, registry: &Registry, t_ms: u64) {
        let snapshot = registry.sample();
        let mut prev = self.prev.lock().expect("flight prev lock");
        for (name, value) in snapshot {
            let point = match value {
                SampleValue::Counter(v) => PointValue::Counter {
                    value: v,
                    rate: derive_rate(&mut prev, &name, v, t_ms),
                },
                SampleValue::Gauge(v) => PointValue::Gauge { value: v },
                SampleValue::Histogram {
                    count,
                    sum,
                    quantiles,
                } => PointValue::Histogram {
                    count,
                    rate: derive_rate(&mut prev, &name, count, t_ms),
                    sum,
                    quantiles,
                },
            };
            let kind = match point {
                PointValue::Counter { .. } => Kind::Counter,
                PointValue::Gauge { .. } => Kind::Gauge,
                PointValue::Histogram { .. } => Kind::Histogram,
            };
            let ring = {
                let mut rings = self.rings.lock().expect("flight rings lock");
                Arc::clone(
                    rings
                        .entry(name)
                        .or_insert_with(|| Arc::new(Ring::new(kind, self.capacity))),
                )
            };
            if ring.kind == kind {
                ring.push(&Point { t_ms, value: point });
            }
        }
        self.ticks.fetch_add(1, Ordering::Relaxed);
    }

    /// Every metric's retained points, sorted by name.
    fn series(&self) -> Vec<(String, Kind, Vec<Point>)> {
        let rings: Vec<(String, Arc<Ring>)> = {
            let map = self.rings.lock().expect("flight rings lock");
            map.iter()
                .map(|(n, r)| (n.clone(), Arc::clone(r)))
                .collect()
        };
        let mut out: Vec<(String, Kind, Vec<Point>)> = rings
            .into_iter()
            .map(|(name, ring)| {
                let kind = ring.kind;
                (name, kind, ring.points())
            })
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Dump the retained window as JSONL: one line per metric per
    /// point, metrics in name order, points oldest first. Returns the
    /// number of lines written.
    pub fn write_jsonl<W: Write>(&self, mut w: W) -> io::Result<usize> {
        let mut n = 0;
        for (name, kind, points) in self.series() {
            for p in points {
                write!(
                    w,
                    "{{\"metric\":\"{name}\",\"kind\":\"{}\",\"t_ms\":{}",
                    kind.name(),
                    p.t_ms
                )?;
                write_value_json(&mut w, &p.value)?;
                writeln!(w, "}}")?;
                n += 1;
            }
        }
        Ok(n)
    }

    /// [`Recorder::write_jsonl`] to a file path.
    pub fn write_jsonl_file(&self, path: &std::path::Path) -> io::Result<usize> {
        let file = std::fs::File::create(path)?;
        let mut w = io::BufWriter::new(file);
        let n = self.write_jsonl(&mut w)?;
        w.flush()?;
        Ok(n)
    }

    /// The whole retained window as one JSON document (the
    /// `/flight.json` response body).
    pub fn snapshot_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        write!(
            out,
            "{{\"interval_ms\":{},\"ticks\":{},\"metrics\":[",
            self.interval.as_millis(),
            self.ticks()
        )
        .expect("string write");
        for (i, (name, kind, points)) in self.series().into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write!(
                out,
                "{{\"name\":\"{name}\",\"kind\":\"{}\",\"points\":[",
                kind.name()
            )
            .expect("string write");
            for (j, p) in points.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let mut buf = Vec::new();
                write!(buf, "{{\"t_ms\":{}", p.t_ms).expect("vec write");
                write_value_json(&mut buf, &p.value).expect("vec write");
                buf.push(b'}');
                out.push_str(std::str::from_utf8(&buf).expect("ascii json"));
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

/// Per-second increase of a cumulative value vs its previous sample.
fn derive_rate(prev: &mut HashMap<String, PrevSample>, name: &str, value: u64, t_ms: u64) -> f64 {
    let rate = match prev.get(name) {
        Some(p) if t_ms > p.t_ms => {
            (value.saturating_sub(p.value)) as f64 * 1000.0 / (t_ms - p.t_ms) as f64
        }
        _ => 0.0,
    };
    prev.insert(name.to_string(), PrevSample { t_ms, value });
    rate
}

/// The common tail of a point's JSON encoding (everything after
/// `t_ms`).
fn write_value_json<W: Write>(w: &mut W, value: &PointValue) -> io::Result<()> {
    match value {
        PointValue::Counter { value, rate } => {
            write!(w, ",\"value\":{value},\"rate\":{}", finite(*rate))
        }
        PointValue::Gauge { value } => write!(w, ",\"value\":{}", finite(*value)),
        PointValue::Histogram {
            count,
            rate,
            sum,
            quantiles,
        } => write!(
            w,
            ",\"count\":{count},\"rate\":{},\"sum\":{sum},\"p50\":{},\"p90\":{},\"p99\":{},\"p999\":{}",
            finite(*rate),
            quantiles[0],
            quantiles[1],
            quantiles[2],
            quantiles[3]
        ),
    }
}

/// JSON has no NaN/Infinity literals; clamp them to 0.
fn finite(v: f64) -> f64 {
    if v.is_finite() {
        v
    } else {
        0.0
    }
}

// ---- the global recorder ----------------------------------------------

struct GlobalFlight {
    recorder: Arc<Recorder>,
    stop: Arc<AtomicBool>,
    handle: Mutex<Option<std::thread::JoinHandle<()>>>,
}

static FLIGHT: OnceLock<GlobalFlight> = OnceLock::new();

/// Start the global flight recorder: a background thread snapshots
/// [`Registry::global`] every `interval` from now on. Idempotent — the
/// first call wins and later calls return `false` (the recorder keeps
/// its original interval).
pub fn start(interval: Duration) -> bool {
    let mut started = false;
    FLIGHT.get_or_init(|| {
        started = true;
        let recorder = Arc::new(Recorder::new(interval, RING_CAPACITY));
        let stop = Arc::new(AtomicBool::new(false));
        let thread_recorder = Arc::clone(&recorder);
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("obs-flight".into())
            .spawn(move || {
                // poll the stop flag at a fraction of the interval so
                // shutdown never waits a full tick
                let poll = (interval / 4).max(Duration::from_millis(10));
                let mut next = Instant::now() + interval;
                while !thread_stop.load(Ordering::SeqCst) {
                    if Instant::now() >= next {
                        thread_recorder.tick_registry(Registry::global());
                        next += interval;
                    }
                    std::thread::sleep(poll.min(interval));
                }
            })
            .expect("spawn obs-flight thread");
        GlobalFlight {
            recorder,
            stop,
            handle: Mutex::new(Some(handle)),
        }
    });
    started
}

/// The global recorder, if [`start`]ed.
pub fn recorder() -> Option<Arc<Recorder>> {
    FLIGHT.get().map(|f| Arc::clone(&f.recorder))
}

/// Whether the global recorder is running.
pub fn started() -> bool {
    FLIGHT.get().is_some()
}

/// Stop the background sampler thread (the recorder and its window
/// stay readable) and take one final sample so short runs always have
/// at least one point. Idempotent.
pub fn stop() {
    let Some(f) = FLIGHT.get() else {
        return;
    };
    f.stop.store(true, Ordering::SeqCst);
    if let Some(h) = f.handle.lock().expect("flight handle lock").take() {
        let _ = h.join();
    }
    f.recorder.tick_registry(Registry::global());
}

// ---- deterministic query sampling -------------------------------------

struct Sampler {
    n: u64,
    seed: u64,
    hops: Arc<crate::metrics::Counter>,
    /// Per-key timestamp of the last hop, for inter-hop latency.
    /// Touched only for sampled queries; bounded (cleared past
    /// `LAST_HOP_CAP`).
    last_hop: Mutex<HashMap<u64, u64>>,
}

static SAMPLER: OnceLock<Sampler> = OnceLock::new();
static SAMPLING: AtomicBool = AtomicBool::new(false);

/// Entry cap on the inter-hop latency map (sampled in-flight queries).
const LAST_HOP_CAP: usize = 4096;

/// splitmix64: the finalizer used for key hashing and the sampling
/// decision — one multiply-xor-shift round trio, fully deterministic.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Turn on 1-in-`n` query sampling with `seed`. First call wins;
/// returns `false` (keeping the original parameters) on repeats.
/// `n == 0` is treated as 1 (sample everything).
pub fn enable_sampling(n: u64, seed: u64) -> bool {
    let mut fresh = false;
    SAMPLER.get_or_init(|| {
        fresh = true;
        Sampler {
            n: n.max(1),
            seed,
            hops: crate::metrics::counter(
                "obs_flight_sampled_hops_total",
                "pipeline hop events emitted for sampled queries",
            ),
            last_hop: Mutex::new(HashMap::new()),
        }
    });
    if fresh {
        SAMPLING.store(true, Ordering::Release);
    }
    fresh
}

/// Whether query sampling is on (one relaxed load — the per-row fast
/// path).
#[inline]
pub fn sampling_enabled() -> bool {
    SAMPLING.load(Ordering::Relaxed)
}

/// The stable identity of one query as every hop sees it: generation
/// timestamp, client address, client port. The same row hashes to the
/// same key in any shard/job layout, so a sampled query is sampled
/// everywhere.
pub fn query_key(ts_us: u64, src: &IpAddr, src_port: u16) -> u64 {
    let addr = match src {
        IpAddr::V4(v4) => u64::from(u32::from(*v4)),
        IpAddr::V6(v6) => {
            let o = v6.octets();
            u64::from_be_bytes(o[..8].try_into().expect("8 bytes"))
                ^ u64::from_be_bytes(o[8..].try_into().expect("8 bytes"))
        }
    };
    splitmix64(ts_us ^ addr.rotate_left(17) ^ (u64::from(src_port) << 48))
}

/// Deterministic sampling decision for `key`: true for 1-in-N keys
/// under the configured seed, false whenever sampling is off.
#[inline]
pub fn sampled(key: u64) -> bool {
    if !sampling_enabled() {
        return false;
    }
    let s = SAMPLER.get().expect("sampling enabled implies init");
    splitmix64(key ^ s.seed).is_multiple_of(s.n)
}

/// Record one pipeline hop for a sampled query: bumps the hop counter
/// and, when tracing is enabled, emits an instant event named `hop`
/// carrying the key and the latency since the query's previous hop.
/// Call only after [`sampled`] said yes.
pub fn hop(hop: &'static str, key: u64) {
    let Some(s) = SAMPLER.get() else {
        return;
    };
    s.hops.inc();
    let Some(now_us) = crate::trace::now_us() else {
        return; // tracing off: counted, not traced
    };
    let latency_us = {
        let mut last = s.last_hop.lock().expect("flight hop lock");
        if last.len() >= LAST_HOP_CAP {
            last.clear();
        }
        let prev = last.insert(key, now_us);
        prev.map_or(0, |p| now_us.saturating_sub(p))
    };
    crate::trace::instant(
        hop,
        format!("\"key\":\"{key:016x}\",\"hop\":\"{hop}\",\"latency_us\":{latency_us}"),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_wraparound_keeps_the_newest_points() {
        let ring = Ring::new(Kind::Counter, 4);
        for i in 0..10u64 {
            ring.push(&Point {
                t_ms: i * 1000,
                value: PointValue::Counter {
                    value: i * 5,
                    rate: 5.0,
                },
            });
        }
        let points = ring.points();
        assert_eq!(points.len(), 4, "capacity bounds retention");
        let ts: Vec<u64> = points.iter().map(|p| p.t_ms).collect();
        assert_eq!(ts, [6000, 7000, 8000, 9000], "oldest dropped first");
        match points[0].value {
            PointValue::Counter { value, .. } => assert_eq!(value, 30),
            ref other => panic!("counter point expected, got {other:?}"),
        }
    }

    #[test]
    fn rate_derivation_spans_ring_wraparound() {
        let registry = Registry::new();
        let c = registry.counter("flight_wrap_total", "t");
        let rec = Recorder::new(Duration::from_secs(1), 4);
        // 10 ticks into a 4-slot ring: counter climbs 7/s throughout
        for t in 0..10u64 {
            c.add(7);
            rec.tick_at(&registry, t * 1000);
        }
        let series = rec.series();
        let (_, _, points) = series
            .iter()
            .find(|(n, _, _)| n == "flight_wrap_total")
            .expect("ring exists");
        assert_eq!(points.len(), 4);
        for p in points {
            match p.value {
                PointValue::Counter { rate, .. } => {
                    assert!(
                        (rate - 7.0).abs() < 1e-9,
                        "rate {rate} != 7/s at {}",
                        p.t_ms
                    );
                }
                ref other => panic!("counter point expected, got {other:?}"),
            }
        }
        // the retained values are the last four cumulative readings
        let values: Vec<u64> = points
            .iter()
            .map(|p| match p.value {
                PointValue::Counter { value, .. } => value,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(values, [49, 56, 63, 70]);
    }

    #[test]
    fn first_sample_has_zero_rate_and_gauges_pass_through() {
        let registry = Registry::new();
        registry.counter("flight_first_total", "t").add(100);
        registry.gauge("flight_qps", "t").set(12.25);
        let rec = Recorder::new(Duration::from_secs(1), 8);
        rec.tick_at(&registry, 500);
        let series = rec.series();
        for (name, _, points) in &series {
            assert_eq!(points.len(), 1);
            match (name.as_str(), points[0].value) {
                ("flight_first_total", PointValue::Counter { value, rate }) => {
                    assert_eq!(value, 100);
                    assert_eq!(rate, 0.0, "no previous point, no rate");
                }
                ("flight_qps", PointValue::Gauge { value }) => assert_eq!(value, 12.25),
                other => panic!("unexpected series {other:?}"),
            }
        }
    }

    #[test]
    fn histogram_points_carry_quantiles_and_count_rate() {
        let registry = Registry::new();
        let h = registry.histogram("flight_lat_us", "t");
        let rec = Recorder::new(Duration::from_secs(1), 8);
        for _ in 0..50 {
            h.record(200);
        }
        rec.tick_at(&registry, 1000);
        for _ in 0..150 {
            h.record(200);
        }
        rec.tick_at(&registry, 2000);
        let series = rec.series();
        let (_, _, points) = &series[0];
        match points[1].value {
            PointValue::Histogram {
                count,
                rate,
                sum,
                quantiles,
            } => {
                assert_eq!(count, 200);
                assert!((rate - 150.0).abs() < 1e-9, "150 new samples in 1s");
                assert_eq!(sum, 40_000);
                for q in quantiles {
                    assert!((q as f64 - 200.0).abs() / 200.0 <= 0.0625, "q {q}");
                }
            }
            ref other => panic!("histogram point expected, got {other:?}"),
        }
    }

    #[test]
    fn jsonl_and_snapshot_are_valid_json() {
        let registry = Registry::new();
        registry.counter("flight_json_total", "t").add(3);
        registry.gauge("flight_json_qps", "t").set(1.5);
        registry.histogram("flight_json_lat", "t").record(10);
        let rec = Recorder::new(Duration::from_millis(250), 8);
        rec.tick_at(&registry, 250);
        rec.tick_at(&registry, 500);

        let mut buf = Vec::new();
        let n = rec.write_jsonl(&mut buf).unwrap();
        assert_eq!(n, 6, "3 metrics x 2 ticks");
        let text = String::from_utf8(buf).unwrap();
        for line in text.lines() {
            let v: serde_json::Value = serde_json::from_str(line).expect("jsonl line parses");
            assert!(v["metric"].as_str().is_some());
            assert!(v["t_ms"].as_u64().is_some());
        }

        let doc: serde_json::Value =
            serde_json::from_str(&rec.snapshot_json()).expect("snapshot parses");
        assert_eq!(doc["interval_ms"].as_u64(), Some(250));
        assert_eq!(doc["ticks"].as_u64(), Some(2));
        let metrics = doc["metrics"].as_array().expect("metrics array");
        assert_eq!(metrics.len(), 3);
        let names: Vec<&str> = metrics
            .iter()
            .map(|m| m["name"].as_str().unwrap())
            .collect();
        assert_eq!(
            names,
            ["flight_json_lat", "flight_json_qps", "flight_json_total"],
            "sorted by name"
        );
        assert_eq!(metrics[2]["points"].as_array().unwrap().len(), 2);
    }

    #[test]
    fn sampling_decision_is_deterministic_and_roughly_one_in_n() {
        // the decision function itself, independent of global state:
        // same (key, seed) always agrees, and the hit rate over many
        // keys approximates 1/N
        let n = 16u64;
        let seed = 42u64;
        let decide = |key: u64| splitmix64(key ^ seed).is_multiple_of(n);
        let keys: Vec<u64> = (0..20_000u64)
            .map(|i| query_key(i * 7, &"198.51.100.7".parse().unwrap(), (i % 5000) as u16))
            .collect();
        let first: Vec<u64> = keys.iter().copied().filter(|k| decide(*k)).collect();
        let second: Vec<u64> = keys.iter().copied().filter(|k| decide(*k)).collect();
        assert_eq!(first, second, "same seed, same sampled set");
        let rate = first.len() as f64 / keys.len() as f64;
        assert!(
            (rate - 1.0 / n as f64).abs() < 0.01,
            "hit rate {rate} far from 1/{n}"
        );
        // a different seed picks a materially different set
        let other: Vec<u64> = keys
            .iter()
            .copied()
            .filter(|k| splitmix64(k ^ 1234).is_multiple_of(n))
            .collect();
        assert_ne!(first, other);
    }

    #[test]
    fn query_key_ignores_nothing() {
        let ip: IpAddr = "192.0.2.1".parse().unwrap();
        let k = query_key(1000, &ip, 53);
        assert_ne!(k, query_key(1001, &ip, 53), "timestamp matters");
        assert_ne!(
            k,
            query_key(1000, &"192.0.2.2".parse().unwrap(), 53),
            "address matters"
        );
        assert_ne!(k, query_key(1000, &ip, 54), "port matters");
        assert_eq!(k, query_key(1000, &ip, 53), "stable");
        let v6: IpAddr = "2001:db8::1".parse().unwrap();
        assert_ne!(query_key(1000, &v6, 53), query_key(1000, &ip, 53));
    }

    #[test]
    fn concurrent_reads_during_wrap_never_see_torn_points() {
        let ring = Arc::new(Ring::new(Kind::Counter, 8));
        let writer_ring = Arc::clone(&ring);
        let stop = Arc::new(AtomicBool::new(false));
        let writer_stop = Arc::clone(&stop);
        let writer = std::thread::spawn(move || {
            // value and t_ms move in lockstep; a torn read would
            // decouple them
            for i in 0..200_000u64 {
                writer_ring.push(&Point {
                    t_ms: i,
                    value: PointValue::Counter {
                        value: i * 3,
                        rate: i as f64,
                    },
                });
            }
            writer_stop.store(true, Ordering::SeqCst);
        });
        while !stop.load(Ordering::SeqCst) {
            for p in ring.points() {
                match p.value {
                    PointValue::Counter { value, rate } => {
                        assert_eq!(value, p.t_ms * 3, "torn slot: {p:?}");
                        assert_eq!(rate, p.t_ms as f64, "torn slot: {p:?}");
                    }
                    ref other => panic!("counter expected, got {other:?}"),
                }
            }
        }
        writer.join().unwrap();
    }
}

//! The perf-observability core: a micro/macro benchmark runner and the
//! machine-readable `BENCH_*.json` report it feeds.
//!
//! ENTRADA-scale analytics live or die on pipeline throughput, so the
//! workspace records a performance *trajectory*: every `dnscentral
//! bench` run produces a [`BenchReport`] — per scenario: warmed-up,
//! outlier-trimmed ns/op (mean/p50/p99 plus the raw min/max envelope),
//! derived records/s, and allocs/op when the counting allocator is
//! installed (see [`crate::alloc`]). Reports serialize to
//! `BENCH_<gitsha-or-date>.json` and diff against a checked-in
//! baseline with noise-aware thresholds: a scenario regresses only
//! when its trimmed mean exceeds the baseline mean by more than the
//! threshold *and* the min/max envelopes do not overlap, so ordinary
//! machine jitter cannot fail a build.
//!
//! The runner is std-only; serialization uses the vendored serde shims
//! the rest of the workspace already depends on.

use crate::alloc as alloctrack;
use serde::{Deserialize, Serialize};
use std::path::Path;
use std::time::{Duration, Instant};

/// Current `BENCH_*.json` schema version.
pub const SCHEMA_VERSION: u32 = 1;

/// One benchmarked scenario's measurements. Times are nanoseconds per
/// operation; the mean is outlier-trimmed (top/bottom decile of sample
/// means dropped), min/max are the untrimmed envelope used by the
/// noise-aware regression test.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioReport {
    /// Full scenario name, e.g. `wire/message_encode`.
    pub name: String,
    /// Scenario group, e.g. `wire`.
    pub group: String,
    /// Total timed iterations across all samples.
    pub iters: u64,
    /// Outlier-trimmed mean ns/op.
    pub ns_per_op: f64,
    /// Median sample ns/op.
    pub p50_ns: f64,
    /// 99th-percentile sample ns/op.
    pub p99_ns: f64,
    /// Fastest sample ns/op (envelope floor).
    pub min_ns: f64,
    /// Slowest sample ns/op (envelope ceiling).
    pub max_ns: f64,
    /// Records one iteration processes (0 when not meaningful).
    pub records_per_iter: u64,
    /// Derived throughput, when `records_per_iter > 0`.
    pub records_per_sec: Option<f64>,
    /// Mean allocation events per op; `None` when the counting
    /// allocator is not installed.
    pub allocs_per_op: Option<f64>,
    /// Mean allocated bytes per op; `None` without the allocator.
    pub alloc_bytes_per_op: Option<f64>,
    /// Hottest frames from a per-scenario CPU profile; `None` unless
    /// the run was invoked with `--profile` (absent in old baselines —
    /// missing `Option` fields deserialize to `None`).
    pub hot_frames: Option<Vec<crate::prof::HotFrame>>,
}

/// A full benchmark run, as serialized to `BENCH_<label>.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchReport {
    /// Schema version ([`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Run label: short git sha when available, else a UTC date.
    pub label: String,
    /// True when the run used the reduced `--quick` settings.
    pub quick: bool,
    /// Per-scenario measurements, in run order.
    pub scenarios: Vec<ScenarioReport>,
}

/// One scenario that got slower than the baseline beyond noise.
#[derive(Debug, Clone)]
pub struct Regression {
    /// Scenario name.
    pub name: String,
    /// Baseline trimmed-mean ns/op.
    pub baseline_ns: f64,
    /// Current trimmed-mean ns/op.
    pub current_ns: f64,
    /// `current / baseline`.
    pub ratio: f64,
}

impl BenchReport {
    /// An empty report for `label`.
    pub fn new(label: impl Into<String>, quick: bool) -> BenchReport {
        BenchReport {
            schema_version: SCHEMA_VERSION,
            label: label.into(),
            quick,
            scenarios: Vec::new(),
        }
    }

    /// Pretty JSON for `BENCH_*.json`.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }

    /// Parse a report back from JSON text.
    pub fn from_json(text: &str) -> Result<BenchReport, String> {
        let report: BenchReport =
            serde_json::from_str(text).map_err(|e| format!("invalid BENCH json: {e}"))?;
        if report.schema_version > SCHEMA_VERSION {
            return Err(format!(
                "BENCH schema v{} is newer than this binary (v{SCHEMA_VERSION})",
                report.schema_version
            ));
        }
        Ok(report)
    }

    /// Load a report from a file.
    pub fn load(path: &Path) -> Result<BenchReport, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        BenchReport::from_json(&text)
    }

    /// Write the report as pretty JSON to `path`.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Scenarios slower than `baseline` beyond noise: trimmed mean more
    /// than `threshold` above the baseline mean (0.15 = +15%) *and*
    /// non-overlapping min/max envelopes (our fastest sample is slower
    /// than their slowest). Scenarios missing from either side are
    /// skipped — adding or retiring a scenario is not a regression.
    pub fn diff(&self, baseline: &BenchReport, threshold: f64) -> Vec<Regression> {
        let mut out = Vec::new();
        for cur in &self.scenarios {
            let Some(base) = baseline.scenarios.iter().find(|s| s.name == cur.name) else {
                continue;
            };
            if base.ns_per_op <= 0.0 {
                continue;
            }
            let beyond_threshold = cur.ns_per_op > base.ns_per_op * (1.0 + threshold);
            let envelopes_disjoint = cur.min_ns > base.max_ns;
            if beyond_threshold && envelopes_disjoint {
                out.push(Regression {
                    name: cur.name.clone(),
                    baseline_ns: base.ns_per_op,
                    current_ns: cur.ns_per_op,
                    ratio: cur.ns_per_op / base.ns_per_op,
                });
            }
        }
        out
    }

    /// Human-readable results table.
    pub fn render_table(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        writeln!(
            out,
            "{:<40} {:>12} {:>12} {:>12} {:>12} {:>10}",
            "scenario", "ns/op", "p50", "p99", "records/s", "allocs/op"
        )
        .expect("string write");
        for s in &self.scenarios {
            writeln!(
                out,
                "{:<40} {:>12} {:>12} {:>12} {:>12} {:>10}",
                s.name,
                human_ns(s.ns_per_op),
                human_ns(s.p50_ns),
                human_ns(s.p99_ns),
                s.records_per_sec
                    .map(human_count)
                    .unwrap_or_else(|| "-".into()),
                s.allocs_per_op
                    .map(|a| format!("{a:.1}"))
                    .unwrap_or_else(|| "-".into()),
            )
            .expect("string write");
        }
        out
    }
}

fn human_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2}us", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

fn human_count(n: f64) -> String {
    if n >= 1e9 {
        format!("{:.2}G", n / 1e9)
    } else if n >= 1e6 {
        format!("{:.2}M", n / 1e6)
    } else if n >= 1e3 {
        format!("{:.1}k", n / 1e3)
    } else {
        format!("{n:.0}")
    }
}

/// Measurement settings: warmup duration, sample count, and the total
/// timed budget a scenario may spend.
#[derive(Debug, Clone, Copy)]
pub struct Runner {
    /// Untimed warmup budget (also calibrates the batch size).
    pub warmup: Duration,
    /// Number of timed samples (each a batch of iterations). Reduced
    /// automatically for scenarios whose single iteration exceeds the
    /// per-sample budget, never below 3.
    pub samples: usize,
    /// Total timed budget across all samples.
    pub measure: Duration,
}

impl Runner {
    /// CI-friendly settings: the full scenario registry finishes in
    /// well under two minutes.
    pub fn quick() -> Runner {
        Runner {
            warmup: Duration::from_millis(100),
            samples: 10,
            measure: Duration::from_millis(600),
        }
    }

    /// Default settings for trustworthy local numbers.
    pub fn full() -> Runner {
        Runner {
            warmup: Duration::from_millis(300),
            samples: 30,
            measure: Duration::from_secs(2),
        }
    }

    /// Benchmark one scenario: warm up, calibrate a batch size, take
    /// timed samples, and reduce them to a [`ScenarioReport`].
    ///
    /// `f` performs one operation and returns a value the runner sinks
    /// through [`std::hint::black_box`] so the work cannot be elided.
    pub fn run(
        &self,
        name: &str,
        group: &str,
        records_per_iter: u64,
        f: &mut dyn FnMut() -> u64,
    ) -> ScenarioReport {
        // Warmup + calibration: at least one iteration, then as many as
        // fit the warmup budget.
        let mut sink = 0u64;
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        loop {
            sink = sink.wrapping_add(f());
            warm_iters += 1;
            if warm_start.elapsed() >= self.warmup {
                break;
            }
        }
        let est_per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;

        // Slow scenarios get fewer samples rather than a blown budget.
        let budget = self.measure.as_secs_f64();
        let samples = if est_per_iter * self.samples as f64 > budget {
            ((budget / est_per_iter) as usize).clamp(3, self.samples)
        } else {
            self.samples
        };
        let per_sample = budget / samples as f64;
        let batch = ((per_sample / est_per_iter) as u64).max(1);

        let mut sample_ns: Vec<f64> = Vec::with_capacity(samples);
        let track = alloctrack::installed();
        let (_, allocs) = alloctrack::measure(|| {
            for _ in 0..samples {
                let t0 = Instant::now();
                for _ in 0..batch {
                    sink = sink.wrapping_add(f());
                }
                sample_ns.push(t0.elapsed().as_nanos() as f64 / batch as f64);
            }
        });
        std::hint::black_box(sink);
        let iters = samples as u64 * batch;

        let mut sorted = sample_ns.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let trim = sorted.len() / 10;
        let kept = &sorted[trim..sorted.len() - trim];
        let mean = kept.iter().sum::<f64>() / kept.len() as f64;
        let pct = |q: f64| -> f64 {
            let idx = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len()) - 1;
            sorted[idx]
        };

        ScenarioReport {
            name: name.to_string(),
            group: group.to_string(),
            iters,
            ns_per_op: mean,
            p50_ns: pct(0.50),
            p99_ns: pct(0.99),
            min_ns: sorted[0],
            max_ns: sorted[sorted.len() - 1],
            records_per_iter,
            records_per_sec: (records_per_iter > 0 && mean > 0.0)
                .then(|| records_per_iter as f64 / (mean / 1e9)),
            allocs_per_op: track.then(|| allocs.allocs as f64 / iters as f64),
            alloc_bytes_per_op: track.then(|| allocs.bytes as f64 / iters as f64),
            hot_frames: None,
        }
    }
}

/// A label for the BENCH file: the short git commit sha when a `git`
/// binary and repository are reachable, otherwise today's UTC date as
/// `YYYYMMDD` (bench results are a trajectory; the label orders them).
pub fn default_label() -> String {
    if let Ok(out) = std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
    {
        if out.status.success() {
            let sha = String::from_utf8_lossy(&out.stdout).trim().to_string();
            if !sha.is_empty() {
                return sha;
            }
        }
    }
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let (y, m, d) = civil_from_days((secs / 86_400) as i64);
    format!("{y:04}{m:02}{d:02}")
}

/// Days-since-epoch to (year, month, day), civil Gregorian calendar
/// (Howard Hinnant's algorithm).
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_with(scenarios: Vec<ScenarioReport>) -> BenchReport {
        BenchReport {
            schema_version: SCHEMA_VERSION,
            label: "test".into(),
            quick: true,
            scenarios,
        }
    }

    fn scenario(name: &str, mean: f64, min: f64, max: f64) -> ScenarioReport {
        ScenarioReport {
            name: name.into(),
            group: "g".into(),
            iters: 100,
            ns_per_op: mean,
            p50_ns: mean,
            p99_ns: max,
            min_ns: min,
            max_ns: max,
            records_per_iter: 10,
            records_per_sec: Some(10.0 / (mean / 1e9)),
            allocs_per_op: None,
            alloc_bytes_per_op: None,
            hot_frames: None,
        }
    }

    #[test]
    fn runner_measures_a_trivial_op() {
        let runner = Runner {
            warmup: Duration::from_millis(5),
            samples: 5,
            measure: Duration::from_millis(20),
        };
        let mut x = 0u64;
        let r = runner.run("test/noop", "test", 7, &mut || {
            x = x.wrapping_add(1);
            x
        });
        assert!(r.iters > 0);
        assert!(r.ns_per_op > 0.0);
        assert!(r.min_ns <= r.ns_per_op && r.ns_per_op <= r.max_ns);
        assert!(r.p50_ns <= r.p99_ns);
        assert_eq!(r.records_per_iter, 7);
        let thrpt = r.records_per_sec.expect("records/s derives");
        assert!(thrpt > 0.0);
        // allocator not installed in this test binary
        assert_eq!(r.allocs_per_op, None);
    }

    #[test]
    fn runner_shrinks_samples_for_slow_scenarios() {
        let runner = Runner {
            warmup: Duration::from_millis(1),
            samples: 10,
            measure: Duration::from_millis(30),
        };
        let r = runner.run("test/slow", "test", 0, &mut || {
            std::thread::sleep(Duration::from_millis(10));
            1
        });
        // 10ms/iter under a 30ms budget: 3 samples of batch 1
        assert_eq!(r.iters, 3, "{r:?}");
        assert_eq!(r.records_per_sec, None);
    }

    #[test]
    fn json_roundtrip() {
        let r = report_with(vec![scenario("wire/x", 100.0, 90.0, 110.0)]);
        let text = r.to_json();
        let back = BenchReport::from_json(&text).expect("parses");
        assert_eq!(back.label, "test");
        assert_eq!(back.scenarios.len(), 1);
        assert_eq!(back.scenarios[0].name, "wire/x");
        assert!((back.scenarios[0].ns_per_op - 100.0).abs() < 1e-9);
        assert!(BenchReport::from_json("{").is_err());
    }

    #[test]
    fn diff_flags_only_non_overlapping_regressions() {
        let base = report_with(vec![
            scenario("a", 100.0, 90.0, 110.0),
            scenario("b", 100.0, 90.0, 110.0),
            scenario("c", 100.0, 90.0, 110.0),
            scenario("gone", 100.0, 90.0, 110.0),
        ]);
        let cur = report_with(vec![
            // +100% and disjoint envelope: regression
            scenario("a", 200.0, 180.0, 220.0),
            // +30% but envelopes overlap (noisy baseline): not flagged
            scenario("b", 130.0, 105.0, 150.0),
            // within threshold: not flagged
            scenario("c", 110.0, 100.0, 120.0),
            // new scenario with no baseline: not flagged
            scenario("fresh", 500.0, 450.0, 550.0),
        ]);
        let regs = cur.diff(&base, 0.15);
        assert_eq!(regs.len(), 1, "{regs:?}");
        assert_eq!(regs[0].name, "a");
        assert!((regs[0].ratio - 2.0).abs() < 1e-9);
        // the baseline compared against itself is quiet
        assert!(base.diff(&base, 0.15).is_empty());
    }

    #[test]
    fn render_table_lists_scenarios() {
        let r = report_with(vec![scenario("wire/x", 1234.0, 1000.0, 2000.0)]);
        let text = r.render_table();
        assert!(text.contains("wire/x"), "{text}");
        assert!(text.contains("ns/op"), "{text}");
        assert!(text.contains("1.23us"), "{text}");
    }

    #[test]
    fn civil_date_conversion() {
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        assert_eq!(civil_from_days(19_723), (2024, 1, 1));
        // leap day
        assert_eq!(civil_from_days(19_782), (2024, 2, 29));
    }

    #[test]
    fn default_label_is_nonempty() {
        assert!(!default_label().is_empty());
    }
}

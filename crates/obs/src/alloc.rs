//! Optional allocation tracking behind a counting `#[global_allocator]`.
//!
//! The bench harness (and any binary that opts in) installs
//! [`CountingAlloc`] as its global allocator:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: obs::alloc::CountingAlloc = obs::alloc::CountingAlloc;
//! ```
//!
//! Every heap allocation is then counted twice: into process-wide
//! totals ([`totals`]) and into per-thread counters that [`measure`]
//! snapshots around a closure — which is how every bench row reports
//! allocs/op next to ns/op, and how the zero-alloc property of the
//! `authd` respond path and the wire codec is *asserted* rather than
//! assumed.
//!
//! When the allocator is not installed (every library user of `obs`)
//! all counters stay at zero and [`installed`] reports `false`; the
//! module costs nothing.
#![allow(unsafe_code)] // the GlobalAlloc impl below; nothing else

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide allocation count.
static TOTAL_ALLOCS: AtomicU64 = AtomicU64::new(0);
/// Process-wide allocated-byte count (bytes requested, not freed).
static TOTAL_BYTES: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
    static THREAD_BYTES: Cell<u64> = const { Cell::new(0) };
    static THREAD_CURRENT: Cell<u64> = const { Cell::new(0) };
    static THREAD_PEAK: Cell<u64> = const { Cell::new(0) };
}

/// A counting global allocator wrapping [`System`].
///
/// Counting is two relaxed atomic adds plus four const-initialized
/// thread-local bumps per allocation — cheap enough to leave installed
/// in the `dnscentral` binary permanently.
pub struct CountingAlloc;

#[inline]
fn note_alloc(size: u64) {
    TOTAL_ALLOCS.fetch_add(1, Ordering::Relaxed);
    TOTAL_BYTES.fetch_add(size, Ordering::Relaxed);
    // TLS may be unavailable during thread teardown; skip quietly then
    // (the process-wide totals above still see the event).
    let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get().wrapping_add(1)));
    let _ = THREAD_BYTES.try_with(|c| c.set(c.get().wrapping_add(size)));
    let _ = THREAD_CURRENT.try_with(|c| {
        let now = c.get().wrapping_add(size);
        c.set(now);
        let _ = THREAD_PEAK.try_with(|p| {
            if now > p.get() {
                p.set(now);
            }
        });
    });
}

#[inline]
fn note_dealloc(size: u64) {
    let _ = THREAD_CURRENT.try_with(|c| c.set(c.get().saturating_sub(size)));
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            note_alloc(layout.size() as u64);
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            note_alloc(layout.size() as u64);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        note_dealloc(layout.size() as u64);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            // a grow/shrink counts as one fresh allocation event: steady
            // state (reused capacity) performs none of these
            note_dealloc(layout.size() as u64);
            note_alloc(new_size as u64);
        }
        p
    }
}

/// What [`measure`] observed while its closure ran (current thread only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScopeStats {
    /// Number of allocation events (alloc, alloc_zeroed, grow).
    pub allocs: u64,
    /// Bytes requested across those events.
    pub bytes: u64,
    /// Peak live-byte growth above the level at scope entry.
    pub peak_bytes: u64,
}

/// Run `f`, returning its value plus the allocation activity of the
/// current thread while it ran. All zeros unless [`CountingAlloc`] is
/// the process's global allocator.
pub fn measure<T>(f: impl FnOnce() -> T) -> (T, ScopeStats) {
    let allocs0 = THREAD_ALLOCS.with(Cell::get);
    let bytes0 = THREAD_BYTES.with(Cell::get);
    let base = THREAD_CURRENT.with(Cell::get);
    THREAD_PEAK.with(|p| p.set(base));
    let out = f();
    let peak = THREAD_PEAK.with(Cell::get);
    (
        out,
        ScopeStats {
            allocs: THREAD_ALLOCS.with(Cell::get).wrapping_sub(allocs0),
            bytes: THREAD_BYTES.with(Cell::get).wrapping_sub(bytes0),
            peak_bytes: peak.saturating_sub(base),
        },
    )
}

/// Process-wide `(allocation_count, bytes_allocated)` since start.
pub fn totals() -> (u64, u64) {
    (
        TOTAL_ALLOCS.load(Ordering::Relaxed),
        TOTAL_BYTES.load(Ordering::Relaxed),
    )
}

/// Probe whether [`CountingAlloc`] is actually installed as the global
/// allocator: perform one heap allocation and see whether the counters
/// move.
pub fn installed() -> bool {
    let before = THREAD_ALLOCS.with(Cell::get);
    let probe = std::hint::black_box(Box::new(0xA5u8));
    drop(std::hint::black_box(probe));
    THREAD_ALLOCS.with(Cell::get) != before
}

#[cfg(test)]
mod tests {
    use super::*;

    // The obs test binary does not install the allocator, so counters
    // must stay silent — the "not installed" contract.
    #[test]
    fn uninstalled_counts_nothing() {
        assert!(!installed());
        let (v, stats) = measure(|| {
            let big: Vec<u64> = (0..1024).collect();
            big.len()
        });
        assert_eq!(v, 1024);
        assert_eq!(stats, ScopeStats::default());
        assert_eq!(totals(), (0, 0));
    }
}

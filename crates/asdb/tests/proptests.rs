//! Property tests for the address plan: attribution coherence at any
//! plan size and seed.

use asdb::cloud::ALL_PROVIDERS;
use asdb::synth::{InternetPlan, PlanConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every prefix the plan announces attributes back to its owner,
    /// for any plan size and seed.
    #[test]
    fn plan_attribution_total(count in 1usize..400, seed in 0u64..1_000) {
        let plan = InternetPlan::build(&PlanConfig {
            other_as_count: count,
            isp_fraction: 0.4,
            v6_fraction: 0.3,
            seed,
        });
        prop_assert_eq!(plan.as_count(), count + 20);
        for other in plan.other_ases.iter().step_by((count / 16).max(1)) {
            for p in other.v4.iter().chain(other.v6.iter()) {
                prop_assert_eq!(plan.mapper.asn_of(p.network()), Some(other.asn));
                prop_assert_eq!(plan.mapper.provider_of(p.network()), None);
            }
        }
        // cloud pools always attribute to their provider
        for provider in ALL_PROVIDERS {
            for pool in provider.v4_pools().iter().take(2) {
                let who = plan.mapper.provider_of(pool.network());
                prop_assert_eq!(who, Some(provider), "{}", pool);
            }
        }
    }

    /// Public-DNS classification is a subset of provider attribution
    /// for addresses the plan announces.
    #[test]
    fn public_dns_subset(seed in 0u64..1_000) {
        let plan = InternetPlan::build(&PlanConfig {
            other_as_count: 50,
            isp_fraction: 0.4,
            v6_fraction: 0.3,
            seed,
        });
        for provider in ALL_PROVIDERS {
            for range in provider.public_dns_ranges() {
                let ip = range.network();
                if plan.mapper.provider_of(ip).is_some() {
                    prop_assert_eq!(plan.mapper.public_dns_provider(ip), Some(provider));
                }
            }
        }
    }
}

//! Prefix→AS mapping: the enrichment step that turns a query source
//! address into an AS and, transitively, a cloud provider.

use crate::cloud::Provider;
use crate::registry::{AsRegistry, Asn};
use netbase::prefix::IpPrefix;
use netbase::trie::PrefixTrie;
use std::net::IpAddr;

/// IP → AS (and provider) resolution: an LPM trie over announced
/// prefixes plus the AS registry, and the Google-Public-DNS range list
/// for the Table 4/7 split.
#[derive(Clone)]
pub struct AsMapper {
    prefixes: PrefixTrie<Asn>,
    registry: AsRegistry,
    public_dns: PrefixTrie<Provider>,
}

impl AsMapper {
    /// Build from announced prefixes and a registry. The public-DNS
    /// classification trie is populated from the providers' advertised
    /// resolver ranges.
    pub fn new(prefixes: PrefixTrie<Asn>, registry: AsRegistry) -> Self {
        let mut public_dns = PrefixTrie::new();
        for provider in crate::cloud::ALL_PROVIDERS {
            for range in provider.public_dns_ranges() {
                public_dns.insert(range, provider);
            }
        }
        AsMapper {
            prefixes,
            registry,
            public_dns,
        }
    }

    /// Longest-prefix lookup: the AS announcing the covering prefix.
    pub fn asn_of(&self, ip: IpAddr) -> Option<Asn> {
        self.prefixes.lookup(ip).map(|(_, asn)| *asn)
    }

    /// The cloud provider a source address belongs to, if any.
    pub fn provider_of(&self, ip: IpAddr) -> Option<Provider> {
        self.asn_of(ip)
            .and_then(|asn| self.registry.provider_of(asn))
    }

    /// True when the address is inside a provider's advertised public-DNS
    /// resolver ranges (Google's list in the paper's §4.1).
    pub fn is_public_dns(&self, ip: IpAddr) -> bool {
        self.public_dns.lookup(ip).is_some()
    }

    /// The provider whose public-DNS ranges cover `ip`, if any.
    pub fn public_dns_provider(&self, ip: IpAddr) -> Option<Provider> {
        self.public_dns.lookup(ip).map(|(_, p)| *p)
    }

    /// Number of announced prefixes.
    pub fn prefix_count(&self) -> usize {
        self.prefixes.len()
    }

    /// Access the registry.
    pub fn registry(&self) -> &AsRegistry {
        &self.registry
    }

    /// Insert one announcement (used by the synthetic plan builder).
    pub fn announce(&mut self, prefix: IpPrefix, asn: Asn) {
        self.prefixes.insert(prefix, asn);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{AsInfo, AsKind};

    fn mapper() -> AsMapper {
        let mut trie = PrefixTrie::new();
        let mut reg = AsRegistry::with_cloud_providers();
        // Google pools
        for (i, pool) in Provider::Google.v4_pools().into_iter().enumerate() {
            trie.insert(pool, Provider::Google.asn_for_pool(i));
        }
        for (i, pool) in Provider::Google.v6_pools().into_iter().enumerate() {
            trie.insert(pool, Provider::Google.asn_for_pool(i));
        }
        // one ISP
        reg.register(AsInfo {
            asn: Asn(1103),
            name: "SURFnet".into(),
            kind: AsKind::Isp,
        });
        trie.insert("145.0.0.0/13".parse().unwrap(), Asn(1103));
        AsMapper::new(trie, reg)
    }

    #[test]
    fn provider_attribution() {
        let m = mapper();
        assert_eq!(
            m.provider_of("8.8.8.8".parse().unwrap()),
            Some(Provider::Google)
        );
        assert_eq!(
            m.provider_of("2001:4860:4860::8888".parse().unwrap()),
            Some(Provider::Google)
        );
        assert_eq!(
            m.provider_of("145.2.3.4".parse().unwrap()),
            None,
            "ISP is not a CP"
        );
        assert_eq!(m.asn_of("145.2.3.4".parse().unwrap()), Some(Asn(1103)));
        assert_eq!(
            m.asn_of("203.0.113.1".parse().unwrap()),
            None,
            "unannounced"
        );
    }

    #[test]
    fn public_dns_split() {
        let m = mapper();
        // public ranges
        assert!(m.is_public_dns("8.8.8.8".parse().unwrap()));
        assert!(m.is_public_dns("8.8.4.4".parse().unwrap()));
        assert!(m.is_public_dns("2001:4860:4860::64".parse().unwrap()));
        assert_eq!(
            m.public_dns_provider("8.8.8.8".parse().unwrap()),
            Some(Provider::Google)
        );
        // Google, but not the public service
        assert!(!m.is_public_dns("74.125.1.1".parse().unwrap()));
        assert_eq!(
            m.provider_of("74.125.1.1".parse().unwrap()),
            Some(Provider::Google)
        );
        // Cloudflare public resolver ranges classify even without announcements
        assert_eq!(
            m.public_dns_provider("1.1.1.1".parse().unwrap()),
            Some(Provider::Cloudflare)
        );
    }

    #[test]
    fn announce_extends_table() {
        let mut m = mapper();
        assert_eq!(m.asn_of("198.51.100.1".parse().unwrap()), None);
        m.announce("198.51.100.0/24".parse().unwrap(), Asn(65000));
        assert_eq!(m.asn_of("198.51.100.1".parse().unwrap()), Some(Asn(65000)));
    }
}

//! AS-level metadata: the cloud-provider AS sets from the paper's
//! Table 1, an AS registry, prefix→AS longest-prefix mapping, and the
//! synthetic "rest of the Internet" prefix plan that stands in for a
//! BGP-derived (routeviews-style) table.
//!
//! The paper attributes every query source address to an AS and then
//! groups ASes into five cloud providers (CPs). The CP AS numbers here
//! are the real, published ones the paper lists; everything else about
//! the address plan is synthetic but structurally faithful (tens of
//! thousands of ASes, a handful of prefixes each, both families).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cloud;
pub mod mapping;
pub mod registry;
pub mod synth;

pub use cloud::{Provider, ALL_PROVIDERS};
pub use mapping::AsMapper;
pub use registry::{AsInfo, AsKind, AsRegistry, Asn};
pub use synth::{InternetPlan, PlanConfig};

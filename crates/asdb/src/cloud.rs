//! The five cloud/content providers and their autonomous systems
//! (paper Table 1), plus each provider's address pools used by the
//! simulator and the Google-Public-DNS classification list used by the
//! Table 4/7 analysis.

use crate::registry::Asn;
use core::fmt;
use netbase::prefix::IpPrefix;
use serde::{Deserialize, Serialize};

/// One of the five cloud/content providers the paper tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Provider {
    /// Google (AS15169) — operates Google Public DNS.
    Google,
    /// Amazon (5 ASes).
    Amazon,
    /// Microsoft (12 ASes).
    Microsoft,
    /// Facebook (AS32934).
    Facebook,
    /// Cloudflare (AS13335) — operates the 1.1.1.1 public resolver.
    Cloudflare,
}

/// All five providers, in the paper's presentation order.
pub const ALL_PROVIDERS: [Provider; 5] = [
    Provider::Google,
    Provider::Amazon,
    Provider::Microsoft,
    Provider::Facebook,
    Provider::Cloudflare,
];

impl Provider {
    /// The provider's AS numbers, exactly as the paper's Table 1 lists
    /// them (Microsoft's "8068-8075" range expanded).
    pub fn asns(self) -> Vec<Asn> {
        let list: &[u32] = match self {
            Provider::Google => &[15169],
            Provider::Amazon => &[7224, 8987, 9059, 14168, 16509],
            Provider::Microsoft => &[
                3598, 6584, 8068, 8069, 8070, 8071, 8072, 8073, 8074, 8075, 12076, 23468,
            ],
            Provider::Facebook => &[32934],
            Provider::Cloudflare => &[13335],
        };
        list.iter().map(|&n| Asn(n)).collect()
    }

    /// Whether the provider runs a public DNS resolver service
    /// (Table 1's "Public DNS?" column).
    pub fn runs_public_dns(self) -> bool {
        matches!(self, Provider::Google | Provider::Cloudflare)
    }

    /// Display name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Provider::Google => "Google",
            Provider::Amazon => "Amazon",
            Provider::Microsoft => "Microsoft",
            Provider::Facebook => "Facebook",
            Provider::Cloudflare => "Cloudflare",
        }
    }

    /// IPv4 address pools the provider's resolvers send queries from.
    ///
    /// Pools use the providers' well-known address space where that is
    /// public knowledge, and clean synthetic blocks elsewhere; the
    /// analysis only depends on pool→AS attribution being consistent.
    pub fn v4_pools(self) -> Vec<IpPrefix> {
        let list: &[&str] = match self {
            Provider::Google => &[
                "8.8.8.0/24",     // public resolver anycast
                "8.8.4.0/24",     // public resolver anycast
                "172.253.0.0/16", // public resolver egress
                "74.125.0.0/16",  // crawl / corporate
                "66.249.64.0/19", // crawl
                "108.177.0.0/17", // cloud
            ],
            Provider::Amazon => &[
                "52.0.0.0/12",
                "54.64.0.0/12",
                "13.32.0.0/12",
                "18.128.0.0/12",
                "35.152.0.0/13",
            ],
            Provider::Microsoft => &[
                "40.64.0.0/10",
                "13.64.0.0/11",
                "20.33.0.0/16",
                "51.103.0.0/16",
                "65.52.0.0/14",
                "104.40.0.0/13",
            ],
            Provider::Facebook => &[
                "31.13.64.0/18",
                "66.220.144.0/20",
                "69.171.224.0/19",
                "157.240.0.0/16",
                "173.252.64.0/18",
            ],
            Provider::Cloudflare => &[
                "1.1.1.0/24",
                "1.0.0.0/24",
                "162.158.0.0/15",
                "103.21.244.0/22",
                "141.101.64.0/18",
            ],
        };
        list.iter()
            .map(|s| s.parse().expect("static pool parses"))
            .collect()
    }

    /// IPv6 address pools.
    pub fn v6_pools(self) -> Vec<IpPrefix> {
        let list: &[&str] = match self {
            Provider::Google => &[
                "2001:4860:4860::/48", // public resolver anycast
                "2404:6800:4808::/48", // public resolver egress
                "2001:4860::/36",      // the rest of AS15169
                "2607:f8b0::/32",
            ],
            Provider::Amazon => &["2600:1f00::/24", "2406:da00::/24"],
            Provider::Microsoft => &["2603:1000::/24", "2a01:110::/31"],
            Provider::Facebook => &["2a03:2880::/32", "2620:0:1c00::/40"],
            Provider::Cloudflare => &["2606:4700::/32", "2400:cb00::/32"],
        };
        list.iter()
            .map(|s| s.parse().expect("static pool parses"))
            .collect()
    }

    /// The advertised Google Public DNS ranges — the classification list
    /// the paper's Table 4/7 uses to split Google traffic into "Public
    /// DNS" vs "the rest of the cloud". Empty for other providers.
    pub fn public_dns_ranges(self) -> Vec<IpPrefix> {
        match self {
            Provider::Google => [
                "8.8.8.0/24",
                "8.8.4.0/24",
                "172.253.0.0/16",
                "2001:4860:4860::/48",
                "2404:6800:4808::/48",
            ]
            .iter()
            .map(|s| s.parse().expect("static range parses"))
            .collect(),
            Provider::Cloudflare => ["1.1.1.0/24", "1.0.0.0/24", "2606:4700:4700::/48"]
                .iter()
                .map(|s| s.parse().expect("static range parses"))
                .collect(),
            _ => Vec::new(),
        }
    }

    /// Round-robin AS assignment for a pool index, so multi-AS providers
    /// (Amazon, Microsoft) spread their pools across their ASes.
    pub fn asn_for_pool(self, pool_index: usize) -> Asn {
        let asns = self.asns();
        asns[pool_index % asns.len()]
    }
}

impl fmt::Display for Provider {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn twenty_ases_total_as_in_table_1() {
        let total: usize = ALL_PROVIDERS.iter().map(|p| p.asns().len()).sum();
        assert_eq!(total, 20, "paper: 'only 20 ASes'");
    }

    #[test]
    fn asns_are_disjoint_across_providers() {
        let mut seen = HashSet::new();
        for p in ALL_PROVIDERS {
            for asn in p.asns() {
                assert!(seen.insert(asn), "{asn:?} appears twice");
            }
        }
    }

    #[test]
    fn table_1_membership_spot_checks() {
        assert_eq!(Provider::Google.asns(), vec![Asn(15169)]);
        assert!(Provider::Amazon.asns().contains(&Asn(16509)));
        assert_eq!(Provider::Microsoft.asns().len(), 12);
        assert!(Provider::Microsoft.asns().contains(&Asn(8071)));
        assert_eq!(Provider::Facebook.asns(), vec![Asn(32934)]);
        assert_eq!(Provider::Cloudflare.asns(), vec![Asn(13335)]);
    }

    #[test]
    fn public_dns_flags_match_table_1() {
        assert!(Provider::Google.runs_public_dns());
        assert!(Provider::Cloudflare.runs_public_dns());
        assert!(!Provider::Amazon.runs_public_dns());
        assert!(!Provider::Microsoft.runs_public_dns());
        assert!(!Provider::Facebook.runs_public_dns());
    }

    #[test]
    fn pools_are_nonempty_and_disjoint_across_providers() {
        let mut all: Vec<(Provider, IpPrefix)> = Vec::new();
        for p in ALL_PROVIDERS {
            assert!(!p.v4_pools().is_empty());
            assert!(!p.v6_pools().is_empty());
            for pool in p.v4_pools().into_iter().chain(p.v6_pools()) {
                all.push((p, pool));
            }
        }
        for (i, (pa, a)) in all.iter().enumerate() {
            for (pb, b) in all.iter().skip(i + 1) {
                if pa != pb {
                    assert!(!a.covers(b) && !b.covers(a), "{pa} {a} overlaps {pb} {b}");
                }
            }
        }
    }

    #[test]
    fn google_public_ranges_are_inside_google_pools() {
        let pools: Vec<IpPrefix> = Provider::Google
            .v4_pools()
            .into_iter()
            .chain(Provider::Google.v6_pools())
            .collect();
        for range in Provider::Google.public_dns_ranges() {
            assert!(
                pools.iter().any(|p| p.covers(&range) || *p == range),
                "{range} not inside any Google pool"
            );
        }
    }

    #[test]
    fn asn_for_pool_cycles() {
        let asns = Provider::Amazon.asns();
        assert_eq!(Provider::Amazon.asn_for_pool(0), asns[0]);
        assert_eq!(Provider::Amazon.asn_for_pool(5), asns[0]);
        assert_eq!(Provider::Amazon.asn_for_pool(6), asns[1]);
        assert_eq!(Provider::Google.asn_for_pool(17), Asn(15169));
    }
}

//! The synthetic Internet address plan.
//!
//! The paper resolves source addresses against a BGP-derived prefix
//! table covering the whole routed Internet (40k+ origin ASes visible
//! at each vantage). We cannot ship that table, so this module builds a
//! structurally equivalent one: the five CPs keep their real AS numbers
//! and well-known address pools, and a configurable number of "other"
//! ASes (default sized to the paper's observed AS counts) each announce
//! a few prefixes from address space provably disjoint from the CP
//! pools. Attribution code downstream is agnostic to which plan it runs
//! on — that is the point of the substitution.

use crate::cloud::{Provider, ALL_PROVIDERS};
use crate::mapping::AsMapper;
use crate::registry::{AsInfo, AsKind, AsRegistry, Asn};
use netbase::prefix::IpPrefix;
use netbase::trie::PrefixTrie;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

/// Configuration for [`InternetPlan::build`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlanConfig {
    /// Number of non-CP ASes to synthesize. The paper's vantages see
    /// 37k-52k ASes; tests use a few hundred for speed.
    pub other_as_count: usize,
    /// Fraction of "other" ASes that are eyeball ISPs (run resolvers
    /// that query the vantage zones heavily).
    pub isp_fraction: f64,
    /// Fraction of "other" ASes that also announce IPv6 space.
    pub v6_fraction: f64,
    /// RNG seed; the plan is fully deterministic given the config.
    pub seed: u64,
}

impl Default for PlanConfig {
    fn default() -> Self {
        PlanConfig {
            other_as_count: 40_000,
            isp_fraction: 0.45,
            v6_fraction: 0.35,
            seed: 1,
        }
    }
}

/// A fully built address plan: mapper plus the per-AS prefix lists the
/// simulator draws resolver addresses from.
pub struct InternetPlan {
    /// IP → AS/provider resolution.
    pub mapper: AsMapper,
    /// Per-provider (v4 pools, v6 pools), parallel to
    /// [`Provider::v4_pools`] / [`Provider::v6_pools`].
    pub provider_pools: Vec<(Provider, Vec<IpPrefix>, Vec<IpPrefix>)>,
    /// The "other" ASes with their announced prefixes (v4, then v6).
    pub other_ases: Vec<OtherAs>,
}

/// One synthesized non-CP AS.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OtherAs {
    /// Its number.
    pub asn: Asn,
    /// ISP (eyeball, runs busy resolvers) or other.
    pub is_isp: bool,
    /// Announced IPv4 prefixes.
    pub v4: Vec<IpPrefix>,
    /// Announced IPv6 prefixes (possibly empty).
    pub v6: Vec<IpPrefix>,
}

/// First octets reserved for CP pools or special use; the synthetic
/// "other" space avoids them entirely, guaranteeing disjointness.
const FORBIDDEN_FIRST_OCTETS: &[u8] = &[
    0, 1, 8, 10, 13, 18, 20, 31, 35, 40, 51, 52, 54, 65, 66, 69, 74, 100, 103, 104, 108, 127, 141,
    157, 162, 169, 172, 173, 192, 198, 203, 224,
];

impl InternetPlan {
    /// Build the plan. Deterministic in `config`.
    pub fn build(config: &PlanConfig) -> InternetPlan {
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0x5eed_a5db);
        let mut trie: PrefixTrie<Asn> = PrefixTrie::new();
        let mut registry = AsRegistry::with_cloud_providers();

        // 1. Cloud providers announce their pools.
        let mut provider_pools = Vec::new();
        for provider in ALL_PROVIDERS {
            let v4 = provider.v4_pools();
            let v6 = provider.v6_pools();
            for (i, p) in v4.iter().enumerate() {
                trie.insert(*p, provider.asn_for_pool(i));
            }
            for (i, p) in v6.iter().enumerate() {
                trie.insert(*p, provider.asn_for_pool(i));
            }
            provider_pools.push((provider, v4, v6));
        }

        // 2. Synthesize "other" ASes over the allowed first-octet pool.
        let allowed: Vec<u8> = (1u8..=223)
            .filter(|o| !FORBIDDEN_FIRST_OCTETS.contains(o))
            .collect();
        let mut v4_counter: u64 = 0;
        let mut v6_counter: u64 = 1;
        let mut other_ases = Vec::with_capacity(config.other_as_count);
        let cloud_asns: std::collections::HashSet<u32> = ALL_PROVIDERS
            .iter()
            .flat_map(|p| p.asns())
            .map(|a| a.0)
            .collect();
        let mut next_asn: u32 = 174;
        for _ in 0..config.other_as_count {
            while cloud_asns.contains(&next_asn) {
                next_asn += 1;
            }
            let asn = Asn(next_asn);
            next_asn += 1;

            let is_isp = rng.gen_bool(config.isp_fraction);
            // 1-3 v4 prefixes; ISPs tend to hold more space (shorter).
            let n_v4 = rng.gen_range(1..=3);
            let mut v4 = Vec::with_capacity(n_v4);
            for _ in 0..n_v4 {
                // Carve successive /18s: octet.block.sub → /18 gives
                // 4 * 256 * allowed ≈ 196k slots, plenty for 3*52k.
                let slot = v4_counter;
                v4_counter += 1;
                let octet = allowed[(slot % allowed.len() as u64) as usize];
                let rest = slot / allowed.len() as u64;
                let second = (rest % 256) as u8;
                let quarter = ((rest / 256) % 4) as u8; // /18 inside the /16
                let addr = Ipv4Addr::new(octet, second, quarter << 6, 0);
                let len = if is_isp { 18 } else { rng.gen_range(18..=20) };
                v4.push(IpPrefix::new(IpAddr::V4(addr), len).expect("len in range"));
            }
            let mut v6 = Vec::new();
            if rng.gen_bool(config.v6_fraction) {
                // /48s under 2400::/16 spaced so they never collide with
                // Cloudflare's 2400:cb00::/32 (counter stays tiny).
                let bits: u128 = (0x2400u128 << 112) | ((v6_counter as u128) << 80);
                v6_counter += 1;
                v6.push(IpPrefix::new(IpAddr::V6(Ipv6Addr::from(bits)), 48).expect("len in range"));
            }
            for p in v4.iter().chain(v6.iter()) {
                trie.insert(*p, asn);
            }
            registry.register(AsInfo {
                asn,
                name: format!("{}-{}", if is_isp { "isp" } else { "net" }, asn.0),
                kind: if is_isp { AsKind::Isp } else { AsKind::Other },
            });
            other_ases.push(OtherAs {
                asn,
                is_isp,
                v4,
                v6,
            });
        }

        InternetPlan {
            mapper: AsMapper::new(trie, registry),
            provider_pools,
            other_ases,
        }
    }

    /// The ISP subset of the other ASes.
    pub fn isps(&self) -> impl Iterator<Item = &OtherAs> {
        self.other_ases.iter().filter(|a| a.is_isp)
    }

    /// Total AS count (cloud + other).
    pub fn as_count(&self) -> usize {
        20 + self.other_ases.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_plan() -> InternetPlan {
        InternetPlan::build(&PlanConfig {
            other_as_count: 500,
            isp_fraction: 0.5,
            v6_fraction: 0.4,
            seed: 7,
        })
    }

    #[test]
    fn deterministic_given_seed() {
        let a = small_plan();
        let b = small_plan();
        assert_eq!(a.other_ases.len(), b.other_ases.len());
        for (x, y) in a.other_ases.iter().zip(b.other_ases.iter()) {
            assert_eq!(x.asn, y.asn);
            assert_eq!(x.v4, y.v4);
            assert_eq!(x.v6, y.v6);
            assert_eq!(x.is_isp, y.is_isp);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = small_plan();
        let b = InternetPlan::build(&PlanConfig {
            other_as_count: 500,
            isp_fraction: 0.5,
            v6_fraction: 0.4,
            seed: 8,
        });
        let same = a
            .other_ases
            .iter()
            .zip(b.other_ases.iter())
            .all(|(x, y)| x.is_isp == y.is_isp && x.v4 == y.v4);
        assert!(!same, "seed must matter");
    }

    #[test]
    fn cp_addresses_attribute_to_cp() {
        let plan = small_plan();
        assert_eq!(
            plan.mapper.provider_of("8.8.8.8".parse().unwrap()),
            Some(Provider::Google)
        );
        assert_eq!(
            plan.mapper.provider_of("2a03:2880::1".parse().unwrap()),
            Some(Provider::Facebook)
        );
        assert_eq!(
            plan.mapper.provider_of("52.1.2.3".parse().unwrap()),
            Some(Provider::Amazon)
        );
        assert_eq!(
            plan.mapper.provider_of("40.100.1.1".parse().unwrap()),
            Some(Provider::Microsoft)
        );
        assert_eq!(
            plan.mapper.provider_of("1.1.1.1".parse().unwrap()),
            Some(Provider::Cloudflare)
        );
    }

    #[test]
    fn other_addresses_attribute_to_their_as_not_a_cp() {
        let plan = small_plan();
        for other in plan.other_ases.iter().take(50) {
            for p in other.v4.iter().chain(other.v6.iter()) {
                let host = p.network();
                assert_eq!(plan.mapper.asn_of(host), Some(other.asn), "{p}");
                assert_eq!(plan.mapper.provider_of(host), None, "{p}");
            }
        }
    }

    #[test]
    fn other_prefixes_disjoint_from_cp_pools() {
        let plan = small_plan();
        let cp_pools: Vec<IpPrefix> = ALL_PROVIDERS
            .iter()
            .flat_map(|p| p.v4_pools().into_iter().chain(p.v6_pools()))
            .collect();
        for other in &plan.other_ases {
            for p in other.v4.iter().chain(other.v6.iter()) {
                for cp in &cp_pools {
                    assert!(!cp.covers(p) && !p.covers(cp), "{p} vs {cp}");
                }
            }
        }
    }

    #[test]
    fn as_counts_and_roles() {
        let plan = small_plan();
        assert_eq!(plan.as_count(), 520);
        let isps = plan.isps().count();
        assert!((150..=350).contains(&isps), "isp fraction ~0.5: {isps}");
        assert!(plan.mapper.prefix_count() > 500);
        let with_v6 = plan.other_ases.iter().filter(|a| !a.v6.is_empty()).count();
        assert!(
            (100..=300).contains(&with_v6),
            "v6 fraction ~0.4: {with_v6}"
        );
    }

    #[test]
    fn unique_asns() {
        let plan = small_plan();
        let mut seen = std::collections::HashSet::new();
        for a in &plan.other_ases {
            assert!(seen.insert(a.asn));
            assert!(!ALL_PROVIDERS.iter().any(|p| p.asns().contains(&a.asn)));
        }
    }

    #[test]
    fn scales_to_paper_size() {
        // Build the full 40k-AS plan once to prove capacity; keep it
        // out of the default small tests for speed elsewhere.
        let plan = InternetPlan::build(&PlanConfig {
            other_as_count: 40_000,
            ..Default::default()
        });
        assert_eq!(plan.as_count(), 40_020);
        assert!(plan.mapper.prefix_count() >= 40_000);
        // spot-check random attribution still works at scale
        let other = &plan.other_ases[39_999];
        assert_eq!(plan.mapper.asn_of(other.v4[0].network()), Some(other.asn));
    }
}

//! The AS registry: number → metadata.

use crate::cloud::Provider;
use core::fmt;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// An autonomous-system number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Asn(pub u32);

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

/// The coarse role of an AS in the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AsKind {
    /// One of the five tracked cloud/content providers.
    Cloud(Provider),
    /// An "eyeball" ISP running its own resolvers.
    Isp,
    /// Anything else (hosting, enterprise, academic...).
    Other,
}

/// Metadata about one AS.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AsInfo {
    /// The AS number.
    pub asn: Asn,
    /// Human-readable operator name.
    pub name: String,
    /// Role classification.
    pub kind: AsKind,
}

impl AsInfo {
    /// The cloud provider this AS belongs to, if any.
    pub fn provider(&self) -> Option<Provider> {
        match self.kind {
            AsKind::Cloud(p) => Some(p),
            _ => None,
        }
    }
}

/// A lookup table of AS metadata.
#[derive(Debug, Default, Clone)]
pub struct AsRegistry {
    by_asn: HashMap<Asn, AsInfo>,
}

impl AsRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// A registry pre-seeded with the paper's 20 cloud-provider ASes.
    pub fn with_cloud_providers() -> Self {
        let mut reg = Self::new();
        for provider in crate::cloud::ALL_PROVIDERS {
            for asn in provider.asns() {
                reg.register(AsInfo {
                    asn,
                    name: format!("{} ({})", provider.name(), asn),
                    kind: AsKind::Cloud(provider),
                });
            }
        }
        reg
    }

    /// Insert or replace an entry.
    pub fn register(&mut self, info: AsInfo) {
        self.by_asn.insert(info.asn, info);
    }

    /// Look up by number.
    pub fn get(&self, asn: Asn) -> Option<&AsInfo> {
        self.by_asn.get(&asn)
    }

    /// The provider owning `asn`, if it is a cloud AS.
    pub fn provider_of(&self, asn: Asn) -> Option<Provider> {
        self.get(asn).and_then(AsInfo::provider)
    }

    /// Number of registered ASes.
    pub fn len(&self) -> usize {
        self.by_asn.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.by_asn.is_empty()
    }

    /// Iterate over all entries (unordered).
    pub fn iter(&self) -> impl Iterator<Item = &AsInfo> {
        self.by_asn.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cloud_seed_has_twenty_entries() {
        let reg = AsRegistry::with_cloud_providers();
        assert_eq!(reg.len(), 20);
        assert_eq!(reg.provider_of(Asn(15169)), Some(Provider::Google));
        assert_eq!(reg.provider_of(Asn(8070)), Some(Provider::Microsoft));
        assert_eq!(reg.provider_of(Asn(64512)), None);
    }

    #[test]
    fn register_replaces() {
        let mut reg = AsRegistry::new();
        reg.register(AsInfo {
            asn: Asn(1),
            name: "one".into(),
            kind: AsKind::Isp,
        });
        reg.register(AsInfo {
            asn: Asn(1),
            name: "uno".into(),
            kind: AsKind::Other,
        });
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.get(Asn(1)).unwrap().name, "uno");
        assert_eq!(reg.get(Asn(1)).unwrap().provider(), None);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Asn(15169).to_string(), "AS15169");
    }
}

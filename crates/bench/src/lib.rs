#![forbid(unsafe_code)]
//! Shared helpers for the benchmark harness.
//!
//! The benches in `benches/` fall into two groups:
//!
//! - **Exhibit regenerators** (`tables.rs`, `figures.rs`): each bench
//!   regenerates one table or figure of the paper end-to-end, prints the
//!   rows/series once at setup, and times the analysis stage (the part
//!   whose performance a warehouse operator cares about).
//! - **Component benches** (`wire.rs`, `substrates.rs`, `pipeline.rs`,
//!   `analysis.rs`, `serve.rs`, `ablations.rs`): throughput of the wire
//!   codec, LPM, caches, the generation engine, the analysis passes,
//!   the live responder, and the design-choice ablations DESIGN.md §6
//!   calls out.
//!
//! Component scenario *bodies* live in [`scenarios`]; the criterion
//! benches and the `dnscentral bench` subcommand both consume that
//! registry, so the two harnesses measure the same code.

pub mod scenarios;

use dnscentral_core::experiments::{run_dataset, DatasetRun};
use simnet::profile::Vantage;
use simnet::scenario::Scale;
use std::sync::OnceLock;

/// A shared tiny-scale `.nl` w2020 run for analysis benches.
pub fn shared_nl2020() -> &'static DatasetRun {
    static RUN: OnceLock<DatasetRun> = OnceLock::new();
    RUN.get_or_init(|| run_dataset(Vantage::Nl, 2020, Scale::tiny(), 42))
}

/// A shared tiny-scale B-Root 2020 run.
pub fn shared_broot2020() -> &'static DatasetRun {
    static RUN: OnceLock<DatasetRun> = OnceLock::new();
    RUN.get_or_init(|| run_dataset(Vantage::BRoot, 2020, Scale::tiny(), 42))
}

/// Criterion settings that keep the full `cargo bench` run in minutes:
/// exhibit benches measure seconds-long pipelines, so fewer samples.
pub fn quick() -> criterion::Criterion {
    use core::time::Duration;
    criterion::Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

/// Register every scenario of one [`scenarios`] group with a criterion
/// harness — the bench binaries stay thin consumers of the registry.
pub fn bench_scenario_group(c: &mut criterion::Criterion, group: &str) {
    for s in scenarios::in_group(group) {
        let mut prepared = (s.setup)();
        let mut bg = c.benchmark_group(group);
        bg.throughput(criterion::Throughput::Elements(prepared.records_per_iter));
        bg.bench_function(s.name, |b| b.iter(|| (prepared.iter)()));
        bg.finish();
    }
}

/// Regenerate the rows of a tiny capture for codec benches.
pub fn sample_capture_bytes() -> Vec<u8> {
    use netbase::capture::CaptureWriter;
    use simnet::engine::Engine;
    use simnet::scenario::dataset;
    let engine = Engine::new(dataset(Vantage::Nz, 2020), Scale::tiny(), 7);
    let mut buf = Vec::new();
    let mut w = CaptureWriter::new(&mut buf).expect("in-memory writer");
    engine.generate(&mut w).expect("generation");
    w.finish().expect("flush");
    buf
}
